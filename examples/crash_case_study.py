#!/usr/bin/env python3
"""A Figure 5-style deep dive: corrupt ``do_generic_file_read`` and
watch the file-read path silently truncate and damage the system.

    python3 examples/crash_case_study.py

The paper's catastrophic case 9 was a single-bit flip in a ``mov``
inside ``do_generic_file_read()`` that reversed a value assignment,
made the read loop exit early, and corrupted the filesystem beyond
repair.  This example sweeps every campaign-A injection inside the same
function of our kernel, reports what each does, and dissects the most
damaging one (including the host-side fsck verdict).
"""

from repro.analysis.cases import format_case_study
from repro.injection.campaigns import plan_campaign
from repro.injection.runner import InjectionHarness
from repro.kernel.build import build_kernel
from repro.machine.disk import fsck
from repro.profiling.sampler import profile_kernel
from repro.userland.build import build_all_programs
from repro.userland.programs import WORKLOADS

SEVERITY_RANK = {"most_severe": 3, "severe": 2, "normal": 1, None: 0}


def main():
    kernel = build_kernel()
    binaries = build_all_programs()
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    harness = InjectionHarness(kernel, binaries, profile)

    target = next(f for f in kernel.functions
                  if f.name == "do_generic_file_read")
    specs = plan_campaign(kernel, "A", [target])
    print("sweeping %d single-bit errors inside do_generic_file_read()"
          % len(specs))

    outcomes = {}
    best = None
    for spec in specs:
        result = harness.run_spec(spec)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        if best is None or (
                (SEVERITY_RANK.get(result.severity, 0),
                 result.outcome == "fail_silence_violation")
                > (SEVERITY_RANK.get(best.severity, 0),
                   best.outcome == "fail_silence_violation")):
            best = result

    print("\noutcome distribution inside this one function:")
    for outcome, count in sorted(outcomes.items(), key=lambda kv: -kv[1]):
        print("  %-24s %4d" % (outcome, count))

    print("\n== most damaging case ==")
    print(format_case_study(kernel, best, window=16))
    print("\nworkload: %s   run status: %s   exit: %r"
          % (best.workload, best.run_status, best.exit_code))
    if best.severity:
        print("severity: %s (fs: %s)" % (best.severity, best.fs_status))
    golden = harness.golden(best.workload)
    report = fsck(golden.final_disk)
    print("golden-run filesystem for comparison: %s" % report.status)
    if best.console_tail:
        print("console tail: %r" % best.console_tail[-140:])


if __name__ == "__main__":
    main()
