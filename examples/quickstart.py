#!/usr/bin/env python3
"""Quickstart: boot the simulated kernel, run a workload, inject a fault.

    python3 examples/quickstart.py

Walks the three core moves of the reproduction in ~30 seconds:

1. build the kernel + userland and boot to a clean shutdown;
2. run a UnixBench-style workload and show its console transcript;
3. inject a single-bit error into the running kernel and dissect the
   resulting oops, exactly like one row of the paper's campaigns.
"""

from repro.analysis.cases import format_case_study
from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.runner import InjectionHarness
from repro.kernel.build import build_kernel
from repro.machine.machine import Machine, build_standard_disk
from repro.profiling.sampler import profile_kernel
from repro.userland.build import build_all_programs
from repro.userland.programs import WORKLOADS


def main():
    print("== building kernel and userland ==")
    kernel = build_kernel()
    binaries = build_all_programs()
    print("kernel: %d bytes of IA-32-subset machine code, %d functions"
          % (len(kernel.code), len(kernel.functions)))

    print("\n== booting with the 'pipe' workload ==")
    machine = Machine(kernel, build_standard_disk(binaries, "pipe"))
    result = machine.run()
    print(result.console)
    print("run: %s, %d cycles, %d instructions"
          % (result.status, result.cycles, result.instret))

    print("\n== profiling the kernel (Kernprof-style) ==")
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    top = profile.top_functions()[:5]
    for item in top:
        print("  %-24s %-7s %5d samples" % (item.name, item.subsystem,
                                            item.samples))

    print("\n== injecting one single-bit error (campaign A style) ==")
    harness = InjectionHarness(kernel, binaries, profile)
    functions = select_targets(kernel, profile, "A")
    specs = plan_campaign(kernel, "A", functions)
    injection = None
    for spec in specs:
        outcome = harness.run_spec(spec)
        if outcome.outcome == "crash_dumped":
            injection = outcome
            break
    if injection is None:
        print("no crash in the first specs — try another seed")
        return
    print(format_case_study(kernel, injection))
    print("\ncrash: %s in %s/%s, latency %d cycles, severity %s"
          % (injection.crash_cause, injection.crash_subsystem,
             injection.crash_function, injection.latency,
             injection.severity))
    print("console tail: %r" % injection.console_tail[-120:])


if __name__ == "__main__":
    main()
