#!/usr/bin/env python3
"""Run a full fault-injection campaign and print the paper's exhibits.

    python3 examples/run_campaign.py [A|B|C] [tiny|quick|standard|full]

Reproduces one of the paper's three campaigns end to end — profiling,
target selection, debug-register-triggered bit flips, golden-run
classification — then prints the Figure 4 block, the Figure 6 crash
causes, the Figure 7 latency histogram and the Figure 8 propagation
graphs for that campaign.

Rough costs on one core: tiny ≈ 1-2 min, quick ≈ 5-10 min,
standard ≈ 15-30 min, full ≈ 30-60 min.
"""

import sys
import time

from repro.analysis.tables import (
    crash_hang_split,
    format_fig4,
    format_fig6,
    format_fig7,
    format_fig8,
)
from repro.experiments.context import SCALES, ExperimentContext


def main():
    campaign = sys.argv[1].upper() if len(sys.argv) > 1 else "C"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    if campaign not in ("A", "B", "C") or scale not in SCALES:
        raise SystemExit(__doc__)
    ctx = ExperimentContext(scale=scale, verbose=True)
    started = time.time()
    results = ctx.campaign(campaign).results
    print("\ncampaign %s at scale %r: %d injections in %.0f s\n"
          % (campaign, scale, len(results), time.time() - started))
    print(format_fig4(campaign, results))
    dumped, unknown, hangs = crash_hang_split(results)
    print("(crash/hang split: %d dumped, %d unknown, %d hang)\n"
          % (dumped, unknown, hangs))
    print(format_fig6(campaign, results))
    print()
    print(format_fig7(campaign, results))
    print()
    for source in ("fs", "kernel"):
        print(format_fig8(campaign, results, source))
        print()


if __name__ == "__main__":
    main()
