#!/usr/bin/env python3
"""Reproduce the paper's §4 profiling step (Table 1).

    python3 examples/profile_kernel.py [coverage]

Profiles the kernel under all eight UnixBench-equivalent workloads with
the cycle-driven PC sampler, then prints the function distribution among
kernel modules and the core function list that the injection campaigns
target (the paper's 32 functions covering 95% of kernel activity).
"""

import sys

from repro.kernel.build import build_kernel
from repro.profiling.report import format_table1, format_top_functions
from repro.profiling.sampler import profile_kernel
from repro.userland.build import build_all_programs
from repro.userland.programs import WORKLOADS


def main():
    coverage = float(sys.argv[1]) if len(sys.argv) > 1 else 0.95
    kernel = build_kernel()
    binaries = build_all_programs()
    print("profiling under: %s" % ", ".join(WORKLOADS))
    profile = profile_kernel(kernel, binaries, WORKLOADS)
    print("%d PC samples (%d kernel, %d user)\n"
          % (profile.total_samples, profile.kernel_samples,
             profile.user_samples))
    print(format_table1(profile, coverage=coverage))
    print()
    print(format_top_functions(profile, coverage=coverage))


if __name__ == "__main__":
    main()
