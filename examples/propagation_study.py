#!/usr/bin/env python3
"""Figure 8 + §7.4: propagation graphs and assertion placement.

    python3 examples/propagation_study.py [tiny|quick|standard]

Runs the campaigns (or loads them from the results/ cache), prints the
per-subsystem propagation graphs the paper reports for fs and kernel,
then derives the paper's §7.4 recommendation: which functions deserve
extra executable assertions because their failures escape or cause
severe damage.  Finishes with a ksymoops-style annotation of one real
propagated crash.
"""

import os
import sys

from repro.analysis.assertions import format_recommendations
from repro.analysis.oops import annotate_crash
from repro.analysis.propagation import propagation_rate
from repro.analysis.tables import format_fig8
from repro.experiments.context import SCALES, ExperimentContext
from repro.machine.machine import CrashRecord


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    if scale not in SCALES:
        raise SystemExit(__doc__)
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    ctx = ExperimentContext(scale=scale, verbose=True,
                            results_dir=os.path.join(root, "results"))
    merged = ctx.all_results()

    for campaign in ("A", "B", "C"):
        for source in ("fs", "kernel"):
            print(format_fig8(campaign, ctx.campaign(campaign).results,
                              source))
            print()
    print("overall propagation rate: %.1f%%"
          % (100 * propagation_rate(merged)))
    print()
    print(format_recommendations(merged, top=10))

    # Deep-dive one escaped crash with the ksymoops-style annotator.
    escaped = [r for r in merged
               if r.outcome == "crash_dumped" and r.crash_subsystem
               and r.crash_subsystem != r.subsystem]
    if escaped:
        case = escaped[0]
        print("\n== annotated example of a propagated crash ==")
        print("injected into %s/%s, crashed in %s/%s"
              % (case.subsystem, case.function, case.crash_subsystem,
                 case.crash_function))
        record = CrashRecord([case.crash_vector or 0, 0,
                              case.crash_cr2 or 0, case.crash_eip or 0,
                              0x10, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                              case.latency or 0, -1])
        print(annotate_crash(ctx.kernel, record))


if __name__ == "__main__":
    main()
