#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every exhibit and record the results.

    python3 scripts/run_experiments.py [scale] [output]
                                       [--jobs N] [--resume]

Scale is one of tiny/quick/standard/full (see repro.experiments.SCALES).
The standard scale runs a few thousand injections and takes tens of
minutes on one core; results are cached under results/ so re-rendering
is cheap.  ``--jobs N`` spreads each campaign over N process-isolated
workers; ``--resume`` restarts interrupted campaigns from their
journals instead of from scratch.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.experiments import ExperimentContext, build_report  # noqa: E402
from repro.experiments.comparison import build_comparison  # noqa: E402
from repro.experiments.context import SCALES  # noqa: E402
from repro.injection.engine import JournalMismatch  # noqa: E402


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel injection workers (default 1)")
    parser.add_argument("--resume", action="store_true",
                        help="resume interrupted campaigns from their "
                             "journals")
    args = parser.parse_args()
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    ctx = ExperimentContext(scale=args.scale, verbose=True,
                            results_dir=os.path.join(root, "results"),
                            jobs=args.jobs, resume=args.resume)
    try:
        report = build_report(ctx)
        comparison = build_comparison(ctx)
    except JournalMismatch as exc:
        print("error: %s" % exc, file=sys.stderr)
        print("(the journal belongs to a different plan: delete it or "
              "rerun without --resume)", file=sys.stderr)
        raise SystemExit(2)
    with open(os.path.join(root, args.output), "w") as fh:
        fh.write(comparison)
        fh.write("\n\n---\n\n")
        fh.write(report)
    print("wrote %s" % args.output)


if __name__ == "__main__":
    main()
