#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every exhibit and record the results.

    python3 scripts/run_experiments.py [scale] [output]

Scale is one of tiny/quick/standard/full (see repro.experiments.SCALES).
The standard scale runs a few thousand injections and takes tens of
minutes on one core; results are cached under results/ so re-rendering
is cheap.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

from repro.experiments import ExperimentContext, build_report  # noqa: E402
from repro.experiments.comparison import build_comparison  # noqa: E402


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    output = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    ctx = ExperimentContext(scale=scale, verbose=True,
                            results_dir=os.path.join(root, "results"))
    report = build_report(ctx)
    comparison = build_comparison(ctx)
    with open(os.path.join(root, output), "w") as fh:
        fh.write(comparison)
        fh.write("\n\n---\n\n")
        fh.write(report)
    print("wrote %s" % output)


if __name__ == "__main__":
    main()
