"""AT&T-syntax disassembler, matching the listings in the paper.

Example output (compare the paper's Figure 5 / Table 7)::

    8b 51 0c    mov 0xc(%ecx),%edx
    74 56       je 0xc01144f4
"""

from repro.isa.conditions import CC_NAMES
from repro.isa.decoder import decode_all
from repro.isa.registers import REG8_NAMES, REG_NAMES, SEG_NAMES

_SIZE_SUFFIX = {1: "b", 2: "w", 4: "l"}

# op family -> AT&T mnemonic stem for ops whose name differs.
_ATT_NAMES = {
    "call_ind": "call",
    "jmp_ind": "jmp",
    "callf_ind": "lcall",
    "jmpf_ind": "ljmp",
    "callf": "lcall",
    "jmpf": "ljmp",
    "imul1": "imul",
    "imul2": "imul",
    "imul3": "imul",
    "ud2": "ud2a",
    "cwde": "cwtl",
    "cdq": "cltd",
    "push_sr": "push",
    "pop_sr": "pop",
    "mov_from_sr": "mov",
    "mov_to_sr": "mov",
}

#: Implicit accumulator operand of ``in``/``out`` by operand size.
_ACC_NAMES = {1: "%al", 2: "%ax", 4: "%eax"}


def _mem_str(mem):
    parts = ""
    if mem.disp or (mem.base is None and mem.index is None):
        parts += "0x%x" % (mem.disp & 0xFFFFFFFF)
    inner = ""
    if mem.base is not None:
        inner = "%%%s" % REG_NAMES[mem.base]
    if mem.index is not None:
        inner += ",%%%s,%d" % (REG_NAMES[mem.index], mem.scale)
        if mem.base is None:
            inner = "," + inner[1:] if inner.startswith(",") else inner
    if inner:
        parts += "(%s)" % inner
    return parts


def _operand_str(operand):
    kind = operand[0]
    if kind == "r":
        return "%%%s" % REG_NAMES[operand[1]]
    if kind == "r8":
        return "%%%s" % REG8_NAMES[operand[1]]
    if kind == "sr":
        return "%%%s" % SEG_NAMES[operand[1]]
    if kind == "m":
        return _mem_str(operand[1])
    if kind == "i":
        return "$0x%x" % (operand[1] & 0xFFFFFFFF)
    if kind == "cl":
        return "%cl"
    if kind == "dx":
        return "(%dx)"
    return "?"


def format_instr(ins):
    """Render one decoded instruction in AT&T syntax."""
    op = ins.op
    if op == "(bad)":
        return "(bad)"
    if op == "jcc":
        target = (ins.addr + ins.length + ins.rel) & 0xFFFFFFFF
        return "j%s 0x%x" % (CC_NAMES[ins.cc], target)
    if op in ("loop", "loope", "loopne", "jcxz"):
        target = (ins.addr + ins.length + ins.rel) & 0xFFFFFFFF
        return "%s 0x%x" % (op, target)
    if op in ("call", "jmp") and ins.rel is not None:
        target = (ins.addr + ins.length + ins.rel) & 0xFFFFFFFF
        return "%s 0x%x" % (op, target)
    if op == "setcc":
        return "set%s %s" % (CC_NAMES[ins.cc], _operand_str(ins.dst))
    if op == "cmovcc":
        return "cmov%s %s,%s" % (
            CC_NAMES[ins.cc],
            _operand_str(ins.src),
            _operand_str(ins.dst),
        )
    if op in ("callf", "jmpf"):
        # lcall/ljmp $sel,$offset (ptr16:32 in AT&T order).
        return "%s %s,%s" % (_ATT_NAMES[op], _operand_str(ins.src),
                             _operand_str(ins.dst))
    if op == "in":
        return "in %s,%s" % (_operand_str(ins.src),
                             _ACC_NAMES[ins.size])
    if op == "out":
        return "out %s,%s" % (_ACC_NAMES[ins.size],
                              _operand_str(ins.dst))
    name = _ATT_NAMES.get(op, op)
    if op in ("movs", "cmps", "stos", "lods", "scas", "ins", "outs"):
        prefix = (ins.rep + " ") if ins.rep else ""
        return "%s%s%s" % (prefix, name, _SIZE_SUFFIX[ins.size])
    if op in ("mov", "movzx", "movsx", "add", "or", "adc", "sbb", "and",
              "sub", "xor", "cmp", "test", "xchg", "cmpxchg", "xadd",
              "rol", "ror", "rcl", "rcr", "shl", "shr", "sar", "inc",
              "dec", "not", "neg", "mul", "imul1", "div", "idiv", "push",
              "pop", "lea", "bound", "bt", "bts", "btr", "btc", "bsf",
              "bsr", "bswap", "call_ind", "jmp_ind", "callf_ind",
              "jmpf_ind", "les", "lds", "aam", "aad",
              "int", "ret", "lret", "mov_from_sr", "mov_to_sr",
              "push_sr", "pop_sr", "enter", "imul2", "imul3", "shld",
              "shrd", "sysgrp"):
        if op in ("movzx", "movsx"):
            name = name[:4] + _SIZE_SUFFIX[ins.size] + "l"
        elif op == "mov" and ins.size == 1:
            name = "movb"
        operands = []
        if ins.imm2 is not None and op in ("shld", "shrd", "imul3"):
            operands.append(_operand_str(ins.imm2))
        # AT&T order: src, dst.
        if ins.src is not None:
            operands.append(_operand_str(ins.src))
        if ins.dst is not None:
            operands.append(_operand_str(ins.dst))
        return ("%s %s" % (name, ",".join(operands))) if operands else name
    if op in ("mov_from_cr", "mov_to_cr", "mov_from_dr", "mov_to_dr"):
        kind = "cr" if "cr" in op else "db"
        creg = "%%%s%d" % (kind, ins.src[1])
        gpr = _operand_str(ins.dst)
        if op.startswith("mov_from"):
            return "mov %s,%s" % (creg, gpr)
        return "mov %s,%s" % (gpr, creg)
    return name


def disassemble(data, base=0):
    """Disassemble *data* and return formatted lines.

    Each line is ``(addr, hex_bytes, text)``.
    """
    lines = []
    for ins in decode_all(data, base=base):
        hex_bytes = " ".join("%02x" % b for b in ins.raw)
        lines.append((ins.addr, hex_bytes, format_instr(ins)))
    return lines
