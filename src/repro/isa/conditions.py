"""IA-32 condition codes (the ``cc`` nibble of Jcc/SETcc/CMOVcc).

The low bit of a condition code selects between a condition and its
negation; this is precisely the bit campaign C of the paper flips to turn a
conditional branch into its "valid but incorrect" counterpart.
"""

# Condition-code nibble -> canonical mnemonic suffix.
CC_NAMES = (
    "o",   # 0  overflow
    "no",  # 1  not overflow
    "b",   # 2  below (carry)
    "ae",  # 3  above or equal (not carry)
    "e",   # 4  equal (zero)
    "ne",  # 5  not equal
    "be",  # 6  below or equal
    "a",   # 7  above
    "s",   # 8  sign
    "ns",  # 9  not sign
    "p",   # 10 parity
    "np",  # 11 not parity
    "l",   # 12 less (signed)
    "ge",  # 13 greater or equal (signed)
    "le",  # 14 less or equal (signed)
    "g",   # 15 greater (signed)
)

# Accepted aliases when assembling (e.g. "jz" for "je").
CC_ALIASES = {
    "c": 2,
    "nc": 3,
    "nae": 2,
    "nb": 3,
    "z": 4,
    "nz": 5,
    "na": 6,
    "nbe": 7,
    "pe": 10,
    "po": 11,
    "nge": 12,
    "nl": 13,
    "ng": 14,
    "nle": 15,
}

CC_INDEX = {name: i for i, name in enumerate(CC_NAMES)}
CC_INDEX.update(CC_ALIASES)


def cc_invert(cc):
    """Return the condition code testing the opposite condition."""
    return cc ^ 1


def cc_holds(cc, cf, zf, sf, of, pf):
    """Evaluate condition code *cc* against the given flag values.

    Flags are passed as booleans/ints.  The table follows the IA-32 SDM.
    """
    base = cc >> 1
    if base == 0:
        result = of
    elif base == 1:
        result = cf
    elif base == 2:
        result = zf
    elif base == 3:
        result = cf or zf
    elif base == 4:
        result = sf
    elif base == 5:
        result = pf
    elif base == 6:
        result = bool(sf) != bool(of)
    else:
        result = zf or (bool(sf) != bool(of))
    if cc & 1:
        return not result
    return bool(result)
