"""IA-32 subset instruction decoder.

``decode`` turns raw bytes into :class:`~repro.isa.instr.Instr` objects.
Undefined encodings raise :class:`DecodeError`, which the CPU converts into
an *invalid opcode* trap — one of the four dominant crash causes in the
paper (Figure 6).

The decoder deliberately implements the genuine IA-32 variable-length
encoding (prefixes, ModRM, SIB, displacement, immediate) so that a
single-bit flip can change an instruction's length and cause the following
bytes to be re-interpreted as a different instruction sequence, exactly as
in the paper's Table 7 example 2.
"""

from repro.isa.instr import Instr, Mem

_SEG_PREFIXES = {0x26: 0, 0x2E: 1, 0x36: 2, 0x3E: 3, 0x64: 4, 0x65: 5}

# One-byte opcodes with no operands.
_SIMPLE = {
    0x27: "daa",
    0x2F: "das",
    0x37: "aaa",
    0x3F: "aas",
    0x60: "pusha",
    0x61: "popa",
    0x90: "nop",
    0x98: "cwde",
    0x99: "cdq",
    0x9B: "wait",
    0x9C: "pushf",
    0x9D: "popf",
    0x9E: "sahf",
    0x9F: "lahf",
    0xC3: "ret",
    0xC9: "leave",
    0xCB: "lret",
    0xCC: "int3",
    0xCE: "into",
    0xCF: "iret",
    0xD7: "xlat",
    0xF4: "hlt",
    0xF5: "cmc",
    0xF8: "clc",
    0xF9: "stc",
    0xFA: "cli",
    0xFB: "sti",
    0xFC: "cld",
    0xFD: "std",
}

# The eight classic ALU operation families laid out at base opcodes
# 0x00, 0x08, ... 0x38 (add, or, adc, sbb, and, sub, xor, cmp).
_ALU_OPS = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")

# Group tables selected by the ModRM reg field.
_GROUP1 = _ALU_OPS
_GROUP2 = ("rol", "ror", "rcl", "rcr", "shl", "shr", "shl", "sar")
_GROUP3 = ("test", "test", "not", "neg", "mul", "imul1", "div", "idiv")
_GROUP5 = ("inc", "dec", "call_ind", "callf_ind", "jmp_ind", "jmpf_ind",
           "push", None)
_GROUP8 = (None, None, None, None, "bt", "bts", "btr", "btc")

# push/pop of segment registers at their historical one-byte slots.
_PUSH_SEG = {0x06: 0, 0x0E: 1, 0x16: 2, 0x1E: 3}
_POP_SEG = {0x07: 0, 0x17: 2, 0x1F: 3}

# String operations: opcode -> (op, size)
_STRING_OPS = {
    0xA4: ("movs", 1),
    0xA5: ("movs", 4),
    0xA6: ("cmps", 1),
    0xA7: ("cmps", 4),
    0xAA: ("stos", 1),
    0xAB: ("stos", 4),
    0xAC: ("lods", 1),
    0xAD: ("lods", 4),
    0xAE: ("scas", 1),
    0xAF: ("scas", 4),
}

# Explicitly undefined one-byte opcodes in our subset (documented in
# DESIGN.md: no 16-bit operand mode, no x87 FPU).
_UNDEFINED_1B = frozenset(
    [0x63, 0x66, 0x67, 0xD6, 0xF1] + list(range(0xD8, 0xE0))
)

_MAX_INSTR_LEN = 15  # IA-32 architectural limit


class DecodeError(Exception):
    """Raised for encodings outside the defined subset (=> #UD trap)."""

    def __init__(self, message, length=1):
        super().__init__(message)
        self.length = length


class _Cursor:
    """Byte reader tracking how many bytes the instruction has consumed."""

    __slots__ = ("read", "addr", "pos")

    def __init__(self, read, addr):
        self.read = read
        self.addr = addr
        self.pos = 0

    def u8(self):
        if self.pos >= _MAX_INSTR_LEN:
            raise DecodeError("instruction too long", self.pos)
        value = self.read(self.addr + self.pos)
        self.pos += 1
        return value

    def s8(self):
        value = self.u8()
        return value - 256 if value >= 128 else value

    def u16(self):
        lo = self.u8()
        return lo | (self.u8() << 8)

    def u32(self):
        value = self.u8()
        value |= self.u8() << 8
        value |= self.u8() << 16
        return value | (self.u8() << 24)

    def s32(self):
        value = self.u32()
        return value - (1 << 32) if value >= (1 << 31) else value


def _modrm(cur, size):
    """Decode a ModRM (+SIB +disp) byte pair.

    Returns ``(reg_field, rm_operand)`` where *rm_operand* is an operand
    descriptor (register or memory form) sized per *size*.
    """
    modrm = cur.u8()
    mod = modrm >> 6
    reg = (modrm >> 3) & 7
    rm = modrm & 7
    if mod == 3:
        if size == 1:
            return reg, ("r8", rm)
        return reg, ("r", rm)
    base = None
    index = None
    scale = 1
    disp = 0
    if rm == 4:
        sib = cur.u8()
        idx = (sib >> 3) & 7
        if idx != 4:
            index = idx
            scale = 1 << (sib >> 6)
        sib_base = sib & 7
        if sib_base == 5 and mod == 0:
            disp = cur.s32()
        else:
            base = sib_base
    elif rm == 5 and mod == 0:
        disp = cur.s32()
    else:
        base = rm
    if mod == 1:
        disp += cur.s8()
    elif mod == 2:
        disp += cur.s32()
    return reg, ("m", Mem(base=base, index=index, scale=scale, disp=disp))


def _decode_0f(cur):
    """Decode the two-byte (0F-prefixed) opcode map subset."""
    op2 = cur.u8()
    if op2 in (0x00, 0x01):
        reg, rm_op = _modrm(cur, 4)
        if (op2 == 0x00 and reg >= 6) or (op2 == 0x01 and reg == 5):
            raise DecodeError("undefined system group encoding", cur.pos)
        return Instr("sysgrp", dst=rm_op, imm2=(op2, reg))
    if op2 == 0x06:
        return Instr("clts")
    if op2 in (0x08, 0x09):
        return Instr("invd")
    if op2 == 0x0B:
        return Instr("ud2")
    if 0x20 <= op2 <= 0x23:
        modrm = cur.u8()
        cr = (modrm >> 3) & 7
        gpr = modrm & 7
        op = {0x20: "mov_from_cr", 0x21: "mov_from_dr",
              0x22: "mov_to_cr", 0x23: "mov_to_dr"}[op2]
        return Instr(op, dst=("r", gpr), src=("i", cr))
    if op2 == 0x30:
        return Instr("wrmsr")
    if op2 == 0x31:
        return Instr("rdtsc")
    if op2 == 0x32:
        return Instr("rdmsr")
    if op2 == 0x33:
        return Instr("rdpmc")
    if 0x40 <= op2 <= 0x4F:
        reg, rm_op = _modrm(cur, 4)
        return Instr("cmovcc", cc=op2 & 0xF, dst=("r", reg), src=rm_op)
    if 0x80 <= op2 <= 0x8F:
        rel = cur.s32()
        return Instr("jcc", cc=op2 & 0xF, rel=rel)
    if 0x90 <= op2 <= 0x9F:
        _, rm_op = _modrm(cur, 1)
        return Instr("setcc", size=1, cc=op2 & 0xF, dst=rm_op)
    if op2 == 0xA0:
        return Instr("push_sr", dst=("sr", 4))
    if op2 == 0xA1:
        return Instr("pop_sr", dst=("sr", 4))
    if op2 == 0xA2:
        return Instr("cpuid")
    if op2 == 0xA8:
        return Instr("push_sr", dst=("sr", 5))
    if op2 == 0xA9:
        return Instr("pop_sr", dst=("sr", 5))
    if op2 in (0xA3, 0xAB, 0xB3, 0xBB):
        op = {0xA3: "bt", 0xAB: "bts", 0xB3: "btr", 0xBB: "btc"}[op2]
        reg, rm_op = _modrm(cur, 4)
        return Instr(op, dst=rm_op, src=("r", reg))
    if op2 in (0xA4, 0xAC):
        reg, rm_op = _modrm(cur, 4)
        imm = cur.u8()
        op = "shld" if op2 == 0xA4 else "shrd"
        return Instr(op, dst=rm_op, src=("r", reg), imm2=("i", imm))
    if op2 in (0xA5, 0xAD):
        reg, rm_op = _modrm(cur, 4)
        op = "shld" if op2 == 0xA5 else "shrd"
        return Instr(op, dst=rm_op, src=("r", reg), imm2=("cl",))
    if op2 == 0xAF:
        reg, rm_op = _modrm(cur, 4)
        return Instr("imul2", dst=("r", reg), src=rm_op)
    if op2 in (0xB0, 0xB1):
        size = 1 if op2 == 0xB0 else 4
        reg, rm_op = _modrm(cur, size)
        src = ("r8", reg) if size == 1 else ("r", reg)
        return Instr("cmpxchg", size=size, dst=rm_op, src=src)
    if op2 in (0xB6, 0xB7, 0xBE, 0xBF):
        src_size = 1 if op2 in (0xB6, 0xBE) else 2
        op = "movzx" if op2 in (0xB6, 0xB7) else "movsx"
        reg, rm_op = _modrm(cur, 1 if src_size == 1 else 2)
        return Instr(op, size=src_size, dst=("r", reg), src=rm_op)
    if op2 == 0xBA:
        reg, rm_op = _modrm(cur, 4)
        op = _GROUP8[reg]
        if op is None:
            raise DecodeError("undefined group-8 encoding", cur.pos)
        imm = cur.u8()
        return Instr(op, dst=rm_op, src=("i", imm))
    if op2 in (0xBC, 0xBD):
        reg, rm_op = _modrm(cur, 4)
        op = "bsf" if op2 == 0xBC else "bsr"
        return Instr(op, dst=("r", reg), src=rm_op)
    if op2 in (0xC0, 0xC1):
        size = 1 if op2 == 0xC0 else 4
        reg, rm_op = _modrm(cur, size)
        src = ("r8", reg) if size == 1 else ("r", reg)
        return Instr("xadd", size=size, dst=rm_op, src=src)
    if 0xC8 <= op2 <= 0xCF:
        return Instr("bswap", dst=("r", op2 & 7))
    raise DecodeError("undefined two-byte opcode 0x0f 0x%02x" % op2, cur.pos)


def _decode_one(cur):
    """Decode the instruction at the cursor (prefixes already consumed)."""
    opcode = cur.u8()

    if opcode in _UNDEFINED_1B:
        raise DecodeError("undefined opcode 0x%02x" % opcode, cur.pos)
    if opcode == 0x0F:
        return _decode_0f(cur)

    # ALU families 0x00-0x3D (skipping the segment push/pop and BCD slots).
    if opcode < 0x40 and (opcode & 7) <= 5 and opcode not in _SIMPLE:
        op = _ALU_OPS[opcode >> 3]
        form = opcode & 7
        if form == 0:
            reg, rm_op = _modrm(cur, 1)
            return Instr(op, size=1, dst=rm_op, src=("r8", reg))
        if form == 1:
            reg, rm_op = _modrm(cur, 4)
            return Instr(op, dst=rm_op, src=("r", reg))
        if form == 2:
            reg, rm_op = _modrm(cur, 1)
            return Instr(op, size=1, dst=("r8", reg), src=rm_op)
        if form == 3:
            reg, rm_op = _modrm(cur, 4)
            return Instr(op, dst=("r", reg), src=rm_op)
        if form == 4:
            return Instr(op, size=1, dst=("r8", 0), src=("i", cur.u8()))
        return Instr(op, dst=("r", 0), src=("i", cur.u32()))

    if opcode in _PUSH_SEG:
        return Instr("push_sr", dst=("sr", _PUSH_SEG[opcode]))
    if opcode in _POP_SEG:
        return Instr("pop_sr", dst=("sr", _POP_SEG[opcode]))
    if opcode in _SIMPLE:
        return Instr(_SIMPLE[opcode])

    if 0x40 <= opcode <= 0x47:
        return Instr("inc", dst=("r", opcode & 7))
    if 0x48 <= opcode <= 0x4F:
        return Instr("dec", dst=("r", opcode & 7))
    if 0x50 <= opcode <= 0x57:
        return Instr("push", dst=("r", opcode & 7))
    if 0x58 <= opcode <= 0x5F:
        return Instr("pop", dst=("r", opcode & 7))
    if opcode == 0x62:
        reg, rm_op = _modrm(cur, 4)
        if rm_op[0] != "m":
            raise DecodeError("bound requires memory operand", cur.pos)
        return Instr("bound", dst=("r", reg), src=rm_op)
    if opcode == 0x68:
        return Instr("push", dst=("i", cur.u32()))
    if opcode == 0x6A:
        return Instr("push", dst=("i", cur.s8() & 0xFFFFFFFF))
    if opcode in (0x69, 0x6B):
        reg, rm_op = _modrm(cur, 4)
        if opcode == 0x69:
            imm = cur.u32()
        else:
            imm = cur.s8() & 0xFFFFFFFF
        return Instr("imul3", dst=("r", reg), src=rm_op, imm2=("i", imm))
    if opcode in (0x6C, 0x6D):
        return Instr("ins", size=1 if opcode == 0x6C else 4)
    if opcode in (0x6E, 0x6F):
        return Instr("outs", size=1 if opcode == 0x6E else 4)
    if 0x70 <= opcode <= 0x7F:
        rel = cur.s8()
        return Instr("jcc", cc=opcode & 0xF, rel=rel)
    if opcode in (0x80, 0x82):
        reg, rm_op = _modrm(cur, 1)
        return Instr(_GROUP1[reg], size=1, dst=rm_op, src=("i", cur.u8()))
    if opcode == 0x81:
        reg, rm_op = _modrm(cur, 4)
        return Instr(_GROUP1[reg], dst=rm_op, src=("i", cur.u32()))
    if opcode == 0x83:
        reg, rm_op = _modrm(cur, 4)
        imm = cur.s8() & 0xFFFFFFFF
        return Instr(_GROUP1[reg], dst=rm_op, src=("i", imm))
    if opcode in (0x84, 0x85):
        size = 1 if opcode == 0x84 else 4
        reg, rm_op = _modrm(cur, size)
        src = ("r8", reg) if size == 1 else ("r", reg)
        return Instr("test", size=size, dst=rm_op, src=src)
    if opcode in (0x86, 0x87):
        size = 1 if opcode == 0x86 else 4
        reg, rm_op = _modrm(cur, size)
        src = ("r8", reg) if size == 1 else ("r", reg)
        return Instr("xchg", size=size, dst=rm_op, src=src)
    if opcode in (0x88, 0x89, 0x8A, 0x8B):
        size = 1 if opcode in (0x88, 0x8A) else 4
        reg, rm_op = _modrm(cur, size)
        reg_op = ("r8", reg) if size == 1 else ("r", reg)
        if opcode in (0x88, 0x89):
            return Instr("mov", size=size, dst=rm_op, src=reg_op)
        return Instr("mov", size=size, dst=reg_op, src=rm_op)
    if opcode == 0x8C:
        reg, rm_op = _modrm(cur, 4)
        if reg >= 6:
            raise DecodeError("invalid segment register", cur.pos)
        return Instr("mov_from_sr", dst=rm_op, src=("sr", reg))
    if opcode == 0x8D:
        reg, rm_op = _modrm(cur, 4)
        if rm_op[0] != "m":
            raise DecodeError("lea requires memory operand", cur.pos)
        return Instr("lea", dst=("r", reg), src=rm_op)
    if opcode == 0x8E:
        reg, rm_op = _modrm(cur, 4)
        if reg >= 6 or reg == 1:  # mov cs, r/m is #UD
            raise DecodeError("invalid segment register load", cur.pos)
        return Instr("mov_to_sr", dst=("sr", reg), src=rm_op)
    if opcode == 0x8F:
        reg, rm_op = _modrm(cur, 4)
        if reg != 0:
            raise DecodeError("undefined group-1a encoding", cur.pos)
        return Instr("pop", dst=rm_op)
    if 0x91 <= opcode <= 0x97:
        return Instr("xchg", dst=("r", 0), src=("r", opcode & 7))
    if opcode == 0x9A:
        offset = cur.u32()
        sel = cur.u16()
        return Instr("callf", dst=("i", offset), src=("i", sel))
    if opcode in (0xA0, 0xA1):
        size = 1 if opcode == 0xA0 else 4
        mem = ("m", Mem(disp=cur.s32()))
        acc = ("r8", 0) if size == 1 else ("r", 0)
        return Instr("mov", size=size, dst=acc, src=mem)
    if opcode in (0xA2, 0xA3):
        size = 1 if opcode == 0xA2 else 4
        mem = ("m", Mem(disp=cur.s32()))
        acc = ("r8", 0) if size == 1 else ("r", 0)
        return Instr("mov", size=size, dst=mem, src=acc)
    if opcode in _STRING_OPS:
        op, size = _STRING_OPS[opcode]
        return Instr(op, size=size)
    if opcode == 0xA8:
        return Instr("test", size=1, dst=("r8", 0), src=("i", cur.u8()))
    if opcode == 0xA9:
        return Instr("test", dst=("r", 0), src=("i", cur.u32()))
    if 0xB0 <= opcode <= 0xB7:
        return Instr("mov", size=1, dst=("r8", opcode & 7),
                     src=("i", cur.u8()))
    if 0xB8 <= opcode <= 0xBF:
        return Instr("mov", dst=("r", opcode & 7), src=("i", cur.u32()))
    if opcode in (0xC0, 0xC1):
        size = 1 if opcode == 0xC0 else 4
        reg, rm_op = _modrm(cur, size)
        return Instr(_GROUP2[reg], size=size, dst=rm_op, src=("i", cur.u8()))
    if opcode == 0xC2:
        return Instr("ret", src=("i", cur.u16()))
    if opcode in (0xC4, 0xC5):
        reg, rm_op = _modrm(cur, 4)
        if rm_op[0] != "m":
            raise DecodeError("les/lds requires memory operand", cur.pos)
        op = "les" if opcode == 0xC4 else "lds"
        return Instr(op, dst=("r", reg), src=rm_op)
    if opcode in (0xC6, 0xC7):
        size = 1 if opcode == 0xC6 else 4
        reg, rm_op = _modrm(cur, size)
        if reg != 0:
            raise DecodeError("undefined group-11 encoding", cur.pos)
        imm = cur.u8() if size == 1 else cur.u32()
        return Instr("mov", size=size, dst=rm_op, src=("i", imm))
    if opcode == 0xC8:
        frame = cur.u16()
        nesting = cur.u8()
        return Instr("enter", dst=("i", frame), src=("i", nesting))
    if opcode == 0xCA:
        return Instr("lret", src=("i", cur.u16()))
    if opcode == 0xCD:
        return Instr("int", dst=("i", cur.u8()))
    if opcode in (0xD0, 0xD1, 0xD2, 0xD3):
        size = 1 if opcode in (0xD0, 0xD2) else 4
        reg, rm_op = _modrm(cur, size)
        if opcode in (0xD0, 0xD1):
            src = ("i", 1)
        else:
            src = ("cl",)
        return Instr(_GROUP2[reg], size=size, dst=rm_op, src=src)
    if opcode in (0xD4, 0xD5):
        imm = cur.u8()
        return Instr("aam" if opcode == 0xD4 else "aad", src=("i", imm))
    if opcode in (0xE0, 0xE1, 0xE2, 0xE3):
        op = {0xE0: "loopne", 0xE1: "loope", 0xE2: "loop", 0xE3: "jcxz"}
        rel = cur.s8()
        return Instr(op[opcode], rel=rel)
    if opcode in (0xE4, 0xE5):
        size = 1 if opcode == 0xE4 else 4
        return Instr("in", size=size, src=("i", cur.u8()))
    if opcode in (0xE6, 0xE7):
        size = 1 if opcode == 0xE6 else 4
        return Instr("out", size=size, dst=("i", cur.u8()))
    if opcode == 0xE8:
        return Instr("call", rel=cur.s32())
    if opcode == 0xE9:
        return Instr("jmp", rel=cur.s32())
    if opcode == 0xEA:
        offset = cur.u32()
        sel = cur.u16()
        return Instr("jmpf", dst=("i", offset), src=("i", sel))
    if opcode == 0xEB:
        return Instr("jmp", rel=cur.s8())
    if opcode in (0xEC, 0xED):
        return Instr("in", size=1 if opcode == 0xEC else 4, src=("dx",))
    if opcode in (0xEE, 0xEF):
        return Instr("out", size=1 if opcode == 0xEE else 4, dst=("dx",))
    if opcode in (0xF6, 0xF7):
        size = 1 if opcode == 0xF6 else 4
        reg, rm_op = _modrm(cur, size)
        op = _GROUP3[reg]
        if op == "test":
            imm = cur.u8() if size == 1 else cur.u32()
            return Instr("test", size=size, dst=rm_op, src=("i", imm))
        return Instr(op, size=size, dst=rm_op)
    if opcode == 0xFE:
        reg, rm_op = _modrm(cur, 1)
        if reg >= 2:
            raise DecodeError("undefined group-4 encoding", cur.pos)
        return Instr("inc" if reg == 0 else "dec", size=1, dst=rm_op)
    if opcode == 0xFF:
        reg, rm_op = _modrm(cur, 4)
        op = _GROUP5[reg]
        if op is None:
            raise DecodeError("undefined group-5 encoding", cur.pos)
        if op in ("callf_ind", "jmpf_ind") and rm_op[0] != "m":
            raise DecodeError("far indirect requires memory operand", cur.pos)
        return Instr(op, dst=rm_op)
    raise DecodeError("undefined opcode 0x%02x" % opcode, cur.pos)


def decode(read, addr=0):
    """Decode one instruction.

    Args:
        read: callable ``read(address) -> int`` returning one byte; may
            raise (e.g. a simulated page fault on fetch) — such exceptions
            propagate to the caller.
        addr: address of the first byte.

    Returns:
        A fully populated :class:`Instr` (``length``, ``addr`` and ``raw``
        are filled in).

    Raises:
        DecodeError: the bytes do not form a defined instruction; the
            exception's ``length`` covers the bytes consumed so far.
    """
    cur = _Cursor(read, addr)
    rep = None
    seg = None
    while True:
        byte = cur.read(addr + cur.pos)
        if byte in _SEG_PREFIXES:
            seg = _SEG_PREFIXES[byte]
            cur.pos += 1
        elif byte == 0xF0:  # lock — accepted and ignored
            cur.pos += 1
        elif byte in (0xF2, 0xF3):
            rep = "repne" if byte == 0xF2 else "rep"
            cur.pos += 1
        else:
            break
        if cur.pos >= _MAX_INSTR_LEN:
            raise DecodeError("instruction too long", cur.pos)
    try:
        ins = _decode_one(cur)
    except DecodeError as exc:
        exc.length = max(exc.length, cur.pos)
        raise
    ins.length = cur.pos
    ins.addr = addr
    ins.rep = rep
    if seg is not None:
        for operand in (ins.dst, ins.src):
            if operand is not None and operand[0] == "m":
                operand[1].seg = seg
    ins.raw = bytes(read(addr + i) for i in range(cur.pos))
    return ins


def decode_all(data, base=0, stop_on_error=False):
    """Decode a byte string into a list of instructions.

    Undecodable bytes are represented as ``Instr("(bad)")`` of length 1
    unless *stop_on_error* is set, in which case decoding stops there.
    """
    data = bytes(data)

    def read(address):
        offset = address - base
        if 0 <= offset < len(data):
            return data[offset]
        raise IndexError("decode past end of buffer")

    out = []
    addr = base
    end = base + len(data)
    while addr < end:
        try:
            ins = decode(read, addr)
        except DecodeError as exc:
            if stop_on_error:
                break
            ins = Instr("(bad)", length=max(1, exc.length), addr=addr)
            ins.raw = data[addr - base:addr - base + ins.length]
        except IndexError:
            break
        out.append(ins)
        addr += ins.length
    return out
