"""Register names and indices for the IA-32 subset.

Register numbering follows the IA-32 ModRM ``reg`` field encoding, so the
values below can be used directly when assembling or decoding machine code.
"""

EAX = 0
ECX = 1
EDX = 2
EBX = 3
ESP = 4
EBP = 5
ESI = 6
EDI = 7

REG_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

# 8-bit register file: indices 0-3 alias the low byte of eax/ecx/edx/ebx,
# indices 4-7 alias bits 8-15 of the same registers (ah/ch/dh/bh), exactly
# as in IA-32.
AL = 0
CL = 1
DL = 2
BL = 3
AH = 4
CH = 5
DH = 6
BH = 7

REG8_NAMES = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")

# Segment register file (ModRM reg-field encoding for mov Sreg forms).
ES = 0
CS = 1
SS = 2
DS = 3
FS = 4
GS = 5

SEG_NAMES = ("es", "cs", "ss", "ds", "fs", "gs")

REG_INDEX = {name: i for i, name in enumerate(REG_NAMES)}
REG8_INDEX = {name: i for i, name in enumerate(REG8_NAMES)}
SEG_INDEX = {name: i for i, name in enumerate(SEG_NAMES)}
