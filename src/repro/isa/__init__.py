"""IA-32 subset instruction set architecture: encoding, decoding, assembly.

This package implements the *machine language* layer of the reproduction.
Fidelity matters here: the paper's error model is single-bit flips in
instruction bytes, and the observable phenomenology (opcode aliasing,
instruction-length changes that resequence the following bytes, undefined
opcodes, privileged/malformed operations) is a direct function of the
IA-32 encoding.  We therefore reuse the genuine IA-32 encodings for every
instruction we support rather than inventing a toy ISA.
"""

from repro.isa.registers import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    ESP,
    REG_NAMES,
    REG8_NAMES,
    SEG_NAMES,
)
from repro.isa.conditions import CC_NAMES, cc_invert, cc_holds
from repro.isa.instr import Instr, Mem
from repro.isa.decoder import DecodeError, decode, decode_all
from repro.isa.disasm import disassemble, format_instr
from repro.isa.assembler import AssemblerError, Assembler, assemble

__all__ = [
    "EAX",
    "ECX",
    "EDX",
    "EBX",
    "ESP",
    "EBP",
    "ESI",
    "EDI",
    "REG_NAMES",
    "REG8_NAMES",
    "SEG_NAMES",
    "CC_NAMES",
    "cc_invert",
    "cc_holds",
    "Instr",
    "Mem",
    "DecodeError",
    "decode",
    "decode_all",
    "disassemble",
    "format_instr",
    "Assembler",
    "AssemblerError",
    "assemble",
]
