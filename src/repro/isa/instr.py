"""Decoded-instruction model shared by the decoder, disassembler and CPU.

A decoded instruction is deliberately flat (``__slots__`` only) because the
CPU interpreter creates and consults millions of these per campaign.
"""


class Mem:
    """A ModRM/SIB memory operand: ``disp + base + index * scale``.

    ``base``/``index`` are register indices or ``None``; ``seg`` records an
    explicit segment-override prefix (informational only — the simulated
    machine uses a flat address space like Linux).
    """

    __slots__ = ("base", "index", "scale", "disp", "seg")

    def __init__(self, base=None, index=None, scale=1, disp=0, seg=None):
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp
        self.seg = seg

    def __eq__(self, other):
        if not isinstance(other, Mem):
            return NotImplemented
        return (
            self.base == other.base
            and self.index == other.index
            and self.scale == other.scale
            and self.disp == other.disp
        )

    def __hash__(self):
        return hash((self.base, self.index, self.scale, self.disp))

    def __repr__(self):
        return "Mem(base=%r, index=%r, scale=%r, disp=%#x)" % (
            self.base,
            self.index,
            self.scale,
            self.disp,
        )


class Instr:
    """One decoded instruction.

    Attributes:
        op: mnemonic family, e.g. ``"mov"``, ``"jcc"``, ``"shl"``.
        size: operand size in bytes (1 or 4).
        length: total encoded length in bytes, including prefixes.
        dst, src: operand descriptors — ``("r", idx)`` register,
            ``("r8", idx)`` byte register, ``("sr", idx)`` segment register,
            ``("m", Mem)`` memory, ``("i", value)`` immediate, or ``None``.
        cc: condition-code nibble for jcc/setcc/cmovcc, else ``None``.
        rel: branch displacement (signed) for relative control transfers.
        rep: ``None``, ``"rep"`` or ``"repne"`` for string instructions.
        imm2: secondary immediate (``enter``, ``imul r,r/m,imm``…).
        addr: address the instruction was decoded from.
        raw: the encoded bytes.
        run: execution handler, attached by the CPU at decode time.
    """

    __slots__ = (
        "op",
        "size",
        "length",
        "dst",
        "src",
        "cc",
        "rel",
        "rep",
        "imm2",
        "addr",
        "raw",
        "run",
    )

    def __init__(
        self,
        op,
        size=4,
        length=0,
        dst=None,
        src=None,
        cc=None,
        rel=None,
        rep=None,
        imm2=None,
        addr=0,
        raw=b"",
    ):
        self.op = op
        self.size = size
        self.length = length
        self.dst = dst
        self.src = src
        self.cc = cc
        self.rel = rel
        self.rep = rep
        self.imm2 = imm2
        self.addr = addr
        self.raw = raw
        self.run = None

    @property
    def is_cond_branch(self):
        """True for conditional control transfers (campaign B/C targets)."""
        return self.op in ("jcc", "loop", "loope", "loopne", "jcxz")

    @property
    def is_branch(self):
        """True for any control-transfer instruction."""
        return self.op in (
            "jcc",
            "jmp",
            "jmpf",
            "call",
            "callf",
            "ret",
            "lret",
            "iret",
            "loop",
            "loope",
            "loopne",
            "jcxz",
            "int",
            "int3",
            "into",
        )

    def __repr__(self):
        parts = ["Instr(%r" % self.op]
        if self.cc is not None:
            parts.append("cc=%d" % self.cc)
        if self.dst is not None:
            parts.append("dst=%r" % (self.dst,))
        if self.src is not None:
            parts.append("src=%r" % (self.src,))
        if self.rel is not None:
            parts.append("rel=%#x" % (self.rel & 0xFFFFFFFF))
        parts.append("len=%d)" % self.length)
        return ", ".join(parts)
