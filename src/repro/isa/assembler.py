"""Two-pass (iterative-relaxation) assembler for the IA-32 subset.

The assembler consumes the Intel-ish text emitted by the MinC compiler
(:mod:`repro.cc`) and hand-written kernel stubs, and produces a flat binary
plus a symbol table.  Conditional and unconditional branches are relaxed:
they start as short (rel8) forms and are promoted to near (rel32) forms
until the layout reaches a fixpoint — mirroring what a real assembler does,
and giving the kernel image a realistic mix of 2-byte and 6-byte branch
encodings (both appear in the paper's case studies).

Supported directives::

    .func name subsystem   ; begin a function (records symbol metadata)
    .endfunc               ; end the current function
    .global name           ; define a data symbol at the current address
    .long v, v, ...        ; emit 32-bit little-endian words
    .byte v, v, ...        ; emit bytes
    .asciz "text"          ; emit a NUL-terminated string
    .space n [, fill]      ; emit n fill bytes
    .align n               ; pad to an n-byte boundary
"""

import re

from repro.isa.conditions import CC_INDEX
from repro.isa.registers import REG8_INDEX, REG_INDEX, SEG_INDEX

_ALU_BASE = {"add": 0x00, "or": 0x08, "adc": 0x10, "sbb": 0x18,
             "and": 0x20, "sub": 0x28, "xor": 0x30, "cmp": 0x38}
_ALU_GROUP_REG = {"add": 0, "or": 1, "adc": 2, "sbb": 3,
                  "and": 4, "sub": 5, "xor": 6, "cmp": 7}
_SHIFT_GROUP_REG = {"rol": 0, "ror": 1, "rcl": 2, "rcr": 3,
                    "shl": 4, "shr": 5, "sal": 4, "sar": 7}
_GROUP3_REG = {"not": 2, "neg": 3, "mul": 4, "imul1": 5,
               "div": 6, "idiv": 7}

_SIMPLE_BYTES = {
    "nop": b"\x90",
    "cwde": b"\x98",
    "cdq": b"\x99",
    "pushf": b"\x9c",
    "popf": b"\x9d",
    "pusha": b"\x60",
    "popa": b"\x61",
    "sahf": b"\x9e",
    "lahf": b"\x9f",
    "ret": b"\xc3",
    "leave": b"\xc9",
    "lret": b"\xcb",
    "int3": b"\xcc",
    "into": b"\xce",
    "iret": b"\xcf",
    "hlt": b"\xf4",
    "cmc": b"\xf5",
    "clc": b"\xf8",
    "stc": b"\xf9",
    "cli": b"\xfa",
    "sti": b"\xfb",
    "cld": b"\xfc",
    "std": b"\xfd",
    "xlat": b"\xd7",
    "daa": b"\x27",
    "das": b"\x2f",
    "aaa": b"\x37",
    "aas": b"\x3f",
    "ud2": b"\x0f\x0b",
    "rdtsc": b"\x0f\x31",
    "rdpmc": b"\x0f\x33",
    "rdmsr": b"\x0f\x32",
    "wrmsr": b"\x0f\x30",
    "cpuid": b"\x0f\xa2",
    "clts": b"\x0f\x06",
    "movsb": b"\xa4",
    "movsd": b"\xa5",
    "cmpsb": b"\xa6",
    "cmpsd": b"\xa7",
    "stosb": b"\xaa",
    "stosd": b"\xab",
    "lodsb": b"\xac",
    "lodsd": b"\xad",
    "scasb": b"\xae",
    "scasd": b"\xaf",
}

_NUMBER_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class AssemblerError(Exception):
    """Raised for malformed assembly or unresolved symbols."""


class FuncInfo:
    """Symbol metadata for one ``.func``-delimited function."""

    __slots__ = ("name", "subsystem", "start", "end")

    def __init__(self, name, subsystem, start=0, end=0):
        self.name = name
        self.subsystem = subsystem
        self.start = start
        self.end = end

    @property
    def size(self):
        return self.end - self.start

    def __repr__(self):
        return "FuncInfo(%r, %r, %#x..%#x)" % (
            self.name, self.subsystem, self.start, self.end)


class Program:
    """Result of assembling one translation unit."""

    def __init__(self, code, base, symbols, functions):
        self.code = code
        self.base = base
        self.symbols = symbols
        self.functions = functions

    def symbol(self, name):
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblerError("unknown symbol %r" % name) from None


class _Reg:
    __slots__ = ("kind", "idx")

    def __init__(self, kind, idx):
        self.kind = kind  # "r", "r8", "sr", "cr", "dr"
        self.idx = idx


class _Imm:
    __slots__ = ("const", "symbol")

    def __init__(self, const=0, symbol=None):
        self.const = const
        self.symbol = symbol

    def value(self, symtab):
        value = self.const
        if self.symbol is not None:
            if self.symbol not in symtab:
                raise AssemblerError("undefined symbol %r" % self.symbol)
            value += symtab[self.symbol]
        return value & 0xFFFFFFFF


class _MemOp:
    __slots__ = ("base", "index", "scale", "disp", "size")

    def __init__(self, base=None, index=None, scale=1, disp=None, size=None):
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp if disp is not None else _Imm()
        self.size = size


def _parse_int(text):
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    value = int(text, 16) if text.lower().startswith("0x") else int(text)
    return -value if negative else value


def _parse_imm_expr(text):
    """Parse ``sym``, ``123``, ``sym+4``, ``'c'`` into an ``_Imm``."""
    text = text.strip()
    if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
        body = text[1:-1]
        unescaped = body.encode().decode("unicode_escape")
        if len(unescaped) != 1:
            raise AssemblerError("bad character literal %s" % text)
        return _Imm(const=ord(unescaped))
    match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-]\s*\d+|"
                     r"[+-]\s*0x[0-9a-fA-F]+)?$", text)
    if match and not _NUMBER_RE.match(text):
        offset = 0
        if match.group(2):
            offset = _parse_int(match.group(2).replace(" ", ""))
        return _Imm(const=offset, symbol=match.group(1))
    if _NUMBER_RE.match(text):
        return _Imm(const=_parse_int(text))
    raise AssemblerError("cannot parse immediate %r" % text)


def _parse_mem(text, size):
    """Parse the interior of ``[...]`` into a ``_MemOp``."""
    base = None
    index = None
    scale = 1
    const = 0
    symbol = None
    # Split into signed terms.
    terms = re.findall(r"[+-]?[^+-]+", text.replace(" ", ""))
    for term in terms:
        sign = 1
        if term.startswith("+"):
            term = term[1:]
        elif term.startswith("-"):
            sign = -1
            term = term[1:]
        if "*" in term:
            left, right = term.split("*", 1)
            if left in REG_INDEX:
                reg_name, factor = left, right
            elif right in REG_INDEX:
                reg_name, factor = right, left
            else:
                raise AssemblerError("bad scaled index %r" % term)
            if sign < 0:
                raise AssemblerError("negative index %r" % term)
            if index is not None:
                raise AssemblerError("two index registers in %r" % text)
            index = REG_INDEX[reg_name]
            scale = _parse_int(factor)
            if scale not in (1, 2, 4, 8):
                raise AssemblerError("bad scale %d" % scale)
        elif term in REG_INDEX:
            if sign < 0:
                raise AssemblerError("negative base register in %r" % text)
            if base is None:
                base = REG_INDEX[term]
            elif index is None:
                index = REG_INDEX[term]
            else:
                raise AssemblerError("too many registers in %r" % text)
        elif _NUMBER_RE.match(term):
            const += sign * _parse_int(term)
        elif _SYMBOL_RE.match(term):
            if symbol is not None or sign < 0:
                raise AssemblerError("bad symbol use in %r" % text)
            symbol = term
        else:
            raise AssemblerError("cannot parse memory term %r" % term)
    if index == REG_INDEX["esp"]:
        raise AssemblerError("esp cannot be an index register")
    return _MemOp(base=base, index=index, scale=scale,
                  disp=_Imm(const=const, symbol=symbol), size=size)


def _parse_operand(text):
    text = text.strip()
    size = None
    lowered = text.lower()
    for keyword, keyword_size in (("byte", 1), ("word", 2), ("dword", 4)):
        if lowered.startswith(keyword + " ") or lowered.startswith(
                keyword + "["):
            size = keyword_size
            text = text[len(keyword):].strip()
            lowered = text.lower()
            break
    if lowered.startswith("["):
        if not lowered.endswith("]"):
            raise AssemblerError("unterminated memory operand %r" % text)
        return _parse_mem(text[1:-1], size)
    if lowered in REG_INDEX:
        return _Reg("r", REG_INDEX[lowered])
    if lowered in REG8_INDEX:
        return _Reg("r8", REG8_INDEX[lowered])
    if lowered in SEG_INDEX:
        return _Reg("sr", SEG_INDEX[lowered])
    if re.match(r"^cr[0-4]$", lowered):
        return _Reg("cr", int(lowered[2]))
    if re.match(r"^dr[0-7]$", lowered):
        return _Reg("dr", int(lowered[2]))
    return _parse_imm_expr(text)


def _fits8(value):
    return -128 <= value <= 127


def _le32(value):
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


def _le16(value):
    return (value & 0xFFFF).to_bytes(2, "little")


def _encode_modrm(reg_field, rm, symtab):
    """Encode ModRM(+SIB+disp) for *rm* being a ``_Reg`` or ``_MemOp``."""
    if isinstance(rm, _Reg):
        return bytes([0xC0 | (reg_field << 3) | rm.idx])
    disp_has_symbol = rm.disp.symbol is not None
    disp = rm.disp.value(symtab)
    signed_disp = disp - (1 << 32) if disp >= (1 << 31) else disp
    need_sib = rm.index is not None or rm.base == 4
    out = bytearray()
    if rm.base is None and rm.index is None:
        out.append((reg_field << 3) | 5)
        out += _le32(disp)
        return bytes(out)
    if rm.base is None:  # index without base: SIB with base=101, mod=00
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[rm.scale]
        out.append((reg_field << 3) | 4)
        out.append((scale_bits << 6) | (rm.index << 3) | 5)
        out += _le32(disp)
        return bytes(out)
    if signed_disp == 0 and rm.base != 5 and not disp_has_symbol:
        mod = 0
    elif _fits8(signed_disp) and not disp_has_symbol:
        mod = 1
    else:
        mod = 2
    if need_sib:
        scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[rm.scale]
        index_bits = rm.index if rm.index is not None else 4
        out.append((mod << 6) | (reg_field << 3) | 4)
        out.append((scale_bits << 6) | (index_bits << 3) | rm.base)
    else:
        out.append((mod << 6) | (reg_field << 3) | rm.base)
    if mod == 1:
        out.append(signed_disp & 0xFF)
    elif mod == 2:
        out += _le32(disp)
    return bytes(out)


class _Line:
    __slots__ = ("kind", "mnemonic", "operands", "text", "lineno", "long",
                 "name", "subsystem")

    def __init__(self, kind, lineno, mnemonic=None, operands=None, text=None,
                 name=None, subsystem=None):
        self.kind = kind  # "ins", "label", "directive", "func", "endfunc"
        self.lineno = lineno
        self.mnemonic = mnemonic
        self.operands = operands or []
        self.text = text
        self.long = False  # branch relaxation state (grow-only)
        self.name = name
        self.subsystem = subsystem


class Assembler:
    """Assemble one translation unit at a fixed base address."""

    def __init__(self, base=0):
        self.base = base

    def assemble(self, source):
        lines = self._parse(source)
        symtab = {}
        for _ in range(64):
            new_symtab, chunks, grew = self._layout(lines, symtab)
            if new_symtab == symtab and not grew:
                symtab = new_symtab
                break
            symtab = new_symtab
        else:
            raise AssemblerError("assembler relaxation did not converge")
        # Final emission with the converged symbol table.
        symtab, chunks, grew = self._layout(lines, symtab, final=True)
        if grew:
            raise AssemblerError("branch grew during final pass")
        code = b"".join(chunks)
        functions = self._collect_functions(lines, symtab, code)
        return Program(code, self.base, symtab, functions)

    # -- parsing ---------------------------------------------------------

    def _parse(self, source):
        lines = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = self._strip_comment(raw).strip()
            if not text:
                continue
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*):\s*(.*)$",
                                 text)
                if not match:
                    break
                lines.append(_Line("label", lineno, name=match.group(1)))
                text = match.group(2).strip()
            if not text:
                continue
            if text.startswith("."):
                lines.append(self._parse_directive(text, lineno))
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if mnemonic == "rep" or mnemonic == "repne":
                sub = rest.split(None, 1)
                lines.append(_Line("ins", lineno,
                                   mnemonic=mnemonic + " " + sub[0].lower(),
                                   operands=[]))
                continue
            operands = ([_parse_operand(op) for op in self._split_ops(rest)]
                        if rest else [])
            lines.append(_Line("ins", lineno, mnemonic=mnemonic,
                               operands=operands, text=text))
        return lines

    @staticmethod
    def _strip_comment(raw):
        out = []
        in_string = False
        for char in raw:
            if char == '"':
                in_string = not in_string
            if not in_string and char in (";", "#"):
                break
            out.append(char)
        return "".join(out)

    @staticmethod
    def _split_ops(rest):
        ops = []
        depth = 0
        current = ""
        in_char = False
        for char in rest:
            if char == "'":
                in_char = not in_char
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            if char == "," and depth == 0 and not in_char:
                ops.append(current)
                current = ""
            else:
                current += char
        if current.strip():
            ops.append(current)
        return ops

    def _parse_directive(self, text, lineno):
        parts = text.split(None, 1)
        name = parts[0].lower()
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name == ".func":
            words = rest.split()
            if not words:
                raise AssemblerError(".func needs a name (line %d)" % lineno)
            subsystem = words[1] if len(words) > 1 else "unknown"
            return _Line("func", lineno, name=words[0], subsystem=subsystem)
        if name == ".endfunc":
            return _Line("endfunc", lineno)
        if name == ".global":
            return _Line("label", lineno, name=rest.split()[0])
        return _Line("directive", lineno, mnemonic=name, text=rest)

    # -- layout & encoding -----------------------------------------------

    def _layout(self, lines, symtab, final=False):
        new_symtab = {}
        chunks = []
        addr = self.base
        grew = False
        open_funcs = []
        for line in lines:
            if line.kind == "label":
                new_symtab[line.name] = addr
                continue
            if line.kind == "func":
                new_symtab[line.name] = addr
                open_funcs.append(line)
                continue
            if line.kind == "endfunc":
                if not open_funcs:
                    raise AssemblerError(
                        ".endfunc without .func (line %d)" % line.lineno)
                open_funcs.pop()
                continue
            if line.kind == "directive":
                data = self._encode_directive(line, addr, symtab, final)
                chunks.append(data)
                addr += len(data)
                continue
            try:
                data, wants_long = self._encode_ins(line, addr, symtab)
            except AssemblerError as exc:
                if final:
                    raise AssemblerError(
                        "line %d: %s" % (line.lineno, exc)) from exc
                # During sizing passes a forward symbol may be missing;
                # assume the longest form for now, but do NOT mark the
                # branch long — relaxation decides that only from
                # successful encodes once symbols resolve.
                data, wants_long = b"\x90" * 6, False
            if wants_long and not line.long:
                line.long = True
                grew = True
            chunks.append(data)
            addr += len(data)
        if open_funcs:
            raise AssemblerError(
                "unclosed .func %r" % open_funcs[-1].name)
        return new_symtab, chunks, grew

    def _collect_functions(self, lines, symtab, code):
        functions = []
        stack = []
        addr = self.base
        for line in lines:
            if line.kind == "func":
                info = FuncInfo(line.name, line.subsystem,
                                start=symtab[line.name])
                stack.append(info)
            elif line.kind == "endfunc":
                info = stack.pop()
                info.end = addr
                functions.append(info)
            elif line.kind == "directive":
                addr += len(self._encode_directive(line, addr, symtab, True))
            elif line.kind == "ins":
                data, _ = self._encode_ins(line, addr, symtab)
                addr += len(data)
        functions.sort(key=lambda f: f.start)
        return functions

    def _encode_directive(self, line, addr, symtab, final):
        name = line.mnemonic
        rest = line.text or ""
        if name == ".long":
            out = bytearray()
            for field in self._split_ops(rest):
                imm = _parse_imm_expr(field.strip())
                if final:
                    out += _le32(imm.value(symtab))
                else:
                    try:
                        out += _le32(imm.value(symtab))
                    except AssemblerError:
                        out += b"\0\0\0\0"
            return bytes(out)
        if name == ".byte":
            out = bytearray()
            for field in self._split_ops(rest):
                imm = _parse_imm_expr(field.strip())
                out.append(imm.value(symtab if final else {}) & 0xFF
                           if imm.symbol is None else 0)
            return bytes(out)
        if name == ".asciz":
            match = re.match(r'^"(.*)"$', rest.strip())
            if not match:
                raise AssemblerError(
                    'bad .asciz on line %d' % line.lineno)
            body = match.group(1).encode().decode("unicode_escape")
            return body.encode("latin-1") + b"\0"
        if name == ".space":
            fields = self._split_ops(rest)
            count = _parse_int(fields[0].strip())
            fill = _parse_int(fields[1].strip()) if len(fields) > 1 else 0
            return bytes([fill & 0xFF]) * count
        if name == ".align":
            boundary = _parse_int(rest.strip())
            pad = (-(addr - self.base)) % boundary
            return b"\x90" * pad
        raise AssemblerError(
            "unknown directive %s on line %d" % (name, line.lineno))

    # -- per-instruction encoders ------------------------------------------

    def _encode_ins(self, line, addr, symtab):
        """Encode one instruction; returns ``(bytes, wants_long)``."""
        mnemonic = line.mnemonic
        ops = line.operands

        if mnemonic.startswith("rep "):
            body = _SIMPLE_BYTES.get(mnemonic.split()[1])
            if body is None:
                raise AssemblerError("cannot rep %r" % mnemonic)
            return b"\xf3" + body, False
        if mnemonic.startswith("repne "):
            body = _SIMPLE_BYTES.get(mnemonic.split()[1])
            if body is None:
                raise AssemblerError("cannot repne %r" % mnemonic)
            return b"\xf2" + body, False
        if mnemonic in _SIMPLE_BYTES and not ops:
            return _SIMPLE_BYTES[mnemonic], False

        if mnemonic in ("jmp", "call") and len(ops) == 1:
            return self._encode_jump(mnemonic, ops[0], line, addr, symtab)
        if mnemonic.startswith("j") and mnemonic[1:] in CC_INDEX:
            return self._encode_jcc(mnemonic[1:], ops, line, addr, symtab)
        if mnemonic == "jecxz" or mnemonic == "jcxz":
            target = self._branch_target(ops[0], symtab)
            rel = target - (addr + 2)
            if not _fits8(rel):
                raise AssemblerError("jecxz target out of range")
            return bytes([0xE3, rel & 0xFF]), False
        if mnemonic in ("loop", "loope", "loopne"):
            opcode = {"loopne": 0xE0, "loope": 0xE1, "loop": 0xE2}[mnemonic]
            target = self._branch_target(ops[0], symtab)
            rel = target - (addr + 2)
            if not _fits8(rel):
                raise AssemblerError("%s target out of range" % mnemonic)
            return bytes([opcode, rel & 0xFF]), False
        if mnemonic.startswith("set") and mnemonic[3:] in CC_INDEX:
            cc = CC_INDEX[mnemonic[3:]]
            rm = ops[0]
            return (bytes([0x0F, 0x90 + cc])
                    + _encode_modrm(0, rm, symtab)), False
        if mnemonic.startswith("cmov") and mnemonic[4:] in CC_INDEX:
            cc = CC_INDEX[mnemonic[4:]]
            return (bytes([0x0F, 0x40 + cc])
                    + _encode_modrm(ops[0].idx, ops[1], symtab)), False

        handler = getattr(self, "_op_" + mnemonic, None)
        if handler is not None:
            return handler(ops, symtab), False
        raise AssemblerError("unknown mnemonic %r" % mnemonic)

    def _branch_target(self, operand, symtab):
        if not isinstance(operand, _Imm):
            raise AssemblerError("branch target must be a label/immediate")
        return operand.value(symtab)

    def _encode_jcc(self, cond, ops, line, addr, symtab):
        cc = CC_INDEX[cond]
        target = self._branch_target(ops[0], symtab)
        if not line.long:
            rel = target - (addr + 2)
            if _fits8(rel):
                return bytes([0x70 + cc, rel & 0xFF]), False
        rel = target - (addr + 6)
        return bytes([0x0F, 0x80 + cc]) + _le32(rel), True

    def _encode_jump(self, mnemonic, operand, line, addr, symtab):
        if isinstance(operand, _Imm):
            target = operand.value(symtab)
            if mnemonic == "call":
                rel = target - (addr + 5)
                return b"\xe8" + _le32(rel), False
            if not line.long:
                rel = target - (addr + 2)
                if _fits8(rel):
                    return bytes([0xEB, rel & 0xFF]), False
            rel = target - (addr + 5)
            return b"\xe9" + _le32(rel), True
        reg_field = 2 if mnemonic == "call" else 4
        return b"\xff" + _encode_modrm(reg_field, operand, symtab), False

    # Individual mnemonic encoders.  Each takes (ops, symtab) -> bytes.

    def _op_mov(self, ops, symtab):
        dst, src = ops
        if isinstance(dst, _Reg) and dst.kind in ("cr", "dr"):
            if not isinstance(src, _Reg) or src.kind != "r":
                raise AssemblerError("mov cr/dr needs a GP register source")
            opcode = 0x22 if dst.kind == "cr" else 0x23
            return bytes([0x0F, opcode, 0xC0 | (dst.idx << 3) | src.idx])
        if isinstance(src, _Reg) and src.kind in ("cr", "dr"):
            if not isinstance(dst, _Reg) or dst.kind != "r":
                raise AssemblerError("mov from cr/dr needs a GP register")
            opcode = 0x20 if src.kind == "cr" else 0x21
            return bytes([0x0F, opcode, 0xC0 | (src.idx << 3) | dst.idx])
        if isinstance(dst, _Reg) and dst.kind == "sr":
            return b"\x8e" + _encode_modrm(dst.idx, src, symtab)
        if isinstance(src, _Reg) and src.kind == "sr":
            return b"\x8c" + _encode_modrm(src.idx, dst, symtab)
        if isinstance(dst, _Reg) and dst.kind == "r":
            if isinstance(src, _Imm):
                return bytes([0xB8 + dst.idx]) + _le32(src.value(symtab))
            if isinstance(src, _Reg) and src.kind == "r":
                return b"\x89" + _encode_modrm(src.idx, dst, symtab)
            if isinstance(src, _MemOp):
                return b"\x8b" + _encode_modrm(dst.idx, src, symtab)
        if isinstance(dst, _Reg) and dst.kind == "r8":
            if isinstance(src, _Imm):
                return bytes([0xB0 + dst.idx, src.value(symtab) & 0xFF])
            if isinstance(src, _Reg) and src.kind == "r8":
                return b"\x88" + _encode_modrm(src.idx, dst, symtab)
            if isinstance(src, _MemOp):
                return b"\x8a" + _encode_modrm(dst.idx, src, symtab)
        if isinstance(dst, _MemOp):
            if (dst.size == 1) or (isinstance(src, _Reg)
                                   and src.kind == "r8"):
                if isinstance(src, _Imm):
                    return (b"\xc6" + _encode_modrm(0, dst, symtab)
                            + bytes([src.value(symtab) & 0xFF]))
                return b"\x88" + _encode_modrm(src.idx, dst, symtab)
            if isinstance(src, _Imm):
                return (b"\xc7" + _encode_modrm(0, dst, symtab)
                        + _le32(src.value(symtab)))
            if isinstance(src, _Reg) and src.kind == "r":
                return b"\x89" + _encode_modrm(src.idx, dst, symtab)
        raise AssemblerError("unsupported mov operand combination")

    def _op_movb(self, ops, symtab):
        dst, src = ops
        if isinstance(dst, _MemOp):
            dst.size = 1
        return self._op_mov(ops, symtab)

    def _alu(self, name, ops, symtab):
        dst, src = ops
        base = _ALU_BASE[name]
        group_reg = _ALU_GROUP_REG[name]
        if isinstance(src, _Imm):
            value = src.value(symtab)
            signed = value - (1 << 32) if value >= (1 << 31) else value
            is_byte = (isinstance(dst, _Reg) and dst.kind == "r8") or (
                isinstance(dst, _MemOp) and dst.size == 1)
            if is_byte:
                if isinstance(dst, _Reg) and dst.idx == 0:
                    return bytes([base + 4, value & 0xFF])
                return (b"\x80" + _encode_modrm(group_reg, dst, symtab)
                        + bytes([value & 0xFF]))
            if _fits8(signed) and src.symbol is None:
                return (b"\x83" + _encode_modrm(group_reg, dst, symtab)
                        + bytes([signed & 0xFF]))
            if isinstance(dst, _Reg) and dst.kind == "r" and dst.idx == 0:
                return bytes([base + 5]) + _le32(value)
            return (b"\x81" + _encode_modrm(group_reg, dst, symtab)
                    + _le32(value))
        is_byte = ((isinstance(dst, _Reg) and dst.kind == "r8")
                   or (isinstance(src, _Reg) and src.kind == "r8"))
        if isinstance(src, _Reg):
            opcode = base + (0 if is_byte else 1)
            return bytes([opcode]) + _encode_modrm(src.idx, dst, symtab)
        if isinstance(src, _MemOp):
            opcode = base + (2 if is_byte else 3)
            return bytes([opcode]) + _encode_modrm(dst.idx, src, symtab)
        raise AssemblerError("unsupported %s operand combination" % name)

    def _op_add(self, ops, symtab):
        return self._alu("add", ops, symtab)

    def _op_or(self, ops, symtab):
        return self._alu("or", ops, symtab)

    def _op_adc(self, ops, symtab):
        return self._alu("adc", ops, symtab)

    def _op_sbb(self, ops, symtab):
        return self._alu("sbb", ops, symtab)

    def _op_and(self, ops, symtab):
        return self._alu("and", ops, symtab)

    def _op_sub(self, ops, symtab):
        return self._alu("sub", ops, symtab)

    def _op_xor(self, ops, symtab):
        return self._alu("xor", ops, symtab)

    def _op_cmp(self, ops, symtab):
        return self._alu("cmp", ops, symtab)

    def _op_cmpb(self, ops, symtab):
        dst, src = ops
        if isinstance(dst, _MemOp):
            dst.size = 1
        return self._alu("cmp", ops, symtab)

    def _op_test(self, ops, symtab):
        dst, src = ops
        is_byte = ((isinstance(dst, _Reg) and dst.kind == "r8")
                   or (isinstance(src, _Reg) and src.kind == "r8")
                   or (isinstance(dst, _MemOp) and dst.size == 1))
        if isinstance(src, _Imm):
            value = src.value(symtab)
            if is_byte:
                if isinstance(dst, _Reg) and dst.idx == 0:
                    return bytes([0xA8, value & 0xFF])
                return (b"\xf6" + _encode_modrm(0, dst, symtab)
                        + bytes([value & 0xFF]))
            if isinstance(dst, _Reg) and dst.kind == "r" and dst.idx == 0:
                return b"\xa9" + _le32(value)
            return b"\xf7" + _encode_modrm(0, dst, symtab) + _le32(value)
        opcode = 0x84 if is_byte else 0x85
        return bytes([opcode]) + _encode_modrm(src.idx, dst, symtab)

    def _op_xchg(self, ops, symtab):
        dst, src = ops
        if (isinstance(dst, _Reg) and dst.kind == "r" and dst.idx == 0
                and isinstance(src, _Reg) and src.kind == "r"):
            return bytes([0x90 + src.idx])
        if isinstance(src, _Reg) and src.kind == "r":
            return b"\x87" + _encode_modrm(src.idx, dst, symtab)
        if isinstance(dst, _Reg) and dst.kind == "r":
            return b"\x87" + _encode_modrm(dst.idx, src, symtab)
        raise AssemblerError("unsupported xchg operands")

    def _op_lea(self, ops, symtab):
        dst, src = ops
        if not isinstance(src, _MemOp):
            raise AssemblerError("lea needs a memory operand")
        return b"\x8d" + _encode_modrm(dst.idx, src, symtab)

    def _op_push(self, ops, symtab):
        (operand,) = ops
        if isinstance(operand, _Reg):
            if operand.kind == "r":
                return bytes([0x50 + operand.idx])
            if operand.kind == "sr":
                table = {0: b"\x06", 1: b"\x0e", 2: b"\x16", 3: b"\x1e",
                         4: b"\x0f\xa0", 5: b"\x0f\xa8"}
                return table[operand.idx]
        if isinstance(operand, _Imm):
            value = operand.value(symtab)
            signed = value - (1 << 32) if value >= (1 << 31) else value
            if _fits8(signed) and operand.symbol is None:
                return bytes([0x6A, signed & 0xFF])
            return b"\x68" + _le32(value)
        return b"\xff" + _encode_modrm(6, operand, symtab)

    def _op_pop(self, ops, symtab):
        (operand,) = ops
        if isinstance(operand, _Reg):
            if operand.kind == "r":
                return bytes([0x58 + operand.idx])
            if operand.kind == "sr":
                table = {0: b"\x07", 2: b"\x17", 3: b"\x1f",
                         4: b"\x0f\xa1", 5: b"\x0f\xa9"}
                return table[operand.idx]
        return b"\x8f" + _encode_modrm(0, operand, symtab)

    def _op_inc(self, ops, symtab):
        (operand,) = ops
        if isinstance(operand, _Reg) and operand.kind == "r":
            return bytes([0x40 + operand.idx])
        if isinstance(operand, _MemOp) and operand.size == 1:
            return b"\xfe" + _encode_modrm(0, operand, symtab)
        return b"\xff" + _encode_modrm(0, operand, symtab)

    def _op_dec(self, ops, symtab):
        (operand,) = ops
        if isinstance(operand, _Reg) and operand.kind == "r":
            return bytes([0x48 + operand.idx])
        if isinstance(operand, _MemOp) and operand.size == 1:
            return b"\xfe" + _encode_modrm(1, operand, symtab)
        return b"\xff" + _encode_modrm(1, operand, symtab)

    def _group3(self, name, ops, symtab):
        (operand,) = ops
        is_byte = ((isinstance(operand, _Reg) and operand.kind == "r8")
                   or (isinstance(operand, _MemOp) and operand.size == 1))
        opcode = 0xF6 if is_byte else 0xF7
        return (bytes([opcode])
                + _encode_modrm(_GROUP3_REG[name], operand, symtab))

    def _op_not(self, ops, symtab):
        return self._group3("not", ops, symtab)

    def _op_neg(self, ops, symtab):
        return self._group3("neg", ops, symtab)

    def _op_mul(self, ops, symtab):
        return self._group3("mul", ops, symtab)

    def _op_div(self, ops, symtab):
        return self._group3("div", ops, symtab)

    def _op_idiv(self, ops, symtab):
        return self._group3("idiv", ops, symtab)

    def _op_imul(self, ops, symtab):
        if len(ops) == 1:
            return self._group3("imul1", ops, symtab)
        if len(ops) == 2:
            dst, src = ops
            return b"\x0f\xaf" + _encode_modrm(dst.idx, src, symtab)
        dst, src, imm = ops
        value = imm.value(symtab)
        signed = value - (1 << 32) if value >= (1 << 31) else value
        if _fits8(signed) and imm.symbol is None:
            return (b"\x6b" + _encode_modrm(dst.idx, src, symtab)
                    + bytes([signed & 0xFF]))
        return b"\x69" + _encode_modrm(dst.idx, src, symtab) + _le32(value)

    def _shift(self, name, ops, symtab):
        dst, src = ops
        reg_field = _SHIFT_GROUP_REG[name]
        is_byte = ((isinstance(dst, _Reg) and dst.kind == "r8")
                   or (isinstance(dst, _MemOp) and dst.size == 1))
        if isinstance(src, _Reg):  # by %cl
            if src.kind != "r8" or src.idx != 1:
                raise AssemblerError("shift count register must be cl")
            opcode = 0xD2 if is_byte else 0xD3
            return bytes([opcode]) + _encode_modrm(reg_field, dst, symtab)
        count = src.value(symtab) & 0xFF
        if count == 1:
            opcode = 0xD0 if is_byte else 0xD1
            return bytes([opcode]) + _encode_modrm(reg_field, dst, symtab)
        opcode = 0xC0 if is_byte else 0xC1
        return (bytes([opcode]) + _encode_modrm(reg_field, dst, symtab)
                + bytes([count]))

    def _op_shl(self, ops, symtab):
        return self._shift("shl", ops, symtab)

    def _op_shr(self, ops, symtab):
        return self._shift("shr", ops, symtab)

    def _op_sar(self, ops, symtab):
        return self._shift("sar", ops, symtab)

    def _op_rol(self, ops, symtab):
        return self._shift("rol", ops, symtab)

    def _op_ror(self, ops, symtab):
        return self._shift("ror", ops, symtab)

    def _op_rcl(self, ops, symtab):
        return self._shift("rcl", ops, symtab)

    def _op_rcr(self, ops, symtab):
        return self._shift("rcr", ops, symtab)

    def _op_shld(self, ops, symtab):
        return self._shift_double(0xA4, ops, symtab)

    def _op_shrd(self, ops, symtab):
        return self._shift_double(0xAC, ops, symtab)

    def _shift_double(self, opcode, ops, symtab):
        dst, src, count = ops
        if isinstance(count, _Reg):  # by %cl (0F A5 / 0F AD)
            if count.kind != "r8" or count.idx != 1:
                raise AssemblerError("shift count register must be cl")
            return (bytes([0x0F, opcode + 1])
                    + _encode_modrm(src.idx, dst, symtab))
        return (bytes([0x0F, opcode])
                + _encode_modrm(src.idx, dst, symtab)
                + bytes([count.value(symtab) & 0xFF]))

    def _op_movzx(self, ops, symtab):
        dst, src = ops
        size = src.size if isinstance(src, _MemOp) else (
            1 if isinstance(src, _Reg) and src.kind == "r8" else None)
        if size == 1:
            return b"\x0f\xb6" + _encode_modrm(dst.idx, src, symtab)
        if size == 2:
            return b"\x0f\xb7" + _encode_modrm(dst.idx, src, symtab)
        raise AssemblerError("movzx needs byte/word source")

    def _op_movsx(self, ops, symtab):
        dst, src = ops
        size = src.size if isinstance(src, _MemOp) else (
            1 if isinstance(src, _Reg) and src.kind == "r8" else None)
        if size == 1:
            return b"\x0f\xbe" + _encode_modrm(dst.idx, src, symtab)
        if size == 2:
            return b"\x0f\xbf" + _encode_modrm(dst.idx, src, symtab)
        raise AssemblerError("movsx needs byte/word source")

    def _op_int(self, ops, symtab):
        (operand,) = ops
        return bytes([0xCD, operand.value(symtab) & 0xFF])

    def _op_ret(self, ops, symtab):
        (operand,) = ops
        return b"\xc2" + _le16(operand.value(symtab))

    def _op_bound(self, ops, symtab):
        dst, src = ops
        return b"\x62" + _encode_modrm(dst.idx, src, symtab)

    def _op_bt(self, ops, symtab):
        dst, src = ops
        if isinstance(src, _Imm):
            return (b"\x0f\xba" + _encode_modrm(4, dst, symtab)
                    + bytes([src.value(symtab) & 0xFF]))
        return b"\x0f\xa3" + _encode_modrm(src.idx, dst, symtab)

    def _op_bts(self, ops, symtab):
        dst, src = ops
        if isinstance(src, _Imm):
            return (b"\x0f\xba" + _encode_modrm(5, dst, symtab)
                    + bytes([src.value(symtab) & 0xFF]))
        return b"\x0f\xab" + _encode_modrm(src.idx, dst, symtab)

    def _op_btr(self, ops, symtab):
        dst, src = ops
        if isinstance(src, _Imm):
            return (b"\x0f\xba" + _encode_modrm(6, dst, symtab)
                    + bytes([src.value(symtab) & 0xFF]))
        return b"\x0f\xb3" + _encode_modrm(src.idx, dst, symtab)

    def _op_bsf(self, ops, symtab):
        dst, src = ops
        return b"\x0f\xbc" + _encode_modrm(dst.idx, src, symtab)

    def _op_bsr(self, ops, symtab):
        dst, src = ops
        return b"\x0f\xbd" + _encode_modrm(dst.idx, src, symtab)

    def _op_btc(self, ops, symtab):
        dst, src = ops
        if isinstance(src, _Imm):
            return (b"\x0f\xba" + _encode_modrm(7, dst, symtab)
                    + bytes([src.value(symtab) & 0xFF]))
        return b"\x0f\xbb" + _encode_modrm(src.idx, dst, symtab)

    def _op_cmpxchg(self, ops, symtab):
        dst, src = ops
        if src.kind == "r8":
            return b"\x0f\xb0" + _encode_modrm(src.idx, dst, symtab)
        return b"\x0f\xb1" + _encode_modrm(src.idx, dst, symtab)

    def _op_xadd(self, ops, symtab):
        dst, src = ops
        if src.kind == "r8":
            return b"\x0f\xc0" + _encode_modrm(src.idx, dst, symtab)
        return b"\x0f\xc1" + _encode_modrm(src.idx, dst, symtab)

    def _op_aam(self, ops, symtab):
        base = ops[0].value(symtab) if ops else 10
        return bytes([0xD4, base & 0xFF])

    def _op_aad(self, ops, symtab):
        base = ops[0].value(symtab) if ops else 10
        return bytes([0xD5, base & 0xFF])

    def _op_les(self, ops, symtab):
        dst, src = ops
        if not isinstance(src, _MemOp):
            raise AssemblerError("les needs a memory operand")
        return b"\xc4" + _encode_modrm(dst.idx, src, symtab)

    def _op_lds(self, ops, symtab):
        dst, src = ops
        if not isinstance(src, _MemOp):
            raise AssemblerError("lds needs a memory operand")
        return b"\xc5" + _encode_modrm(dst.idx, src, symtab)

    def _op_bswap(self, ops, symtab):
        (operand,) = ops
        return bytes([0x0F, 0xC8 + operand.idx])

    @staticmethod
    def _is_dx_port(operand):
        """The ``dx`` port register parses as a bare symbol reference."""
        return (isinstance(operand, _Imm) and operand.symbol == "dx"
                and operand.const == 0)

    def _op_in(self, ops, symtab):
        dst, src = ops
        size = 1 if (isinstance(dst, _Reg) and dst.kind == "r8") else 4
        if isinstance(src, _Imm) and not self._is_dx_port(src):
            opcode = 0xE4 if size == 1 else 0xE5
            return bytes([opcode, src.value(symtab) & 0xFF])
        return b"\xec" if size == 1 else b"\xed"

    def _op_out(self, ops, symtab):
        dst, src = ops
        size = 1 if (isinstance(src, _Reg) and src.kind == "r8") else 4
        if isinstance(dst, _Imm) and not self._is_dx_port(dst):
            opcode = 0xE6 if size == 1 else 0xE7
            return bytes([opcode, dst.value(symtab) & 0xFF])
        return b"\xee" if size == 1 else b"\xef"

    def _op_invlpg(self, ops, symtab):
        (operand,) = ops
        if not isinstance(operand, _MemOp):
            raise AssemblerError("invlpg needs a memory operand")
        return b"\x0f\x01" + _encode_modrm(7, operand, symtab)

    def _op_enter(self, ops, symtab):
        frame, nesting = ops
        return (b"\xc8" + _le16(frame.value(symtab))
                + bytes([nesting.value(symtab) & 0xFF]))


def assemble(source, base=0):
    """Assemble *source* at *base*; returns a :class:`Program`."""
    return Assembler(base=base).assemble(source)
