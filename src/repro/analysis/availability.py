"""Availability arithmetic from §7.1.

The paper closes its severity analysis with a budget argument: at five
nines (≈5 min/yr of downtime) one can afford roughly one *most severe*
crash (≈1 h recovery) every 12 years, one *severe* crash (>5 min) every
two years, and one *normal* crash (<4 min reboot) per year.  These
helpers reproduce that arithmetic for arbitrary targets.
"""

SECONDS_PER_YEAR = 365 * 24 * 3600

#: "Five nines" and friends: availability -> allowed seconds of downtime.
NINES = {
    3: 0.999,
    4: 0.9999,
    5: 0.99999,
}


def downtime_budget(availability):
    """Allowed downtime in seconds/year for an availability fraction."""
    if not 0.0 < availability < 1.0:
        raise ValueError("availability must be in (0, 1)")
    return (1.0 - availability) * SECONDS_PER_YEAR


def allowed_failures_per_year(availability, downtime_per_failure):
    """How many failures of a given recovery time fit the budget."""
    if downtime_per_failure <= 0:
        raise ValueError("downtime per failure must be positive")
    return downtime_budget(availability) / downtime_per_failure


def years_between_failures(availability, downtime_per_failure):
    """Mean years between failures to stay within the budget."""
    per_year = allowed_failures_per_year(availability,
                                         downtime_per_failure)
    if per_year == 0:
        return float("inf")
    return 1.0 / per_year


def availability_given_rates(failures_per_year):
    """Availability from a dict severity -> (rate/yr, downtime seconds).

    Example::

        availability_given_rates({"normal": (1, 240),
                                  "severe": (0.5, 480),
                                  "most_severe": (1/12, 3300)})
    """
    downtime = 0.0
    for rate, seconds in failures_per_year.values():
        downtime += rate * seconds
    return 1.0 - downtime / SECONDS_PER_YEAR
