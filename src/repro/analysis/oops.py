"""ksymoops-style crash-dump annotation.

The paper's workflow decoded raw oops reports with the kernel symbol
map and disassembled the code around EIP (their Figure 5 walks exactly
such an annotated dump).  :func:`annotate_crash` does the same for our
:class:`~repro.machine.machine.CrashRecord`: symbolize EIP and the
registers, disassemble the faulting neighbourhood, and walk the kernel
stack for a call-trace guess.
"""

from repro.cpu.traps import trap_name
from repro.isa.decoder import decode_all
from repro.isa.disasm import format_instr


def symbolize(kernel, address):
    """``name+0xoff`` for a kernel-text address (hex otherwise)."""
    info = kernel.find_function(address)
    if info is None:
        return "0x%08x" % address
    return "%s+0x%x/0x%x" % (info.name, address - info.start, info.size)


def disassemble_around(kernel, address, before=12, after=20,
                       machine=None):
    """Disassembled lines surrounding a kernel-text address.

    Decoding is resynchronized from the owning function's entry so the
    listing shows true instruction boundaries, with the faulting
    instruction marked — the paper's Figure 5 layout.  When *machine*
    is given, the bytes come from the crashed machine's memory (the
    dump), so injected corruption shows up exactly as ksymoops would
    show it; otherwise the pristine kernel image is used.
    """
    info = kernel.find_function(address)
    if info is None:
        return []
    if machine is not None:
        code = bytes(machine.read_byte(a)
                     for a in range(info.start, info.end))
    else:
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
    lines = []
    for ins in decode_all(code, base=info.start):
        if ins.addr + ins.length <= address - before:
            continue
        if ins.addr > address + after:
            break
        marker = "->" if ins.addr <= address < ins.addr + ins.length \
            else "  "
        hex_bytes = " ".join("%02x" % b for b in ins.raw)
        lines.append("%s %08x  %-20s %s"
                     % (marker, ins.addr, hex_bytes, format_instr(ins)))
    return lines


def call_trace(kernel, machine_or_ram, esp, layout=None, max_frames=16,
               max_scan=256):
    """Scan the kernel stack for return addresses (ksymoops "Trace").

    Like the original tool, this is heuristic: any word on the stack
    that points into kernel text *after a call site* is reported.
    """
    if layout is None:
        layout = kernel.layout
    read_word = getattr(machine_or_ram, "read_word", None)
    if read_word is None:
        ram = machine_or_ram

        def read_word(vaddr):
            phys = vaddr - layout.KERNEL_BASE
            if 0 <= phys + 4 <= len(ram):
                return int.from_bytes(ram[phys:phys + 4], "little")
            return 0

    text_lo = kernel.base
    text_hi = kernel.base + len(kernel.code)
    frames = []
    for slot in range(max_scan):
        vaddr = esp + 4 * slot
        if vaddr >= layout.KERNEL_BASE + layout.RAM_BYTES:
            break
        word = read_word(vaddr)
        if not text_lo <= word < text_hi:
            continue
        # A return address follows a call: check the preceding bytes
        # plausibly end a call instruction (e8 rel32 or ff /2).
        offset = word - kernel.base
        if offset >= 5 and kernel.code[offset - 5] == 0xE8:
            frames.append(word)
        elif offset >= 2 and kernel.code[offset - 2] == 0xFF:
            frames.append(word)
        elif offset >= 3 and kernel.code[offset - 3] == 0xFF:
            frames.append(word)
        if len(frames) >= max_frames:
            break
    return frames


def cfg_location(kernel, address):
    """Basic-block context for a kernel-text address, or ``None``.

    Builds the owning function's CFG (from the *pristine* image — the
    corrupted stream is what crashed, the static CFG is what should
    have run) and names the faulting block plus its predecessors.
    """
    from repro.staticanalysis.cfg import build_cfg, describe_block

    info = kernel.find_function(address)
    if info is None:
        return None
    cfg = build_cfg(kernel, info)

    def sym(a):
        return "%s <%s>" % ("%#010x" % a, symbolize(kernel, a))

    return describe_block(cfg, address, symbolize=sym)


def static_verdict_section(kernel, function, instr_addr, byte_offset,
                           bit, crash=None, latency=None,
                           analyzer=None):
    """Predicted-vs-actual lines for one flip site.

    Runs the symbolic error-propagation analyzer
    (:mod:`repro.staticanalysis.propagation`) on the site and renders
    its verdict; with a crash record the actual trap class is compared
    against the predicted set, and with a measured *latency* (cycles
    from activation to crash) the static [lower, upper] instruction
    bound is checked.  Returns a list of lines.
    """
    from repro.injection.outcomes import crash_cause_name
    from repro.staticanalysis.propagation import (
        PropagationAnalyzer,
        latency_within_bounds,
        trap_of_cause,
    )

    if analyzer is None:
        analyzer = PropagationAnalyzer(kernel)
    verdict = analyzer.analyze_site(function, instr_addr, byte_offset,
                                    bit)
    hi = ("unbounded" if verdict.latency_hi is None
          else "%d" % verdict.latency_hi)
    lo = 0 if verdict.latency_lo is None else verdict.latency_lo
    reachable = ", ".join(sorted(str(s) for s in verdict.subsystems))
    lines = [
        "seed corruption:  %s" % verdict.seed,
        "predicted traps:  %s" % ", ".join(sorted(verdict.traps)),
        "latency bound:    [%s, %s] instructions" % (lo, hi),
        "reachable:        %s" % (reachable or "(none)"),
    ]
    if crash is not None:
        actual = trap_of_cause(crash_cause_name(crash.vector,
                                                crash.cr2))
        hit = actual in verdict.traps or actual == "other"
        lines.append("actual trap:      %s -> %s"
                     % (actual,
                        "within predicted set" if hit
                        else "NOT predicted"))
    if latency is not None:
        inside = latency_within_bounds(latency, verdict.latency_lo,
                                       verdict.latency_hi)
        lines.append("actual latency:   %d cycles -> %s"
                     % (latency,
                        "within static bound" if inside
                        else "OUTSIDE static bound"))
    return lines


def trace_section(kernel, trace, before_cycle=None, depth=8):
    """LBR-style ``TRACE:`` lines: the last branches before the oops.

    *trace* is a :class:`~repro.tracing.ring.Trace` captured from the
    crashed run (see :meth:`Machine.enable_trace`); *before_cycle* is
    normally the dump's tsc so branches taken inside the crash handler
    itself are excluded.  Returns a list of lines, newest last —
    exactly the branch-record block hardware LBR gives ksymoops.
    """
    branches = trace.last_branches(depth, before_cycle=before_cycle)
    lines = []
    for event in branches:
        _, cycle, _, src, dst = event
        lines.append("[%10d] %s -> %s"
                     % (cycle, symbolize(kernel, src),
                        symbolize(kernel, dst)))
    return lines


def annotate_crash(kernel, crash, machine=None, cfg_context=False,
                   trace=None, trace_depth=8):
    """Render a full ksymoops-style report for a crash record.

    Args:
        kernel: the KernelImage the machine ran.
        crash: a :class:`~repro.machine.machine.CrashRecord`.
        machine: optionally the crashed Machine (enables the stack
            trace; the registers alone come from the dump record).
        cfg_context: also name the faulting basic block and its CFG
            predecessors (static-analysis layer; opt-in because it
            builds the function's CFG).
        trace: optionally the run's flight-recorder
            :class:`~repro.tracing.ring.Trace`; appends a ``TRACE:``
            section with the last *trace_depth* branches retired
            before the dump.
    """
    lines = []
    if crash.vector == 253:
        kind = "soft lockup"
    elif crash.vector < 32:
        kind = trap_name(crash.vector)
    else:
        kind = "code %d" % crash.vector
    lines.append("Oops: %s (vector %d, error code %#x)"
                 % (kind, crash.vector, crash.error_code))
    lines.append("CPU:    0")
    lines.append("EIP:    0010:[<%08x>]   %s"
                 % (crash.eip, symbolize(kernel, crash.eip)))
    if crash.vector == 14:
        kind = ("NULL pointer dereference" if crash.cr2 < 4096
                else "paging request")
        lines.append("Unable to handle kernel %s at virtual address "
                     "%08x" % (kind, crash.cr2))
    lines.append("eax: %08x   ebx: %08x   ecx: %08x   edx: %08x"
                 % (crash.regs["eax"], crash.regs["ebx"],
                    crash.regs["ecx"], crash.regs["edx"]))
    lines.append("esi: %08x   edi: %08x   ebp: %08x   esp: %08x"
                 % (crash.regs["esi"], crash.regs["edi"],
                    crash.regs["ebp"], crash.regs["esp"]))
    lines.append("Process pid: %d   tsc: %d" % (crash.pid, crash.tsc))
    if getattr(crash, "recovered", 0):
        lines.append("RECOVERED (task killed: %d) at %s"
                     % (crash.pid, symbolize(kernel, crash.eip)))
    listing = disassemble_around(kernel, crash.eip, machine=machine)
    if listing:
        lines.append("Code:")
        lines.extend("  " + line for line in listing)
    if cfg_context:
        located = cfg_location(kernel, crash.eip)
        if located:
            lines.append("CFG:")
            lines.extend("  " + line for line in located.split("\n"))
    if machine is not None:
        frames = call_trace(kernel, machine, crash.regs["esp"])
        if frames:
            lines.append("Call Trace:")
            for address in frames:
                lines.append("  [<%08x>] %s"
                             % (address, symbolize(kernel, address)))
    if trace is not None:
        recorded = trace_section(kernel, trace,
                                 before_cycle=crash.tsc,
                                 depth=trace_depth)
        if recorded:
            lines.append("TRACE: (last %d branches before the oops)"
                         % len(recorded))
            lines.extend("  " + line for line in recorded)
    return "\n".join(lines)
