"""Strategic assertion placement (the paper's §7.4 recommendation).

The paper closes its propagation analysis by arguing that the observed
propagation paths identify *where* additional executable assertions
would stop errors before they escape a subsystem ("placing of assertions
based on error propagation analysis").  This module turns campaign data
into that recommendation: rank functions by how many crashes they
*launder* — errors injected in them that crash elsewhere — and by the
damage class of those crashes.
"""

from collections import Counter

from repro.injection.outcomes import CRASH_DUMPED

#: weight per crash by where/ how it landed (escaped crashes and severe
#: damage are what assertions are meant to prevent).
_SEVERITY_WEIGHT = {"most_severe": 8.0, "severe": 3.0, "normal": 1.0,
                    None: 1.0}


class AssertionSite:
    """One recommended hardening location."""

    __slots__ = ("function", "subsystem", "escapes", "total_crashes",
                 "score", "destinations")

    def __init__(self, function, subsystem):
        self.function = function
        self.subsystem = subsystem
        self.escapes = 0
        self.total_crashes = 0
        self.score = 0.0
        self.destinations = Counter()

    @property
    def escape_rate(self):
        return self.escapes / self.total_crashes if self.total_crashes \
            else 0.0

    def __repr__(self):
        return ("AssertionSite(%s/%s, %d/%d escaped, score %.1f)"
                % (self.subsystem, self.function, self.escapes,
                   self.total_crashes, self.score))


def recommend_assertion_sites(results, min_crashes=2):
    """Rank functions where new assertions would pay off most.

    A function scores by (a) crashes that *propagated out* of its
    subsystem after an injection into it and (b) the severity of the
    damage its failures caused — both signals that the error travelled
    uncontained, which is exactly what an assertion at the source would
    intercept.

    Returns AssertionSite list, highest score first.
    """
    sites = {}
    for result in results:
        if result.outcome != CRASH_DUMPED:
            continue
        site = sites.get(result.function)
        if site is None:
            site = sites[result.function] = AssertionSite(
                result.function, result.subsystem)
        site.total_crashes += 1
        destination = result.crash_subsystem or "(wild)"
        site.destinations[destination] += 1
        weight = _SEVERITY_WEIGHT.get(result.severity, 1.0)
        if destination != result.subsystem:
            site.escapes += 1
            weight *= 2.0
        site.score += weight
    ranked = [site for site in sites.values()
              if site.total_crashes >= min_crashes]
    ranked.sort(key=lambda s: (-s.score, -s.escapes, s.function))
    return ranked


def format_recommendations(results, top=10):
    """Render the §7.4-style hardening report."""
    sites = recommend_assertion_sites(results)
    lines = ["Strategic assertion placement (derived from propagation "
             "analysis, paper §7.4):"]
    lines.append("%-26s %-8s %8s %8s %8s  %s"
                 % ("function", "subsys", "crashes", "escaped",
                    "score", "crash destinations"))
    for site in sites[:top]:
        destinations = ", ".join("%s:%d" % kv
                                 for kv in site.destinations.most_common())
        lines.append("%-26s %-8s %8d %8d %8.1f  %s"
                     % (site.function, site.subsystem,
                        site.total_crashes, site.escapes, site.score,
                        destinations))
    if not sites:
        lines.append("  (no dumped crashes to analyze)")
    return "\n".join(lines)
