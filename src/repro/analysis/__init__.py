"""Statistical analysis and paper-style reporting of campaign results."""

from repro.analysis.stats import (
    activation_stats,
    crash_cause_distribution,
    crash_hang_count,
    latency_histogram,
    outcome_pie,
    per_function_crash_shares,
    subsystem_outcome_table,
)
from repro.analysis.propagation import (
    nested_fault_counts,
    nested_fault_rate,
    propagation_graph,
    propagation_matrix,
)
from repro.analysis.availability import allowed_failures_per_year, \
    availability_given_rates
from repro.analysis.tables import (
    format_fig4,
    format_fig6,
    format_fig7,
    format_fig8,
    format_severity_table,
)
from repro.analysis.cases import find_case_studies, format_case_study
from repro.analysis.oops import annotate_crash, call_trace, symbolize
from repro.analysis.assertions import format_recommendations, \
    recommend_assertion_sites
from repro.analysis.confidence import (
    format_intervals,
    outcome_intervals,
    proportion_diff_pvalue,
    wilson_interval,
)

__all__ = [
    "activation_stats",
    "crash_cause_distribution",
    "crash_hang_count",
    "latency_histogram",
    "outcome_pie",
    "per_function_crash_shares",
    "subsystem_outcome_table",
    "nested_fault_counts",
    "nested_fault_rate",
    "propagation_graph",
    "propagation_matrix",
    "allowed_failures_per_year",
    "availability_given_rates",
    "format_fig4",
    "format_fig6",
    "format_fig7",
    "format_fig8",
    "format_severity_table",
    "find_case_studies",
    "format_case_study",
    "annotate_crash",
    "call_trace",
    "symbolize",
    "recommend_assertion_sites",
    "format_recommendations",
    "wilson_interval",
    "proportion_diff_pvalue",
    "outcome_intervals",
    "format_intervals",
]
