"""Paper-style text renderings of the campaign statistics."""

from collections import Counter

from repro.analysis.charts import ascii_pie, percent
from repro.analysis.propagation import propagation_cause_matrix, \
    propagation_matrix
from repro.analysis.stats import (
    crash_cause_distribution,
    latency_histogram,
    most_severe_cases,
    outcome_pie,
    subsystem_outcome_table,
    bucket_labels,
)
from repro.injection.outcomes import CRASH_DUMPED, CRASH_UNKNOWN, HANG

CAMPAIGN_TITLES = {
    "A": "Any Random Error",
    "B": "Random Branch Error",
    "C": "Valid but Incorrect Branch",
}


def format_fig4(campaign_key, results):
    """One campaign's Figure 4 block: per-subsystem table + outcome pie."""
    rows = subsystem_outcome_table(results)
    lines = []
    lines.append("Figure 4 (%s - %s)" % (campaign_key,
                                         CAMPAIGN_TITLES[campaign_key]))
    lines.append("%-12s %9s %18s %16s %14s %12s"
                 % ("Subsystem", "Injected", "Activated",
                    "Not Manifested", "Fail Silence", "Crash/Hang"))
    for row in rows:
        injected = row.get("injected", 0)
        activated = row.get("activated", 0)
        lines.append(
            "%-12s %9d %10d(%5.1f%%) %8d(%5.1f%%) %7d(%4.1f%%) %6d(%5.1f%%)"
            % ("%s[%d]" % (row["subsystem"], row["functions"]),
               injected,
               activated, percent(activated, injected),
               row.get("not_manifested", 0),
               percent(row.get("not_manifested", 0), activated),
               row.get("fsv", 0),
               percent(row.get("fsv", 0), activated),
               row.get("crash_hang", 0),
               percent(row.get("crash_hang", 0), activated)))
    pie = outcome_pie(results)
    activated = pie.pop("activated", 0)
    lines.append("")
    lines.append("Outcome distribution over %d activated errors:"
                 % activated)
    lines.append(ascii_pie(Counter(pie), total=activated))
    return "\n".join(lines)


def format_fig6(campaign_key, results):
    """Crash-cause distribution for a campaign (Figure 6)."""
    causes = crash_cause_distribution(results)
    total = sum(causes.values())
    lines = ["Figure 6 (%s - %s): causes of %d dumped crashes"
             % (campaign_key, CAMPAIGN_TITLES[campaign_key], total)]
    lines.append(ascii_pie(causes))
    top4 = sum(count for cause, count in causes.items()
               if cause in ("null_pointer", "paging_request",
                            "invalid_opcode", "gpf"))
    lines.append("  four dominant causes cover %.1f%%"
                 % percent(top4, total))
    return "\n".join(lines)


def format_fig7(campaign_key, results, by_subsystem=True):
    """Crash-latency histogram in CPU cycles (Figure 7)."""
    labels = bucket_labels()
    lines = ["Figure 7 (%s - %s): crash latency (CPU cycles)"
             % (campaign_key, CAMPAIGN_TITLES[campaign_key])]
    overall = latency_histogram(results)
    total = sum(overall.values())
    header = "%-10s" + " %8s" * len(labels) + " %8s"
    lines.append(header % (("subsystem",) + tuple(labels) + ("total",)))
    if by_subsystem:
        per = latency_histogram(results, by_subsystem=True)
        for subsystem in ("arch", "fs", "kernel", "mm"):
            histogram = per.get(subsystem, Counter())
            row_total = sum(histogram.values())
            cells = tuple(histogram.get(label, 0) for label in labels)
            lines.append(header % ((subsystem,) + cells + (row_total,)))
    cells = tuple(overall.get(label, 0) for label in labels)
    lines.append(header % (("all",) + cells + (total,)))
    if total:
        within10 = overall.get(labels[0], 0)
        over100k = overall.get(labels[-1], 0)
        lines.append("  %.1f%% of crashes within 10 cycles; %.1f%% beyond "
                     "100k cycles" % (percent(within10, total),
                                      percent(over100k, total)))
    return "\n".join(lines)


def format_fig8(campaign_key, results, source_subsystem):
    """Propagation graph for one source subsystem (Figure 8)."""
    matrix = propagation_matrix(results).get(source_subsystem, Counter())
    causes = propagation_cause_matrix(results)
    total = sum(matrix.values())
    lines = ["Figure 8 (%s, injected into %s): %d dumped crashes"
             % (campaign_key, source_subsystem, total)]
    for destination, count in matrix.most_common():
        lines.append("  %s -> %-8s %5.1f%% (%d)"
                     % (source_subsystem, destination,
                        percent(count, total), count))
        mix = causes.get((source_subsystem, destination), Counter())
        for cause, cause_count in mix.most_common():
            lines.append("      %-18s %5.1f%%"
                         % (cause, percent(cause_count, count)))
    return "\n".join(lines)


def format_severity_table(all_results):
    """The paper's Table 5: inventory of most-severe crashes."""
    cases = most_severe_cases(all_results)
    lines = ["Table 5: most severe (reformat-class) cases: %d"
             % len(cases)]
    lines.append("%-4s %-9s %-10s %-26s %-12s %s"
                 % ("No.", "Campaign", "Subsystem", "Function",
                    "Outcome", "fs damage"))
    for i, result in enumerate(cases, start=1):
        lines.append("%-4d %-9s %-10s %-26s %-12s %s"
                     % (i, result.campaign, result.subsystem,
                        result.function,
                        result.outcome, result.fs_status))
    return "\n".join(lines)


def crash_hang_split(results):
    """(dumped, unknown, hang) triple used in Figure 4's pie notes."""
    dumped = sum(1 for r in results if r.outcome == CRASH_DUMPED)
    unknown = sum(1 for r in results if r.outcome == CRASH_UNKNOWN)
    hangs = sum(1 for r in results if r.outcome == HANG)
    return dumped, unknown, hangs
