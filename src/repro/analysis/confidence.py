"""Confidence intervals for campaign proportions.

The paper justifies its target selection by the need for "a
sufficiently high error activation rate to obtain statistically valid
results" (§5.2).  These helpers quantify that validity for our (much
smaller) campaigns: Wilson score intervals for outcome proportions and
a two-proportion z-test for comparing campaigns.
"""

import math

from scipy import stats


def wilson_interval(successes, total, confidence=0.95):
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` in [0, 1].  Well-behaved for the small
    counts that the rarer outcome categories produce.
    """
    if total == 0:
        return (0.0, 1.0)
    if not 0 <= successes <= total:
        raise ValueError("successes must be within [0, total]")
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    phat = successes / total
    denom = 1.0 + z * z / total
    centre = (phat + z * z / (2 * total)) / denom
    margin = (z / denom) * math.sqrt(
        phat * (1 - phat) / total + z * z / (4 * total * total))
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def proportion_diff_pvalue(successes_a, total_a, successes_b, total_b):
    """Two-sided p-value that two proportions differ (pooled z-test)."""
    if total_a == 0 or total_b == 0:
        return 1.0
    pa = successes_a / total_a
    pb = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    if pooled in (0.0, 1.0):
        return 1.0
    se = math.sqrt(pooled * (1 - pooled)
                   * (1 / total_a + 1 / total_b))
    z = (pa - pb) / se
    return 2.0 * stats.norm.sf(abs(z))


def outcome_intervals(results, confidence=0.95):
    """Wilson intervals for each activated-outcome share.

    Returns dict outcome -> (share, low, high) over activated errors.
    """
    from repro.analysis.stats import outcome_pie
    pie = outcome_pie(results)
    activated = pie.pop("activated", 0)
    out = {}
    for outcome, count in pie.items():
        low, high = wilson_interval(count, activated,
                                    confidence=confidence)
        share = count / activated if activated else 0.0
        out[outcome] = (share, low, high)
    return out


def format_intervals(results, confidence=0.95):
    """Render outcome shares with their confidence intervals."""
    intervals = outcome_intervals(results, confidence=confidence)
    lines = ["Outcome shares with %.0f%% Wilson intervals:"
             % (confidence * 100)]
    for outcome, (share, low, high) in sorted(
            intervals.items(), key=lambda kv: -kv[1][0]):
        lines.append("  %-24s %5.1f%%  [%5.1f%%, %5.1f%%]"
                     % (outcome, share * 100, low * 100, high * 100))
    return "\n".join(lines)
