"""Case-study extraction (the paper's Tables 6 and 7, Figure 5).

For a given injection result, re-derive the before/after machine code:
decode the original instruction bytes and the bytes with the injected
bit flipped, exactly as the paper's tables show (``je -> jl``,
``mov -> lret``, byte-stream resequencing...).
"""

from repro.isa.decoder import decode_all
from repro.isa.disasm import format_instr


def _disasm_window(data, base):
    lines = []
    for ins in decode_all(data, base=base):
        hex_bytes = " ".join("%02x" % b for b in ins.raw)
        lines.append("%-22s %s" % (hex_bytes, format_instr(ins)))
    return lines


def case_study(kernel, result, window=12):
    """Before/after disassembly around one injection.

    Returns a dict with ``before``/``after`` line lists and metadata.
    """
    start = result.addr - kernel.base
    end = min(start + window, len(kernel.code))
    original = bytearray(kernel.code[start:end])
    mutated = bytearray(original)
    mutated[result.byte_offset] ^= 1 << result.bit
    return {
        "function": result.function,
        "subsystem": result.subsystem,
        "campaign": result.campaign,
        "addr": result.addr,
        "outcome": result.outcome,
        "crash_cause": result.crash_cause,
        "before": _disasm_window(bytes(original), result.addr),
        "after": _disasm_window(bytes(mutated), result.addr),
    }


def format_case_study(kernel, result, window=12):
    """Render one before/after case in the paper's Table 6/7 style."""
    case = case_study(kernel, result, window=window)
    lines = []
    lines.append("%s campaign, %s:%s at %#x -> %s%s"
                 % (case["campaign"], case["subsystem"],
                    case["function"], case["addr"], case["outcome"],
                    " (%s)" % case["crash_cause"]
                    if case["crash_cause"] else ""))
    lines.append("  before:")
    for line in case["before"][:4]:
        lines.append("    " + line)
    lines.append("  after bit %d of byte %d flipped:"
                 % (result.bit, result.byte_offset))
    for line in case["after"][:5]:
        lines.append("    " + line)
    return "\n".join(lines)


def find_case_studies(kernel, results, kinds=("not_manifested_branch",
                                              "null_pointer",
                                              "paging_request",
                                              "gpf",
                                              "invalid_opcode")):
    """Pick representative cases for Tables 6 and 7.

    Returns dict kind -> InjectionResult (missing kinds omitted):

    * ``not_manifested_branch`` — an activated branch-bit flip with no
      effect (Table 6).
    * ``null_pointer`` / ``paging_request`` / ``gpf`` /
      ``invalid_opcode`` — dumped crashes per cause (Table 7).
    """
    found = {}
    for result in results:
        if not result.activated:
            continue
        if ("not_manifested_branch" in kinds
                and "not_manifested_branch" not in found
                and result.outcome == "not_manifested"
                and result.mnemonic == "jcc"):
            found["not_manifested_branch"] = result
        if result.outcome == "crash_dumped" and result.crash_cause in kinds \
                and result.crash_cause not in found:
            found[result.crash_cause] = result
    return found
