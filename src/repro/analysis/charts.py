"""Small ASCII chart helpers used by the table renderers."""


def bar(fraction, width=32, fill="#", empty="."):
    """Render a 0..1 fraction as a fixed-width bar."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return fill * filled + empty * (width - filled)


def percent(part, whole):
    """``100*part/whole`` (0 when whole is 0)."""
    if not whole:
        return 0.0
    return 100.0 * part / whole


def ascii_pie(counter, total=None, width=32):
    """Render a Counter as labelled percentage bars (our pie chart)."""
    if total is None:
        total = sum(counter.values())
    lines = []
    for label, count in counter.most_common():
        share = (count / total) if total else 0.0
        lines.append("  %-24s %6.1f%% |%s| (%d)"
                     % (label, share * 100, bar(share, width), count))
    return "\n".join(lines)
