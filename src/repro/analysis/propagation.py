"""Error-propagation analysis (the paper's §7.4 / Figure 8).

An error injected into subsystem S that crashes at an EIP belonging to
subsystem T has propagated S -> T.  The paper reports per-subsystem
propagation graphs with the crash-cause mix at each target node.
"""

from collections import Counter, defaultdict

import networkx as nx

from repro.injection.outcomes import CRASH_DUMPED


def propagation_matrix(results):
    """dict src_subsystem -> Counter(dst_subsystem -> crashes).

    Crashes whose EIP lies outside any kernel function (wild jumps) are
    attributed to ``"(wild)"``.
    """
    matrix = defaultdict(Counter)
    for result in results:
        if result.outcome != CRASH_DUMPED:
            continue
        destination = result.crash_subsystem or "(wild)"
        matrix[result.subsystem][destination] += 1
    return dict(matrix)


def propagation_cause_matrix(results):
    """dict (src, dst) -> Counter(cause) for dumped crashes."""
    matrix = defaultdict(Counter)
    for result in results:
        if result.outcome != CRASH_DUMPED:
            continue
        destination = result.crash_subsystem or "(wild)"
        matrix[(result.subsystem, destination)][result.crash_cause] += 1
    return dict(matrix)


def propagation_rate(results, include_wild=False):
    """Fraction of dumped crashes that left the injected subsystem.

    Matches the paper's measurement semantics: crashes whose EIP cannot
    be attributed to any kernel function ("wild" jumps into data or
    unmapped space) are excluded by default — the paper's
    ksymoops-style analysis could only place crashes that landed in
    symbolized kernel text.  Pass ``include_wild=True`` to count them
    as escapes instead.
    """
    total = 0
    escaped = 0
    for result in results:
        if result.outcome != CRASH_DUMPED:
            continue
        destination = result.crash_subsystem
        if destination is None:
            if not include_wild:
                continue
            destination = "(wild)"
        total += 1
        if destination != result.subsystem:
            escaped += 1
    return (escaped / total) if total else 0.0


def nested_fault_counts(results):
    """Per-subsystem count of crashes that re-faulted while dumping.

    A fault taken *inside* the crash handler writes an extra dump
    record before the final one (the paper's LKCD rig kept only the
    last dump; the harness now records the whole chain on
    ``InjectionResult.nested_crashes``).  Returns dict
    ``src_subsystem -> Counter(nested_subsystem -> count)`` — a second
    propagation signal: where the kernel was when crash handling
    itself went wrong.
    """
    matrix = defaultdict(Counter)
    for result in results:
        if result.outcome != CRASH_DUMPED or not result.nested_crashes:
            continue
        for record in result.nested_crashes:
            destination = record.get("subsystem") or "(wild)"
            matrix[result.subsystem][destination] += 1
    return dict(matrix)


def nested_fault_rate(results):
    """Fraction of dumped crashes whose crash handling re-faulted."""
    total = 0
    nested = 0
    for result in results:
        if result.outcome != CRASH_DUMPED:
            continue
        total += 1
        if result.nested_crashes:
            nested += 1
    return (nested / total) if total else 0.0


def wild_crash_fraction(results):
    """Share of dumped crashes whose EIP left the kernel text entirely."""
    total = 0
    wild = 0
    for result in results:
        if result.outcome != CRASH_DUMPED:
            continue
        total += 1
        if result.crash_subsystem is None:
            wild += 1
    return (wild / total) if total else 0.0


def propagation_graph(results, source_subsystem):
    """Build the Figure 8 graph for one source subsystem.

    Nodes: the source plus every crash subsystem; edge weights carry
    absolute counts and fractions; each destination node stores its
    crash-cause distribution.
    """
    graph = nx.DiGraph()
    counts = propagation_matrix(results).get(source_subsystem, Counter())
    causes = propagation_cause_matrix(results)
    total = sum(counts.values())
    graph.add_node(source_subsystem, role="source", crashes=total)
    for destination, count in counts.items():
        if not graph.has_node(destination):
            graph.add_node(destination, role="target")
        graph.nodes[destination]["causes"] = dict(
            causes.get((source_subsystem, destination), Counter()))
        graph.add_edge(source_subsystem, destination, count=count,
                       fraction=(count / total) if total else 0.0)
    return graph
