"""Aggregation of injection results into the paper's statistics."""

from collections import Counter, defaultdict

from repro.injection.outcomes import (
    CRASH_DUMPED,
    CRASH_HANG_OUTCOMES,
    CRASH_RECOVERED,
    CRASH_UNKNOWN,
    FAIL_SILENCE_VIOLATION,
    HANG,
    NOT_MANIFESTED,
    RECOVERED_CLASSES,
    latency_bucket,
    LATENCY_BUCKETS,
)

SUBSYSTEM_ORDER = ("arch", "fs", "kernel", "mm")


def activation_stats(results):
    """(injected, activated) counts."""
    injected = len(results)
    activated = sum(1 for r in results if r.activated)
    return injected, activated


def subsystem_outcome_table(results):
    """Rows of the paper's Figure 4 left-hand tables.

    Returns a list of dicts per target subsystem (plus a Total row):
    injected, activated, not_manifested, fsv, crash_hang, and the number
    of distinct functions injected.
    """
    per = defaultdict(lambda: Counter())
    funcs = defaultdict(set)
    for result in results:
        row = per[result.subsystem]
        funcs[result.subsystem].add(result.function)
        row["injected"] += 1
        if not result.activated:
            continue
        row["activated"] += 1
        if result.outcome == NOT_MANIFESTED:
            row["not_manifested"] += 1
        elif result.outcome == FAIL_SILENCE_VIOLATION:
            row["fsv"] += 1
        elif result.outcome in CRASH_HANG_OUTCOMES:
            row["crash_hang"] += 1
    rows = []
    total = Counter()
    total_funcs = set()
    for name in SUBSYSTEM_ORDER:
        if name not in per and name not in funcs:
            continue
        row = dict(per[name])
        row["subsystem"] = name
        row["functions"] = len(funcs[name])
        rows.append(row)
        total.update(per[name])
        total_funcs.update((name, f) for f in funcs[name])
    total_row = dict(total)
    total_row["subsystem"] = "Total"
    total_row["functions"] = len(total_funcs)
    rows.append(total_row)
    return rows


def outcome_pie(results):
    """Overall distribution over activated errors (Figure 4 pies).

    Returns Counter over {not_manifested, fail_silence_violation,
    crash_dumped, crash_unknown, hang} plus key ``activated``.
    """
    pie = Counter()
    for result in results:
        if not result.activated:
            continue
        pie["activated"] += 1
        pie[result.outcome] += 1
    return pie


def crash_hang_count(results):
    """Total crash/hang outcomes (the paper's combined column)."""
    return sum(1 for r in results if r.outcome in CRASH_HANG_OUTCOMES)


def crash_cause_distribution(results, dumped_only=True):
    """Counter of crash causes (Figure 6).

    Recovered crashes carry a dump too, so they contribute their cause
    exactly like fatal dumped crashes.
    """
    causes = Counter()
    for result in results:
        if result.outcome in (CRASH_DUMPED, CRASH_RECOVERED) \
                and result.crash_cause:
            causes[result.crash_cause] += 1
        elif not dumped_only and result.outcome in (CRASH_UNKNOWN, HANG):
            causes["unknown"] += 1
    return causes


def latency_histogram(results, by_subsystem=False):
    """Histogram of dumped-crash latencies (Figure 7).

    Returns Counter of bucket label -> count, or, with *by_subsystem*,
    dict subsystem -> Counter.
    """
    if by_subsystem:
        out = defaultdict(Counter)
        for result in results:
            if result.outcome == CRASH_DUMPED and result.latency is not None:
                out[result.subsystem][latency_bucket(result.latency)] += 1
        return dict(out)
    histogram = Counter()
    for result in results:
        if result.outcome == CRASH_DUMPED and result.latency is not None:
            histogram[latency_bucket(result.latency)] += 1
    return histogram


def latency_fraction_within(results, cycles=10):
    """Fraction of dumped crashes within *cycles* of activation."""
    latencies = [r.latency for r in results
                 if r.outcome == CRASH_DUMPED and r.latency is not None]
    if not latencies:
        return 0.0
    return sum(1 for v in latencies if v < cycles) / len(latencies)


def per_function_crash_shares(results):
    """Per-subsystem: which functions produce the crashes (§6.1 finding).

    Returns dict subsystem -> list of (function, crashes, share).
    """
    per = defaultdict(Counter)
    for result in results:
        if result.outcome in CRASH_HANG_OUTCOMES:
            per[result.subsystem][result.function] += 1
    out = {}
    for subsystem, counter in per.items():
        total = sum(counter.values())
        out[subsystem] = [(name, count, count / total)
                          for name, count in counter.most_common()]
    return out


def latency_by_propagation(results):
    """Median crash latency, split by whether the crash escaped.

    §7.3 observes that long-latency crashes indicate propagation; this
    makes the link quantitative.  Returns
    ``{"contained": (n, median), "escaped": (n, median)}``.
    """
    contained = []
    escaped = []
    for result in results:
        if result.outcome != CRASH_DUMPED or result.latency is None:
            continue
        destination = result.crash_subsystem or "(wild)"
        if destination == result.subsystem:
            contained.append(result.latency)
        else:
            escaped.append(result.latency)

    def median(values):
        if not values:
            return None
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    return {"contained": (len(contained), median(contained)),
            "escaped": (len(escaped), median(escaped))}


def severity_counts(results):
    """Counter over severities of crashes (plus no-crash-but-damaged)."""
    counter = Counter()
    for result in results:
        if result.severity:
            counter[result.severity] += 1
    return counter


def most_severe_cases(results):
    """The paper's Table 5: every most-severe (reformat) case."""
    return [r for r in results if r.severity == "most_severe"]


def recovered_counts(results):
    """Counter over recovered sub-classes of CRASH_RECOVERED runs.

    Keys are the :data:`RECOVERED_CLASSES` labels; every recovered run
    has exactly one (the classifier always sets ``recovered_class``).
    """
    counter = Counter()
    for result in results:
        if result.outcome == CRASH_RECOVERED:
            counter[result.recovered_class] += 1
    return counter


def recovery_rate(results):
    """(activated, recovered, share): how many activated errors the
    recovery kernel contained by killing the task instead of halting.

    Share is recovered / activated (0.0 when nothing activated).
    """
    activated = sum(1 for r in results if r.activated)
    recovered = sum(1 for r in results if r.outcome == CRASH_RECOVERED)
    share = recovered / activated if activated else 0.0
    return activated, recovered, share


def recovered_class_order():
    """The recovered sub-class labels, in reporting order."""
    return list(RECOVERED_CLASSES)


def bucket_labels():
    """The Figure 7 latency bucket labels, in order."""
    return [label for _, _, label in LATENCY_BUCKETS]


def merge_results(*result_lists):
    """Concatenate several result lists (e.g. campaigns A+B+C)."""
    merged = []
    for results in result_lists:
        merged.extend(results)
    return merged
