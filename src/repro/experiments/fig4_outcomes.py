"""Figure 4: activation statistics and failure distributions."""

from repro.analysis.confidence import format_intervals
from repro.analysis.tables import crash_hang_split, format_fig4


def run(ctx):
    blocks = []
    for key in ("A", "B", "C"):
        results = ctx.campaign(key).results
        blocks.append(format_fig4(key, results))
        dumped, unknown, hangs = crash_hang_split(results)
        blocks.append("(crash/hang split: %d dumped crash, %d unknown "
                      "crash, %d hang)" % (dumped, unknown, hangs))
        blocks.append(format_intervals(results))
    return "\n\n".join(blocks)
