"""Table 4: definition of the fault-injection campaigns."""

from repro.injection.campaigns import CAMPAIGNS


def run(ctx=None):
    lines = ["Table 4: Definition of Fault Injection Campaigns"]
    lines.append("%-3s %-28s %-38s %s"
                 % ("", "Name", "Target instructions", "Target bit"))
    details = {
        "A": ("all non-branch instructions", "a random bit in each byte"),
        "B": ("conditional branch instructions",
              "a random bit in each byte"),
        "C": ("conditional branch instructions",
              "the bit that reverses the condition"),
    }
    for key in ("A", "B", "C"):
        target, bit = details[key]
        lines.append("%-3s %-28s %-38s %s"
                     % (key, CAMPAIGNS[key].title, target, bit))
    return "\n".join(lines)
