"""Recovery-kernel study: fail-stop vs oops-kill-continue (§7.1 ext.).

The paper's availability ladder (watchdog reboot / fsck / reformat)
prices every crash at minutes of downtime because the measured kernel
is fail-stop: any kernel oops halts the machine.  This exhibit re-runs
the injection campaigns against the *recovery* kernel — exception
fixup on user accesses, oops-kill-continue, in-kernel soft-lockup
watchdog — and measures how many of those crashes the kernel survives
by killing the offending task instead, and what that does to the
downtime bill.

Run standalone::

    python -m repro.experiments.recovery_study [--smoke]

``--smoke`` runs only campaign A at the tiny scale (CI-sized).
"""

import argparse
import sys

from repro.analysis.availability import allowed_failures_per_year
from repro.analysis.stats import recovered_counts, recovery_rate
from repro.injection.outcomes import (
    CRASH_HANG_OUTCOMES,
    CRASH_RECOVERED,
    RECOVERED_CLASSES,
    RECOVERED_LATER_CRASH,
)
from repro.injection.severity import (
    RECOVERED_DOWNTIME,
    SEVERITY_DOWNTIME,
    SEVERITY_NORMAL,
)

DEFAULT_KEYS = ("A", "B", "C")


def baseline_downtime(result):
    """Downtime (s) a fail-stop crash/hang event costs (§7.1 ladder)."""
    severity = result.severity or SEVERITY_NORMAL
    return SEVERITY_DOWNTIME[severity]


def recovered_downtime(result):
    """Downtime (s) charged to a CRASH_RECOVERED run.

    A recovered oops whose disk survived intact costs only the task
    restart (:data:`RECOVERED_DOWNTIME`).  Severe/most-severe damage
    still pays the full ladder price, as does a run that recovered once
    and then went down anyway (*later crash*): the machine rebooted in
    the end, so recovery bought nothing but log lines.
    """
    severity = result.severity or SEVERITY_NORMAL
    if result.recovered_class == RECOVERED_LATER_CRASH:
        return SEVERITY_DOWNTIME[severity]
    if severity != SEVERITY_NORMAL:
        return SEVERITY_DOWNTIME[severity]
    return RECOVERED_DOWNTIME


def study(ctx, keys=DEFAULT_KEYS):
    """Run baseline + recovery campaigns; return the measured digest.

    Returns a dict with one entry per campaign plus ``total``:
    activated counts, crash/hang counts, recovered share, sub-class
    distribution, and the mean downtime per crash event under the
    fail-stop and recovery kernels.
    """
    out = {"campaigns": {}, "keys": list(keys)}
    total = {
        "activated": 0, "crash_hang": 0, "recovered": 0,
        "classes": {name: 0 for name in RECOVERED_CLASSES},
        "baseline_downtime": 0, "baseline_events": 0,
        "recovery_downtime": 0, "recovery_events": 0,
    }
    for key in keys:
        base = ctx.campaign(key).results
        rec = ctx.recovery_campaign(key).results
        base_events = [r for r in base
                       if r.outcome in CRASH_HANG_OUTCOMES]
        rec_events = [r for r in rec
                      if r.outcome in CRASH_HANG_OUTCOMES]
        activated, recovered, _ = recovery_rate(rec)
        classes = recovered_counts(rec)
        entry = {
            "activated": activated,
            "baseline_crash_hang": len(base_events),
            "recovery_crash_hang": len(rec_events),
            "recovered": recovered,
            # Containment rate: share of crash/hang events the kernel
            # survived (not share of all activated errors).
            "recovered_share": (recovered / len(rec_events)
                                if rec_events else 0.0),
            "classes": {name: classes.get(name, 0)
                        for name in RECOVERED_CLASSES},
            "baseline_downtime": sum(baseline_downtime(r)
                                     for r in base_events),
            "recovery_downtime": sum(
                recovered_downtime(r) if r.outcome == CRASH_RECOVERED
                else baseline_downtime(r) for r in rec_events),
        }
        out["campaigns"][key] = entry
        total["activated"] += activated
        total["crash_hang"] += len(rec_events)
        total["recovered"] += recovered
        for name in RECOVERED_CLASSES:
            total["classes"][name] += entry["classes"][name]
        total["baseline_downtime"] += entry["baseline_downtime"]
        total["baseline_events"] += len(base_events)
        total["recovery_downtime"] += entry["recovery_downtime"]
        total["recovery_events"] += len(rec_events)
    total["recovered_share"] = (total["recovered"] / total["crash_hang"]
                                if total["crash_hang"] else 0.0)
    total["baseline_mean_downtime"] = (
        total["baseline_downtime"] / total["baseline_events"]
        if total["baseline_events"] else 0.0)
    total["recovery_mean_downtime"] = (
        total["recovery_downtime"] / total["recovery_events"]
        if total["recovery_events"] else 0.0)
    out["total"] = total
    return out


def measured_recovery(ctx, keys=DEFAULT_KEYS):
    """(recovered share of crash events, mean recovery-mode downtime).

    The hook the §7.1 availability model uses for its "with kernel
    recovery" scenario row.
    """
    total = study(ctx, keys=keys)["total"]
    return total["recovered_share"], total["recovery_mean_downtime"]


def run(ctx, keys=DEFAULT_KEYS):
    digest = study(ctx, keys=keys)
    total = digest["total"]
    lines = ["Recovery study: fail-stop kernel vs recovery kernel"
             " (campaigns %s)" % "+".join(keys)]
    lines.append("")
    lines.append("  campaign  crash/hang(base)  crash/hang(rec)"
                 "  recovered  share")
    for key in keys:
        entry = digest["campaigns"][key]
        lines.append("  %-8s  %16d  %15d  %9d  %4.0f%%"
                     % (key, entry["baseline_crash_hang"],
                        entry["recovery_crash_hang"],
                        entry["recovered"],
                        100 * entry["recovered_share"]))
    lines.append("")
    lines.append("Recovered sub-classes (of %d recovered runs):"
                 % total["recovered"])
    for name in RECOVERED_CLASSES:
        count = total["classes"][name]
        share = count / total["recovered"] if total["recovered"] else 0.0
        lines.append("  %-28s %4d  (%.0f%%)" % (name, count, 100 * share))
    lines.append("")
    lines.append("Downtime bill over the crash/hang population:")
    lines.append("  fail-stop kernel: %6d s over %d events"
                 " (mean %.0f s/event)"
                 % (total["baseline_downtime"], total["baseline_events"],
                    total["baseline_mean_downtime"]))
    lines.append("  recovery kernel:  %6d s over %d events"
                 " (mean %.0f s/event)"
                 % (total["recovery_downtime"], total["recovery_events"],
                    total["recovery_mean_downtime"]))
    saved = total["baseline_downtime"] - total["recovery_downtime"]
    if total["baseline_downtime"]:
        lines.append("  recovery saves %d s (%.0f%% of the bill)"
                     % (saved,
                        100 * saved / total["baseline_downtime"]))
    if total["recovery_mean_downtime"] > 0:
        per_year = allowed_failures_per_year(
            0.99999, total["recovery_mean_downtime"])
        lines.append("")
        lines.append("At five nines, the recovery kernel's mean %.0f s"
                     "/event allows %.1f crash events/yr"
                     % (total["recovery_mean_downtime"], per_year))
    return "\n".join(lines)


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="campaign A only, tiny scale (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    keys = ("A",) if args.smoke else DEFAULT_KEYS
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    text = run(ctx, keys=keys)
    print(text)
    if args.smoke:
        total = study(ctx, keys=keys)["total"]
        if total["recovered"] == 0:
            print("smoke FAILED: no CRASH_RECOVERED outcome observed",
                  file=sys.stderr)
            return 1
        print("smoke OK: %d recovered crash(es)" % total["recovered"],
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
