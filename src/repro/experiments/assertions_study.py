"""§7.4: strategic assertion placement from propagation analysis."""

from repro.analysis.assertions import format_recommendations


def run(ctx):
    return format_recommendations(ctx.all_results(), top=12)
