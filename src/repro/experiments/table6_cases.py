"""Table 6: not-manifested errors in the branch campaign (case studies)."""

from repro.analysis.cases import format_case_study


def run(ctx, max_cases=3):
    results = [r for r in ctx.campaign("B").results
               if r.outcome == "not_manifested" and r.mnemonic == "jcc"]
    lines = ["Table 6: causes of Not Manifested branch errors "
             "(before/after decode)"]
    for result in results[:max_cases]:
        lines.append("")
        lines.append(format_case_study(ctx.kernel, result))
    if len(results) <= 0:
        lines.append("  (no not-manifested branch errors at this scale)")
    return "\n".join(lines)
