"""Figure 5: deep-dive case study of a catastrophic crash.

The paper traces one repeatable *most severe* injection: a single-bit
flip in a ``mov`` inside ``do_generic_file_read()`` silently truncates a
file read and corrupts the filesystem beyond repair.  This experiment
looks for the campaigns' most-severe cases and dissects the best one; if
the sampled campaigns produced none, it falls back to the most damaging
fs/mm failure observed.
"""

from repro.analysis.cases import format_case_study
from repro.machine.disk import fsck


def _pick_case(results):
    def key(result):
        severity_rank = {"most_severe": 2, "severe": 1}.get(
            result.severity, 0)
        in_read_path = 1 if result.function in (
            "do_generic_file_read", "readpage", "kernel_file_read",
            "generic_commit_write") else 0
        return (severity_rank, in_read_path)

    candidates = [r for r in results if r.activated
                  and (r.severity or r.fs_status not in (None, "clean",
                                                         "dirty"))]
    if not candidates:
        candidates = [r for r in results
                      if r.activated and r.outcome == "crash_dumped"
                      and r.subsystem in ("mm", "fs")]
    if not candidates:
        return None
    return max(candidates, key=key)


def run(ctx):
    merged = ctx.all_results()
    result = _pick_case(merged)
    lines = ["Figure 5: case study of the most severe observed failure"]
    if result is None:
        lines.append("  (no damaging failure observed at this scale)")
        return "\n".join(lines)
    lines.append("")
    lines.append(format_case_study(ctx.kernel, result, window=16))
    lines.append("")
    lines.append("  workload: %s   run status: %s   exit: %r"
                 % (result.workload, result.run_status, result.exit_code))
    if result.severity:
        lines.append("  severity: %s   filesystem: %s"
                     % (result.severity, result.fs_status))
    if result.console_tail:
        lines.append("  console tail: %r" % result.console_tail[-120:])
    return "\n".join(lines)


def replay(ctx, result):
    """Re-run one injection and fsck the aftermath (detailed replay)."""
    from repro.injection.campaigns import InjectionSpec
    spec = InjectionSpec(
        campaign=result.campaign, function=result.function,
        subsystem=result.subsystem, instr_addr=result.addr,
        instr_len=1, byte_offset=result.byte_offset, bit=result.bit,
        mnemonic=result.mnemonic, workload=result.workload)
    replayed = ctx.harness.run_spec(spec)
    golden = ctx.harness.golden(result.workload)
    report = fsck(golden.final_disk)
    return replayed, report
