"""Symbolic error-propagation verdicts vs dynamic outcomes.

The propagation analyzer (:mod:`repro.staticanalysis.propagation`)
predicts, for every campaign site, a *trap set* (which exception
classes the corruption can raise), a *crash-latency bound* in
instructions along the shortest/longest corrupted paths, and the
*reachable subsystem set* the corruption can spread to.  This exhibit
cross-tabulates those symbolic verdicts against the measured campaign
outcomes — the static counterparts of the paper's Figure 7 (crash
latency) and Figure 8 (cross-subsystem propagation):

* **trap containment** — among dumped crashes, how often the actual
  trap class (page fault, GPF, invalid opcode, divide error) is inside
  the predicted set;
* **latency containment** — among crashes with a measured
  activation-to-crash latency, how often it falls inside the static
  ``[lower, upper]`` instruction bound (lower bound is cycle-safe:
  every instruction costs at least one cycle; the upper bound allows
  the worst-case cycles-per-instruction plus trap-entry slack);
* **spread containment** — among attributable crashes, how often the
  crashing subsystem is inside the statically reachable set;
* per-trap-class **precision/recall** over dumped crashes;
* the predicted-silent share of the plan (sites the solver proves can
  only fail silently — candidates for deprioritization).

``--smoke`` is the CI gate the acceptance criteria name: a tiny-scale
campaign A, fs slice — >= 80% of dumped fs crashes must have their
actual trap class within the predicted set, and >= 70% of crashes with
a measured latency must fall inside the static bound.

Run standalone::

    python -m repro.experiments.static_propagation [--smoke]
"""

import argparse
import sys
from collections import Counter

from repro.injection.outcomes import CRASH_DUMPED, NOT_ACTIVATED
from repro.staticanalysis.propagation import (
    PropagationAnalyzer,
    SiteVerdict,
    TRAP_NONE,
    WILD_SUBSYSTEM,
    latency_within_bounds,
    trap_of_cause,
)

DEFAULT_KEYS = ("A", "B", "C")

#: Minimum dumped crashes in the smoke slice for the gate to count.
_SMOKE_MIN_SUPPORT = 5
_SMOKE_TRAP_GATE = 0.80
_SMOKE_LATENCY_GATE = 0.70

#: Trap classes scored individually (TRAP_NONE has no crash to score).
_SCORED_TRAPS = ("page_fault", "gpf", "invalid_opcode", "divide_error")


def verdict_for(analyzer, result):
    """The static verdict for a result's site.

    Plans run with ``--static-verdicts`` record the prediction on the
    result itself; anything else (including cached campaigns) is
    scored post-hoc from the site coordinates every result carries —
    both paths go through the same solver, so the verdicts agree.
    """
    if result.pred_traps is not None:
        return SiteVerdict(
            result.pred_seed or "unknown", result.pred_traps,
            result.pred_latency_lo, result.pred_latency_hi,
            result.pred_subsystems or (), False)
    return analyzer.analyze_site(result.function, result.addr,
                                 result.byte_offset, result.bit)


def _trap_hit(verdict, result):
    """Is the crash's actual trap class inside the predicted set?

    Causes outside the static vocabulary (``kernel_panic`` reached via
    a sanity check, watchdog-detected hangs) map to ``other`` and count
    as contained — the solver claims which *hardware traps* can fire,
    not which software checks might trip first.
    """
    actual = trap_of_cause(result.crash_cause)
    return actual == "other" or actual in verdict.traps


def _spread_hit(verdict, result):
    """Is the crashing subsystem inside the reachable set?

    A predicted wild jump can land anywhere, so ``(wild)`` in the
    reachable set covers every destination.
    """
    if WILD_SUBSYSTEM in verdict.subsystems:
        return True
    destination = result.crash_subsystem or WILD_SUBSYSTEM
    return (destination in verdict.subsystems
            or destination == result.subsystem)


def study(ctx, keys=DEFAULT_KEYS):
    """Score the static verdicts against the campaigns' outcomes."""
    analyzer = PropagationAnalyzer(ctx.kernel)
    pairs = []
    for key in keys:
        for result in ctx.campaign(key).results:
            pairs.append((verdict_for(analyzer, result), result))

    crashed = [(v, r) for v, r in pairs if r.outcome == CRASH_DUMPED]
    trap_hits = sum(1 for v, r in crashed if _trap_hit(v, r))
    timed = [(v, r) for v, r in crashed if r.latency is not None]
    latency_hits = sum(
        1 for v, r in timed
        if latency_within_bounds(r.latency, v.latency_lo, v.latency_hi))
    attributable = [(v, r) for v, r in crashed
                    if r.crash_subsystem is not None]
    spread_hits = sum(1 for v, r in attributable if _spread_hit(v, r))

    # Static Figure 7: predicted trap set vs actual crash cause.
    crosstab = {}
    for verdict, result in crashed:
        signature = "|".join(sorted(verdict.traps)) or "(empty)"
        crosstab.setdefault(signature, Counter())[
            result.crash_cause or "?"] += 1

    scores = {}
    for trap in _SCORED_TRAPS:
        claimed = [r for v, r in crashed if trap in v.traps]
        actual = [r for v, r in crashed
                  if trap_of_cause(r.crash_cause) == trap]
        hits = sum(1 for r in claimed
                   if trap_of_cause(r.crash_cause) == trap)
        scores[trap] = {
            "claimed": len(claimed),
            "actual": len(actual),
            "precision": hits / len(claimed) if claimed else None,
            "recall": hits / len(actual) if actual else None,
        }

    activated = [(v, r) for v, r in pairs if r.outcome != NOT_ACTIVATED]
    silent_only = [(v, r) for v, r in activated
                   if v.traps == frozenset((TRAP_NONE,))]
    silent_ok = sum(1 for v, r in silent_only
                    if r.outcome != CRASH_DUMPED)
    bounded = sum(1 for v, _ in pairs if v.latency_hi is not None)

    return {
        "keys": list(keys),
        "total": len(pairs),
        "crashed": len(crashed),
        "trap_hits": trap_hits,
        "timed": len(timed),
        "latency_hits": latency_hits,
        "attributable": len(attributable),
        "spread_hits": spread_hits,
        "crosstab": crosstab,
        "scores": scores,
        "silent_claimed": len(silent_only),
        "silent_ok": silent_ok,
        "bounded_share": bounded / len(pairs) if pairs else 0.0,
    }


def _rate(hits, total):
    return "-" if not total else "%d/%d (%.0f%%)" % (hits, total,
                                                     100 * hits / total)


def run(ctx, keys=DEFAULT_KEYS):
    digest = study(ctx, keys=keys)
    lines = ["Symbolic propagation verdicts vs dynamic outcomes"
             " (campaigns %s, %d injections)"
             % ("+".join(digest["keys"]), digest["total"])]
    lines.append("")
    lines.append("  trap containment (crash class in predicted set): %s"
                 % _rate(digest["trap_hits"], digest["crashed"]))
    lines.append("  latency containment (measured in static bound):  %s"
                 % _rate(digest["latency_hits"], digest["timed"]))
    lines.append("  spread containment (crash subsystem reachable):  %s"
                 % _rate(digest["spread_hits"], digest["attributable"]))
    lines.append("  predicted silent-only holding (no crash dump):   %s"
                 % _rate(digest["silent_ok"], digest["silent_claimed"]))
    lines.append("  sites with a finite latency upper bound:         "
                 "%.1f%%" % (100 * digest["bounded_share"]))
    lines.append("")

    causes = sorted({c for row in digest["crosstab"].values()
                     for c in row})
    if causes:
        lines.append("Predicted trap set vs actual crash cause"
                     " (static Figure 7):")
        header = "  %-34s" % "predicted traps" + "".join(
            "  %10s" % c.replace("_", " ")[:10] for c in causes)
        lines.append(header)
        for signature in sorted(digest["crosstab"]):
            row = digest["crosstab"][signature]
            lines.append("  %-34s" % signature[:34] + "".join(
                "  %10d" % row.get(c, 0) for c in causes))
        lines.append("")

    lines.append("Per-trap-class scores over dumped crashes:")
    lines.append("  %-16s %8s %8s %10s %10s"
                 % ("trap class", "claimed", "actual", "precision",
                    "recall"))
    for trap in _SCORED_TRAPS:
        score = digest["scores"][trap]
        lines.append("  %-16s %8d %8d %10s %10s" % (
            trap, score["claimed"], score["actual"],
            "-" if score["precision"] is None
            else "%.2f" % score["precision"],
            "-" if score["recall"] is None
            else "%.2f" % score["recall"]))
    return "\n".join(lines)


def smoke_gate(ctx, subsystem="fs"):
    """The acceptance gate: tiny fs slice of campaign A.

    Returns ``(ok, lines)`` where *lines* describe the measurement.
    """
    analyzer = PropagationAnalyzer(ctx.kernel)
    crashed = []
    for result in ctx.campaign("A").results:
        if result.subsystem != subsystem:
            continue
        if result.outcome != CRASH_DUMPED:
            continue
        crashed.append((verdict_for(analyzer, result), result))

    lines = []
    if len(crashed) < _SMOKE_MIN_SUPPORT:
        lines.append("smoke FAILED: only %d dumped %s crashes "
                     "(need %d)" % (len(crashed), subsystem,
                                    _SMOKE_MIN_SUPPORT))
        return False, lines

    trap_hits = sum(1 for v, r in crashed if _trap_hit(v, r))
    timed = [(v, r) for v, r in crashed if r.latency is not None]
    latency_hits = sum(
        1 for v, r in timed
        if latency_within_bounds(r.latency, v.latency_lo, v.latency_hi))

    trap_rate = trap_hits / len(crashed)
    lines.append("%s slice: trap containment %s, latency containment %s"
                 % (subsystem, _rate(trap_hits, len(crashed)),
                    _rate(latency_hits, len(timed))))
    ok = True
    if trap_rate < _SMOKE_TRAP_GATE:
        lines.append("smoke FAILED: trap containment %.2f < %.2f"
                     % (trap_rate, _SMOKE_TRAP_GATE))
        ok = False
    if timed:
        latency_rate = latency_hits / len(timed)
        if latency_rate < _SMOKE_LATENCY_GATE:
            lines.append("smoke FAILED: latency containment %.2f < %.2f"
                         % (latency_rate, _SMOKE_LATENCY_GATE))
            ok = False
    if ok:
        lines.append("smoke OK")
    return ok, lines


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="campaign A only at tiny scale, fs slice; "
                             "gate trap containment >= 0.80 and "
                             "latency containment >= 0.70 (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    keys = ("A",) if args.smoke else DEFAULT_KEYS
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    print(run(ctx, keys=keys))
    if args.smoke:
        ok, lines = smoke_gate(ctx)
        for line in lines:
            print(line, file=sys.stderr)
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
