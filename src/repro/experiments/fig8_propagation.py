"""Figure 8: error propagation between subsystems."""

from repro.analysis.propagation import propagation_rate, \
    wild_crash_fraction
from repro.analysis.tables import format_fig8


def run(ctx):
    blocks = []
    for key in ("A", "B", "C"):
        results = ctx.campaign(key).results
        for source in ("fs", "kernel"):
            blocks.append(format_fig8(key, results, source))
    merged = ctx.all_results()
    blocks.append(
        "Overall propagation rate over attributable crashes: %.1f%% "
        "(paper: <10%%).  %.1f%% of dumped crashes had wild EIPs "
        "outside kernel text and cannot be attributed, as in a "
        "ksymoops-based analysis."
        % (100 * propagation_rate(merged),
           100 * wild_crash_fraction(merged)))
    return "\n\n".join(blocks)
