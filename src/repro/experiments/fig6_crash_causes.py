"""Figure 6: distribution of crash causes per campaign."""

from repro.analysis.tables import format_fig6


def run(ctx):
    return "\n\n".join(format_fig6(key, ctx.campaign(key).results)
                       for key in ("A", "B", "C"))
