"""Table 3: outcome categories, as implemented by the classifier."""

from repro.injection.outcomes import OUTCOME_ORDER

_DESCRIPTIONS = {
    "not_activated": "the corrupted instruction was never executed",
    "not_manifested": "executed, but console/exit/filesystem all match "
                      "the golden run",
    "fail_silence_violation": "run completed but output, exit status or "
                              "on-disk data differ from the golden run",
    "crash_dumped": "kernel oops with a successful crash dump "
                    "(LKCD-equivalent record captured)",
    "crash_recovered": "kernel dumped, killed the offending task and "
                       "kept running (recovery kernels only; "
                       "sub-classified by post-recovery behaviour)",
    "crash_unknown": "kernel died without managing a dump "
                     "(triple fault / wedged with interrupts off)",
    "hang": "watchdog expired: the system stopped making progress",
    "harness_error": "the harness itself failed (injector exception or "
                     "worker death); reported separately with a repro "
                     "bundle, excluded from kernel statistics",
}


def run(ctx=None):
    lines = ["Table 3: Outcome Categories (as classified by the harness)"]
    for key in OUTCOME_ORDER:
        lines.append("  %-24s %s" % (key, _DESCRIPTIONS[key]))
    return "\n".join(lines)
