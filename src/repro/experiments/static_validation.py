"""Static pre-classifier vs dynamic campaign outcomes (validation).

The static-analysis layer (:mod:`repro.staticanalysis`) predicts, for
every campaign site ``(instruction, byte, bit)``, what the flip will do
before any machine boots.  This exhibit cross-tabulates those
predictions against the *measured* outcomes of campaigns A/B/C and
reports per-class precision/recall, answering the engineering question
the paper's §6 raises implicitly: how much of a fault-injection
campaign's budget is spent learning what a compiler-grade analysis
already knows?

Each prediction class makes a falsifiable claim about activated runs:

=====================  =============================================
Prediction             Claim (among activated injections)
=====================  =============================================
PRED_DEAD              benign: outcome is NOT_MANIFESTED
PRED_INVALID_OPCODE    crash whose cause is *invalid opcode*
PRED_LENGTH_CHANGE     manifested (anything but NOT_MANIFESTED)
PRED_BRANCH_REVERSAL   manifested (wrong path taken)
PRED_UNKNOWN           none (reported, not scored)
=====================  =============================================

PRED_DEAD is the load-bearing one — ``--prune-dead`` drops those sites
from the plan — so ``--smoke`` gates on its precision: it runs a
targeted slice of predicted-dead fs sites through the real harness and
fails unless >= 90% of the activated runs are NOT_MANIFESTED.

Run standalone::

    python -m repro.experiments.static_validation [--smoke]
"""

import argparse
import sys
from collections import Counter

from repro.injection.campaigns import InjectionSpec
from repro.injection.outcomes import (
    CAUSE_INVALID_OPCODE,
    NOT_ACTIVATED,
    NOT_MANIFESTED,
    OUTCOME_ORDER,
)
from repro.staticanalysis.predict import (
    PRED_BRANCH_REVERSAL,
    PRED_CLASSES,
    PRED_DEAD,
    PRED_INVALID_OPCODE,
    PRED_LENGTH_CHANGE,
    PRED_UNKNOWN,
    PreClassifier,
)

DEFAULT_KEYS = ("A", "B", "C")

#: Minimum activated predicted-dead runs for the smoke gate to count.
_SMOKE_MIN_SUPPORT = 5
_SMOKE_MAX_RUNS = 40


def _claim_holds(pred, result):
    """Does *result* (an activated run) satisfy *pred*'s claim?"""
    if pred == PRED_DEAD:
        return result.outcome == NOT_MANIFESTED
    if pred == PRED_INVALID_OPCODE:
        return result.crash_cause == CAUSE_INVALID_OPCODE
    if pred in (PRED_LENGTH_CHANGE, PRED_BRANCH_REVERSAL):
        return result.outcome != NOT_MANIFESTED
    return None                      # PRED_UNKNOWN makes no claim


def _positive(pred, result):
    """Does *result* belong to *pred*'s positive set (recall basis)?"""
    return _claim_holds(pred, result)


def classify_results(kernel, results):
    """Attach a prediction to every result; returns [(pred, result)].

    Results planned with ``preclassify`` already carry ``pred_class``;
    older cached campaigns are classified post-hoc from the site
    coordinates every result records.
    """
    pre = PreClassifier(kernel)
    out = []
    for result in results:
        pred = result.pred_class
        if pred is None:
            pred = pre.classify_site(result.function, result.addr,
                                     result.byte_offset, result.bit)
        out.append((pred, result))
    return out


def study(ctx, keys=DEFAULT_KEYS):
    """Cross-tabulate predictions vs outcomes over the campaigns.

    Returns a dict with the crosstab (prediction -> outcome counter),
    per-class precision/recall over activated runs, and the share of
    the campaign a static pass could have skipped or front-loaded.
    """
    merged = []
    for key in keys:
        merged.extend(ctx.campaign(key).results)
    pairs = classify_results(ctx.kernel, merged)

    crosstab = {pred: Counter() for pred in PRED_CLASSES}
    for pred, result in pairs:
        crosstab[pred][result.outcome] += 1

    activated = [(pred, r) for pred, r in pairs
                 if r.outcome != NOT_ACTIVATED]
    scores = {}
    for pred in PRED_CLASSES:
        if pred == PRED_UNKNOWN:
            continue
        claimed = [r for p, r in activated if p == pred]
        hits = sum(1 for r in claimed if _claim_holds(pred, r))
        positives = sum(1 for p, r in activated if _positive(pred, r))
        found = sum(1 for p, r in activated
                    if p == pred and _positive(pred, r))
        scores[pred] = {
            "claimed": len(claimed),
            "precision": hits / len(claimed) if claimed else None,
            "positives": positives,
            "recall": found / positives if positives else None,
        }

    total = len(pairs)
    dead = sum(1 for p, _ in pairs if p == PRED_DEAD)
    bounded = sum(1 for p, _ in pairs if p != PRED_UNKNOWN)
    return {
        "keys": list(keys),
        "total": total,
        "crosstab": crosstab,
        "scores": scores,
        "skippable_share": dead / total if total else 0.0,
        "bounded_share": bounded / total if total else 0.0,
    }


def dead_slice_specs(ctx, subsystem="fs", limit=_SMOKE_MAX_RUNS):
    """Covered, predicted-dead injection specs from *subsystem*.

    A random campaign slice can easily contain zero activated
    PRED_DEAD sites (they are ~0.3% of the space), so the smoke gate
    enumerates them directly: walk the subsystem's instructions,
    classify every (byte, bit), and keep the dead sites the golden
    coverage says will actually execute.
    """
    kernel = ctx.kernel
    harness = ctx.harness
    pre = PreClassifier(kernel)
    specs = []
    for info in sorted(kernel.functions, key=lambda f: f.start):
        if info.subsystem != subsystem:
            continue
        _, _, instrs, _ = pre._function_state(info.name)
        for addr in sorted(instrs):
            ins = instrs[addr]
            for byte_offset in range(ins.length):
                for bit in range(8):
                    pred = pre.classify_site(info.name, addr,
                                             byte_offset, bit)
                    if pred != PRED_DEAD:
                        continue
                    spec = InjectionSpec(
                        campaign="static", function=info.name,
                        subsystem=info.subsystem, instr_addr=addr,
                        instr_len=ins.length, byte_offset=byte_offset,
                        bit=bit, mnemonic=ins.op,
                        pred_class=PRED_DEAD)
                    if harness.assign_workload(spec):
                        specs.append(spec)
                        if len(specs) >= limit:
                            return specs
    return specs


def smoke_dead_precision(ctx):
    """Run the predicted-dead slice; returns (activated, benign).

    The gate the acceptance criterion names: among *activated*
    predicted-dead injections, the share ending NOT_MANIFESTED must
    reach 0.9.
    """
    specs = dead_slice_specs(ctx)
    harness = ctx.harness
    activated = benign = 0
    for spec in specs:
        result = harness.run_spec(spec)
        if result.outcome == NOT_ACTIVATED:
            continue
        activated += 1
        if result.outcome == NOT_MANIFESTED:
            benign += 1
    return activated, benign


def run(ctx, keys=DEFAULT_KEYS):
    digest = study(ctx, keys=keys)
    lines = ["Static pre-classifier vs dynamic outcomes"
             " (campaigns %s, %d injections)"
             % ("+".join(keys), digest["total"])]
    lines.append("")

    outcomes = [o for o in OUTCOME_ORDER
                if any(digest["crosstab"][p].get(o)
                       for p in PRED_CLASSES)]
    header = "  %-22s" % "prediction" + "".join(
        "  %12s" % o.replace("_", " ")[:12] for o in outcomes)
    lines.append(header)
    for pred in PRED_CLASSES:
        row = digest["crosstab"][pred]
        if not row:
            continue
        lines.append("  %-22s" % pred + "".join(
            "  %12d" % row.get(o, 0) for o in outcomes))
    lines.append("")

    lines.append("Per-class scores over activated runs"
                 " (claim in module docstring):")
    lines.append("  %-22s %8s %10s %10s" % ("prediction", "claimed",
                                            "precision", "recall"))
    for pred, score in digest["scores"].items():
        lines.append("  %-22s %8d %10s %10s" % (
            pred, score["claimed"],
            "-" if score["precision"] is None
            else "%.2f" % score["precision"],
            "-" if score["recall"] is None
            else "%.2f" % score["recall"]))
    lines.append("")
    lines.append("Campaign budget a static pass bounds: %.1f%%"
                 " (prunable as provably dead: %.1f%%)"
                 % (100 * digest["bounded_share"],
                    100 * digest["skippable_share"]))
    return "\n".join(lines)


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="campaign A only at tiny scale, plus the "
                             "predicted-dead precision gate (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    keys = ("A",) if args.smoke else DEFAULT_KEYS
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    print(run(ctx, keys=keys))
    if args.smoke:
        activated, benign = smoke_dead_precision(ctx)
        if activated < _SMOKE_MIN_SUPPORT:
            print("smoke FAILED: only %d activated predicted-dead "
                  "runs (need %d)" % (activated, _SMOKE_MIN_SUPPORT),
                  file=sys.stderr)
            return 1
        precision = benign / activated
        print("predicted-dead slice: %d activated, %d benign "
              "(precision %.2f)" % (activated, benign, precision),
              file=sys.stderr)
        if precision < 0.9:
            print("smoke FAILED: PRED_DEAD precision %.2f < 0.90"
                  % precision, file=sys.stderr)
            return 1
        print("smoke OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
