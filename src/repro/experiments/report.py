"""Assemble every exhibit into one report (EXPERIMENTS.md body)."""

import time

from repro.experiments import (
    assertions_study,
    availability_model,
    delta_validation,
    equivalence_validation,
    fabric_validation,
    fault_model_study,
    register_extension,
    fig1_subsystem_sizes,
    fig4_outcomes,
    fig5_case_study,
    fig6_crash_causes,
    fig7_latency,
    fig8_propagation,
    recovery_study,
    sensitivity,
    static_propagation,
    static_validation,
    table1_profile,
    table2_setup,
    table3_outcomes,
    table4_campaigns,
    table5_severe,
    table6_cases,
    table7_cases,
    trace_validation,
)

_EXHIBITS = (
    ("Figure 1 — kernel subsystem sizes", fig1_subsystem_sizes),
    ("Table 1 — profiled function distribution", table1_profile),
    ("Table 2 — experimental setup", table2_setup),
    ("Table 3 — outcome categories", table3_outcomes),
    ("Table 4 — campaign definitions", table4_campaigns),
    ("Figure 4 — activation and failure distribution", fig4_outcomes),
    ("Table 5 — most severe crashes", table5_severe),
    ("Figure 5 — catastrophic case study", fig5_case_study),
    ("Figure 6 — crash causes", fig6_crash_causes),
    ("Figure 7 — crash latency", fig7_latency),
    ("Figure 8 — error propagation", fig8_propagation),
    ("Table 6 — not-manifested branch cases", table6_cases),
    ("Table 7 — crash-cause case studies", table7_cases),
    ("§7.1 — availability model", availability_model),
    ("§7.1 ext. — recovery-kernel study", recovery_study),
    ("§6.1 — per-function sensitivity", sensitivity),
    ("Extension — static pre-classifier validation",
     static_validation),
    ("Extension — symbolic propagation verdicts",
     static_propagation),
    ("Extension — flight-recorder divergence validation",
     trace_validation),
    ("§7.4 — strategic assertion placement", assertions_study),
    ("Extension — register-corruption campaign R", register_extension),
    ("Extension — pluggable fault-model study", fault_model_study),
    ("Extension — campaign-fabric equivalence", fabric_validation),
    ("Extension — delta-campaign equivalence", delta_validation),
    ("Extension — equivalence-class extrapolation",
     equivalence_validation),
)


def build_report(ctx):
    """Run every exhibit against *ctx*; returns markdown text."""
    parts = []
    parts.append("# Reproduction run (scale=%s, seed=%d)"
                 % (ctx.scale, ctx.seed))
    parts.append("")
    started = time.time()
    for title, module in _EXHIBITS:
        parts.append("## %s" % title)
        parts.append("")
        parts.append("```")
        parts.append(module.run(ctx))
        parts.append("```")
        parts.append("")
    parts.append("_Generated in %.1f s._" % (time.time() - started))
    return "\n".join(parts)
