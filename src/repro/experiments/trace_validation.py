"""Flight-recorder divergence measurements vs static predictions.

The traced campaigns (:meth:`ExperimentContext.traced_campaign`) attach
the golden-vs-injected trace diff to every activated result: the first
architectural divergence after the flip, the empirical flip->divergence
and divergence->trap distances, and the ordered subsystem spread the
corrupted run touched.  This exhibit is the *dynamic ground truth* the
symbolic propagation analyzer (PR 4) is held against:

* **measurement coverage** — what share of activated crashes get a
  measured flip-to-divergence latency at all (the flight recorder's
  recall as an oracle);
* **static latency cross-check** — how often the trace-measured
  flip-to-trap distance falls inside the static ``[lo, hi]``
  instruction bound (the empirical counterpart of the
  ``static_propagation`` containment score);
* **spread cross-check** — how often the observed post-divergence
  subsystem spread intersects the statically reachable set;
* the empirical **propagation-distance distribution** (instructions
  from flip to first visible divergence) — the paper's Figure 7 axis
  re-measured at event granularity instead of from dump timestamps.

``--smoke`` is the CI gate the acceptance criteria name: on the tiny
fs slice of campaign A, >= 95% of activated crashes must carry a
measured flip-to-divergence latency, and the trace-measured latency
must fall within the static bounds at least as often as the
``static_propagation`` smoke gate requires (>= 70%).

Run standalone::

    python -m repro.experiments.trace_validation [--smoke]
"""

import argparse
import sys
from collections import Counter

from repro.injection.outcomes import (
    CRASH_DUMPED,
    LATENCY_BUCKETS,
    NOT_ACTIVATED,
    latency_bucket,
)
from repro.staticanalysis.propagation import (
    PropagationAnalyzer,
    WILD_SUBSYSTEM,
    latency_within_bounds,
)

DEFAULT_KEYS = ("A",)

#: Minimum dumped crashes in the smoke slice for the gate to count.
_SMOKE_MIN_SUPPORT = 5
_SMOKE_MEASURED_GATE = 0.95
_SMOKE_LATENCY_GATE = 0.70


def measured_flip_to_trap(result):
    """Trace-measured flip->trap distance in cycles, or ``None``.

    The sum of the two diff legs (flip->divergence plus
    divergence->trap); unlike ``result.latency`` it is measured from
    the event stream, not the dump timestamp, and is not
    crash-overhead corrected — :func:`latency_within_bounds` already
    allows trap-entry slack.
    """
    f2d = result.trace_flip_to_divergence_cycles
    d2t = result.trace_divergence_to_trap_cycles
    if f2d is None or d2t is None:
        return None
    return f2d + d2t


def _spread_hit(verdict, result):
    """Does the observed spread intersect the predicted reachable set?"""
    observed = set(result.trace_subsystems or ())
    if not observed:
        return False
    if WILD_SUBSYSTEM in verdict.subsystems:
        return True
    predicted = set(verdict.subsystems) | {result.subsystem}
    return bool(observed & predicted)


def study(ctx, keys=DEFAULT_KEYS):
    """Score the trace measurements against the static verdicts."""
    analyzer = PropagationAnalyzer(ctx.kernel)
    results = []
    for key in keys:
        results.extend(ctx.traced_campaign(key).results)

    activated = [r for r in results if r.outcome != NOT_ACTIVATED]
    diverged = [r for r in activated if r.trace_diverged]
    crashed = [r for r in activated if r.outcome == CRASH_DUMPED]
    measured = [r for r in crashed
                if r.trace_flip_to_divergence_cycles is not None]

    verdicts = {
        id(r): analyzer.analyze_site(r.function, r.addr, r.byte_offset,
                                     r.bit)
        for r in crashed
    }
    timed = [(verdicts[id(r)], r, measured_flip_to_trap(r))
             for r in crashed
             if measured_flip_to_trap(r) is not None]
    latency_hits = sum(
        1 for v, r, cycles in timed
        if latency_within_bounds(cycles, v.latency_lo, v.latency_hi))
    spread_scored = [r for r in crashed if r.trace_subsystems]
    spread_hits = sum(1 for r in spread_scored
                      if _spread_hit(verdicts[id(r)], r))

    # Empirical Figure 7 at event granularity: instructions from flip
    # to first visible divergence, bucketed on the paper's axis.
    distance_hist = Counter()
    for r in diverged:
        instrs = r.trace_flip_to_divergence_instrs
        if instrs is not None:
            distance_hist[latency_bucket(instrs)] += 1

    spread_sizes = sorted(len(r.trace_subsystems or ())
                          for r in diverged)
    complete = sum(1 for r in activated if r.trace_complete)

    return {
        "keys": list(keys),
        "total": len(results),
        "activated": len(activated),
        "diverged": len(diverged),
        "crashed": len(crashed),
        "measured": len(measured),
        "timed": len(timed),
        "latency_hits": latency_hits,
        "spread_scored": len(spread_scored),
        "spread_hits": spread_hits,
        "distance_hist": dict(distance_hist),
        "median_spread": (spread_sizes[len(spread_sizes) // 2]
                          if spread_sizes else 0),
        "complete": complete,
    }


def _rate(hits, total):
    return "-" if not total else "%d/%d (%.0f%%)" % (hits, total,
                                                     100 * hits / total)


def run(ctx, keys=DEFAULT_KEYS):
    digest = study(ctx, keys=keys)
    lines = ["Flight-recorder divergence vs static predictions"
             " (campaigns %s, %d injections)"
             % ("+".join(digest["keys"]), digest["total"])]
    lines.append("")
    lines.append("  activated runs that visibly diverged:            %s"
                 % _rate(digest["diverged"], digest["activated"]))
    lines.append("  dumped crashes with measured flip->divergence:   %s"
                 % _rate(digest["measured"], digest["crashed"]))
    lines.append("  trace latency inside static [lo, hi] bound:      %s"
                 % _rate(digest["latency_hits"], digest["timed"]))
    lines.append("  observed spread intersects predicted reachable:  %s"
                 % _rate(digest["spread_hits"], digest["spread_scored"]))
    lines.append("  complete traces (no ring wrap):                  %s"
                 % _rate(digest["complete"], digest["activated"]))
    lines.append("  median post-divergence spread: %d subsystems"
                 % digest["median_spread"])
    lines.append("")
    lines.append("Flip -> first-divergence distance (instructions,"
                 " paper Figure 7 axis):")
    hist = digest["distance_hist"]
    total = sum(hist.values()) or 1
    for _, _, label in LATENCY_BUCKETS:
        count = hist.get(label, 0)
        bar = "#" * int(round(40 * count / total))
        lines.append("  %-8s %5d  %s" % (label, count, bar))
    return "\n".join(lines)


def smoke_gate(ctx, subsystem="fs"):
    """The acceptance gate: tiny fs slice of campaign A.

    Returns ``(ok, lines)`` where *lines* describe the measurement.
    """
    analyzer = PropagationAnalyzer(ctx.kernel)
    crashed = [r for r in ctx.traced_campaign("A").results
               if r.subsystem == subsystem
               and r.outcome == CRASH_DUMPED]

    lines = []
    if len(crashed) < _SMOKE_MIN_SUPPORT:
        lines.append("smoke FAILED: only %d dumped %s crashes "
                     "(need %d)" % (len(crashed), subsystem,
                                    _SMOKE_MIN_SUPPORT))
        return False, lines

    measured = [r for r in crashed
                if r.trace_flip_to_divergence_cycles is not None]
    timed = [(analyzer.analyze_site(r.function, r.addr, r.byte_offset,
                                    r.bit),
              measured_flip_to_trap(r))
             for r in crashed if measured_flip_to_trap(r) is not None]
    latency_hits = sum(
        1 for v, cycles in timed
        if latency_within_bounds(cycles, v.latency_lo, v.latency_hi))

    measured_rate = len(measured) / len(crashed)
    lines.append("%s slice: measured divergence %s, "
                 "static-bound containment %s"
                 % (subsystem, _rate(len(measured), len(crashed)),
                    _rate(latency_hits, len(timed))))
    ok = True
    if measured_rate < _SMOKE_MEASURED_GATE:
        lines.append("smoke FAILED: measured-divergence share %.2f < %.2f"
                     % (measured_rate, _SMOKE_MEASURED_GATE))
        ok = False
    if timed:
        latency_rate = latency_hits / len(timed)
        if latency_rate < _SMOKE_LATENCY_GATE:
            lines.append("smoke FAILED: latency containment %.2f < %.2f"
                         % (latency_rate, _SMOKE_LATENCY_GATE))
            ok = False
    else:
        lines.append("smoke FAILED: no crash has a measured "
                     "flip->trap distance")
        ok = False
    if ok:
        lines.append("smoke OK")
    return ok, lines


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="campaign A only at tiny scale, fs slice; "
                             "gate measured-divergence share >= 0.95 "
                             "and static-bound containment >= 0.70 (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    print(run(ctx))
    if args.smoke:
        ok, lines = smoke_gate(ctx)
        for line in lines:
            print(line, file=sys.stderr)
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
