"""Equivalence-class extrapolation: audited accuracy + injected
fraction.

The equivalence partitioner (:mod:`repro.staticanalysis.equivalence`)
promises that a campaign can inject only a few seeded pilots per
static site class, extrapolate each pilot's dynamic outcome to the
class siblings, and bound the error with a seeded dynamic audit.
This exhibit measures that promise on a dormancy-heavy fs slice —
``ext2_free_all_blocks`` at byte stride 1, where roughly half the
sites are provably never activated by the assigned workloads — and
gates the two numbers the whole scheme stands on:

* **audited extrapolation accuracy** — every audit site runs for
  real and is graded against its refined class's pilot outcome; the
  smoke gate requires >= 90 %;
* **injected fraction** — pilots + audits + re-pilots over total
  plan size; the smoke gate requires <= 0.5 (the pruning must
  actually prune).

It also audits the journal contract: every extrapolated record must
carry ``{pilot_index, class_fp}`` provenance, and the journal must
stay an ordinary campaign journal — ``CampaignJournal.load`` sees a
complete run, a plain (non-equivalence) campaign *resumes* over it
without re-injecting anything, and the fabric's
``merge_shard_journals`` accepts it as the degenerate 1/1 shard.

Run standalone::

    python -m repro.experiments.equivalence_validation [--smoke]
"""

import argparse
import os
import shutil
import sys
import tempfile

from repro.injection.runner import InjectionHarness

DEFAULT_KEY = "A"

#: The smoke slice: every site of the most dormancy-heavy fs
#: campaign-A target.  Roughly half its sites are uncovered by the
#: assigned workloads (one provably-exact dormant class), which is
#: exactly the population equivalence pruning is for.
_SMOKE_FUNCTIONS = ("ext2_free_all_blocks",)
_SMOKE_STRIDE = 1

#: Contexts whose scale has no preset (the report's stub context) get
#: a minimal slice: the journal contracts and audit plumbing are
#: exercised on a handful of sites.
_FALLBACK_MAX_SPECS = 12

#: Smoke gates (see ISSUE/ROADMAP): audited accuracy and measured
#: injected fraction.
MIN_AUDIT_ACCURACY = 0.9
MAX_INJECTED_FRACTION = 0.5


def _fs_functions(ctx, key, names=None):
    from repro.injection.campaigns import select_targets
    targets = [f for f in select_targets(ctx.kernel, ctx.profile, key)
               if f.subsystem == "fs"]
    if names:
        wanted = [f for f in targets if f.name in names]
        if wanted:
            return wanted
    return targets


#: Sentinel: "take the scale preset" (``None`` means "uncapped").
_PRESET = object()


def study(ctx, key=DEFAULT_KEY, functions=None, stride=_PRESET,
          max_specs=_PRESET, workdir=None):
    """Run the equivalence campaign and audit its journal contract."""
    from repro.experiments.context import SCALES
    from repro.injection.engine import CampaignJournal
    from repro.injection.fabric import merge_shard_journals
    from repro.staticanalysis.equivalence import journal_extrapolation
    if functions is None:
        functions = _fs_functions(ctx, key)
    if stride is _PRESET or max_specs is _PRESET:
        preset = SCALES.get(ctx.scale, {}).get(
            key, (_SMOKE_STRIDE, _FALLBACK_MAX_SPECS))
        stride = preset[0] if stride is _PRESET else stride
        max_specs = preset[1] if max_specs is _PRESET else max_specs
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="equiv_validation_")

    journal_path = os.path.join(workdir, "equiv.journal.jsonl")
    harness = InjectionHarness(ctx.kernel, ctx.binaries, ctx.profile)
    campaign = harness.run_campaign(
        key, functions=functions, seed=ctx.seed, byte_stride=stride,
        max_specs=max_specs, jobs=getattr(ctx, "jobs", 1),
        journal_path=journal_path, equivalence=True)
    equiv = campaign.meta["equivalence"]

    # Journal contract 1: provenance on every extrapolated record.
    census = journal_extrapolation(journal_path)

    # Journal contract 2: a plain CampaignJournal sees a complete run.
    journal = CampaignJournal(journal_path)
    completed = journal.load(campaign.meta["fingerprint"])
    journal.close()

    # Journal contract 3: a plain (non-equivalence) campaign resumes
    # over a copy without injecting anything new, bit-identically.
    resume_path = os.path.join(workdir, "resume.journal.jsonl")
    shutil.copyfile(journal_path, resume_path)
    resumed = harness.run_campaign(
        key, functions=functions, seed=ctx.seed, byte_stride=stride,
        max_specs=max_specs, journal_path=resume_path, resume=True)

    # Journal contract 4: fabric merge accepts the 1/1 shard.
    try:
        merged = merge_shard_journals(
            [journal_path], plan_fp=campaign.meta["fingerprint"],
            n_specs=len(campaign.results))
        merge_ok = (len(merged.results) == len(campaign.results)
                    and not merged.missing)
    except Exception:
        merge_ok = False

    return {
        "key": key,
        "functions": sorted(f.name for f in functions),
        "stride": stride,
        "equivalence": equiv,
        "census": census,
        "outcomes": _pie(campaign.results),
        "journal_complete": len(completed) == len(campaign.results),
        "resume_identical": (
            [r.to_dict() for r in resumed.results]
            == [r.to_dict() for r in campaign.results]),
        "merge_ok": merge_ok,
    }


def _pie(results):
    from collections import Counter
    return dict(Counter(r.outcome for r in results))


def run(ctx, key=DEFAULT_KEY):
    digest = study(ctx, key=key)
    equiv = digest["equivalence"]
    lines = ["Equivalence-class extrapolation (campaign %s, %d sites "
             "across %d fs function(s), stride %d)"
             % (digest["key"], equiv["n_specs"],
                len(digest["functions"]), digest["stride"])]
    lines.append("")
    lines.append("  %d class(es): %d pilot(s), %d audit(s), "
                 "%d split(s), %d re-pilot run(s)"
                 % (equiv["n_classes"], equiv["pilots"],
                    equiv["audits"], equiv["splits"],
                    equiv["repilot_runs"]))
    lines.append("  injected %d of %d site(s) (fraction %.4f), "
                 "extrapolated %d"
                 % (equiv["injected"], equiv["n_specs"],
                    equiv["injected_fraction"], equiv["extrapolated"]))
    accuracy = equiv["audit_accuracy"]
    lines.append("  audit: %d checked, %d matched (accuracy %s), "
                 "%d impure class(es)"
                 % (equiv["audit_checked"], equiv["audit_matched"],
                    "%.4f" % accuracy if accuracy is not None
                    else "n/a", equiv["impure_classes"]))
    lines.append("")
    lines.append("  journal: %d executed + %d extrapolated record(s), "
                 "%d malformed provenance block(s)"
                 % (digest["census"]["executed"],
                    digest["census"]["extrapolated"],
                    digest["census"]["malformed"]))
    lines.append("  plain-journal load complete: %s; plain resume "
                 "bit-identical: %s; fabric merge: %s"
                 % (digest["journal_complete"],
                    digest["resume_identical"],
                    "ok" if digest["merge_ok"] else "REJECTED"))
    return "\n".join(lines)


def smoke_gate(ctx):
    """The acceptance gate (tiny fs campaign slice).

    Returns ``(ok, lines)``: audited extrapolation accuracy >= 90 %,
    injected fraction <= 0.5, every extrapolated record stamped with
    ``{pilot_index, class_fp}`` provenance, and the journal accepted
    unchanged by ``CampaignJournal.load``, plain-campaign resume and
    the fabric merger.
    """
    digest = study(ctx, functions=_fs_functions(ctx, DEFAULT_KEY,
                                                _SMOKE_FUNCTIONS),
                   stride=_SMOKE_STRIDE, max_specs=None)
    equiv = digest["equivalence"]
    census = digest["census"]
    accuracy = equiv["audit_accuracy"]
    lines = ["%s slice (%s, %d specs): injected %d (fraction %.4f), "
             "extrapolated %d, audit accuracy %s"
             % (digest["key"], ", ".join(digest["functions"]),
                equiv["n_specs"], equiv["injected"],
                equiv["injected_fraction"], equiv["extrapolated"],
                "%.4f" % accuracy if accuracy is not None else "n/a")]
    ok = True
    if equiv["audit_checked"] < 1 or accuracy is None:
        lines.append("smoke FAILED: no audit site was checked")
        ok = False
    elif accuracy < MIN_AUDIT_ACCURACY:
        lines.append("smoke FAILED: audit accuracy %.4f < %.2f"
                     % (accuracy, MIN_AUDIT_ACCURACY))
        ok = False
    if equiv["injected_fraction"] > MAX_INJECTED_FRACTION:
        lines.append("smoke FAILED: injected fraction %.4f > %.2f"
                     % (equiv["injected_fraction"],
                        MAX_INJECTED_FRACTION))
        ok = False
    if equiv["extrapolated"] < 1:
        lines.append("smoke FAILED: nothing was extrapolated")
        ok = False
    if census["malformed"] or \
            census["extrapolated"] != equiv["extrapolated"]:
        lines.append("smoke FAILED: %d extrapolated record(s) but %d "
                     "well-formed provenance block(s)"
                     % (equiv["extrapolated"],
                        census["extrapolated"] - census["malformed"]))
        ok = False
    if not digest["journal_complete"]:
        lines.append("smoke FAILED: plain CampaignJournal.load did "
                     "not see a complete run")
        ok = False
    if not digest["resume_identical"]:
        lines.append("smoke FAILED: plain-campaign resume over the "
                     "journal diverged")
        ok = False
    if not digest["merge_ok"]:
        lines.append("smoke FAILED: fabric merge rejected the journal")
        ok = False
    if ok:
        lines.append("smoke OK (%d class(es), %d split(s), audit "
                     "%d/%d)"
                     % (equiv["n_classes"], equiv["splits"],
                        equiv["audit_matched"],
                        equiv["audit_checked"]))
    return ok, lines


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fs slice; gate audited accuracy "
                             "and injected fraction (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    if args.smoke:
        ok, lines = smoke_gate(ctx)
        for line in lines:
            print(line)
        return 0 if ok else 1
    print(run(ctx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
