"""Fabric equivalence: serial vs N-shard vs chaos-killed shards.

The campaign fabric (:mod:`repro.injection.fabric`) promises that *how*
a campaign executes never leaks into *what* it measures: the same
seeded plan run on one host, split across N content-addressed shards,
or run with shard workers SIGKILLed mid-run and retried must come out
**bit-identical** once the shard journals are merged.  This exhibit
executes the same campaign slice three ways and diffs the serialized
results:

* **serial baseline** — the plain one-process engine (PR 1);
* **N-shard fabric** — :class:`~repro.injection.fabric.FabricCoordinator`
  dispatching shards to a local pool, merging their journals;
* **chaos** — the same fabric with chaos mode armed: a seeded pick of
  shard workers SIGKILL themselves right after fsyncing a journal
  record, forcing lease revocation, retry-with-resume and the merger's
  replay handling to all fire on the critical path.

It also scores the boot-snapshot store: the serial baseline boots the
kernel per workload, the cold fabric run boots once per pair and
freezes the state, and the chaos run — warm store — must boot **zero**
times (`harness.boots == 0`), which is the acceptance criterion's
"boot executed once per kernel/workload pair, not once per shard".

``--smoke`` runs a reduced campaign-A slice and gates: fabric ==
serial, chaos == serial (with >= 1 real SIGKILL delivered), and zero
warm-store boots.

Run standalone::

    python -m repro.experiments.fabric_validation [--smoke]
"""

import argparse
import os
import sys
import tempfile

from repro.injection.fabric import (
    FabricConfig,
    FabricCoordinator,
    SnapshotStore,
)
from repro.injection.runner import InjectionHarness

DEFAULT_KEY = "A"
DEFAULT_SHARDS = 3

#: The smoke slice: campaign A thinned to a couple of minutes for all
#: three runs together (the tiny-scale preset is ~3x too slow to run
#: three times in CI).
_SMOKE_STRIDE = 40
_SMOKE_MAX_SPECS = 36
_SMOKE_CHAOS_KILLS = 1

#: Contexts whose scale has no preset (the report's stub context) get
#: a minimal slice: the exhibit still proves three-way equivalence,
#: just on a handful of injections.
_FALLBACK_MAX_SPECS = 9


def _result_dicts(results):
    return [r.to_dict() for r in results]


def study(ctx, key=DEFAULT_KEY, shards=DEFAULT_SHARDS, stride=None,
          max_specs=None, chaos_kills=_SMOKE_CHAOS_KILLS, pool=2,
          workdir=None):
    """Run the three-way equivalence experiment; returns a digest."""
    from repro.experiments.context import SCALES
    if stride is None or max_specs is None:
        preset = SCALES.get(ctx.scale, {}).get(key)
        if preset is None:
            preset = (_SMOKE_STRIDE, _FALLBACK_MAX_SPECS)
        stride = preset[0] if stride is None else stride
        max_specs = preset[1] if max_specs is None else max_specs
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="fabric_validation_")
    store = SnapshotStore(os.path.join(workdir, "snapshots"))

    # 1. Serial baseline: the plain engine, no fabric, no store.
    serial_harness = InjectionHarness(ctx.kernel, ctx.binaries,
                                      ctx.profile)
    serial = serial_harness.run_campaign(key, seed=ctx.seed,
                                         byte_stride=stride,
                                         max_specs=max_specs)
    baseline = _result_dicts(serial.results)

    # 2. N-shard fabric, cold store: boots once per workload pair and
    #    freezes the post-boot state for everyone after it.
    fabric_harness = InjectionHarness(ctx.kernel, ctx.binaries,
                                      ctx.profile, snapshot_store=store)
    coordinator = FabricCoordinator(
        fabric_harness, FabricConfig(pool=pool))
    fabric = coordinator.run_campaign(
        key, seed=ctx.seed, byte_stride=stride, max_specs=max_specs,
        shard_count=shards, workdir=os.path.join(workdir, "cold"))

    # 3. Chaos run, warm store: SIGKILL shard workers mid-run, retry
    #    and resume their journals; zero boots anywhere.
    chaos_harness = InjectionHarness(ctx.kernel, ctx.binaries,
                                     ctx.profile, snapshot_store=store)
    chaos_coordinator = FabricCoordinator(
        chaos_harness, FabricConfig(pool=pool, chaos_kills=chaos_kills,
                                    chaos_seed=ctx.seed))
    chaos = chaos_coordinator.run_campaign(
        key, seed=ctx.seed, byte_stride=stride, max_specs=max_specs,
        shard_count=shards, workdir=os.path.join(workdir, "chaos"))

    fabric_meta = fabric.meta["engine"]
    chaos_meta = chaos.meta["engine"]
    return {
        "key": key,
        "shards": shards,
        "n_specs": len(serial.results),
        "plan_fingerprint": serial.meta["fingerprint"],
        "fabric_identical": _result_dicts(fabric.results) == baseline,
        "chaos_identical": _result_dicts(chaos.results) == baseline,
        "serial_boots": serial_harness.boots,
        "fabric_boots": fabric_harness.boots,
        "chaos_boots": chaos_harness.boots,
        "store_entries": store.misses,
        "chaos_killed": chaos_meta["chaos_killed"],
        "chaos_worker_failures": chaos_meta["worker_failures"],
        "chaos_stolen": chaos_meta["stolen_shards"],
        "fabric_mode": fabric_meta["mode"],
        "serial_completions": (fabric_meta["serial_completions"]
                               + chaos_meta["serial_completions"]),
    }


def _verdict(flag):
    return "identical" if flag else "DIVERGED"


def run(ctx, key=DEFAULT_KEY, shards=DEFAULT_SHARDS):
    digest = study(ctx, key=key, shards=shards)
    lines = ["Campaign fabric equivalence (campaign %s, %d injections,"
             " %d shards, plan %s)"
             % (digest["key"], digest["n_specs"], digest["shards"],
                digest["plan_fingerprint"])]
    lines.append("")
    lines.append("  serial vs %d-shard fabric:          %s"
                 % (digest["shards"],
                    _verdict(digest["fabric_identical"])))
    lines.append("  serial vs chaos (SIGKILL + retry):  %s"
                 % _verdict(digest["chaos_identical"]))
    lines.append("  chaos shards killed: %s (%d worker failures, "
                 "%d shards stolen/resumed)"
                 % (digest["chaos_killed"] or "none",
                    digest["chaos_worker_failures"],
                    digest["chaos_stolen"]))
    lines.append("")
    lines.append("Boot-snapshot store (kernel boots per run):")
    lines.append("  serial (no store):   %d" % digest["serial_boots"])
    lines.append("  fabric (cold store): %d  -> %d entr%s frozen"
                 % (digest["fabric_boots"], digest["store_entries"],
                    "y" if digest["store_entries"] == 1 else "ies"))
    lines.append("  chaos (warm store):  %d" % digest["chaos_boots"])
    return "\n".join(lines)


def smoke_gate(ctx):
    """The acceptance gate (reduced campaign-A slice).

    Returns ``(ok, lines)``: serial, N-shard and shard-killed runs must
    serialize bit-identically, at least one chaos SIGKILL must really
    have been delivered, and the warm-store run must not boot at all.
    """
    digest = study(ctx, stride=_SMOKE_STRIDE,
                   max_specs=_SMOKE_MAX_SPECS)
    lines = ["%s slice (%d specs, %d shards): fabric %s, chaos %s"
             % (digest["key"], digest["n_specs"], digest["shards"],
                _verdict(digest["fabric_identical"]),
                _verdict(digest["chaos_identical"]))]
    ok = True
    if not digest["fabric_identical"]:
        lines.append("smoke FAILED: %d-shard fabric results differ "
                     "from serial" % digest["shards"])
        ok = False
    if not digest["chaos_identical"]:
        lines.append("smoke FAILED: chaos-killed fabric results "
                     "differ from serial")
        ok = False
    if not digest["chaos_killed"]:
        lines.append("smoke FAILED: chaos mode delivered no SIGKILL")
        ok = False
    if digest["chaos_worker_failures"] < 1:
        lines.append("smoke FAILED: no worker failure recorded for "
                     "the chaos kill")
        ok = False
    if digest["chaos_boots"] != 0:
        lines.append("smoke FAILED: warm-store run booted %d times "
                     "(want 0)" % digest["chaos_boots"])
        ok = False
    if ok:
        lines.append("smoke OK (warm store: %d boots, %d store "
                     "entries reused)"
                     % (digest["chaos_boots"],
                        digest["store_entries"]))
    return ok, lines


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced campaign-A slice; gate serial == "
                             "N-shard == chaos-killed and zero "
                             "warm-store boots (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    if args.smoke:
        ok, lines = smoke_gate(ctx)
        for line in lines:
            print(line)
        return 0 if ok else 1
    print(run(ctx, shards=args.shards))
    return 0


if __name__ == "__main__":
    sys.exit(main())
