"""Figure 1: size of kernel subsystems in lines of (MinC) source."""

from repro.analysis.charts import bar
from repro.kernel.build import kernel_source_inventory


def run(ctx=None):
    counts = kernel_source_inventory()
    total = sum(counts.values())
    order = sorted(counts, key=counts.get, reverse=True)
    lines = ["Figure 1: Size of Kernel Subsystems (MinC source lines)"]
    for name in order:
        share = counts[name] / total
        lines.append("  %-8s %5d |%s| %4.1f%%"
                     % (name, counts[name], bar(share, 40), share * 100))
    lines.append("  %-8s %5d" % ("total", total))
    return "\n".join(lines)
