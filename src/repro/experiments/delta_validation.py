"""Delta-campaign equivalence: carried-forward vs from-scratch.

The delta planner (:mod:`repro.staticanalysis.delta`) promises that a
campaign re-run after a kernel rebuild can carry forward every journal
record the static differ proves unchanged and still come out
**bit-identical** to running the whole campaign from scratch on the
new kernel.  This exhibit exercises the promise on the canonical
rebuild the rest of the repo cares about — inverting the
``oops_recoverable`` gate (:data:`RECOVERY_GATE_EDIT`), a
size-preserving one-function edit sitting squarely on the trap path:

* **base** — the campaign slice on the unedited kernel, journaled;
* **delta** — the same slice planned against the rebuilt kernel with
  the base journal as carry source: carried records are pre-seeded
  with provenance, only live sites boot kernels;
* **scratch** — the same slice on the rebuilt kernel with no carry.

Because the edit changes trap delivery, most *activated* records go
live again ("trap-path") — the interesting measurement here is not
the re-run fraction (``benchmarks/bench_delta.py`` gates that on a
cold-path edit) but that the split is *sound*: whatever the planner
dares to carry, the merged results must serialize identically to the
from-scratch run.

``--smoke`` runs a reduced campaign-A slice and gates: delta ==
scratch bit-identically, at least one record carried, at least one
site live, and every carried record stamped with provenance.

Run standalone::

    python -m repro.experiments.delta_validation [--smoke]
"""

import argparse
import os
import sys
import tempfile

from repro.injection.runner import InjectionHarness
from repro.staticanalysis.delta import RECOVERY_GATE_EDIT

DEFAULT_KEY = "A"

#: The smoke slice: campaign A thinned to CI size (the same slice the
#: fabric exhibit uses, so the two gates stay comparable).
_SMOKE_STRIDE = 40
_SMOKE_MAX_SPECS = 36

#: Contexts whose scale has no preset (the report's stub context) get
#: a minimal slice: equivalence is proved on a handful of injections.
_FALLBACK_MAX_SPECS = 9


def _result_dicts(results):
    return [r.to_dict() for r in results]


def study(ctx, key=DEFAULT_KEY, stride=None, max_specs=None,
          source_edits=RECOVERY_GATE_EDIT, workdir=None):
    """Run base, delta and scratch; returns a digest."""
    from repro.experiments.context import SCALES
    from repro.kernel.build import build_kernel
    if stride is None or max_specs is None:
        preset = SCALES.get(ctx.scale, {}).get(key)
        if preset is None:
            preset = (_SMOKE_STRIDE, _FALLBACK_MAX_SPECS)
        stride = preset[0] if stride is None else stride
        max_specs = preset[1] if max_specs is None else max_specs
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="delta_validation_")

    # 1. Base campaign on the unedited kernel, journaled — the carry
    #    source.
    base_journal = os.path.join(workdir, "base.journal.jsonl")
    base_harness = InjectionHarness(ctx.kernel, ctx.binaries,
                                    ctx.profile)
    base = base_harness.run_campaign(key, seed=ctx.seed,
                                     byte_stride=stride,
                                     max_specs=max_specs,
                                     journal_path=base_journal)

    # 2. The rebuild: same sources with the edit applied.
    new_kernel = build_kernel(source_edits=source_edits)
    new_harness = InjectionHarness(new_kernel, ctx.binaries,
                                   ctx.profile)

    # 3. Delta run: carried records pre-seeded, live remainder boots.
    delta = new_harness.run_campaign(
        key, seed=ctx.seed, byte_stride=stride, max_specs=max_specs,
        journal_path=os.path.join(workdir, "delta.journal.jsonl"),
        delta_from=base_journal, delta_base_kernel=ctx.kernel)

    # 4. Scratch run: the ground truth on the rebuilt kernel.
    scratch = new_harness.run_campaign(key, seed=ctx.seed,
                                       byte_stride=stride,
                                       max_specs=max_specs)

    plan = delta.meta["delta"]
    carried_provenance = _carried_provenance(
        os.path.join(workdir, "delta.journal.jsonl"))
    return {
        "key": key,
        "n_specs": len(scratch.results),
        "changed": plan["diff"]["changed"],
        "trap_impacted": plan["diff"]["trap_impacted"],
        "carried": plan["carried"],
        "live": plan["live"],
        "rerun_fraction": plan["rerun_fraction"],
        "reasons": plan["reasons"],
        "provenance_stamped": carried_provenance,
        "identical": _result_dicts(delta.results)
                     == _result_dicts(scratch.results),
        "base_outcomes": _pie(base.results),
        "delta_outcomes": _pie(delta.results),
    }


def _pie(results):
    from collections import Counter
    return dict(Counter(r.outcome for r in results))


def _carried_provenance(journal_path):
    """Count journal records carrying a well-formed provenance block."""
    import json
    wanted = ("source_journal", "base_kernel", "new_kernel")
    count = 0
    with open(journal_path) as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            carried = record.get("carried")
            if carried and all(carried.get(k) for k in wanted):
                count += 1
    return count


def _verdict(flag):
    return "identical" if flag else "DIVERGED"


def run(ctx, key=DEFAULT_KEY):
    digest = study(ctx, key=key)
    lines = ["Delta-campaign equivalence (campaign %s, %d injections,"
             " recovery-gate rebuild)" % (digest["key"],
                                          digest["n_specs"])]
    lines.append("")
    lines.append("  changed function(s): %s"
                 % (", ".join(digest["changed"]) or "none"))
    lines.append("  carried %d record(s), re-ran %d "
                 "(re-run fraction %.4f)"
                 % (digest["carried"], digest["live"],
                    digest["rerun_fraction"]))
    for reason, count in sorted(digest["reasons"].items()):
        lines.append("    live because %-16s %4d"
                     % (reason + ":", count))
    lines.append("")
    lines.append("  delta vs from-scratch: %s"
                 % _verdict(digest["identical"]))
    lines.append("  carried records stamped with provenance: %d"
                 % digest["provenance_stamped"])
    return "\n".join(lines)


def smoke_gate(ctx):
    """The acceptance gate (reduced campaign-A slice).

    Returns ``(ok, lines)``: the delta run over the recovery-gate
    rebuild must serialize bit-identically to the from-scratch run,
    carry at least one record (stamped with provenance), and leave at
    least one site live (the edit genuinely impacts the plan).
    """
    digest = study(ctx, stride=_SMOKE_STRIDE,
                   max_specs=_SMOKE_MAX_SPECS)
    lines = ["%s slice (%d specs): carried %d, live %d "
             "(fraction %.4f), delta vs scratch %s"
             % (digest["key"], digest["n_specs"], digest["carried"],
                digest["live"], digest["rerun_fraction"],
                _verdict(digest["identical"]))]
    ok = True
    if not digest["identical"]:
        lines.append("smoke FAILED: delta results differ from "
                     "from-scratch results")
        ok = False
    if digest["carried"] < 1:
        lines.append("smoke FAILED: no record carried forward")
        ok = False
    if digest["live"] < 1:
        lines.append("smoke FAILED: recovery-gate edit left no site "
                     "live")
        ok = False
    if digest["provenance_stamped"] != digest["carried"]:
        lines.append("smoke FAILED: %d carried record(s) but %d "
                     "provenance stamp(s) in the journal"
                     % (digest["carried"],
                        digest["provenance_stamped"]))
        ok = False
    if ok:
        lines.append("smoke OK (changed: %s; trap path impacted: %d "
                     "stub(s))"
                     % (", ".join(digest["changed"]),
                        len(digest["trap_impacted"])))
    return ok, lines


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced campaign-A slice; gate delta == "
                             "scratch bit-identity (CI)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs)
    if args.smoke:
        ok, lines = smoke_gate(ctx)
        for line in lines:
            print(line)
        return 0 if ok else 1
    print(run(ctx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
