"""Table 1: function distribution among kernel modules (profiling)."""

from repro.profiling.report import format_table1, format_top_functions


def run(ctx):
    return (format_table1(ctx.profile)
            + "\n\n" + format_top_functions(ctx.profile))
