"""Per-function crash attribution (the §6.1 finding: do_page_fault,
schedule and zap_page_range dominate their subsystems' crashes)."""

from repro.analysis.stats import per_function_crash_shares


def run(ctx):
    merged = ctx.all_results()
    shares = per_function_crash_shares(merged)
    lines = ["Per-function share of each subsystem's crash/hang failures:"]
    for subsystem in ("arch", "fs", "kernel", "mm"):
        top = shares.get(subsystem, [])[:5]
        lines.append("  %s:" % subsystem)
        for name, count, share in top:
            lines.append("    %-26s %4d (%5.1f%%)"
                         % (name, count, share * 100))
    return "\n".join(lines)
