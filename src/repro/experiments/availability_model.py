"""The availability arithmetic closing §7.1."""

from repro.analysis.availability import allowed_failures_per_year, \
    years_between_failures
from repro.injection.severity import SEVERITY_DOWNTIME


def run(ctx=None):
    lines = ["Availability budget (5 nines = 99.999%%, ~5 min/yr):"]
    for severity, downtime in SEVERITY_DOWNTIME.items():
        per_year = allowed_failures_per_year(0.99999, downtime)
        years = years_between_failures(0.99999, downtime)
        lines.append("  %-12s %4d s recovery -> at most %.2f/yr "
                     "(one every %.1f years)"
                     % (severity, downtime, per_year, years))
    return "\n".join(lines)
