"""The availability arithmetic closing §7.1."""

from repro.analysis.availability import allowed_failures_per_year, \
    years_between_failures
from repro.injection.severity import SEVERITY_DOWNTIME


def run(ctx=None):
    lines = ["Availability budget (5 nines = 99.999%, ~5 min/yr):"]
    for severity, downtime in SEVERITY_DOWNTIME.items():
        per_year = allowed_failures_per_year(0.99999, downtime)
        years = years_between_failures(0.99999, downtime)
        lines.append("  %-12s %4d s recovery -> at most %.2f/yr "
                     "(one every %.1f years)"
                     % (severity, downtime, per_year, years))
    if ctx is not None:
        # Measured scenario: the recovery kernel contains a share of
        # the crashes by killing the task instead of halting, so the
        # mean downtime per crash event drops and the budget stretches.
        from repro.experiments.recovery_study import measured_recovery
        share, mean_downtime = measured_recovery(ctx)
        lines.append("  with kernel recovery: %.0f%% of crash events "
                     "contained, mean %.0f s/event"
                     % (100 * share, mean_downtime))
        if mean_downtime > 0:
            per_year = allowed_failures_per_year(0.99999, mean_downtime)
            years = years_between_failures(0.99999, mean_downtime)
            lines.append("    -> at most %.2f crash events/yr "
                         "(one every %.1f years)" % (per_year, years))
        # Per-fault-model rows: how the budget stretches or shrinks
        # when the error model moves off the instruction stream.
        from repro.experiments.fault_model_study import availability_rows
        lines.append("  by fault model (mean downtime per crash/hang "
                     "event):")
        for label, mean, events in availability_rows(ctx):
            if events == 0 or mean <= 0:
                lines.append("    %-26s no crash/hang events observed"
                             % label)
                continue
            per_year = allowed_failures_per_year(0.99999, mean)
            lines.append("    %-26s %4.0f s/event over %3d events "
                         "-> at most %.2f/yr"
                         % (label, mean, events, per_year))
    return "\n".join(lines)
