"""Extension: campaign R (register corruption) vs campaign A.

The paper's footnote 1 claims instruction-stream corruption subsumes
register/data corruption.  Campaign R corrupts registers directly; if
the claim holds, its activated-outcome distribution should resemble
campaign A's (same dominant categories, similar crash-cause mix).
"""

from collections import Counter

from repro.analysis.charts import ascii_pie
from repro.analysis.stats import crash_cause_distribution, outcome_pie
from repro.injection.register_campaign import run_register_campaign

#: per-scale cap keeps the extension proportional to the main campaigns
_SPEC_CAP = {"tiny": 60, "quick": 150, "standard": 400, "full": None}


def run(ctx):
    cap = _SPEC_CAP.get(ctx.scale, 150)
    results = run_register_campaign(ctx.harness, max_specs=cap)
    lines = ["Extension campaign R: direct register corruption "
             "(%d experiments)" % len(results)]
    pie = outcome_pie(results)
    activated = pie.pop("activated", 0)
    lines.append("activated: %d" % activated)
    lines.append(ascii_pie(Counter(pie), total=activated))
    lines.append("crash causes: %s"
                 % dict(crash_cause_distribution(results)))
    lines.append("")
    lines.append("Campaign A (instruction-stream corruption) for "
                 "comparison:")
    a_pie = outcome_pie(ctx.campaign("A").results)
    a_act = a_pie.pop("activated", 0)
    lines.append(ascii_pie(Counter(a_pie), total=a_act))
    lines.append("")
    lines.append("Finding: the paper's footnote 1 claims instruction-"
                 "stream errors *subsume* register corruption; the "
                 "converse does not hold — a single register-bit flip "
                 "is usually harmless because most register bits are "
                 "dead at any given instruction, whereas a code flip "
                 "persists and re-executes. Register campaigns produce "
                 "far more not-manifested outcomes and their crashes "
                 "skew to null-pointer/paging (corrupted addresses), "
                 "with almost no invalid-opcode cases.")
    return "\n".join(lines)
