"""Table 5: summary of most severe (reformat-class) crashes."""

from repro.analysis.stats import severity_counts
from repro.analysis.tables import format_severity_table


def run(ctx):
    results = ctx.all_results()
    lines = [format_severity_table(results)]
    counts = severity_counts(results)
    lines.append("")
    lines.append("Severity of all graded failures: %s"
                 % (dict(counts) or "(none)"))
    return "\n".join(lines)
