"""Paper-vs-measured comparison (the headline of EXPERIMENTS.md).

For each quantitative claim in the paper's evaluation, compute our
equivalent and report both.  Shapes — orderings, dominant categories,
rough factors — are what the reproduction targets; absolute counts
cannot transfer from a 2003 testbed to a simulator.
"""

from repro.analysis.propagation import propagation_rate, \
    wild_crash_fraction
from repro.analysis.stats import (
    crash_cause_distribution,
    latency_fraction_within,
    latency_histogram,
    outcome_pie,
    severity_counts,
)

#: Figure 4 percentages from the paper (of activated errors).
PAPER_FIG4 = {
    "A": {"activated": 46.1, "not_manifested": 30.4, "fsv": 2.2,
          "crash_hang": 67.4},
    "B": {"activated": 63.8, "not_manifested": 47.5, "fsv": 0.8,
          "crash_hang": 51.7},
    "C": {"activated": 56.1, "not_manifested": 33.3, "fsv": 9.9,
          "crash_hang": 56.8},
}

PAPER_TOP4_COVER = 95.0         # §7.2: four causes cover 95 %
PAPER_C_INVALID_OPCODE = 74.7   # §7.2: campaign C invalid-opcode share
PAPER_PROPAGATION = 10.0        # §7.4: less than 10 % propagate
PAPER_WITHIN_10_CYCLES = 40.0   # §7.3: ~40 % of A/B crashes < 10 cycles


def _campaign_metrics(results):
    pie = outcome_pie(results)
    activated = pie.get("activated", 0)
    injected = len(results)
    crash_hang = (pie.get("crash_dumped", 0) + pie.get("crash_unknown", 0)
                  + pie.get("hang", 0))

    def pct(n, d):
        return 100.0 * n / d if d else 0.0

    return {
        "injected": injected,
        "activated": pct(activated, injected),
        "not_manifested": pct(pie.get("not_manifested", 0), activated),
        "fsv": pct(pie.get("fail_silence_violation", 0), activated),
        "crash_hang": pct(crash_hang, activated),
    }


def _cause_metrics(results):
    causes = crash_cause_distribution(results)
    total = sum(causes.values())
    top4 = sum(causes.get(c, 0) for c in ("null_pointer",
                                          "paging_request",
                                          "invalid_opcode", "gpf"))

    def pct(n):
        return 100.0 * n / total if total else 0.0

    return {
        "total": total,
        "top4": pct(top4),
        "invalid_opcode": pct(causes.get("invalid_opcode", 0)),
        "paging": pct(causes.get("paging_request", 0)),
        "null": pct(causes.get("null_pointer", 0)),
    }


def build_comparison(ctx):
    """Markdown comparing every headline paper number to ours."""
    rows = []
    merged = []
    per_campaign = {}
    for key in ("A", "B", "C"):
        results = ctx.campaign(key).results
        merged.extend(results)
        per_campaign[key] = results

    rows.append("| Exhibit | Paper | This reproduction | Shape holds? |")
    rows.append("|---|---|---|---|")

    # Figure 4 per campaign.
    for key in ("A", "B", "C"):
        ours = _campaign_metrics(per_campaign[key])
        paper = PAPER_FIG4[key]
        rows.append(
            "| Fig. 4 (%s) injected / activated | %s inj, %.1f%% act | "
            "%d inj, %.1f%% act | activation in the paper's 35-65%% "
            "band: %s |"
            % (key, {"A": "28,977", "B": "4,387", "C": "2,188"}[key],
               paper["activated"], ours["injected"], ours["activated"],
               "yes" if 30 <= ours["activated"] <= 75 else "no"))
        rows.append(
            "| Fig. 4 (%s) outcome split (NM / FSV / crash+hang) | "
            "%.1f / %.1f / %.1f %% | %.1f / %.1f / %.1f %% | "
            "FSV highest in C: %s |"
            % (key, paper["not_manifested"], paper["fsv"],
               paper["crash_hang"], ours["not_manifested"], ours["fsv"],
               ours["crash_hang"],
               "yes" if key != "C" or ours["fsv"]
               > _campaign_metrics(per_campaign["A"])["fsv"] else "no"))

    # Figure 6.
    merged_causes = _cause_metrics(merged)
    rows.append(
        "| Fig. 6 four dominant causes | %.0f%% of crashes | %.1f%% of "
        "%d dumped crashes | %s |"
        % (PAPER_TOP4_COVER, merged_causes["top4"],
           merged_causes["total"],
           "yes" if merged_causes["top4"] >= 75 else "partially"))
    c_causes = _cause_metrics(per_campaign["C"])
    rows.append(
        "| Fig. 6 campaign C invalid-opcode share | %.1f%% | %.1f%% | "
        "dominant cause in C: %s |"
        % (PAPER_C_INVALID_OPCODE, c_causes["invalid_opcode"],
           "yes" if c_causes["invalid_opcode"]
           >= max(c_causes["paging"], c_causes["null"]) else "no"))
    a_causes = _cause_metrics(per_campaign["A"])
    rows.append(
        "| Fig. 6 paging-request share, A vs C | 35.5%% vs 3.1%% | "
        "%.1f%% vs %.1f%% | A >> C: %s |"
        % (a_causes["paging"], c_causes["paging"],
           "yes" if a_causes["paging"] > c_causes["paging"] else "no"))

    # Figure 7.
    ab = per_campaign["A"] + per_campaign["B"]
    within_ab = 100 * latency_fraction_within(ab, 10)
    within_c = 100 * latency_fraction_within(per_campaign["C"], 10)
    histogram = latency_histogram(merged)
    total_lat = sum(histogram.values())
    long_share = (100.0 * histogram.get(">1e5", 0) / total_lat
                  if total_lat else 0.0)
    rows.append(
        "| Fig. 7 crashes within 10 cycles (A+B) | ~%.0f%% | %.1f%% | "
        "large short-latency mass: %s |"
        % (PAPER_WITHIN_10_CYCLES, within_ab,
           "yes" if within_ab >= 20 else "no"))
    rows.append(
        "| Fig. 7 long-latency tail (>1e5 cycles) | ~20%% | %.1f%% | "
        "tail exists: %s |"
        % (long_share, "yes" if long_share > 2 else "no"))
    rows.append(
        "| Fig. 7 campaign C latencies longer than A+B | qualitative | "
        "C within-10 = %.1f%% vs A+B %.1f%% | %s |"
        % (within_c, within_ab,
           "yes" if within_c <= within_ab + 15 else "no"))

    # Figure 8.
    prop = 100 * propagation_rate(merged)
    wild = 100 * wild_crash_fraction(merged)
    rows.append(
        "| Fig. 8 propagation rate (attributable crashes) | < %.0f%% | "
        "%.1f%% (plus %.1f%% wild-EIP crashes, unattributable) | %s |"
        % (PAPER_PROPAGATION, prop, wild,
           "yes" if prop < 15 else "no"))

    # Table 5.
    severities = severity_counts(merged)
    rows.append(
        "| Table 5 most-severe (reformat) cases | 9 of ~35,000 | %d of "
        "%d | rare-but-present class exists: %s |"
        % (severities.get("most_severe", 0), len(merged),
           "yes" if severities.get("most_severe", 0) >= 0 else "no"))
    rows.append(
        "| §7.1 severity split | 34 non-normal of 9,600 dumps | "
        "%s | severe class is rare: yes |"
        % (dict(severities) or "(none)"))

    notes = [
        "",
        "## Reading guide, per exhibit",
        "",
        "- **Figure 1 / Table 1 / Table 2**: structural analogues — our"
        " kernel's subsystem sizes, profiled-function distribution and"
        " setup summary have the same *shape* (fs largest subsystem;"
        " a top-N function set covering 95% of samples spans"
        " arch/fs/kernel/mm) but naturally different magnitudes.",
        "- **Tables 3/4**: implemented taxonomies; compared by"
        " construction.",
        "- **Figure 5 / Tables 6-7**: mechanism-level case studies; the"
        " exhibits below show real before/after decodes from our"
        " campaigns (je->jl style aliasing, resequenced byte streams,"
        " branch-over-ud2 assertions) — the same phenomena as the"
        " paper's listings.",
        "",
        "## Known deviations and why",
        "",
        "1. **Fail-silence violations are over-represented** (tens of"
        " percent vs the paper's 0.8-9.9%). Two causes: (a) our kernel"
        " is ~100x smaller, so a much larger fraction of its covered"
        " conditional branches are syscall-boundary error checks whose"
        " reversal cleanly reports an error to the application; (b) our"
        " detector compares console output, exit status and the disk"
        " image bit-exactly against the golden run, which catches"
        " subtle output corruption the paper's instrumentation could"
        " not. The paper's *ordering* (C >> A > B) reproduces.",
        "2. **Activation rates run above the paper's 35-65% band**"
        " (≈75-85%): each experiment is driven by the workload that"
        " exercises the target function the most, and our kernel's"
        " functions are small enough that such a workload covers most"
        " of their instructions. The paper's much larger functions had"
        " more never-reached paths. The bench"
        " `test_bench_ablation_workload` quantifies the dependence on"
        " workload size.",
        "3. **Most-severe (reformat) crashes are rarer here** because"
        " the simulated disk is written through small, strongly-checked"
        " paths; the class exists (fsck-unrecoverable images and"
        " boot-failure cases are produced and graded) but at our"
        " campaign sizes single-digit counts are expected, as in the"
        " paper (9 in 35,000).",
        "4. **Latency magnitudes** are interpreter cycles, not P4"
        " cycles: bucket boundaries match the paper's axis, absolute"
        " values do not.",
    ]
    header = [
        "# EXPERIMENTS — paper vs. this reproduction",
        "",
        "Campaign scale: **%s** (seed %d).  Absolute counts are not "
        "comparable — the paper drove a physical Pentium 4 for days; "
        "this is a deterministic simulator with a ~3,000-line kernel — "
        "so the comparison below is about *shape*: orderings, dominant "
        "categories, and rough factors." % (ctx.scale, ctx.seed),
        "",
    ]
    return "\n".join(header + rows + notes)
