"""Figure 7: crash latency in CPU cycles per campaign."""

from repro.analysis.stats import latency_by_propagation
from repro.analysis.tables import format_fig7


def run(ctx):
    blocks = [format_fig7(key, ctx.campaign(key).results)
              for key in ("A", "B", "C")]
    split = latency_by_propagation(ctx.all_results())
    contained_n, contained_med = split["contained"]
    escaped_n, escaped_med = split["escaped"]
    blocks.append(
        "Latency vs propagation (all campaigns): contained crashes "
        "n=%d median=%s cycles; escaped crashes n=%d median=%s cycles "
        "(the paper links long latencies to propagation, \u00a77.3)"
        % (contained_n, contained_med, escaped_n, escaped_med))
    return "\n\n".join(blocks)
