"""Fault-model study: outcome profiles across pluggable fault models.

The paper's campaigns flip single instruction-stream bits; this
exhibit runs the fault-model framework
(:mod:`repro.injection.faultmodels`) and cross-tabulates, per model —
memory-state flips, register-at-trap flips, intermittent multi-bit
flips, and device-level disk faults — the activation rate, outcome
distribution and fsck severity, all on the shared plan / inject /
classify / journal pipeline so the distributions are directly
comparable with campaigns A-C.

The disk model additionally runs the **graceful-degradation
ablation**: the same fault plan against the fail-stop kernel, a
kernel whose IDE driver retries with backoff (``disk_retries``), and
the recovery (oops-kill-continue) kernel, pricing each rung's
downtime.

Run standalone::

    python -m repro.experiments.fault_model_study [--smoke]

``--smoke`` runs a tiny slice per model and gates on: every model
yields at least one activated result, and serial == parallel ==
resumed execution bit-identically.
"""

import argparse
import sys
from collections import Counter

from repro.experiments.recovery_study import (
    baseline_downtime,
    recovered_downtime,
)
from repro.injection.faultmodels import run_fault_model_campaign
from repro.injection.outcomes import (
    CRASH_HANG_OUTCOMES,
    CRASH_RECOVERED,
    FAIL_SILENCE_VIOLATION,
    OUTCOME_ORDER,
)

DEFAULT_KINDS = ("mem", "reg_trap", "intermittent", "disk")

#: The graceful-degradation rungs the disk model is ablated over.
ABLATION_VARIANTS = (("", "fail-stop"), ("retry", "driver retry"),
                     ("recovery", "recovery kernel"))


def _digest(results, variant=""):
    """Cross-tab one campaign's results."""
    activated = [r for r in results if r.activated]
    events = [r for r in results if r.outcome in CRASH_HANG_OUTCOMES]
    downtime = 0
    for result in events:
        if variant == "recovery" and result.outcome == CRASH_RECOVERED:
            downtime += recovered_downtime(result)
        else:
            downtime += baseline_downtime(result)
    return {
        "injected": len(results),
        "activated": len(activated),
        "activation_rate": (len(activated) / len(results)
                            if results else 0.0),
        "outcomes": dict(Counter(r.outcome for r in results)),
        "severity": dict(Counter(r.severity for r in activated
                                 if r.severity)),
        "fs_status": dict(Counter(r.fs_status for r in activated
                                  if r.fs_status)),
        "crash_hang": len(events),
        "downtime": downtime,
        "mean_downtime": downtime / len(events) if events else 0.0,
    }


def study(ctx, kinds=DEFAULT_KINDS):
    """Run every fault-model campaign; return the measured digest."""
    out = {"kinds": list(kinds), "models": {}, "ablation": {}}
    for kind in kinds:
        results = ctx.fault_campaign(kind).results
        out["models"][kind] = _digest(results)
    if "disk" in kinds:
        for variant, label in ABLATION_VARIANTS:
            results = ctx.fault_campaign("disk", variant).results
            out["ablation"][label] = _digest(results, variant=variant)
    return out


def availability_rows(ctx, kinds=DEFAULT_KINDS):
    """Per-fault-model rows for the §7.1 availability model.

    Returns ``[(label, mean_downtime_s, crash_hang_events), ...]`` —
    the mean downtime a crash/hang event under each fault model costs
    on the fail-stop kernel, plus the disk model's retry and recovery
    ablation rungs.
    """
    digest = study(ctx, kinds=kinds)
    rows = []
    for kind in kinds:
        entry = digest["models"][kind]
        rows.append(("%s faults" % kind, entry["mean_downtime"],
                     entry["crash_hang"]))
    for variant, label in ABLATION_VARIANTS[1:]:
        entry = digest["ablation"].get(label)
        if entry:
            rows.append(("disk faults, %s" % label,
                         entry["mean_downtime"], entry["crash_hang"]))
    return rows


def run(ctx, kinds=DEFAULT_KINDS):
    digest = study(ctx, kinds=kinds)
    lines = ["Fault-model study: outcome profiles per fault model"]
    lines.append("")
    lines.append("  model         inject  activ  act%   "
                 + "  ".join("%-5.5s" % o for o in OUTCOME_ORDER))
    for kind in kinds:
        entry = digest["models"][kind]
        outcomes = entry["outcomes"]
        lines.append("  %-12s  %6d  %5d  %3.0f%%   %s"
                     % (kind, entry["injected"], entry["activated"],
                        100 * entry["activation_rate"],
                        "  ".join("%5d" % outcomes.get(o, 0)
                                  for o in OUTCOME_ORDER)))
    lines.append("")
    lines.append("fsck severity over activated runs:")
    for kind in kinds:
        entry = digest["models"][kind]
        severity = entry["severity"] or {}
        fs_status = entry["fs_status"] or {}
        lines.append("  %-12s  severity %s   fsck %s"
                     % (kind,
                        dict(sorted(severity.items())) or "{}",
                        dict(sorted(fs_status.items())) or "{}"))
    if digest["ablation"]:
        lines.append("")
        lines.append("Graceful degradation (disk-fault plan, three"
                     " rungs):")
        lines.append("  rung             crash/hang  downtime"
                     "  mean s/event")
        for _variant, label in ABLATION_VARIANTS:
            entry = digest["ablation"][label]
            lines.append("  %-15s  %10d  %7ds  %11.0f"
                         % (label, entry["crash_hang"],
                            entry["downtime"], entry["mean_downtime"]))
        fail_stop = digest["ablation"]["fail-stop"]
        retry = digest["ablation"]["driver retry"]
        masked = fail_stop["crash_hang"] - retry["crash_hang"]
        fsv = FAIL_SILENCE_VIOLATION
        fsv_delta = (fail_stop["outcomes"].get(fsv, 0)
                     - retry["outcomes"].get(fsv, 0))
        lines.append("  driver retry masks %d crash/hang event(s) and"
                     " %d fail-silence violation(s) of the fail-stop"
                     " rung" % (max(0, masked), max(0, fsv_delta)))
    return "\n".join(lines)


def _dicts(results):
    return [r.to_dict() for r in results.results]


def smoke(ctx, kinds=DEFAULT_KINDS, max_specs=6, tmp_dir=None):
    """CI gate; returns a list of failure strings (empty = pass).

    Per model: at least one activated result, and serial, parallel
    (2 workers) and interrupted-then-resumed execution all produce
    bit-identical result lists.
    """
    import os
    import tempfile

    failures = []
    tmp_dir = tmp_dir or tempfile.mkdtemp(prefix="fault_smoke_")
    harness = ctx.harness
    for kind in kinds:
        serial = run_fault_model_campaign(harness, kind, seed=ctx.seed,
                                          max_specs=max_specs,
                                          grade=False)
        activated = sum(1 for r in serial.results if r.activated)
        if activated == 0:
            failures.append("%s: no activated result in %d specs"
                            % (kind, len(serial)))
        parallel = run_fault_model_campaign(harness, kind,
                                            seed=ctx.seed,
                                            max_specs=max_specs,
                                            grade=False, jobs=2)
        if _dicts(parallel) != _dicts(serial):
            failures.append("%s: parallel != serial" % kind)
        journal_path = os.path.join(tmp_dir, "%s.jsonl" % kind)
        interrupt_at = max(1, len(serial) // 2)

        def interrupt(done, total, result):
            if done == interrupt_at:
                raise KeyboardInterrupt

        try:
            run_fault_model_campaign(harness, kind, seed=ctx.seed,
                                     max_specs=max_specs, grade=False,
                                     journal_path=journal_path,
                                     progress=interrupt)
        except KeyboardInterrupt:
            pass
        resumed = run_fault_model_campaign(harness, kind,
                                           seed=ctx.seed,
                                           max_specs=max_specs,
                                           grade=False,
                                           journal_path=journal_path,
                                           resume=True)
        if resumed.meta["engine"]["resumed_results"] == 0:
            failures.append("%s: resume replayed nothing" % kind)
        if _dicts(resumed) != _dicts(serial):
            failures.append("%s: resumed != serial" % kind)
    return failures


def main(argv=None):
    from repro.experiments.context import SCALES, ExperimentContext
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny per-model slices; gate on activation"
                             " and serial == parallel == resumed")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--results-dir", default=None,
                        help="campaign JSON cache directory")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--translate", action="store_true",
                        help="run every machine through the translated "
                             "fast path (bit-identical; the CI "
                             "translated smoke leg)")
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else args.scale
    ctx = ExperimentContext(scale=scale, seed=args.seed,
                            results_dir=args.results_dir,
                            verbose=True, jobs=args.jobs,
                            translate=args.translate)
    if args.smoke:
        failures = smoke(ctx)
        if failures:
            for failure in failures:
                print("smoke FAILED: %s" % failure, file=sys.stderr)
            return 1
        print("smoke OK: every fault model activated; serial =="
              " parallel == resumed", file=sys.stderr)
        return 0
    print(run(ctx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
