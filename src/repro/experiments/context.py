"""Shared experiment state with lazy construction and caching."""

import json
import os
import sys
import time

from repro.injection.runner import CampaignResults, InjectionHarness
from repro.kernel.build import build_kernel
from repro.profiling.sampler import profile_kernel
from repro.userland.build import build_all_programs
from repro.userland.programs import WORKLOADS

#: Campaign sizing presets: campaign -> (byte_stride, max_specs).
SCALES = {
    # A few dozen injections per campaign; smoke tests.
    "tiny": {"A": (40, 120), "B": (12, 120), "C": (3, 120)},
    # A few hundred per campaign; CI-sized statistics.
    "quick": {"A": (12, None), "B": (4, None), "C": (1, None)},
    # The default for EXPERIMENTS.md: thousands of injections.
    "standard": {"A": (4, None), "B": (2, None), "C": (1, None)},
    # Paper-scale: every planned injection.
    "full": {"A": (1, None), "B": (1, None), "C": (1, None)},
}

#: Fault-model campaign sizing: scale -> max specs per model (the
#: plans themselves are already per-function-capped; None = all).
FAULT_SCALES = {
    "tiny": 10,
    "quick": 40,
    "standard": 120,
    "full": None,
}

#: Retry budget of the "retrying driver" ablation harness.
DEFAULT_DISK_RETRIES = 2


class ExperimentContext:
    """Builds and caches everything the experiments share."""

    def __init__(self, scale="quick", seed=2003, results_dir=None,
                 verbose=False, jobs=1, resume=False, translate=False):
        if scale not in SCALES:
            raise ValueError("unknown scale %r (have %s)"
                             % (scale, sorted(SCALES)))
        self.scale = scale
        self.seed = seed
        self.results_dir = results_dir
        self.verbose = verbose
        self.jobs = jobs
        self.resume = resume
        #: Run every harness through the translated fast path
        #: (bit-identical, just faster); the CI translated smoke leg
        #: flips this via an exhibit's ``--translate`` flag.
        self.translate = bool(translate)
        self._kernel = None
        self._binaries = None
        self._profile = None
        self._harness = None
        self._recovery_harness = None
        self._traced_harness = None
        self._retry_harness = None
        self._translated_harness = None
        self._campaigns = {}
        self._recovery_campaigns = {}
        self._traced_campaigns = {}
        self._fault_campaigns = {}
        self._delta_campaigns = {}
        self._snapshot_store = None

    # -- lazily built shared state ------------------------------------------

    @property
    def kernel(self):
        if self._kernel is None:
            self._kernel = build_kernel()
        return self._kernel

    @property
    def binaries(self):
        if self._binaries is None:
            self._binaries = build_all_programs()
        return self._binaries

    @property
    def profile(self):
        if self._profile is None:
            self._log("profiling kernel under %d workloads..."
                      % len(WORKLOADS))
            self._profile = profile_kernel(self.kernel, self.binaries,
                                           WORKLOADS)
        return self._profile

    @property
    def harness(self):
        if self._harness is None:
            self._harness = InjectionHarness(self.kernel, self.binaries,
                                             self.profile,
                                             translate=self.translate)
        return self._harness

    @property
    def recovery_harness(self):
        """Harness whose runs boot the recovery-enabled kernel."""
        if self._recovery_harness is None:
            self._recovery_harness = InjectionHarness(
                self.kernel, self.binaries, self.profile, recovery=True,
                translate=self.translate)
        return self._recovery_harness

    @property
    def traced_harness(self):
        """Harness whose runs carry the execution flight recorder."""
        if self._traced_harness is None:
            self._traced_harness = InjectionHarness(
                self.kernel, self.binaries, self.profile, trace=True,
                translate=self.translate)
        return self._traced_harness

    @property
    def translated_harness(self):
        """Harness whose machines run the translated fast path.

        Bit-identical to :attr:`harness` (the differential suite
        enforces it), just faster — the CI smoke leg runs one exhibit
        through this harness to keep the mode exercised end to end.
        """
        if self._translated_harness is None:
            self._translated_harness = InjectionHarness(
                self.kernel, self.binaries, self.profile,
                translate=True)
        return self._translated_harness

    @property
    def retry_harness(self):
        """Harness whose kernels boot with the IDE retry path armed.

        The middle rung of the graceful-degradation ablation: same
        fail-stop oops handling as :attr:`harness`, but a failed disk
        transfer is retried with backoff before ``-EIO`` propagates.
        """
        if self._retry_harness is None:
            self._retry_harness = InjectionHarness(
                self.kernel, self.binaries, self.profile,
                disk_retries=DEFAULT_DISK_RETRIES,
                translate=self.translate)
        return self._retry_harness

    @property
    def snapshot_store(self):
        """Shared boot-snapshot store (``<results_dir>/snapshots``).

        ``None`` without a results directory — the store is an on-disk
        cache, and a context with nowhere to persist results has
        nowhere to persist snapshots either.
        """
        if self._snapshot_store is None and self.results_dir is not None:
            from repro.injection.fabric import SnapshotStore
            self._snapshot_store = SnapshotStore(
                os.path.join(self.results_dir, "snapshots"))
        return self._snapshot_store

    def campaign(self, key):
        """Results for campaign *key* at this context's scale (cached)."""
        return self._campaign(key)

    def sharded_campaign(self, key, shards=3, pool=None, chaos=0):
        """Campaign *key* executed through the fabric (cached).

        Same plan (seed, stride, cap) as :meth:`campaign`, split into
        *shards* content-addressed shards and dispatched to a local
        pool by :class:`~repro.injection.fabric.FabricCoordinator`;
        by the merge-equivalence property the results are bit-identical
        to :meth:`campaign`'s, so the cache is shared with the plain
        variant.  *chaos* > 0 SIGKILLs that many shard workers mid-run
        (they are retried and their journals resumed).
        """
        cache = self._cache_for("")
        if key in cache:
            return cache[key]
        cached = self._load_cached(key, "")
        if cached is not None:
            cache[key] = cached
            return cached
        from repro.injection.fabric import (
            FabricConfig,
            FabricCoordinator,
        )
        import tempfile
        stride, max_specs = SCALES[self.scale][key]
        self._log("running campaign %s [fabric %d shards] (stride %d)..."
                  % (key, shards, stride))
        start = time.time()
        config = FabricConfig(pool=pool or max(2, self.jobs),
                              chaos_kills=chaos, chaos_seed=self.seed)
        harness = InjectionHarness(self.kernel, self.binaries,
                                   self.profile,
                                   snapshot_store=self.snapshot_store)
        coordinator = FabricCoordinator(harness, config)
        if self.results_dir is not None:
            workdir = os.path.join(self.results_dir,
                                   "fabric_%s_%s_seed%d"
                                   % (key, self.scale, self.seed))
        else:
            workdir = tempfile.mkdtemp(prefix="fabric_%s_" % key)
        results = coordinator.run_campaign(
            key, seed=self.seed, byte_stride=stride,
            max_specs=max_specs, shard_count=shards, workdir=workdir)
        self._log("campaign %s [fabric]: %d injections in %.1fs"
                  % (key, len(results), time.time() - start))
        cache[key] = results
        self._store_cached(key, results, "")
        return results

    def recovery_campaign(self, key):
        """Campaign *key* re-run under the recovery kernel (cached).

        Identical injection plan to :meth:`campaign` (same seed, stride
        and spec cap) so the two distributions are directly comparable;
        only the kernel's oops handling differs.
        """
        return self._campaign(key, variant="recovery")

    def traced_campaign(self, key):
        """Campaign *key* re-run under the flight recorder (cached).

        Identical plan and (by the bit-identity property) identical
        outcomes to :meth:`campaign`; the results additionally carry
        the ``trace_*`` divergence measurements.  Cached separately —
        plain campaign caches predate tracing and lack those fields.
        """
        return self._campaign(key, variant="traced")

    def fault_campaign(self, kind, variant=""):
        """Results of one fault-model campaign (cached).

        *kind* is a :data:`repro.injection.faultmodels.FAULT_KINDS`
        entry; *variant* selects the harness: ``""`` (fail-stop),
        ``"retry"`` (IDE retry path) or ``"recovery"`` (oops-kill-
        continue kernel).  The plan is identical across variants, so
        the three outcome distributions are directly comparable.
        """
        cache_key = (kind, variant)
        if cache_key not in self._fault_campaigns:
            from repro.injection.faultmodels import \
                run_fault_model_campaign
            name = "F" + kind
            cached = self._load_cached(name, variant)
            if cached is not None:
                self._fault_campaigns[cache_key] = cached
                return cached
            max_specs = FAULT_SCALES[self.scale]
            mode = " [%s]" % variant if variant else ""
            self._log("running fault-model campaign %s%s (jobs %d)..."
                      % (kind, mode, self.jobs))
            start = time.time()
            progress = self._progress if self.verbose else None
            results = run_fault_model_campaign(
                self._harness_for(variant), kind, seed=self.seed,
                max_specs=max_specs, progress=progress, jobs=self.jobs,
                journal_path=self._journal_path(name, variant),
                resume=self.resume)
            self._log("fault-model campaign %s%s: %d injections in %.1fs"
                      % (kind, mode, len(results), time.time() - start))
            self._fault_campaigns[cache_key] = results
            self._store_cached(name, results, variant)
        return self._fault_campaigns[cache_key]

    def delta_campaign(self, key, source_edits):
        """Campaign *key* re-planned incrementally after a source edit.

        Runs (or loads) the base campaign on :attr:`kernel`, rebuilds
        the kernel with *source_edits* applied, and executes only the
        injection sites the static differ cannot prove unchanged
        (:mod:`repro.staticanalysis.delta`); every other record is
        carried forward from the base campaign's journal.  When the
        base run kept no journal (in-memory or JSON-cached results),
        one is materialized first.  ``results.meta["delta"]`` holds
        the re-run fraction, the per-reason live counts and the
        carry-forward provenance.
        """
        edits = tuple(tuple(edit) for edit in source_edits)
        cache_key = (key, edits)
        if cache_key not in self._delta_campaigns:
            import tempfile
            from repro.staticanalysis.delta import write_results_journal
            base = self.campaign(key)
            journal = self._journal_path(key)
            if journal is None or not os.path.exists(journal):
                journal = os.path.join(
                    tempfile.mkdtemp(prefix="delta_source_"),
                    "campaign_%s.journal.jsonl" % key)
                write_results_journal(base, journal)
            stride, max_specs = SCALES[self.scale][key]
            self._log("rebuilding kernel with %d source edit(s)..."
                      % len(edits))
            new_kernel = build_kernel(source_edits=edits)
            harness = InjectionHarness(new_kernel, self.binaries,
                                       self.profile)
            self._log("running delta campaign %s (stride %d)..."
                      % (key, stride))
            start = time.time()
            results = harness.run_campaign(
                key, seed=self.seed, byte_stride=stride,
                max_specs=max_specs, jobs=self.jobs,
                delta_from=journal, delta_base_kernel=self.kernel)
            delta = results.meta["delta"]
            self._log("delta campaign %s: %d carried, %d live "
                      "(fraction %.4f) in %.1fs"
                      % (key, delta["carried"], delta["live"],
                         delta["rerun_fraction"], time.time() - start))
            self._delta_campaigns[cache_key] = results
        return self._delta_campaigns[cache_key]

    def _harness_for(self, variant):
        if variant == "recovery":
            return self.recovery_harness
        if variant == "traced":
            return self.traced_harness
        if variant == "retry":
            return self.retry_harness
        if variant == "translated":
            return self.translated_harness
        return self.harness

    def _cache_for(self, variant):
        if variant == "recovery":
            return self._recovery_campaigns
        if variant == "traced":
            return self._traced_campaigns
        return self._campaigns

    def _campaign(self, key, variant=""):
        cache = self._cache_for(variant)
        if key not in cache:
            cached = self._load_cached(key, variant)
            if cached is not None:
                cache[key] = cached
                return cached
            stride, max_specs = SCALES[self.scale][key]
            mode = " [%s]" % variant if variant else ""
            self._log("running campaign %s%s (stride %d, jobs %d)..."
                      % (key, mode, stride, self.jobs))
            start = time.time()
            progress = self._progress if self.verbose else None
            harness = self._harness_for(variant)
            results = harness.run_campaign(
                key, seed=self.seed, byte_stride=stride,
                max_specs=max_specs, progress=progress,
                jobs=self.jobs,
                journal_path=self._journal_path(key, variant),
                resume=self.resume)
            self._log("campaign %s%s: %d injections in %.1fs"
                      % (key, mode, len(results), time.time() - start))
            cache[key] = results
            self._store_cached(key, results, variant)
        return cache[key]

    def all_campaigns(self):
        return {key: self.campaign(key) for key in ("A", "B", "C")}

    def all_results(self):
        merged = []
        for key in ("A", "B", "C"):
            merged.extend(self.campaign(key).results)
        return merged

    # -- persistence -----------------------------------------------------------

    def _cache_path(self, key, variant=""):
        if self.results_dir is None:
            return None
        suffix = "_" + variant if variant else ""
        return os.path.join(self.results_dir,
                            "campaign_%s_%s_seed%d%s.json"
                            % (key, self.scale, self.seed, suffix))

    def _journal_path(self, key, variant=""):
        """JSONL journal next to the cache (enables crash-safe resume)."""
        path = self._cache_path(key, variant)
        if path is None:
            return None
        return path[:-len(".json")] + ".journal.jsonl"

    def _load_cached(self, key, variant=""):
        path = self._cache_path(key, variant)
        if path is None or not os.path.exists(path):
            return None
        try:
            return CampaignResults.load(path)
        except (OSError, ValueError, KeyError):
            return None

    def _store_cached(self, key, results, variant=""):
        path = self._cache_path(key, variant)
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        results.save(path)

    # -- misc ---------------------------------------------------------------------

    def _log(self, message):
        if self.verbose:
            print("[experiments] " + message, file=sys.stderr, flush=True)

    def _progress(self, done, total, result):
        if done % 200 == 0 or done == total:
            print("[experiments]   %d/%d (%s)"
                  % (done, total, result.outcome),
                  file=sys.stderr, flush=True)

    def summary_json(self):
        """Machine-readable digest of everything (for tooling/tests)."""
        from repro.analysis.stats import outcome_pie
        out = {"scale": self.scale, "seed": self.seed, "campaigns": {}}
        for key in ("A", "B", "C"):
            results = self.campaign(key)
            pie = outcome_pie(results.results)
            out["campaigns"][key] = {
                "injected": len(results),
                "pie": dict(pie),
            }
        return json.dumps(out, indent=2, sort_keys=True)
