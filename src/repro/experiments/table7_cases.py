"""Table 7: example case studies of crash causes (before/after decode)."""

from repro.analysis.cases import find_case_studies, format_case_study


def run(ctx):
    merged = ctx.all_results()
    found = find_case_studies(ctx.kernel, merged)
    lines = ["Table 7: example case studies of crash causes"]
    for kind in ("null_pointer", "paging_request", "gpf",
                 "invalid_opcode"):
        result = found.get(kind)
        lines.append("")
        if result is None:
            lines.append("(%s: no example at this scale)" % kind)
            continue
        lines.append(format_case_study(ctx.kernel, result))
    return "\n".join(lines)
