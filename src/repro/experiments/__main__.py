"""Run the reproduction from the command line.

    python -m repro.experiments [scale] [output.md] [--results-dir DIR]
                                [--jobs N] [--resume]

Runs every exhibit at the chosen scale (tiny/quick/standard/full) and
writes the paper-vs-measured report.  ``--jobs`` runs the injection
campaigns in process-isolated parallel workers; ``--resume`` restarts
an interrupted campaign from its journal in the results directory.
"""

import argparse
import os
import sys

from repro.experiments import ExperimentContext, build_report
from repro.experiments.comparison import build_comparison
from repro.experiments.context import SCALES
from repro.injection.engine import JournalMismatch


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--results-dir", default="results",
                        help="campaign JSON cache directory")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel injection workers (default 1)")
    parser.add_argument("--resume", action="store_true",
                        help="resume interrupted campaigns from their "
                             "journals")
    args = parser.parse_args(argv)

    ctx = ExperimentContext(scale=args.scale, seed=args.seed,
                            verbose=True, results_dir=args.results_dir,
                            jobs=args.jobs, resume=args.resume)
    try:
        comparison = build_comparison(ctx)
        report = build_report(ctx)
    except JournalMismatch as exc:
        print("error: %s" % exc, file=sys.stderr)
        print("(the journal belongs to a different plan: delete it or "
              "rerun without --resume)", file=sys.stderr)
        return 2
    with open(args.output, "w") as fh:
        fh.write(comparison)
        fh.write("\n\n---\n\n")
        fh.write(report)
    print("wrote %s" % args.output, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
