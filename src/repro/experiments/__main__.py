"""Run the reproduction from the command line.

    python -m repro.experiments [scale] [output.md] [--results-dir DIR]

Runs every exhibit at the chosen scale (tiny/quick/standard/full) and
writes the paper-vs-measured report.
"""

import argparse
import os
import sys

from repro.experiments import ExperimentContext, build_report
from repro.experiments.comparison import build_comparison
from repro.experiments.context import SCALES


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--results-dir", default="results",
                        help="campaign JSON cache directory")
    parser.add_argument("--seed", type=int, default=2003)
    args = parser.parse_args(argv)

    ctx = ExperimentContext(scale=args.scale, seed=args.seed,
                            verbose=True, results_dir=args.results_dir)
    comparison = build_comparison(ctx)
    report = build_report(ctx)
    with open(args.output, "w") as fh:
        fh.write(comparison)
        fh.write("\n\n---\n\n")
        fh.write(report)
    print("wrote %s" % args.output, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
