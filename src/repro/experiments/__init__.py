"""Per-table/figure reproduction harness.

``ExperimentContext`` owns the expensive shared state (kernel build,
workload binaries, kernel profile, golden runs, campaign results at a
chosen scale) and caches it; the ``fig*``/``table*`` functions each
regenerate one of the paper's exhibits from that state.
"""

from repro.experiments.context import SCALES, ExperimentContext
from repro.experiments.report import build_report

__all__ = ["ExperimentContext", "SCALES", "build_report"]
