"""Table 2: experimental setup summary (paper vs this reproduction)."""

from repro.kernel.layout import KernelLayout


def run(ctx=None):
    layout = KernelLayout()
    rows = [
        ("CPU", "Intel P4 1.5 GHz", "IA-32-subset interpreter"),
        ("Memory", "256 MB", "%d MB simulated RAM"
         % (layout.RAM_BYTES // (1024 * 1024))),
        ("Kernel", "Linux 2.4.19", "linux-sim 2.4.19-repro (MinC)"),
        ("File system", "Ext2", "ext2lite (1 KiB blocks)"),
        ("Crash dump", "LKCD", "dump device + kernel crash handler"),
        ("Workload", "UnixBench", "8 UnixBench-equivalent programs"),
        ("Profiling", "Kernprof", "cycle-driven PC sampler"),
        ("Kernel debug", "KDB", "host-side symbolized disassembler"),
        ("Injection", "Linux Kernel Injector",
         "DR0-triggered single-bit flipper"),
    ]
    lines = ["Table 2: Experimental Setup Summary"]
    lines.append("%-14s %-24s %s" % ("Item", "Paper", "This reproduction"))
    for item, paper, ours in rows:
        lines.append("%-14s %-24s %s" % (item, paper, ours))
    return "\n".join(lines)
