"""Simulated IA-32-subset processor, MMU, and platform devices.

This is the hardware substrate that stands in for the paper's Pentium 4
testbed: a cycle-counting interpreter with two-level x86 paging, privilege
levels, the full trap taxonomy of the paper's Table 3, debug registers
(the injection trigger), and MMIO devices (console, disk, crash-dump
device, shutdown port).
"""

from repro.cpu.traps import (
    Trap,
    TripleFault,
    VEC_BOUNDS,
    VEC_DEBUG,
    VEC_DIVIDE,
    VEC_DOUBLE_FAULT,
    VEC_GPF,
    VEC_INT3,
    VEC_INVALID_OP,
    VEC_INVALID_TSS,
    VEC_OVERFLOW,
    VEC_PAGE_FAULT,
    trap_name,
)
from repro.cpu.memory import MemoryBus, PageTableBuilder, PAGE_SIZE
from repro.cpu.devices import (
    ConsoleDevice,
    DiskDevice,
    DumpDevice,
    MachineShutdown,
    ShutdownDevice,
)
from repro.cpu.cpu import CPU, WatchdogExpired, CpuHalted

__all__ = [
    "Trap",
    "TripleFault",
    "VEC_DIVIDE",
    "VEC_DEBUG",
    "VEC_INT3",
    "VEC_OVERFLOW",
    "VEC_BOUNDS",
    "VEC_INVALID_OP",
    "VEC_DOUBLE_FAULT",
    "VEC_INVALID_TSS",
    "VEC_GPF",
    "VEC_PAGE_FAULT",
    "trap_name",
    "MemoryBus",
    "PageTableBuilder",
    "PAGE_SIZE",
    "ConsoleDevice",
    "DiskDevice",
    "DumpDevice",
    "ShutdownDevice",
    "MachineShutdown",
    "CPU",
    "WatchdogExpired",
    "CpuHalted",
]
