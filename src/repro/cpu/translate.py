"""Translated-execution fast path: a self-invalidating block cache.

The interpreter in :mod:`repro.cpu.cpu` re-decodes, re-dispatches, and
re-checks host events (watchdog, timer, alarm, pending IRQ, DR0
breakpoints) for every retired instruction.  Campaigns execute tens of
millions of instructions, so that per-instruction overhead is the
binding cost of every experiment (see BENCH_trace.json / ROADMAP.md).

This module pre-decodes *traces* — straight-line instruction runs
seeded at the statically recovered CFG's block leaders
(:mod:`repro.staticanalysis.cfg`) plus on-demand discovery, extended
through direct ``jmp``/``call`` targets and ``jcc`` fallthroughs
(taken sides become committed side exits) — and compiles each into one
specialized Python function (``exec``-generated source; templates are
cached across machines keyed by ``(eip, cpl)`` and validated against
the raw code bytes, so campaign clones share compilation).  Decode
happens once; execution happens many times with no fetch, no
decode-cache validation, no per-instruction event checks, and no
per-instruction call dispatch.

The generated code exploits what the interpreter cannot: within a
block, ``cycles``/``instret`` retires are *batched* into compile-time
constants, arithmetic flags live in Python locals (a ``cmp``+``jcc``
pair branches on the locals directly — the general form of the
cmp+jcc / dec+jnz superinstructions), and the MMU/TLB read and write
fast paths are inlined with the privilege checks specialized for the
block's compile-time CPL.

Bit-identity contract (the differential harness in
``tests/test_translate_differential.py`` enforces this):

* before any operation that can trap (memory access, division, every
  generic handler call) or observe the counters (``rdtsc``, trace
  hooks), the generated code commits the exact interpreted
  ``cycles``/``instret``/``eip``/flag values — so traps, trace stamps,
  and crash-latency clocks are indistinguishable from interpretation;
* host events are only *elided inside* a block when they provably
  cannot fire there: dispatch maintains an *event horizon* (the
  nearest of watchdog, next timer tick, armed alarm — every
  interpreter threshold test is ``>=``, so ``cycles + worst <
  horizon`` proves the elided checks dead) and refuses to enter a
  block that could cross it, or that contains a DR0 breakpoint
  address — those cases fall back to single-step interpretation
  (``_step_one``, a verbatim copy of the interpreter loop body);
* instructions that can enable interrupts, redirect control, or change
  paging/debug state terminate their block, so no IRQ window or
  breakpoint map change can open mid-block;
* the dynamic CPL is part of the block key, so a block compiled for
  CPL0 (no user-bit checks) can never serve a CPL3 execution of the
  same address.

Self-invalidation: injected bit flips (and any self-modifying store)
rewrite the very bytes a block was compiled from.  The cache registers
every block's *physical byte ranges* in a page-keyed map and installs
itself as ``bus.code_watch``; all three store paths (the CPU's inlined
fast path, ``MemoryBus.phys_write``, ``MemoryBus.phys_write_bytes``)
notify the watch, which evicts exactly the overlapping blocks.  The
generated write fast path pre-checks page membership inline, so stores
far from translated code pay one dict lookup.  A store that rewrites
bytes of the *currently executing* trace additionally sets
``BlockCache.stale``; the generated code tests it after every writing
instruction and side-exits at the instruction boundary with the exact
interpreted ``cycles``/``instret``/``eip``, so even a self-modifying
store inside a trace never runs stale code.  This is the same
write-generation discipline the interpreter's decode cache uses,
unified behind one notification path.
"""

import struct

from repro.cpu.cpu import M32, WatchdogExpired, _PARITY
from repro.cpu.traps import Trap, VEC_TIMER_IRQ

PAGE_SHIFT = 12

#: pre-bound struct codecs for the generated MMU fast paths — about
#: 3x faster than ``int.from_bytes`` on slices / ``int.to_bytes``
#: assignment, which dominate translated-mode profiles.
_U32 = struct.Struct("<I").unpack_from
_P32 = struct.Struct("<I").pack_into
_P8W = struct.Struct("<8I").pack
_U8W = struct.Struct("<8I").unpack_from
KERNEL_SPACE = 0xC0000000

#: longest instruction run compiled into one translated trace.
MAX_TRACE = 64

#: cap on a trace's worst-case interior cycle cost.  The dispatcher
#: only enters a trace when ``cycles + worst`` stays below the event
#: horizon (next timer tick / alarm / watchdog), so an oversized worst
#: would strand dispatch in single-step mode for a long window before
#: every tick; 120 cycles against the 20000-cycle timer keeps that
#: window under ~1% of a tick.
WORST_CAP = 120

#: Ops after which a block must end.  Control transfers (the block must
#: publish a dynamic ``next_eip``), IF-enabling ops (an IRQ window may
#: open), traps taking ``return_eip`` from ``next_eip``, paging/debug
#: state writers (they change decode keys or the breakpoint map), and
#: ``hlt`` (it jumps the cycle counter).
TERMINATORS = frozenset([
    "jcc", "jmp", "jmp_ind", "call", "call_ind",
    "callf", "jmpf", "callf_ind", "jmpf_ind",
    "ret", "lret", "iret",
    "loop", "loope", "loopne", "jcxz",
    "int", "int3", "into", "bound", "ud2",
    "hlt", "sti", "popf",
    "mov_to_cr", "mov_to_dr",
])

#: Worst-case cycles an instruction can add beyond its retire bump
#: (memory-operand traffic, handler surcharges).  Used to bound a
#: block's cost so elided event checks provably cannot trigger inside.
_EXTRA_COST = {
    "pusha": 8,
    "popa": 8,
    "iret": 9,
    "callf_ind": 5,
    "jmpf_ind": 5,
}
_DEFAULT_EXTRA = 4


def _cost(ins):
    return 1 + _EXTRA_COST.get(ins.op, _DEFAULT_EXTRA)


#: ops the emitter usually specializes — the discovery walk estimates
#: these at ~2 cycles when sizing a trace against ``WORST_CAP``; the
#: guard itself uses the exact worst computed during generation.
_CHEAP_OPS = frozenset([
    "mov", "add", "sub", "cmp", "and", "or", "xor", "test",
    "inc", "dec", "lea", "pop", "push", "leave", "imul3", "movzx",
    "nop", "jcc", "jmp",
])


def _walk_cost(ins):
    if ins.op in _CHEAP_OPS:
        return 2
    return _cost(ins)


def kernel_block_leaders(kernel):
    """The union of CFG basic-block leaders across all kernel functions.

    Block discovery stops at leaders so translated blocks tile the
    recovered CFG instead of forming overlapping superblocks.  Cached on
    the kernel image: campaigns clone thousands of machines from one
    build, and the sweep costs ~75ms (BENCH_static.json).
    """
    cached = getattr(kernel, "_block_leaders", None)
    if cached is not None:
        return cached
    from repro.staticanalysis.cfg import build_cfg
    leaders = set()
    for info in getattr(kernel, "functions", ()):
        try:
            cfg = build_cfg(kernel, info)
        except Exception:
            continue
        leaders.update(cfg.blocks.keys())
    leaders = frozenset(leaders)
    try:
        kernel._block_leaders = leaders
    except AttributeError:
        pass
    return leaders


class Block:
    """One translated straight-line run.

    ``fn`` is ``None`` for negative entries (untranslatable heads,
    e.g. rep-string resumes) cached so dispatch skips rediscovery;
    negative entries still register their bytes so stores invalidate
    them like any block.
    """

    __slots__ = ("key", "fn", "worst", "eips", "ranges")

    def __init__(self, key, fn, worst, eips):
        self.key = key
        self.fn = fn
        self.worst = worst
        self.eips = eips
        self.ranges = ()


def _step_one(cpu, eip):
    """Interpret exactly one instruction.

    A verbatim transcription of the interpreter loop *body* (fetch,
    execute, retire, trace, trap handling) — the translated dispatch
    loop falls back to this at every point where a block cannot be
    entered, so the fallback is bit-identical by construction.
    """
    try:
        ins = cpu._fetch(eip)
        fallthrough = (eip + ins.length) & M32
        cpu.next_eip = fallthrough
        ins.run(cpu, ins)
        new_eip = cpu.next_eip
        cpu.eip = new_eip
        cpu.cycles += 1
        cpu.instret += 1
        if cpu.trace_branch is not None \
                and new_eip != fallthrough and new_eip != eip:
            cpu.trace_branch(eip, new_eip)
    except Trap as trap:
        cpu.cycles += 10
        return_eip = (trap.return_eip
                      if trap.return_eip is not None else eip)
        cpu.deliver_trap(trap.vector, trap.error_code, return_eip,
                         cr2=trap.cr2)


# ----------------------------------------------------------------------
# block compilation: one generated Python function per block
# ----------------------------------------------------------------------
#
# The emitter walks the instruction run tracking *pending* retire
# bumps and *local* flag values at compile time.  State is committed
# to the cpu object only where the interpreter's state is observable:
# before anything that can raise ``Trap`` (so trap frames and
# ``return_eip`` match), before every trace hook and generic handler
# (so stamps and flag reads match), and at block exit.  Everything
# else runs on locals — ``regs`` (the CPU's own register list), the
# flag locals ``cf``/``zf``/``sf``/``of``/``pf``, and the inlined
# TLB fast path over ``ram``.

_CC_EXPR = (
    "{p}of", "{p}cf", "{p}zf", "{p}cf or {p}zf", "{p}sf", "{p}pf",
    "{p}sf != {p}of", "{p}zf or {p}sf != {p}of",
)


def _cond_expr(cc, p):
    """Inline equivalent of ``cc_holds(cc, ...)`` over flag names."""
    expr = _CC_EXPR[cc >> 1].format(p=p)
    if cc & 1:
        return "not (%s)" % expr
    return expr


def _ea_expr(mem):
    """Compile-time effective-address expression (mirrors ``_ea``)."""
    if mem.index is None:
        if mem.base is None:
            return "%d" % (mem.disp & M32)
        return "(regs[%d] + %d) & 4294967295" % (mem.base, mem.disp)
    if mem.base is None:
        return "(regs[%d] * %d + %d) & 4294967295" % (
            mem.index, mem.scale, mem.disp)
    return "(regs[%d] + regs[%d] * %d + %d) & 4294967295" % (
        mem.base, mem.index, mem.scale, mem.disp)


class _Emit:
    """Source emitter with compile-time pending-state tracking."""

    def __init__(self, user):
        self.user = user
        self.lines = []
        self.pc = 0          # pending (uncommitted) cycle retires
        self.pi = 0          # pending instret retires
        self.flags = False   # cf/zf/sf/of/pf live in locals
        self.generics = []   # (ins, handler) for run{k}/ins{k} refs
        self.mem = False     # block needs the paging prologue
        self.wc = 0          # monotone count of inlined memory accesses
        self.ind = 0         # base indent (batched-op fallback bodies)
        self.wrote = False   # current instruction may have stored

    def put(self, line, ind=0):
        self.lines.append("        " + "    " * (self.ind + ind) + line)

    def commit_flags(self):
        if self.flags:
            self.put("cpu.cf = cf; cpu.zf = zf; cpu.sf = sf; "
                     "cpu.of = of; cpu.pf = pf")
            self.flags = False

    def flush(self, eip=None, extra_c=0, extra_i=0):
        """Commit pending counters (plus extras) and optionally eip."""
        c = self.pc + extra_c
        i = self.pi + extra_i
        if c:
            self.put("cpu.cycles += %d" % c)
        if i:
            self.put("cpu.instret += %d" % i)
        if eip is not None:
            self.put("cpu.eip = %d" % eip)
        self.pc = 0
        self.pi = 0

    # -- inlined MMU fast paths ----------------------------------------
    #
    # The fast paths are *commit-free*: they run entirely on locals
    # (the TLB dict, the RAM bytearray) and cannot raise, so the
    # pending counters stay batched.  Only the fallback branch — TLB
    # miss, permission failure, page split, MMIO, or an armed
    # trace_write hook — commits the exact interpreted state first
    # (a Trap escaping ``read_slow``/``write_slow`` then observes
    # precisely what the interpreter would show), and un-commits it
    # again on success so both branches rejoin in the same
    # compile-time state.

    def _slow_commit(self, addr, ind):
        if self.flags:
            # Keep the locals authoritative; attrs only need to be
            # right at observation points, and this is one.
            self.put("cpu.cf = cf; cpu.zf = zf; cpu.sf = sf; "
                     "cpu.of = of; cpu.pf = pf", ind)
        if self.pc:
            self.put("cpu.cycles += %d" % self.pc, ind)
        if self.pi:
            self.put("cpu.instret += %d" % self.pi, ind)
        self.put("cpu.eip = %d" % addr, ind)

    def _slow_uncommit(self, ind):
        if self.pc:
            self.put("cpu.cycles -= %d" % self.pc, ind)
        if self.pi:
            self.put("cpu.instret -= %d" % self.pi, ind)

    def emit_read(self, addr, ea_src, size=4):
        """Inline ``mem_read(ea, size)`` -> local ``v`` (may Trap).

        Adds the access cycle to the pending batch; the fallback
        branch commits it eagerly so a #PF sees the interpreted
        counters.
        """
        self.mem = True
        self.put("ea = " + ea_src)
        self.put("v = None")
        if size == 4:
            self.put("if paging and ea & 4095 <= 4092:")
        else:
            self.put("if paging:")
        self.put("e = tlb.get(ea >> 12)", 1)
        self.put("if e is not None:", 1)
        if self.user:
            self.put("pfn, pfl = e", 2)
            self.put("if pfl & 4:", 2)
            k = 3
        else:
            self.put("pfn = e[0]", 2)
            k = 2
        self.put("ph = pfn << 12 | (ea & 4095)", k)
        self.put("if ph + %d <= RS:" % size, k)
        if size == 4:
            self.put("v = U32(ram, ph)[0]", k + 1)
        else:
            self.put("v = ram[ph]", k + 1)
        self.put("if v is None:")
        self._slow_commit(addr, 1)
        self.put("cpu.cycles += 1", 1)
        self.put("v = read_slow(ea, %d, %s)" % (size, self.user), 1)
        self.put("cpu.cycles -= 1", 1)
        self._slow_uncommit(1)
        self.pc += 1  # the access cycle, batched
        self.wc += 1

    def emit_write(self, addr, ea_src, val_src):
        """Inline ``mem_write(ea, 4, wv)`` (may raise Trap).

        The fallback also serves runs with the trace_write hook armed
        (CPL0): it commits the counters the hook must observe, fires
        the hook, and routes the store through the bus — mirroring
        the interpreter's ordering exactly.
        """
        self.mem = True
        self.put("ea = " + ea_src)
        self.put("wv = " + val_src)
        self.put("ok = False")
        fast = 0
        if not self.user:
            self.put("if cpu.trace_write is None:")
            fast = 1
        self.put("if paging and ea & 4095 <= 4092:", fast)
        self.put("e = tlb.get(ea >> 12)", fast + 1)
        self.put("if e is not None:", fast + 1)
        self.put("pfn, pfl = e", fast + 2)
        self.put("if %s:" % ("pfl & 6 == 6" if self.user else "pfl & 2"),
                 fast + 2)
        self.put("ph = pfn << 12 | (ea & 4095)", fast + 3)
        self.put("if ph + 4 <= RS:", fast + 3)
        self.put("P32(ram, ph, wv)", fast + 4)
        self.put("versions[ph >> 12] += 1", fast + 4)
        self.put("if ph >> 12 in wpages:", fast + 4)
        self.put("watch.note_write(ph, 4)", fast + 5)
        self.put("ok = True", fast + 4)
        self.put("if not ok:")
        self._slow_commit(addr, 1)
        if not self.user:
            self.put("tw = cpu.trace_write", 1)
            self.put("if tw is not None:", 1)
            self.put("tw(ea, 4, wv)", 2)
        self.put("cpu.cycles += 1", 1)
        self.put("write_slow(ea, 4, wv, %s)" % self.user, 1)
        self.put("cpu.cycles -= 1", 1)
        self._slow_uncommit(1)
        self.pc += 1  # the access cycle, batched
        self.wc += 1
        self.wrote = True

    # -- generic fallback ----------------------------------------------

    def emit_generic(self, ins):
        """Handler call with fully committed architectural state."""
        self.commit_flags()
        self.flush(eip=ins.addr)
        k = len(self.generics)
        self.generics.append((ins, ins.run))
        self.wrote = True  # the handler may store anywhere
        return k


def _flags_tail(em, d, writeback):
    em.put("zf = 1 if res == 0 else 0")
    em.put("sf = res >> 31")
    em.put("pf = PAR[res & 255]")
    if writeback:
        em.put("regs[%d] = res" % d)
    em.flags = True


def _emit_mid(em, ins):
    """Emit a non-terminator instruction; specialized where hot."""
    op = ins.op
    dst = ins.dst
    src = ins.src

    if op == "nop":
        em.pc += 1
        em.pi += 1
        return

    if ins.size == 4 and dst is not None and dst[0] == "r":
        d = dst[1]

        if op == "mov":
            if src[0] == "i":
                em.put("regs[%d] = %d" % (d, src[1] & M32))
                em.pc += 1
                em.pi += 1
                return
            if src[0] == "r":
                em.put("regs[%d] = regs[%d]" % (d, src[1]))
                em.pc += 1
                em.pi += 1
                return
            if src[0] == "m":
                em.emit_read(ins.addr, _ea_expr(src[1]))
                em.put("regs[%d] = v" % d)
                em.pc += 1
                em.pi += 1
                return

        if op in ("add", "sub", "cmp") and src[0] in ("r", "i"):
            if src[0] == "i":
                b = "%d" % (src[1] & M32)
            else:
                em.put("b = regs[%d]" % src[1])
                b = "b"
            em.put("a = regs[%d]" % d)
            if op == "add":
                em.put("t = a + %s" % b)
                em.put("res = t & 4294967295")
                em.put("cf = 1 if t > 4294967295 else 0")
                em.put("of = ((~(a ^ %s) & (a ^ res)) >> 31) & 1" % b)
            else:
                em.put("res = (a - %s) & 4294967295" % b)
                em.put("cf = 1 if a < %s else 0" % b)
                em.put("of = (((a ^ %s) & (a ^ res)) >> 31) & 1" % b)
            _flags_tail(em, d, op != "cmp")
            em.pc += 1
            em.pi += 1
            return

        if op in ("and", "or", "xor", "test") and src[0] in ("r", "i"):
            sym = {"and": "&", "test": "&", "or": "|", "xor": "^"}[op]
            if src[0] == "i":
                b = "%d" % (src[1] & M32)
            else:
                b = "regs[%d]" % src[1]
            em.put("res = regs[%d] %s %s" % (d, sym, b))
            em.put("cf = 0")
            em.put("of = 0")
            _flags_tail(em, d, op != "test")
            em.pc += 1
            em.pi += 1
            return

        if op in ("inc", "dec"):
            if not em.flags:
                em.put("cf = cpu.cf")  # inc/dec preserve CF
            em.put("a = regs[%d]" % d)
            if op == "inc":
                em.put("res = (a + 1) & 4294967295")
                em.put("of = ((~(a ^ 1) & (a ^ res)) >> 31) & 1")
            else:
                em.put("res = (a - 1) & 4294967295")
                em.put("of = (((a ^ 1) & (a ^ res)) >> 31) & 1")
            _flags_tail(em, d, True)
            em.pc += 1
            em.pi += 1
            return

        if op == "lea":
            em.put("regs[%d] = %s" % (d, _ea_expr(src[1])))
            em.pc += 1
            em.pi += 1
            return

        if op == "pop" and src is None:
            em.emit_read(ins.addr, "regs[4]")
            em.put("regs[4] = (ea + 4) & 4294967295")
            em.put("regs[%d] = v" % d)
            em.pc += 1
            em.pi += 1
            return

    if op == "mov" and ins.size == 4 and dst is not None \
            and dst[0] == "m" and src[0] in ("r", "i"):
        if src[0] == "i":
            val = "%d" % (src[1] & M32)
        else:
            val = "regs[%d]" % src[1]
        em.emit_write(ins.addr, _ea_expr(dst[1]), val)
        em.pc += 1
        em.pi += 1
        return

    if op == "push" and dst[0] in ("r", "i"):
        if dst[0] == "i":
            val = "%d" % (dst[1] & M32)
        else:
            val = "regs[%d]" % dst[1]
        em.emit_write(ins.addr, "(regs[4] - 4) & 4294967295", val)
        em.put("regs[4] = ea")
        em.pc += 1
        em.pi += 1
        return

    if op == "leave":
        # esp = ebp, then ebp = pop: the read targets the new esp.
        em.put("regs[4] = regs[5]")
        em.emit_read(ins.addr, "regs[4]")
        em.put("regs[4] = (ea + 4) & 4294967295")
        em.put("regs[5] = v")
        em.pc += 1
        em.pi += 1
        return

    if op in ("inc", "dec") and ins.size == 4 and dst is not None \
            and dst[0] == "m":
        em.emit_read(ins.addr, _ea_expr(dst[1]))
        if not em.flags:
            em.put("cf = cpu.cf")  # inc/dec preserve CF
        em.put("a = v")
        if op == "inc":
            em.put("res = (a + 1) & 4294967295")
            em.put("of = ((~(a ^ 1) & (a ^ res)) >> 31) & 1")
        else:
            em.put("res = (a - 1) & 4294967295")
            em.put("of = (((a ^ 1) & (a ^ res)) >> 31) & 1")
        em.put("zf = 1 if res == 0 else 0")
        em.put("sf = res >> 31")
        em.put("pf = PAR[res & 255]")
        em.flags = True
        em.emit_write(ins.addr, "ea", "res")
        em.pc += 1
        em.pi += 1
        return

    if op == "imul3" and ins.size == 4 and dst[0] == "r" \
            and src[0] == "r" and ins.imm2 is not None:
        bs = ins.imm2[1] & M32
        if bs > 0x7FFFFFFF:
            bs -= 1 << 32
        em.put("a = regs[%d]" % src[1])
        em.put("t = (a - 4294967296 if a > 2147483647 else a) * %d"
               % bs)
        em.put("regs[%d] = t & 4294967295" % dst[1])
        # imul3 writes CF/OF only; ZF/SF/PF keep their prior values.
        over = "0 if -2147483648 <= t <= 2147483647 else 1"
        if em.flags:
            em.put("cf = %s" % over)
            em.put("of = cf")
        else:
            em.put("cpu.cf = cpu.of = %s" % over)
        em.pc += 1
        em.pi += 1
        return

    if op == "movzx" and ins.size == 1 and dst is not None \
            and dst[0] == "r" and src[0] == "m":
        em.emit_read(ins.addr, _ea_expr(src[1]), size=1)
        em.put("regs[%d] = v" % dst[1])
        em.pc += 1
        em.pi += 1
        return

    if op == "pusha":
        # Eight pushes; the stored ESP is the pre-pusha value.  When the
        # whole 32-byte frame sits on one resident writable page the
        # eight stores collapse into one slice assignment (the version
        # counter and code-watch see the same final state as eight
        # separate stores); any miss falls back to the exact per-push
        # emission below.
        em.mem = True
        em.put("osp = regs[4]")
        em.put("ok = False")
        gate = "" if em.user else "cpu.trace_write is None and "
        em.put("if %spaging and osp >= 32 "
               "and (osp - 32) & 4095 <= 4064:" % gate)
        em.put("e = tlb.get((osp - 32) >> 12)", 1)
        em.put("if e is not None:", 1)
        em.put("pfn, pfl = e", 2)
        em.put("if %s:" % ("pfl & 6 == 6" if em.user else "pfl & 2"), 2)
        em.put("ph = pfn << 12 | ((osp - 32) & 4095)", 3)
        em.put("if ph + 32 <= RS:", 3)
        em.put("ram[ph:ph + 32] = P8(regs[7], regs[6], regs[5], osp, "
               "regs[3], regs[2], regs[1], regs[0])", 4)
        em.put("versions[ph >> 12] += 8", 4)
        em.put("if ph >> 12 in wpages:", 4)
        em.put("watch.note_write(ph, 32)", 5)
        em.put("regs[4] = osp - 32", 4)
        em.put("ok = True", 4)
        em.put("if not ok:")
        em.ind = 1
        for val in ("regs[0]", "regs[1]", "regs[2]", "regs[3]", "osp",
                    "regs[5]", "regs[6]", "regs[7]"):
            em.emit_write(ins.addr, "(regs[4] - 4) & 4294967295", val)
            em.put("regs[4] = ea")
        em.ind = 0
        em.pc += 1
        em.pi += 1
        return

    if op == "popa":
        # Mirror of pusha: one 8-word unpack when the frame is on one
        # resident page (reads cannot trap there), else the exact
        # per-pop sequence.
        em.mem = True
        em.put("osp = regs[4]")
        em.put("ok = False")
        em.put("if paging and osp & 4095 <= 4064:")
        em.put("e = tlb.get(osp >> 12)", 1)
        em.put("if e is not None:", 1)
        if em.user:
            em.put("pfn, pfl = e", 2)
            em.put("if pfl & 4:", 2)
            k = 3
        else:
            em.put("pfn = e[0]", 2)
            k = 2
        em.put("ph = pfn << 12 | (osp & 4095)", k)
        em.put("if ph + 32 <= RS:", k)
        em.put("t = U8(ram, ph)", k + 1)
        em.put("regs[7] = t[0]; regs[6] = t[1]; regs[5] = t[2]", k + 1)
        em.put("regs[3] = t[4]; regs[2] = t[5]; "
               "regs[1] = t[6]; regs[0] = t[7]", k + 1)
        em.put("regs[4] = (osp + 32) & 4294967295", k + 1)
        em.put("ok = True", k + 1)
        em.put("if not ok:")
        em.ind = 1
        for i in (7, 6, 5):
            em.emit_read(ins.addr, "regs[4]")
            em.put("regs[4] = (ea + 4) & 4294967295")
            em.put("regs[%d] = v" % i)
        em.emit_read(ins.addr, "regs[4]")  # saved ESP, discarded
        em.put("regs[4] = (ea + 4) & 4294967295")
        for i in (3, 2, 1, 0):
            em.emit_read(ins.addr, "regs[4]")
            em.put("regs[4] = (ea + 4) & 4294967295")
            em.put("regs[%d] = v" % i)
        em.ind = 0
        em.pc += 1
        em.pi += 1
        return

    k = em.emit_generic(ins)
    em.put("run%d(cpu, ins%d)" % (k, k))
    em.pc += 1
    em.pi += 1


def _emit_branch_hook(em, addr, target, ind):
    em.put("tb = cpu.trace_branch", ind)
    em.put("if tb is not None:", ind)
    em.put("tb(%d, %d)" % (addr, target), ind + 1)


_FLAG_COMMIT = ("cpu.cf = cf; cpu.zf = zf; cpu.sf = sf; "
                "cpu.of = of; cpu.pf = pf")


def _emit_jmp_cont(em, ins, target):
    """A followed direct ``jmp``: the trace continues at its target.

    Pure compile-time control flow — only the trace hook (rare) needs
    the exact retired state, committed inside its guard and rolled
    back so batching continues across the seam.
    """
    addr = ins.addr
    ft = (addr + ins.length) & M32
    if target != ft and target != addr:
        em.put("tb = cpu.trace_branch")
        em.put("if tb is not None:")
        if em.flags:
            em.put(_FLAG_COMMIT, 1)
        em.put("cpu.cycles += %d" % (em.pc + 1), 1)
        em.put("cpu.instret += %d" % (em.pi + 1), 1)
        em.put("cpu.eip = %d" % target, 1)
        em.put("tb(%d, %d)" % (addr, target), 1)
        em.put("cpu.cycles -= %d" % (em.pc + 1), 1)
        em.put("cpu.instret -= %d" % (em.pi + 1), 1)
    em.pc += 1
    em.pi += 1


def _emit_call_cont(em, ins, target):
    """A followed direct ``call``: push the return address inline and
    continue the trace inside the callee.  Flags are untouched, so the
    locals stay live across the seam."""
    addr = ins.addr
    ft = (addr + ins.length) & M32
    em.emit_write(addr, "(regs[4] - 4) & 4294967295", "%d" % ft)
    em.put("regs[4] = ea")
    if target != ft and target != addr:
        em.put("tb = cpu.trace_branch")
        em.put("if tb is not None:")
        if em.flags:
            em.put(_FLAG_COMMIT, 1)
        em.put("cpu.cycles += %d" % (em.pc + 2), 1)
        em.put("cpu.instret += %d" % (em.pi + 1), 1)
        em.put("cpu.eip = %d" % target, 1)
        em.put("tb(%d, %d)" % (addr, target), 1)
        em.put("cpu.cycles -= %d" % (em.pc + 2), 1)
        em.put("cpu.instret -= %d" % (em.pi + 1), 1)
    em.pc += 2
    em.pi += 1


def _emit_jcc_cont(em, ins, target):
    """A ``jcc`` mid-trace: taken is a committed side exit, not-taken
    falls through into the rest of the trace with state still batched
    (flag locals survive the seam — the general cmp+jcc fusion)."""
    addr = ins.addr
    ft = (addr + ins.length) & M32
    p = "" if em.flags else "cpu."
    em.put("if %s:" % _cond_expr(ins.cc, p))
    if em.flags:
        em.put(_FLAG_COMMIT, 1)
    em.put("cpu.cycles += %d" % (em.pc + 2), 1)
    em.put("cpu.instret += %d" % (em.pi + 1), 1)
    em.put("cpu.eip = %d" % target, 1)
    if target != ft and target != addr:
        em.put("tb = cpu.trace_branch", 1)
        em.put("if tb is not None:", 1)
        em.put("tb(%d, %d)" % (addr, target), 2)
    em.put("return", 1)
    em.pc += 1
    em.pi += 1


def _stale_check(em, next_addr):
    """Exit the trace if the last store evicted the running block.

    A store inside a trace can rewrite a *later* instruction of the
    same trace (self-modifying code, or an inlined store landing on
    translated bytes); the interpreter would see the new bytes at the
    very next fetch, so the stale closure must not run past the
    writing instruction.  ``note_write`` flags the cache when an
    eviction hits mid-execution; this check — emitted only after
    instructions that can store — commits the exact interpreted state
    at the instruction boundary and side-exits so dispatch re-derives
    everything from fresh bytes.
    """
    if not em.wrote:
        return
    em.wrote = False
    em.put("if watch.stale:")
    if em.flags:
        em.put(_FLAG_COMMIT, 1)
    if em.pc:
        em.put("cpu.cycles += %d" % em.pc, 1)
    if em.pi:
        em.put("cpu.instret += %d" % em.pi, 1)
    em.put("cpu.eip = %d" % next_addr, 1)
    em.put("return", 1)


def _emit_term(em, ins):
    """Emit a terminator: finalize counters, eip, and the trace hook."""
    op = ins.op
    addr = ins.addr
    ft = (addr + ins.length) & M32

    if op == "jmp":
        target = (addr + ins.length + ins.rel) & M32
        em.commit_flags()
        em.flush(eip=target, extra_c=1, extra_i=1)
        if target != ft and target != addr:
            _emit_branch_hook(em, addr, target, 0)
        return

    if op == "jcc":
        target = (addr + ins.length + ins.rel) & M32
        trace_ok = target != ft and target != addr
        had = em.flags
        em.commit_flags()
        # Branch on the still-live locals when the flag producer was in
        # this block (the cmp+jcc / dec+jnz superinstruction path).
        em.put("if %s:" % _cond_expr(ins.cc, "" if had else "cpu."))
        em.put("cpu.cycles += %d" % (em.pc + 2), 1)
        em.put("cpu.instret += %d" % (em.pi + 1), 1)
        em.put("cpu.eip = %d" % target, 1)
        if trace_ok:
            _emit_branch_hook(em, addr, target, 1)
        em.put("else:")
        em.put("cpu.cycles += %d" % (em.pc + 1), 1)
        em.put("cpu.instret += %d" % (em.pi + 1), 1)
        em.put("cpu.eip = %d" % ft, 1)
        em.pc = 0
        em.pi = 0
        return

    if op == "call":
        target = (addr + ins.length + ins.rel) & M32
        em.commit_flags()
        em.emit_write(addr, "(regs[4] - 4) & 4294967295", "%d" % ft)
        em.put("regs[4] = ea")
        em.flush(eip=target, extra_c=2, extra_i=1)
        if target != ft and target != addr:
            _emit_branch_hook(em, addr, target, 0)
        return

    if op == "call_ind" and ins.dst[0] == "r":
        em.commit_flags()
        em.put("tgt = regs[%d]" % ins.dst[1])
        em.emit_write(addr, "(regs[4] - 4) & 4294967295", "%d" % ft)
        em.put("regs[4] = ea")
        em.flush(extra_c=2, extra_i=1)
        em.put("cpu.eip = tgt")
        em.put("tb = cpu.trace_branch")
        em.put("if tb is not None and tgt != %d and tgt != %d:"
               % (ft, addr))
        em.put("tb(%d, tgt)" % addr, 1)
        return

    if op == "ret":
        extra = (ins.src[1] & 0xFFFF) if ins.src is not None else 0
        em.commit_flags()
        em.emit_read(addr, "regs[4]")
        em.put("regs[4] = (ea + 4) & 4294967295")
        if extra:
            em.put("regs[4] = (regs[4] + %d) & 4294967295" % extra)
        em.flush(extra_c=2, extra_i=1)
        em.put("cpu.eip = v")
        em.put("tb = cpu.trace_branch")
        em.put("if tb is not None and v != %d and v != %d:" % (ft, addr))
        em.put("tb(%d, v)" % addr, 1)
        return

    k = em.emit_generic(ins)
    em.put("cpu.next_eip = %d" % ft)
    em.put("run%d(cpu, ins%d)" % (k, k))
    em.put("ne = cpu.next_eip")
    em.put("cpu.cycles += 1")
    em.put("cpu.instret += 1")
    em.put("cpu.eip = ne")
    em.put("tb = cpu.trace_branch")
    em.put("if tb is not None and ne != %d and ne != %d:" % (ft, addr))
    em.put("tb(%d, ne)" % addr, 1)


def _gen_source(items, user, end_eip):
    """Generate the trace function source for a discovered run.

    ``items`` is the discovered ``(ins, kind)`` sequence — ``kind`` is
    ``"mid"`` for straight-line instructions, ``"jmp"``/``"jcc"`` for
    followed control transfers, ``"term"`` for a closing terminator.
    ``end_eip`` is where execution lands if the trace runs off its end
    without a terminator (fuel or cost cap).

    Returns ``(source, generics, worst)``: ``generics`` lists the
    ``(ins, handler)`` pairs the source references positionally, and
    ``worst`` bounds the cycles the trace can consume before its last
    instruction's event-check point (exact for specialized emissions —
    accesses + retire — conservative ``_cost`` for generic handler
    calls).  The source depends only on the instruction bytes and the
    CPL, so one compiled ``_make`` serves every machine cloned from
    the same kernel (see ``_get_make``).
    """
    em = _Emit(user)
    terminated = False
    worst = 0
    last_cost = 0
    for ins, kind in items:
        wc0 = em.wc
        g0 = len(em.generics)
        if kind == "term":
            _emit_term(em, ins)
            terminated = True
        elif kind == "jmp":
            _emit_jmp_cont(em, ins,
                           (ins.addr + ins.length + ins.rel) & M32)
        elif kind == "call":
            target = (ins.addr + ins.length + ins.rel) & M32
            _emit_call_cont(em, ins, target)
            _stale_check(em, target)
        elif kind == "jcc":
            _emit_jcc_cont(em, ins,
                           (ins.addr + ins.length + ins.rel) & M32)
        else:
            _emit_mid(em, ins)
            _stale_check(em, (ins.addr + ins.length) & M32)
        if len(em.generics) > g0:
            last_cost = _cost(ins)
        elif kind == "call":
            # push access + the call's two retire-side cycles
            last_cost = (em.wc - wc0) + 2
        else:
            last_cost = (em.wc - wc0) + 1
        worst += last_cost
    worst -= last_cost  # checks before the last instruction see at
    #                     most the cost of everything preceding it
    if not terminated:
        em.commit_flags()
        em.flush(eip=end_eip)
    header = ["def _make(bus, regs, ram, tlb, versions, watch, wpages, "
              "read_slow, write_slow, RS, PAR, U32, P32, P8, U8, G):"]
    for k in range(len(em.generics)):
        header.append("    ins%d, run%d = G[%d]" % (k, k, k))
    header.append("    def block(cpu):")
    if em.mem:
        header.append("        paging = bus.paging_enabled")
    footer = ["    return block"]
    return "\n".join(header + em.lines + footer), em.generics, worst


#: source text -> compiled ``_make`` factory; shared process-wide so
#: campaign clones re-translating the same kernel skip ``compile()``.
_MAKE_CACHE = {}


def _get_make(source):
    fn = _MAKE_CACHE.get(source)
    if fn is None:
        if len(_MAKE_CACHE) > 16384:
            _MAKE_CACHE.clear()
        namespace = {}
        exec(compile(source, "<translated-block>", "exec"), namespace)
        fn = namespace["_make"]
        _MAKE_CACHE[source] = fn
    return fn


#: ``(eip, user)`` -> list of block *templates*: everything about a
#: translated block that depends only on the instruction bytes —
#: ``(raw, make, generics, worst, eips, length)``.  A clone executing
#: the same kernel validates the raw bytes still match (one translate +
#: slice compare) and skips fetch, decode, and codegen entirely; a
#: mismatch (an injected flip) falls through to fresh discovery, and a
#: restored flip re-matches the original template.  Shared process-wide:
#: campaign workers run thousands of near-identical machines.
_TEMPLATES = {}
_TEMPLATE_WAYS = 4


def _code_bytes(bus, start, length, user):
    """Current memory bytes at virtual ``[start, start+length)``.

    Returns ``None`` when unmapped or outside RAM — callers then take
    the ordinary discovery path, which handles the fault bit-exactly.
    """
    if length <= 0:
        return None
    pieces = []
    v = start
    end = start + length
    try:
        while v < end:
            seg_end = min(end, ((v >> PAGE_SHIFT) + 1) << PAGE_SHIFT)
            phys = bus.translate(v & M32, False, user)
            if phys + (seg_end - v) > bus.ram_size:
                return None
            pieces.append(bus.ram[phys:phys + seg_end - v])
            v = seg_end
    except Trap:
        return None
    return b"".join(pieces)


class BlockCache:
    """PC-keyed translation cache with write-through invalidation.

    Installed as ``bus.code_watch``: every store path notifies
    :meth:`note_write` with the physical byte range written, and any
    block whose registered ranges overlap is evicted before the next
    dispatch — so a flipped bit, an intermittent flip-restore pair, or
    a CPL0 self-modifying store can never execute a stale block.

    Keys mirror the interpreter's decode cache, plus the CPL the block
    was specialized for: kernel text (static linear map) executed at
    CPL0 by virtual address alone, everything else by
    ``(tlb_gen, eip, cpl)`` so remaps age entries exactly like an
    I-TLB.
    """

    def __init__(self, bus, leaders=frozenset(), max_blocks=8192):
        self.bus = bus
        self.leaders = leaders
        self.max_blocks = max_blocks
        self.blocks = {}
        #: phys page -> [(lo, hi, key)] byte ranges of resident blocks
        self.page_ranges = {}
        self.translated = 0
        self.hits = 0
        self.invalidations = 0
        self.single_steps = 0
        #: set by :meth:`note_write` whenever a store evicts blocks;
        #: generated code checks it after every store so a closure
        #: whose own bytes were just rewritten side-exits at the
        #: instruction boundary instead of running stale to the end.
        #: Dispatch clears it before entering each block.
        self.stale = False
        bus.code_watch = self

    # -- telemetry ------------------------------------------------------

    def stats(self):
        return {
            "blocks": self.translated,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "single_steps": self.single_steps,
            "resident": len(self.blocks),
        }

    # -- invalidation ---------------------------------------------------

    def note_write(self, phys, length):
        """A store hit physical ``[phys, phys+length)``: evict overlap.

        Called from every store path (CPU fast path, ``phys_write``,
        ``phys_write_bytes``).  The common case — a write nowhere near
        translated code — is one dict miss per touched page.
        """
        if length <= 0:
            return
        ranges = self.page_ranges
        lo = phys
        hi = phys + length
        victims = None
        for page in range(lo >> PAGE_SHIFT, ((hi - 1) >> PAGE_SHIFT) + 1):
            lst = ranges.get(page)
            if lst is None:
                continue
            for start, end, key in lst:
                if start < hi and end > lo:
                    if victims is None:
                        victims = set()
                    victims.add(key)
        if victims is None:
            return
        for key in victims:
            self._evict(key)
        self.stale = True

    def _evict(self, key):
        block = self.blocks.pop(key, None)
        if block is None:
            return
        ranges = self.page_ranges
        for page, lo, hi in block.ranges:
            lst = ranges.get(page)
            if lst is not None:
                try:
                    lst.remove((lo, hi, key))
                except ValueError:
                    pass
                if not lst:
                    del ranges[page]
        self.invalidations += 1

    def flush(self):
        """Drop every translated block (counters are preserved)."""
        self.blocks.clear()
        self.page_ranges.clear()

    # -- discovery + compilation ---------------------------------------

    def _register(self, block, cpu, spans):
        """Record the trace's physical byte ranges, page by page.

        ``spans`` lists the virtual ``(start, length)`` segments the
        trace was decoded from (a followed ``jmp`` makes a trace
        multi-segment).
        """
        bus = self.bus
        user = cpu.cpl == 3
        ranges = []
        try:
            for start_v, length in spans:
                end_v = start_v + length
                vp = start_v >> PAGE_SHIFT
                last_vp = (end_v - 1) >> PAGE_SHIFT
                while vp <= last_vp:
                    seg_start = max(start_v, vp << PAGE_SHIFT)
                    seg_end = min(end_v, (vp + 1) << PAGE_SHIFT)
                    phys = bus.translate(seg_start & M32, False, user)
                    if phys + (seg_end - seg_start) <= bus.ram_size:
                        ranges.append((phys >> PAGE_SHIFT, phys,
                                       phys + (seg_end - seg_start)))
                    vp += 1
        except Trap:
            return False
        block.ranges = ranges
        page_ranges = self.page_ranges
        for page, lo, hi in ranges:
            bucket = page_ranges.get(page)
            if bucket is None:
                page_ranges[page] = [(lo, hi, block.key)]
            else:
                bucket.append((lo, hi, block.key))
        return True

    def _materialize(self, cpu, eip, key, make, generics, worst, eips,
                     spans):
        """Bind a template to this machine and cache the Block."""
        bus = self.bus
        if make is None:
            block = Block(key, None, 0, eips)
        else:
            fn = make(bus, cpu.regs, bus.ram, bus.tlb,
                      bus.page_versions, self, self.page_ranges,
                      bus.read, bus.write, bus.ram_size, _PARITY,
                      _U32, _P32, _P8W, _U8W, generics)
            block = Block(key, fn, worst, eips)
        if len(self.blocks) >= self.max_blocks:
            self.flush()
        if not self._register(block, cpu, spans):
            return None
        self.blocks[key] = block
        self.translated += 1
        return block

    def _translate(self, cpu, eip, key):
        """Discover, compile, register, and cache the trace at ``eip``.

        Returns the cached :class:`Block`, or ``None`` when the head is
        undecodable (the single-step fallback will deliver the trap).

        Discovery extends straight-line runs through direct ``jmp``
        targets and ``jcc`` fallthroughs (taken sides become committed
        side exits) until a real terminator, the fuel/cost caps, or an
        address the trace already contains (loops re-dispatch, so hot
        loop bodies stay cached per head).
        """
        user = cpu.cpl == 3
        bus = self.bus
        tkey = (eip, user)
        templates = _TEMPLATES.get(tkey)
        if templates is not None:
            for spans, raw, make, generics, worst, eips in templates:
                pieces = []
                for vs, vl in spans:
                    piece = _code_bytes(bus, vs, vl, user)
                    if piece is None:
                        pieces = None
                        break
                    pieces.append(piece)
                if pieces is not None and b"".join(pieces) == raw:
                    return self._materialize(cpu, eip, key, make,
                                             generics, worst, eips,
                                             spans)
        fetch = cpu._fetch
        leaders = self.leaders
        items = []
        addr = eip
        span_start = eip
        spans = []
        worst = 0
        crossed = False
        negative = False
        while len(items) < MAX_TRACE and worst <= WORST_CAP:
            try:
                ins = fetch(addr)
            except Trap:
                break
            if ins.rep is not None:
                # rep-string resumes re-dispatch at this address every
                # chunk; negative-cache so they skip rediscovery.
                if not items:
                    negative = True
                    addr = (addr + ins.length) & M32
                break
            op = ins.op
            nxt = (addr + ins.length) & M32
            if nxt <= span_start:  # address wrap: not translatable
                break
            if op == "jmp":
                target = (nxt + ins.rel) & M32
                if len(items) + 1 < MAX_TRACE and worst <= WORST_CAP \
                        and not self._contains(items, target) \
                        and target != eip:
                    items.append((ins, "jmp"))
                    worst += _walk_cost(ins)
                    spans.append((span_start, nxt - span_start))
                    span_start = target
                    addr = target
                    crossed = True
                    continue
                items.append((ins, "term"))
                worst += _walk_cost(ins)
                addr = nxt
                break
            if op == "call":
                target = (nxt + ins.rel) & M32
                if len(items) + 1 < MAX_TRACE and worst <= WORST_CAP \
                        and not self._contains(items, target) \
                        and target != eip:
                    items.append((ins, "call"))
                    worst += _walk_cost(ins)
                    spans.append((span_start, nxt - span_start))
                    span_start = target
                    addr = target
                    crossed = True
                    continue
                items.append((ins, "term"))
                worst += _walk_cost(ins)
                addr = nxt
                break
            if op == "jcc":
                if len(items) + 1 < MAX_TRACE and worst <= WORST_CAP \
                        and not self._contains(items, nxt) \
                        and nxt != eip:
                    items.append((ins, "jcc"))
                    worst += _walk_cost(ins)
                    addr = nxt
                    crossed = True
                    continue
                items.append((ins, "term"))
                worst += _walk_cost(ins)
                addr = nxt
                break
            items.append((ins, "mid"))
            worst += _walk_cost(ins)
            addr = nxt
            if op in TERMINATORS:
                items[-1] = (ins, "term")
                break
            if not crossed and addr in leaders:
                break
        if negative:
            if addr - eip <= 0:
                return None
            make = None
            generics = None
            worst = 0
            eips = frozenset((eip,))
            spans = ((eip, addr - eip),)
            raw = ins.raw
        elif items:
            spans.append((span_start, addr - span_start))
            # A trace ending exactly on a followed-jmp seam leaves a
            # zero-length final span; it covers no bytes, drop it.
            spans = tuple((vs, vl) for vs, vl in spans if vl > 0)
            if not spans:
                return None
            source, gen_list, worst = _gen_source(items, user, addr)
            make = _get_make(source)
            generics = tuple(gen_list)
            eips = frozenset(i.addr for i, _ in items)
            raw = b"".join(i.raw for i, _ in items)
        else:
            return None
        if raw is not None and len(raw) > 0:
            if templates is None:
                if len(_TEMPLATES) > 65536:
                    _TEMPLATES.clear()
                templates = _TEMPLATES.setdefault(tkey, [])
            if len(templates) >= _TEMPLATE_WAYS:
                del templates[0]
            templates.append((spans, raw, make, generics, worst, eips))
        return self._materialize(cpu, eip, key, make, generics, worst,
                                 eips, spans)

    @staticmethod
    def _contains(items, target):
        for ins, _ in items:
            if ins.addr == target:
                return True
        return False

    # -- dispatch -------------------------------------------------------

    def run(self, cpu, max_cycles):
        """Drop-in replacement for the interpreter's main loop.

        The outer loop replicates the interpreter's event head
        (watchdog, timer, alarm) verbatim and folds the three
        thresholds into a single *event horizon*; the inner loop then
        dispatches blocks with one compare — ``cycles + worst <
        horizon`` — plus the IRQ-window and DR0 checks.  Every
        threshold test in the interpreter is ``>=``, so staying
        strictly below the horizon proves the elided per-instruction
        checks could not have fired.  Any event, hook, trap, or
        untranslatable head drops back to the outer loop (or to
        single-step interpretation), so state-changing paths always
        re-derive the horizon.
        """
        bus = self.bus
        get_block = self.blocks.get
        deliver = cpu.deliver_trap
        # The loop only exits by raising (shutdown, watchdog, panic,
        # budget); the hit counter lives in a local on the hot path
        # and lands in telemetry on the way out.
        hits = 0
        try:
            while True:
                cycles = cpu.cycles
                if cycles >= max_cycles:
                    raise WatchdogExpired("cycle budget %d exhausted"
                                          % max_cycles)
                if cpu.timer_interval and cycles >= cpu.timer_next:
                    cpu.pending_irq = True
                    cpu.timer_next = cycles + cpu.timer_interval
                if cpu.alarm_cycle is not None \
                        and cycles >= cpu.alarm_cycle:
                    hook = cpu.on_alarm
                    cpu.alarm_cycle = None
                    cpu.on_alarm = None
                    if hook is not None:
                        hook(cpu)
                horizon = max_cycles
                if cpu.timer_interval and cpu.timer_next < horizon:
                    horizon = cpu.timer_next
                if cpu.alarm_cycle is not None \
                        and cpu.alarm_cycle < horizon:
                    horizon = cpu.alarm_cycle
                while True:
                    if cpu.pending_irq and cpu.if_flag:
                        cpu.pending_irq = False
                        deliver(VEC_TIMER_IRQ, None, cpu.eip)
                        break
                    eip = cpu.eip
                    bp = cpu.bp_addrs
                    if bp and eip in bp:
                        hook = cpu.on_breakpoint
                        if hook is not None:
                            hook(cpu, bp[eip])
                        # The hook may mutate anything (it is the
                        # injector); interpret this instruction so
                        # every hook interaction matches the reference
                        # loop, then re-derive the horizon.
                        self.single_steps += 1
                        _step_one(cpu, eip)
                        break
                    if cpu.cpl == 0 and eip >= KERNEL_SPACE:
                        key = eip
                    else:
                        key = (bus.tlb_gen, eip, cpu.cpl)
                    block = get_block(key)
                    if block is None:
                        block = self._translate(cpu, eip, key)
                    else:
                        hits += 1
                    if block is not None and block.fn is not None \
                            and cpu.cycles + block.worst < horizon \
                            and (not bp or block.eips.isdisjoint(bp)):
                        self.stale = False
                        try:
                            block.fn(cpu)
                        except Trap as trap:
                            cpu.cycles += 10
                            return_eip = (trap.return_eip
                                          if trap.return_eip is not None
                                          else cpu.eip)
                            deliver(trap.vector, trap.error_code,
                                    return_eip, cr2=trap.cr2)
                            break
                        if cpu.cycles >= horizon:
                            break
                        continue
                    self.single_steps += 1
                    _step_one(cpu, eip)
                    break
        finally:
            self.hits += hits
