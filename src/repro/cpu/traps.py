"""IA-32 exception vectors and the trap taxonomy of the paper's Table 3."""

VEC_DIVIDE = 0
VEC_DEBUG = 1
VEC_NMI = 2
VEC_INT3 = 3
VEC_OVERFLOW = 4
VEC_BOUNDS = 5
VEC_INVALID_OP = 6
VEC_DEVICE_NA = 7
VEC_DOUBLE_FAULT = 8
VEC_COPROC_OVERRUN = 9
VEC_INVALID_TSS = 10
VEC_SEG_NOT_PRESENT = 11
VEC_STACK_FAULT = 12
VEC_GPF = 13
VEC_PAGE_FAULT = 14

VEC_TIMER_IRQ = 0x20
VEC_SYSCALL = 0x80

_TRAP_NAMES = {
    VEC_DIVIDE: "divide error",
    VEC_DEBUG: "debug",
    VEC_NMI: "nmi",
    VEC_INT3: "int3",
    VEC_OVERFLOW: "overflow",
    VEC_BOUNDS: "bounds",
    VEC_INVALID_OP: "invalid opcode",
    VEC_DEVICE_NA: "device not available",
    VEC_DOUBLE_FAULT: "double fault",
    VEC_COPROC_OVERRUN: "coprocessor segment overrun",
    VEC_INVALID_TSS: "invalid TSS",
    VEC_SEG_NOT_PRESENT: "segment not present",
    VEC_STACK_FAULT: "stack exception",
    VEC_GPF: "general protection fault",
    VEC_PAGE_FAULT: "page fault",
    VEC_TIMER_IRQ: "timer interrupt",
    VEC_SYSCALL: "system call",
}

# Page-fault error-code bits (IA-32 encoding).
PF_PRESENT = 1  # fault caused by protection, not a missing page
PF_WRITE = 2
PF_USER = 4


def trap_name(vector):
    """Human-readable name for an exception vector."""
    return _TRAP_NAMES.get(vector, "vector %d" % vector)


class Trap(Exception):
    """A synchronous processor exception during instruction execution.

    Caught by the CPU's run loop and delivered through the IDT like the
    real hardware would.
    """

    def __init__(self, vector, error_code=None, cr2=None, return_eip=None):
        # The message is rendered lazily (__str__): traps are raised on
        # every syscall/page-fault, and almost none are ever displayed.
        self.vector = vector
        self.error_code = error_code
        self.cr2 = cr2
        # Faults push the address of the faulting instruction (restartable);
        # traps (int n, int3, into) push the address of the *next*
        # instruction.  ``return_eip`` is set by trap-type raisers.
        self.return_eip = return_eip

    def __str__(self):
        return trap_name(self.vector)


class TripleFault(Exception):
    """Exception delivery failed recursively; the machine resets.

    The harness records these runs as *hang/unknown crash* — no crash dump
    could be taken, matching the paper's Figure 4 category.
    """

    def __init__(self, original_vector, detail=""):
        super().__init__("triple fault (original: %s) %s"
                         % (trap_name(original_vector), detail))
        self.original_vector = original_vector
