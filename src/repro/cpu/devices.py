"""Memory-mapped platform devices.

The device complement mirrors the paper's experimental rig:

* :class:`ConsoleDevice` — where kernel ``printk`` output and the oops
  text land (the paper read these off the serial console / ``/var/log``).
* :class:`DiskDevice` — a DMA block device carrying the ext2-like root
  filesystem; its image is inspected by the host-side ``fsck`` to grade
  crash severity (paper §7.1).
* :class:`DumpDevice` — the LKCD stand-in: the kernel's crash handler
  writes the register file, trap cause, and latency counter here, giving
  the harness its "dumped crash" record (paper Figures 4 and 6).
* :class:`ShutdownDevice` — clean power-off used by ``init``; also the
  reboot line the watchdog would pull.
"""


class MachineShutdown(Exception):
    """The kernel wrote the shutdown port; the run is over."""

    def __init__(self, code):
        super().__init__("machine shutdown with code %d" % code)
        self.code = code


class ConsoleDevice:
    """Write-only byte-oriented console at offset 0."""

    def __init__(self):
        self.buffer = bytearray()

    def mmio_read(self, offset, size):
        return 0

    def mmio_write(self, offset, size, value):
        if offset == 0:
            self.buffer.append(value & 0xFF)

    @property
    def text(self):
        return self.buffer.decode("latin-1")


class DiskDevice:
    """Synchronous DMA disk controller.

    Register map (32-bit registers, byte offsets):

    == ========= =====================================================
    0  SECTOR    first sector of the transfer
    4  COUNT     number of 512-byte sectors
    8  DMA       physical RAM address of the buffer
    12 CMD       write 1 = read sectors into RAM, 2 = write RAM to disk
    16 STATUS    0 = ok, 1 = out-of-range, 2 = bad DMA address,
                 3 = command timeout, 4 = transient media error
    == ========= =====================================================

    Device-level fault injection (:meth:`arm_fault`) models the three
    disk faults of the fault-model framework: ``corrupt`` flips one bit
    of the DMA-transferred data on the next read(s), ``timeout`` makes
    the controller stop answering reads (sticky — the device is gone),
    and ``transient`` fails the next N reads with a media error and
    then recovers, which a driver retry path can mask entirely.
    """

    SECTOR_SIZE = 512

    CMD_READ = 1
    CMD_WRITE = 2

    STATUS_OK = 0
    STATUS_RANGE = 1
    STATUS_BAD_DMA = 2
    STATUS_TIMEOUT = 3
    STATUS_TRANSIENT = 4

    FAULT_CORRUPT = "corrupt"
    FAULT_TIMEOUT = "timeout"
    FAULT_TRANSIENT = "transient"

    def __init__(self, bus, image):
        self.bus = bus
        self.image = bytearray(image)
        self.sector = 0
        self.count = 0
        self.dma = 0
        self.status = 0
        self.reads = 0
        self.writes = 0
        # Armed fault state (None when healthy).
        self.fault_kind = None
        self.fault_ops = 0          # reads still affected (timeout: n/a)
        self.fault_byte = 0         # corrupt: byte offset into transfer
        self.fault_bit = 0          # corrupt: bit to flip
        self.fault_notify = None    # callback() on each faulted read
        self.faulted_reads = 0

    def arm_fault(self, kind, ops=1, byte_offset=0, bit=0, notify=None):
        """Arm a device-level read fault.

        Args:
            kind: ``corrupt`` / ``timeout`` / ``transient``.
            ops: number of reads affected (ignored for ``timeout``,
                which is sticky: a timed-out controller stays dead).
            byte_offset: for ``corrupt``, offset into the transferred
                data (wrapped to the transfer length).
            bit: for ``corrupt``, the bit to flip.
            notify: optional zero-argument callback invoked on every
                faulted read (the injection harness records activation
                from the first call).
        """
        if kind not in (self.FAULT_CORRUPT, self.FAULT_TIMEOUT,
                        self.FAULT_TRANSIENT):
            raise ValueError("unknown disk fault kind %r" % kind)
        self.fault_kind = kind
        self.fault_ops = max(1, int(ops))
        self.fault_byte = byte_offset
        self.fault_bit = bit & 7
        self.fault_notify = notify
        self.faulted_reads = 0

    def _fault_read(self, start, length):
        """Apply the armed fault to one read; returns True if the
        transfer was suppressed (status already set)."""
        kind = self.fault_kind
        self.faulted_reads += 1
        if self.fault_notify is not None:
            self.fault_notify()
        if kind == self.FAULT_TIMEOUT:
            # Sticky: the controller never answers again.
            self.status = self.STATUS_TIMEOUT
            return True
        self.fault_ops -= 1
        if self.fault_ops <= 0:
            self.fault_kind = None
        if kind == self.FAULT_TRANSIENT:
            self.status = self.STATUS_TRANSIENT
            return True
        # corrupt: transfer goes through with one bit flipped in the
        # DMA'd copy (the platter stays intact — a read-path fault).
        data = bytearray(self.image[start:start + length])
        data[self.fault_byte % length] ^= 1 << self.fault_bit
        self.bus.phys_write_bytes(self.dma, bytes(data))
        self.reads += self.count
        self.status = self.STATUS_OK
        return True

    def mmio_read(self, offset, size):
        if offset == 0:
            return self.sector
        if offset == 4:
            return self.count
        if offset == 8:
            return self.dma
        if offset == 16:
            return self.status
        return 0

    def mmio_write(self, offset, size, value):
        if offset == 0:
            self.sector = value
        elif offset == 4:
            self.count = value
        elif offset == 8:
            self.dma = value
        elif offset == 12:
            self._execute(value)

    def _execute(self, cmd):
        length = self.count * self.SECTOR_SIZE
        start = self.sector * self.SECTOR_SIZE
        if start + length > len(self.image) or self.count == 0:
            self.status = 1
            return
        if self.dma + length > self.bus.ram_size:
            self.status = 2
            return
        if cmd == self.CMD_READ:
            if self.fault_kind is not None \
                    and self._fault_read(start, length):
                return
            self.bus.phys_write_bytes(self.dma, self.image[start:start
                                                           + length])
            self.reads += self.count
            self.status = 0
        elif cmd == self.CMD_WRITE:
            self.image[start:start + length] = self.bus.phys_read_bytes(
                self.dma, length)
            self.writes += self.count
            self.status = 0
        else:
            self.status = 1


class DumpDevice:
    """Crash-dump device (the LKCD stand-in).

    The kernel's crash handler writes one 32-bit word at a time to
    offset 0; a record is terminated by writing to offset 4 (COMMIT).
    Record layout is defined by the kernel's ``crash_dump()`` routine and
    parsed host-side by :mod:`repro.injection.outcomes`.
    """

    def __init__(self):
        self.words = []
        self.records = []

    def mmio_read(self, offset, size):
        return len(self.records)

    def mmio_write(self, offset, size, value):
        if offset == 0:
            self.words.append(value & 0xFFFFFFFF)
        elif offset == 4:
            self.records.append(list(self.words))
            self.words.clear()

    @property
    def last_record(self):
        return self.records[-1] if self.records else None


class ShutdownDevice:
    """Writing any value powers the machine off with that exit code."""

    def mmio_read(self, offset, size):
        return 0

    def mmio_write(self, offset, size, value):
        raise MachineShutdown(value)
