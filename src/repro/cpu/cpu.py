"""The IA-32-subset interpreter.

Executes machine code out of simulated physical memory through the MMU,
with privilege levels, IDT-based trap delivery (including double/triple
fault escalation), debug-register breakpoints (the injection trigger), a
timer interrupt, and a cycle counter (the paper's crash-latency clock).

Performance notes: campaigns execute tens of millions of instructions, so
the decoder output is cached per *physical* address and validated against
per-page write-generation counters — an injected bit flip bumps the page
version and naturally invalidates stale decodes.
"""

import struct

from repro.isa.conditions import cc_holds
from repro.isa.decoder import DecodeError, decode
from repro.cpu.traps import (
    Trap,
    TripleFault,
    VEC_BOUNDS,
    VEC_DIVIDE,
    VEC_DOUBLE_FAULT,
    VEC_GPF,
    VEC_INT3,
    VEC_INVALID_OP,
    VEC_INVALID_TSS,
    VEC_OVERFLOW,
    VEC_PAGE_FAULT,
    VEC_TIMER_IRQ,
)

M32 = 0xFFFFFFFF

# Flat-model segment selectors (Linux-style GDT layout).
KERNEL_CS = 0x10
KERNEL_DS = 0x18
USER_CS = 0x23
USER_DS = 0x2B
TSS_SEL = 0x30

_VALID_DATA_SEL = frozenset([0, KERNEL_DS, USER_DS])
_VALID_STACK_SEL = frozenset([KERNEL_DS, USER_DS])

# Vectors that push an error code.
_ERROR_CODE_VECTORS = frozenset([8, 10, 11, 12, 13, 14, 17])
# Contributory exceptions: a second one during delivery => double fault.
_CONTRIBUTORY = frozenset([0, 10, 11, 12, 13, 14])

# MSR numbers understood by wrmsr/rdmsr (kernel <-> CPU plumbing).
MSR_ESP0 = 0x175       # kernel stack pointer used on CPL3 -> CPL0 traps
MSR_IDT_BASE = 0x176   # software-loaded IDT base (lidt stand-in)

_PARITY = tuple(1 if bin(i).count("1") % 2 == 0 else 0 for i in range(256))

#: pre-bound little-endian dword codecs for the batched stack fast
#: paths (trap frames are 3-6 words; iret pops 2-3).
_PACK_WORDS = {n: struct.Struct("<%dI" % n).pack for n in (2, 3, 4, 5, 6)}
_UNPACK_WORDS = {n: struct.Struct("<%dI" % n).unpack_from
                 for n in (2, 3, 4, 5, 6)}

_REP_CHUNK = 8192  # max string-op iterations per execution slice


class WatchdogExpired(Exception):
    """The host watchdog fired: the run exceeded its cycle budget."""


class CpuHalted(Exception):
    """``hlt`` executed with interrupts disabled — the CPU is wedged."""


class CPU:
    """One simulated processor attached to a :class:`MemoryBus`."""

    def __init__(self, bus):
        self.bus = bus
        self.regs = [0] * 8
        self.eip = 0
        self.next_eip = 0
        # Arithmetic flags kept unpacked for speed.
        self.cf = 0
        self.pf = 1
        self.zf = 0
        self.sf = 0
        self.of = 0
        self.if_flag = 0
        self.df = 0
        self.cpl = 0
        self.segs = [KERNEL_DS, KERNEL_CS, KERNEL_DS, KERNEL_DS, 0, 0]
        self.cr0 = 0x80000001
        self.cr2 = 0
        self.cr4 = 0
        self.dr = [0] * 8
        self.bp_addrs = {}
        self.on_breakpoint = None
        self.esp0 = 0
        self.idt_base = 0
        self.cycles = 0
        self.timer_interval = 0
        self.timer_next = 0
        self.pending_irq = False
        self.fault_depth = 0
        self._dcache = {}
        self.instret = 0
        # Flight-recorder observation hooks (repro.tracing).  All None
        # when untraced; they observe, never mutate, so arming them
        # cannot perturb the run.
        self.trace_branch = None     # (src_eip, dst_eip)
        self.trace_trap = None       # (vector, error_code, return_eip)
        self.trace_write = None      # (vaddr, size, value), CPL0 only
        # Fault-injection hooks (repro.injection.faultmodels).  Unlike
        # the trace hooks these MAY mutate state: on_trap_entry fires
        # at the top of trap delivery (register faults delivered at
        # trap/syscall entry), and on_alarm fires once the cycle
        # counter passes alarm_cycle (intermittent flip-then-restore
        # scheduling).  Both are disarmed by the consumer.
        self.on_trap_entry = None    # (cpu, vector, error_code, eip)
        self.alarm_cycle = None      # cycle stamp, or None
        self.on_alarm = None         # (cpu)
        # Optional translated-execution engine
        # (repro.cpu.translate.BlockCache); when armed, run() dispatches
        # pre-compiled basic blocks instead of interpreting, with
        # bit-identical architectural and counter state.
        self.translator = None

    # ------------------------------------------------------------------
    # memory access helpers (cycle-accounted, privilege-aware)
    # ------------------------------------------------------------------

    def mem_read(self, vaddr, size):
        """Read memory (fast path inlined; falls back to the bus)."""
        self.cycles += 1
        vaddr &= M32
        bus = self.bus
        offset = vaddr & 0xFFF
        if bus.paging_enabled and offset + size <= 4096:
            entry = bus.tlb.get(vaddr >> 12)
            if entry is not None:
                pfn, flags = entry
                if not (self.cpl == 3 and not flags & 4):
                    phys = (pfn << 12) | offset
                    if phys + size <= bus.ram_size:
                        return int.from_bytes(
                            bus.ram[phys:phys + size], "little")
        return bus.read(vaddr, size, self.cpl == 3)

    def mem_write(self, vaddr, size, value):
        """Write memory (fast path inlined; falls back to the bus)."""
        if self.trace_write is not None and self.cpl == 0:
            self.trace_write(vaddr, size, value)
        self.cycles += 1
        vaddr &= M32
        bus = self.bus
        offset = vaddr & 0xFFF
        if bus.paging_enabled and offset + size <= 4096:
            entry = bus.tlb.get(vaddr >> 12)
            if entry is not None:
                pfn, flags = entry
                if flags & 2 and not (self.cpl == 3 and not flags & 4):
                    phys = (pfn << 12) | offset
                    if phys + size <= bus.ram_size:
                        bus.ram[phys:phys + size] = \
                            (value & ((1 << (8 * size)) - 1)).to_bytes(
                                size, "little")
                        bus.page_versions[phys >> 12] += 1
                        watch = bus.code_watch
                        if watch is not None \
                                and phys >> 12 in watch.page_ranges:
                            watch.note_write(phys, size)
                        return
        self.bus.write(vaddr, size, value & ((1 << (8 * size)) - 1),
                       self.cpl == 3)

    def push32(self, value):
        esp = (self.regs[4] - 4) & M32
        self.mem_write(esp, 4, value)
        self.regs[4] = esp

    def pop32(self):
        esp = self.regs[4]
        value = self.mem_read(esp, 4)
        self.regs[4] = (esp + 4) & M32
        return value

    # ------------------------------------------------------------------
    # flags
    # ------------------------------------------------------------------

    def eflags(self):
        value = 2
        value |= self.cf
        value |= self.pf << 2
        value |= self.zf << 6
        value |= self.sf << 7
        value |= self.if_flag << 9
        value |= self.df << 10
        value |= self.of << 11
        return value

    def set_eflags(self, value, allow_if=True):
        self.cf = value & 1
        self.pf = (value >> 2) & 1
        self.zf = (value >> 6) & 1
        self.sf = (value >> 7) & 1
        self.df = (value >> 10) & 1
        self.of = (value >> 11) & 1
        if allow_if:
            self.if_flag = (value >> 9) & 1

    # ------------------------------------------------------------------
    # debug registers (injection trigger)
    # ------------------------------------------------------------------

    def write_dr(self, index, value):
        self.dr[index] = value & M32
        self._recompute_breakpoints()

    def _recompute_breakpoints(self):
        active = {}
        dr7 = self.dr[7]
        for i in range(4):
            if dr7 & (1 << (2 * i)):
                active[self.dr[i]] = i
        self.bp_addrs = active

    # ------------------------------------------------------------------
    # trap delivery
    # ------------------------------------------------------------------

    def deliver_trap(self, vector, error_code, return_eip, cr2=None):
        """Deliver an exception/interrupt through the in-memory IDT.

        A fault *during* delivery follows (approximated) IA-32 rules:
        contributory+contributory or #PF pairs escalate to double fault;
        a benign first exception lets the second be delivered normally;
        a fault delivering the double fault resets the machine (triple
        fault).
        """
        if cr2 is not None:
            self.cr2 = cr2 & M32
        if self.on_trap_entry is not None:
            # Fault injection at trap entry happens before the frame is
            # pushed, so a corrupted register lands in the saved
            # context exactly as a hardware fault during delivery would.
            self.on_trap_entry(self, vector, error_code, return_eip)
        if self.trace_trap is not None:
            self.trace_trap(vector, error_code, return_eip)
        if self.fault_depth >= 3:
            raise TripleFault(vector)
        self.fault_depth += 1
        try:
            self._push_trap_frame(vector, error_code, return_eip)
        except Trap as second:
            if vector == VEC_DOUBLE_FAULT:
                raise TripleFault(vector)
            first_serious = vector in _CONTRIBUTORY \
                or vector == VEC_PAGE_FAULT
            second_serious = second.vector in _CONTRIBUTORY \
                or second.vector == VEC_PAGE_FAULT
            if first_serious and second_serious:
                self.deliver_trap(VEC_DOUBLE_FAULT, 0, return_eip)
            else:
                self.deliver_trap(second.vector, second.error_code,
                                  return_eip, cr2=second.cr2)
        finally:
            self.fault_depth -= 1

    def _push_trap_frame(self, vector, error_code, return_eip):
        if self.idt_base == 0:
            raise TripleFault(vector, "no IDT installed")
        was_user = self.cpl == 3
        entry = self.idt_base + vector * 8
        handler = self.bus.read(entry, 4, False)
        flags = self.bus.read(entry + 4, 4, False)
        self.cycles += 2
        if not flags & 1:  # gate not present
            if vector in _CONTRIBUTORY or vector == VEC_DOUBLE_FAULT:
                raise TripleFault(vector, "gate not present")
            raise Trap(VEC_GPF, error_code=vector * 8 + 2)
        old_esp = self.regs[4]
        old_ss = self.segs[2]
        if was_user:
            self.cpl = 0
            self.regs[4] = self.esp0
            self.segs[2] = KERNEL_DS
        words = []
        if was_user:
            words.append(old_ss)
            words.append(old_esp)
        words.append(self.eflags())
        words.append(USER_CS if was_user else KERNEL_CS)
        words.append(return_eip & M32)
        if error_code is not None and vector in _ERROR_CODE_VECTORS:
            words.append(error_code & M32)
        # Frame fast path: when the whole frame lands on one writable,
        # TLB-resident page with no trace_write hook armed, store it in
        # one slice with the identical per-push cycle/version/watch
        # accounting; otherwise (or on any miss) fall back to the
        # per-push loop, which handles faults mid-frame.
        n = len(words)
        esp = self.regs[4]
        bus = self.bus
        done = False
        if self.trace_write is None and bus.paging_enabled \
                and esp >= 4 * n:
            base = esp - 4 * n
            if (base & 0xFFF) + 4 * n <= 4096:
                entry = bus.tlb.get(base >> 12)
                if entry is not None and entry[1] & 2 \
                        and not (self.cpl == 3 and not entry[1] & 4):
                    phys = (entry[0] << 12) | (base & 0xFFF)
                    if phys + 4 * n <= bus.ram_size:
                        bus.ram[phys:phys + 4 * n] = \
                            _PACK_WORDS[n](*words[::-1])
                        bus.page_versions[phys >> 12] += n
                        watch = bus.code_watch
                        if watch is not None \
                                and phys >> 12 in watch.page_ranges:
                            watch.note_write(phys, 4 * n)
                        self.cycles += n
                        self.regs[4] = base
                        done = True
        if not done:
            try:
                for word in words:
                    self.push32(word)
            except Trap:
                # Undo partial privilege switch before escalating.
                if was_user:
                    self.cpl = 3
                    self.regs[4] = old_esp
                    self.segs[2] = old_ss
                raise
        self.if_flag = 0  # interrupt gate semantics (as Linux uses)
        self.eip = handler & M32
        self.cycles += 8

    # ------------------------------------------------------------------
    # fetch/decode with physical-address caching
    # ------------------------------------------------------------------

    def _fetch(self, eip):
        user = self.cpl == 3
        bus = self.bus
        # Kernel text sits in the static linear map, so its decode cache
        # can be keyed by the virtual address alone.  User text gets
        # remapped (exec, COW, address-space reuse); keying those entries
        # by the TLB generation makes the decode cache exactly as stale
        # as a real instruction TLB could ever be.
        key = eip if eip >= 0xC0000000 else (bus.tlb_gen, eip)
        cached = self._dcache.get(key)
        versions = bus.page_versions
        if cached is not None:
            ins, stamps = cached
            valid = True
            for page, stamp in stamps:
                if versions[page] != stamp:
                    valid = False
                    break
            if valid:
                return ins
        phys = bus.translate(eip, False, user)
        read = self._fetch_byte
        try:
            ins = decode(read, eip)
        except DecodeError as exc:
            raise Trap(VEC_INVALID_OP) from exc
        ins.run = _HANDLERS[ins.op]
        # Fetches from beyond RAM (floating bus) or MMIO space have no
        # version counter; pin them to the sentinel last slot, which
        # never changes.
        sentinel = len(versions) - 1
        first_page = min(phys >> 12, sentinel)
        last_phys = bus.translate((eip + ins.length - 1) & M32, False, user)
        last_page = min(last_phys >> 12, sentinel)
        if last_page == first_page:
            stamps = ((first_page, versions[first_page]),)
        else:
            stamps = ((first_page, versions[first_page]),
                      (last_page, versions[last_page]))
        if len(self._dcache) > 200000:
            self._dcache.clear()
        self._dcache[key] = (ins, stamps)
        return ins

    def _fetch_byte(self, vaddr):
        return self.bus.read(vaddr & M32, 1, self.cpl == 3)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles, coverage=None):
        """Run until shutdown/halt/triple-fault or the cycle budget ends.

        Args:
            max_cycles: watchdog budget; exceeding it raises
                :class:`WatchdogExpired` (the harness records a *hang*).
            coverage: optional ``set`` collecting every executed
                instruction address (used for golden-run activation
                analysis).

        Raises:
            MachineShutdown: the kernel powered the machine off.
            WatchdogExpired, CpuHalted, TripleFault.
        """
        if self.translator is not None and coverage is None:
            # Translated fast path (repro.cpu.translate); coverage runs
            # stay interpreted — they need the per-instruction hook.
            return self.translator.run(self, max_cycles)
        while True:
            if self.cycles >= max_cycles:
                raise WatchdogExpired("cycle budget %d exhausted"
                                      % max_cycles)
            if self.timer_interval and self.cycles >= self.timer_next:
                self.pending_irq = True
                self.timer_next = self.cycles + self.timer_interval
            if self.alarm_cycle is not None \
                    and self.cycles >= self.alarm_cycle:
                hook = self.on_alarm
                self.alarm_cycle = None
                self.on_alarm = None
                if hook is not None:
                    hook(self)
            if self.pending_irq and self.if_flag:
                self.pending_irq = False
                self.deliver_trap(VEC_TIMER_IRQ, None, self.eip)
            eip = self.eip
            if self.bp_addrs and eip in self.bp_addrs:
                hook = self.on_breakpoint
                if hook is not None:
                    hook(self, self.bp_addrs[eip])
            if coverage is not None:
                coverage.add(eip)
            try:
                ins = self._fetch(eip)
                fallthrough = (eip + ins.length) & M32
                self.next_eip = fallthrough
                ins.run(self, ins)
                new_eip = self.next_eip
                self.eip = new_eip
                self.cycles += 1
                self.instret += 1
                # A retired taken control transfer; rep-string resumes
                # (next_eip == eip) are iteration plumbing, not
                # branches, and are excluded.
                if self.trace_branch is not None \
                        and new_eip != fallthrough and new_eip != eip:
                    self.trace_branch(eip, new_eip)
            except Trap as trap:
                self.cycles += 10
                return_eip = (trap.return_eip
                              if trap.return_eip is not None else eip)
                self.deliver_trap(trap.vector, trap.error_code, return_eip,
                                  cr2=trap.cr2)

    def step(self):
        """Execute exactly one instruction (testing convenience)."""
        limit = self.cycles + 1
        try:
            self.run(limit)
        except WatchdogExpired:
            pass


# ----------------------------------------------------------------------
# operand access
# ----------------------------------------------------------------------


def _ea(cpu, mem):
    addr = mem.disp
    if mem.base is not None:
        addr += cpu.regs[mem.base]
    if mem.index is not None:
        addr += cpu.regs[mem.index] * mem.scale
    return addr & M32


def _read_op(cpu, op, size):
    kind = op[0]
    if kind == "r":
        return cpu.regs[op[1]]
    if kind == "i":
        return op[1] & M32
    if kind == "r8":
        idx = op[1]
        value = cpu.regs[idx & 3]
        return (value >> 8) & 0xFF if idx >= 4 else value & 0xFF
    if kind == "m":
        return cpu.mem_read(_ea(cpu, op[1]), size)
    if kind == "cl":
        return cpu.regs[1] & 0xFF
    if kind == "sr":
        return cpu.segs[op[1]]
    raise AssertionError("bad operand %r" % (op,))


def _write_op(cpu, op, size, value):
    kind = op[0]
    if kind == "r":
        cpu.regs[op[1]] = value & M32
        return
    if kind == "r8":
        idx = op[1]
        reg = idx & 3
        if idx >= 4:
            cpu.regs[reg] = (cpu.regs[reg] & 0xFFFF00FF) \
                | ((value & 0xFF) << 8)
        else:
            cpu.regs[reg] = (cpu.regs[reg] & 0xFFFFFF00) | (value & 0xFF)
        return
    if kind == "m":
        cpu.mem_write(_ea(cpu, op[1]), size, value)
        return
    raise Trap(VEC_GPF)  # write to an immediate/unwritable operand


def _mask(size):
    return (1 << (8 * size)) - 1


def _msb_shift(size):
    return 8 * size - 1


# ----------------------------------------------------------------------
# flag computation
# ----------------------------------------------------------------------


def _flags_logic(cpu, res, size):
    cpu.cf = 0
    cpu.of = 0
    cpu.zf = 1 if res == 0 else 0
    cpu.sf = (res >> _msb_shift(size)) & 1
    cpu.pf = _PARITY[res & 0xFF]


def _flags_add(cpu, a, b, res, size, carry_in=0):
    mask = _mask(size)
    cpu.cf = 1 if a + b + carry_in > mask else 0
    cpu.zf = 1 if res == 0 else 0
    shift = _msb_shift(size)
    cpu.sf = (res >> shift) & 1
    cpu.of = ((~(a ^ b) & (a ^ res)) >> shift) & 1
    cpu.pf = _PARITY[res & 0xFF]


def _flags_sub(cpu, a, b, res, size, borrow_in=0):
    cpu.cf = 1 if a < b + borrow_in else 0
    cpu.zf = 1 if res == 0 else 0
    shift = _msb_shift(size)
    cpu.sf = (res >> shift) & 1
    cpu.of = (((a ^ b) & (a ^ res)) >> shift) & 1
    cpu.pf = _PARITY[res & 0xFF]


def _signed(value, size):
    bits = 8 * size
    return value - (1 << bits) if value >> (bits - 1) else value


# ----------------------------------------------------------------------
# instruction handlers
# ----------------------------------------------------------------------


def _h_mov(cpu, ins):
    _write_op(cpu, ins.dst, ins.size, _read_op(cpu, ins.src, ins.size))


def _h_lea(cpu, ins):
    cpu.regs[ins.dst[1]] = _ea(cpu, ins.src[1])


def _h_add(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size) & _mask(size)
    res = (a + b) & _mask(size)
    _flags_add(cpu, a, b, res, size)
    _write_op(cpu, ins.dst, size, res)


def _h_adc(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size) & _mask(size)
    carry = cpu.cf
    res = (a + b + carry) & _mask(size)
    _flags_add(cpu, a, b, res, size, carry_in=carry)
    _write_op(cpu, ins.dst, size, res)


def _h_sub(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size) & _mask(size)
    res = (a - b) & _mask(size)
    _flags_sub(cpu, a, b, res, size)
    _write_op(cpu, ins.dst, size, res)


def _h_sbb(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size) & _mask(size)
    borrow = cpu.cf
    res = (a - b - borrow) & _mask(size)
    _flags_sub(cpu, a, b, res, size, borrow_in=borrow)
    _write_op(cpu, ins.dst, size, res)


def _h_cmp(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size) & _mask(size)
    res = (a - b) & _mask(size)
    _flags_sub(cpu, a, b, res, size)


def _h_and(cpu, ins):
    size = ins.size
    res = _read_op(cpu, ins.dst, size) & _read_op(cpu, ins.src, size)
    res &= _mask(size)
    _flags_logic(cpu, res, size)
    _write_op(cpu, ins.dst, size, res)


def _h_or(cpu, ins):
    size = ins.size
    res = (_read_op(cpu, ins.dst, size) | _read_op(cpu, ins.src, size)) \
        & _mask(size)
    _flags_logic(cpu, res, size)
    _write_op(cpu, ins.dst, size, res)


def _h_xor(cpu, ins):
    size = ins.size
    res = (_read_op(cpu, ins.dst, size) ^ _read_op(cpu, ins.src, size)) \
        & _mask(size)
    _flags_logic(cpu, res, size)
    _write_op(cpu, ins.dst, size, res)


def _h_test(cpu, ins):
    size = ins.size
    res = (_read_op(cpu, ins.dst, size) & _read_op(cpu, ins.src, size)) \
        & _mask(size)
    _flags_logic(cpu, res, size)


def _h_inc(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    res = (a + 1) & _mask(size)
    carry = cpu.cf
    _flags_add(cpu, a, 1, res, size)
    cpu.cf = carry  # inc preserves CF
    _write_op(cpu, ins.dst, size, res)


def _h_dec(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    res = (a - 1) & _mask(size)
    carry = cpu.cf
    _flags_sub(cpu, a, 1, res, size)
    cpu.cf = carry
    _write_op(cpu, ins.dst, size, res)


def _h_neg(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    res = (-a) & _mask(size)
    _flags_sub(cpu, 0, a, res, size)
    cpu.cf = 1 if a != 0 else 0
    _write_op(cpu, ins.dst, size, res)


def _h_not(cpu, ins):
    size = ins.size
    res = (~_read_op(cpu, ins.dst, size)) & _mask(size)
    _write_op(cpu, ins.dst, size, res)


def _h_xchg(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size)
    _write_op(cpu, ins.dst, size, b)
    _write_op(cpu, ins.src, size, a)


def _h_push(cpu, ins):
    cpu.push32(_read_op(cpu, ins.dst, 4))


def _h_pop(cpu, ins):
    value = cpu.pop32()
    _write_op(cpu, ins.dst, 4, value)


def _h_pusha(cpu, ins):
    regs = cpu.regs
    original_esp = regs[4]
    for i in (0, 1, 2, 3):
        cpu.push32(regs[i])
    cpu.push32(original_esp)
    for i in (5, 6, 7):
        cpu.push32(regs[i])


def _h_popa(cpu, ins):
    regs = cpu.regs
    for i in (7, 6, 5):
        regs[i] = cpu.pop32()
    cpu.pop32()  # skip saved esp
    for i in (3, 2, 1, 0):
        regs[i] = cpu.pop32()


def _h_push_sr(cpu, ins):
    cpu.push32(cpu.segs[ins.dst[1]])


def _h_pop_sr(cpu, ins):
    value = cpu.pop32() & 0xFFFF
    _load_seg(cpu, ins.dst[1], value)


def _load_seg(cpu, seg_index, selector):
    if seg_index == 2:  # SS
        if selector not in _VALID_STACK_SEL:
            raise Trap(VEC_GPF, error_code=selector)
    else:
        if selector not in _VALID_DATA_SEL:
            raise Trap(VEC_GPF, error_code=selector)
    cpu.segs[seg_index] = selector


def _h_mov_to_sr(cpu, ins):
    _load_seg(cpu, ins.dst[1], _read_op(cpu, ins.src, 4) & 0xFFFF)


def _h_mov_from_sr(cpu, ins):
    _write_op(cpu, ins.dst, 4, cpu.segs[ins.src[1]])


def _h_jcc(cpu, ins):
    if cc_holds(ins.cc, cpu.cf, cpu.zf, cpu.sf, cpu.of, cpu.pf):
        cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32
        cpu.cycles += 1


def _h_jmp(cpu, ins):
    cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32


def _h_call(cpu, ins):
    cpu.push32(cpu.next_eip)
    cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32
    cpu.cycles += 1


def _h_call_ind(cpu, ins):
    target = _read_op(cpu, ins.dst, 4)
    cpu.push32(cpu.next_eip)
    cpu.next_eip = target
    cpu.cycles += 1


def _h_jmp_ind(cpu, ins):
    cpu.next_eip = _read_op(cpu, ins.dst, 4)


def _far_transfer(cpu, selector, offset, is_call):
    selector &= 0xFFFF
    if selector == TSS_SEL:
        raise Trap(VEC_INVALID_TSS, error_code=selector)
    if selector == KERNEL_CS and cpu.cpl == 0:
        if is_call:
            cpu.push32(KERNEL_CS)
            cpu.push32(cpu.next_eip)
        cpu.next_eip = offset & M32
        return
    if selector == USER_CS and cpu.cpl == 3:
        if is_call:
            cpu.push32(USER_CS)
            cpu.push32(cpu.next_eip)
        cpu.next_eip = offset & M32
        return
    raise Trap(VEC_GPF, error_code=selector)


def _h_callf(cpu, ins):
    _far_transfer(cpu, ins.src[1], ins.dst[1], True)


def _h_jmpf(cpu, ins):
    _far_transfer(cpu, ins.src[1], ins.dst[1], False)


def _h_callf_ind(cpu, ins):
    ea = _ea(cpu, ins.dst[1])
    offset = cpu.mem_read(ea, 4)
    selector = cpu.mem_read((ea + 4) & M32, 2)
    _far_transfer(cpu, selector, offset, True)


def _h_jmpf_ind(cpu, ins):
    ea = _ea(cpu, ins.dst[1])
    offset = cpu.mem_read(ea, 4)
    selector = cpu.mem_read((ea + 4) & M32, 2)
    _far_transfer(cpu, selector, offset, False)


def _h_ret(cpu, ins):
    cpu.next_eip = cpu.pop32()
    if ins.src is not None:
        cpu.regs[4] = (cpu.regs[4] + (ins.src[1] & 0xFFFF)) & M32
    cpu.cycles += 1


def _h_lret(cpu, ins):
    offset = cpu.pop32()
    selector = cpu.pop32() & 0xFFFF
    if selector == TSS_SEL:
        raise Trap(VEC_INVALID_TSS, error_code=selector)
    if not ((selector == KERNEL_CS and cpu.cpl == 0)
            or (selector == USER_CS and cpu.cpl == 3)):
        raise Trap(VEC_GPF, error_code=selector)
    if ins.src is not None:
        cpu.regs[4] = (cpu.regs[4] + (ins.src[1] & 0xFFFF)) & M32
    cpu.next_eip = offset


def _pops_fast(cpu, n):
    """Pop ``n`` dwords in one slice when they sit on one resident page.

    Cycle, ESP, and permission accounting are identical to ``n``
    ``pop32`` calls; returns ``None`` (state untouched) whenever the
    per-pop path could behave differently — page split, TLB miss, user
    bit, beyond-RAM — so callers fall back to exact ``pop32``s.
    """
    esp = cpu.regs[4]
    bus = cpu.bus
    if not bus.paging_enabled or (esp & 0xFFF) + 4 * n > 4096:
        return None
    entry = bus.tlb.get(esp >> 12)
    if entry is None or (cpu.cpl == 3 and not entry[1] & 4):
        return None
    phys = (entry[0] << 12) | (esp & 0xFFF)
    if phys + 4 * n > bus.ram_size:
        return None
    values = _UNPACK_WORDS[n](bus.ram, phys)
    cpu.cycles += n
    cpu.regs[4] = (esp + 4 * n) & M32
    return values


def _h_iret(cpu, ins):
    popped = _pops_fast(cpu, 3)
    if popped is None:
        new_eip = cpu.pop32()
        cs_sel = cpu.pop32() & 0xFFFF
        new_eflags = cpu.pop32()
    else:
        new_eip = popped[0]
        cs_sel = popped[1] & 0xFFFF
        new_eflags = popped[2]
    if cs_sel == USER_CS:
        popped = _pops_fast(cpu, 2)
        if popped is None:
            new_esp = cpu.pop32()
            new_ss = cpu.pop32() & 0xFFFF
        else:
            new_esp = popped[0]
            new_ss = popped[1] & 0xFFFF
        if new_ss not in _VALID_STACK_SEL:
            raise Trap(VEC_GPF, error_code=new_ss)
        cpu.set_eflags(new_eflags)
        cpu.cpl = 3
        cpu.regs[4] = new_esp
        cpu.segs[2] = new_ss
        cpu.segs[1] = USER_CS
    elif cs_sel == KERNEL_CS:
        if cpu.cpl != 0:
            raise Trap(VEC_GPF, error_code=cs_sel)
        cpu.set_eflags(new_eflags)
        cpu.segs[1] = KERNEL_CS
    elif cs_sel == TSS_SEL:
        raise Trap(VEC_INVALID_TSS, error_code=cs_sel)
    else:
        raise Trap(VEC_GPF, error_code=cs_sel)
    cpu.next_eip = new_eip
    cpu.cycles += 4


def _h_int(cpu, ins):
    vector = ins.dst[1] & 0xFF
    if cpu.cpl == 3:
        entry = cpu.idt_base + vector * 8
        flags = cpu.bus.read(entry + 4, 4, False)
        if not flags & 2:  # gate DPL < 3: user may not invoke
            raise Trap(VEC_GPF, error_code=vector * 8 + 2)
    raise Trap(vector, return_eip=cpu.next_eip)


def _h_int3(cpu, ins):
    raise Trap(VEC_INT3, return_eip=cpu.next_eip)


def _h_into(cpu, ins):
    if cpu.of:
        raise Trap(VEC_OVERFLOW, return_eip=cpu.next_eip)


def _h_bound(cpu, ins):
    index = _signed(cpu.regs[ins.dst[1]], 4)
    ea = _ea(cpu, ins.src[1])
    lower = _signed(cpu.mem_read(ea, 4), 4)
    upper = _signed(cpu.mem_read((ea + 4) & M32, 4), 4)
    if index < lower or index > upper:
        raise Trap(VEC_BOUNDS)


def _h_ud2(cpu, ins):
    raise Trap(VEC_INVALID_OP)


def _h_nop(cpu, ins):
    pass


def _h_hlt(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    if cpu.if_flag and cpu.timer_interval:
        # Idle until the next timer tick.
        if cpu.cycles < cpu.timer_next:
            cpu.cycles = cpu.timer_next
        return
    raise CpuHalted("hlt with interrupts disabled at eip=%#x" % ins.addr)


def _h_cli(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    cpu.if_flag = 0


def _h_sti(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    cpu.if_flag = 1


def _h_clc(cpu, ins):
    cpu.cf = 0


def _h_stc(cpu, ins):
    cpu.cf = 1


def _h_cmc(cpu, ins):
    cpu.cf ^= 1


def _h_cld(cpu, ins):
    cpu.df = 0


def _h_std(cpu, ins):
    cpu.df = 1


def _h_pushf(cpu, ins):
    cpu.push32(cpu.eflags())


def _h_popf(cpu, ins):
    cpu.set_eflags(cpu.pop32(), allow_if=cpu.cpl == 0)


def _h_sahf(cpu, ins):
    value = (cpu.regs[0] >> 8) & 0xFF
    cpu.cf = value & 1
    cpu.pf = (value >> 2) & 1
    cpu.zf = (value >> 6) & 1
    cpu.sf = (value >> 7) & 1


def _h_lahf(cpu, ins):
    value = 2 | cpu.cf | (cpu.pf << 2) | (cpu.zf << 6) | (cpu.sf << 7)
    cpu.regs[0] = (cpu.regs[0] & 0xFFFF00FF) | (value << 8)


def _h_movzx(cpu, ins):
    value = _read_op(cpu, ins.src, ins.size) & _mask(ins.size)
    cpu.regs[ins.dst[1]] = value


def _h_movsx(cpu, ins):
    value = _read_op(cpu, ins.src, ins.size) & _mask(ins.size)
    cpu.regs[ins.dst[1]] = _signed(value, ins.size) & M32


def _h_setcc(cpu, ins):
    value = 1 if cc_holds(ins.cc, cpu.cf, cpu.zf, cpu.sf, cpu.of,
                          cpu.pf) else 0
    _write_op(cpu, ins.dst, 1, value)


def _h_cmovcc(cpu, ins):
    value = _read_op(cpu, ins.src, 4)
    if cc_holds(ins.cc, cpu.cf, cpu.zf, cpu.sf, cpu.of, cpu.pf):
        cpu.regs[ins.dst[1]] = value


def _h_cwde(cpu, ins):
    cpu.regs[0] = _signed(cpu.regs[0] & 0xFFFF, 2) & M32


def _h_cdq(cpu, ins):
    cpu.regs[2] = M32 if cpu.regs[0] >> 31 else 0


def _h_mul(cpu, ins):
    size = ins.size
    src = _read_op(cpu, ins.dst, size)
    if size == 1:
        result = (cpu.regs[0] & 0xFF) * src
        cpu.regs[0] = (cpu.regs[0] & 0xFFFF0000) | (result & 0xFFFF)
        overflow = result >> 8 != 0
    else:
        result = cpu.regs[0] * src
        cpu.regs[0] = result & M32
        cpu.regs[2] = (result >> 32) & M32
        overflow = result >> 32 != 0
    cpu.cf = cpu.of = 1 if overflow else 0


def _h_imul1(cpu, ins):
    size = ins.size
    src = _signed(_read_op(cpu, ins.dst, size), size)
    if size == 1:
        result = _signed(cpu.regs[0] & 0xFF, 1) * src
        cpu.regs[0] = (cpu.regs[0] & 0xFFFF0000) | (result & 0xFFFF)
        overflow = not -128 <= result <= 127
    else:
        result = _signed(cpu.regs[0], 4) * src
        cpu.regs[0] = result & M32
        cpu.regs[2] = (result >> 32) & M32
        overflow = not -(1 << 31) <= result < (1 << 31)
    cpu.cf = cpu.of = 1 if overflow else 0


def _h_imul2(cpu, ins):
    a = _signed(cpu.regs[ins.dst[1]], 4)
    b = _signed(_read_op(cpu, ins.src, 4), 4)
    result = a * b
    cpu.regs[ins.dst[1]] = result & M32
    cpu.cf = cpu.of = 0 if -(1 << 31) <= result < (1 << 31) else 1


def _h_imul3(cpu, ins):
    a = _signed(_read_op(cpu, ins.src, 4), 4)
    b = _signed(ins.imm2[1] & M32, 4)
    result = a * b
    cpu.regs[ins.dst[1]] = result & M32
    cpu.cf = cpu.of = 0 if -(1 << 31) <= result < (1 << 31) else 1


def _h_div(cpu, ins):
    size = ins.size
    divisor = _read_op(cpu, ins.dst, size)
    if divisor == 0:
        raise Trap(VEC_DIVIDE)
    if size == 1:
        dividend = cpu.regs[0] & 0xFFFF
        quotient = dividend // divisor
        if quotient > 0xFF:
            raise Trap(VEC_DIVIDE)
        remainder = dividend % divisor
        cpu.regs[0] = (cpu.regs[0] & 0xFFFF0000) | (remainder << 8) \
            | quotient
    else:
        dividend = (cpu.regs[2] << 32) | cpu.regs[0]
        quotient = dividend // divisor
        if quotient > M32:
            raise Trap(VEC_DIVIDE)
        cpu.regs[0] = quotient
        cpu.regs[2] = dividend % divisor


def _h_idiv(cpu, ins):
    size = ins.size
    divisor = _signed(_read_op(cpu, ins.dst, size), size)
    if divisor == 0:
        raise Trap(VEC_DIVIDE)
    if size == 1:
        dividend = _signed(cpu.regs[0] & 0xFFFF, 2)
        quotient = int(dividend / divisor)
        if not -128 <= quotient <= 127:
            raise Trap(VEC_DIVIDE)
        remainder = dividend - quotient * divisor
        cpu.regs[0] = (cpu.regs[0] & 0xFFFF0000) \
            | ((remainder & 0xFF) << 8) | (quotient & 0xFF)
    else:
        dividend = _signed(((cpu.regs[2] << 32) | cpu.regs[0]) & (2**64 - 1),
                           8)
        quotient = int(dividend / divisor)
        if not -(1 << 31) <= quotient < (1 << 31):
            raise Trap(VEC_DIVIDE)
        remainder = dividend - quotient * divisor
        cpu.regs[0] = quotient & M32
        cpu.regs[2] = remainder & M32


def _shift_count(cpu, ins):
    return _read_op(cpu, ins.src, 1) & 31


def _h_shl(cpu, ins):
    size = ins.size
    count = _shift_count(cpu, ins)
    if count == 0:
        return
    bits = 8 * size
    a = _read_op(cpu, ins.dst, size)
    res = (a << count) & _mask(size)
    cpu.cf = (a >> (bits - count)) & 1 if count <= bits else 0
    cpu.zf = 1 if res == 0 else 0
    cpu.sf = (res >> (bits - 1)) & 1
    cpu.pf = _PARITY[res & 0xFF]
    cpu.of = ((res >> (bits - 1)) & 1) ^ cpu.cf
    _write_op(cpu, ins.dst, size, res)


def _h_shr(cpu, ins):
    size = ins.size
    count = _shift_count(cpu, ins)
    if count == 0:
        return
    bits = 8 * size
    a = _read_op(cpu, ins.dst, size)
    res = a >> count
    cpu.cf = (a >> (count - 1)) & 1
    cpu.zf = 1 if res == 0 else 0
    cpu.sf = (res >> (bits - 1)) & 1
    cpu.pf = _PARITY[res & 0xFF]
    cpu.of = (a >> (bits - 1)) & 1
    _write_op(cpu, ins.dst, size, res)


def _h_sar(cpu, ins):
    size = ins.size
    count = _shift_count(cpu, ins)
    if count == 0:
        return
    a = _signed(_read_op(cpu, ins.dst, size), size)
    res = (a >> count) & _mask(size)
    cpu.cf = (a >> (count - 1)) & 1
    cpu.zf = 1 if res == 0 else 0
    cpu.sf = (res >> _msb_shift(size)) & 1
    cpu.pf = _PARITY[res & 0xFF]
    cpu.of = 0
    _write_op(cpu, ins.dst, size, res)


def _h_rol(cpu, ins):
    size = ins.size
    bits = 8 * size
    count = _shift_count(cpu, ins) % bits
    a = _read_op(cpu, ins.dst, size)
    if count:
        res = ((a << count) | (a >> (bits - count))) & _mask(size)
        cpu.cf = res & 1
        _write_op(cpu, ins.dst, size, res)


def _h_ror(cpu, ins):
    size = ins.size
    bits = 8 * size
    count = _shift_count(cpu, ins) % bits
    a = _read_op(cpu, ins.dst, size)
    if count:
        res = ((a >> count) | (a << (bits - count))) & _mask(size)
        cpu.cf = (res >> (bits - 1)) & 1
        _write_op(cpu, ins.dst, size, res)


def _h_rcl(cpu, ins):
    size = ins.size
    bits = 8 * size + 1
    count = _shift_count(cpu, ins) % bits
    if count == 0:
        return
    a = (_read_op(cpu, ins.dst, size) << 1) | cpu.cf
    res = ((a << count) | (a >> (bits - count))) & ((1 << bits) - 1)
    cpu.cf = res & 1
    _write_op(cpu, ins.dst, size, (res >> 1) & _mask(size))


def _h_rcr(cpu, ins):
    size = ins.size
    bits = 8 * size + 1
    count = _shift_count(cpu, ins) % bits
    if count == 0:
        return
    a = (_read_op(cpu, ins.dst, size) << 1) | cpu.cf
    res = ((a >> count) | (a << (bits - count))) & ((1 << bits) - 1)
    cpu.cf = res & 1
    _write_op(cpu, ins.dst, size, (res >> 1) & _mask(size))


def _h_shld(cpu, ins):
    count = (_read_op(cpu, ins.imm2, 1) if ins.imm2[0] == "i"
             else cpu.regs[1]) & 31
    if count == 0:
        return
    a = _read_op(cpu, ins.dst, 4)
    b = _read_op(cpu, ins.src, 4)
    res = ((a << count) | (b >> (32 - count))) & M32
    cpu.cf = (a >> (32 - count)) & 1
    cpu.zf = 1 if res == 0 else 0
    cpu.sf = res >> 31
    cpu.pf = _PARITY[res & 0xFF]
    _write_op(cpu, ins.dst, 4, res)


def _h_shrd(cpu, ins):
    count = (_read_op(cpu, ins.imm2, 1) if ins.imm2[0] == "i"
             else cpu.regs[1]) & 31
    if count == 0:
        return
    a = _read_op(cpu, ins.dst, 4)
    b = _read_op(cpu, ins.src, 4)
    res = ((a >> count) | (b << (32 - count))) & M32
    cpu.cf = (a >> (count - 1)) & 1
    cpu.zf = 1 if res == 0 else 0
    cpu.sf = res >> 31
    cpu.pf = _PARITY[res & 0xFF]
    _write_op(cpu, ins.dst, 4, res)


def _bt_common(cpu, ins):
    bit = _read_op(cpu, ins.src, 4)
    if ins.dst[0] == "m" and ins.src[0] == "r":
        offset = _signed(bit, 4) >> 5
        ea = (_ea(cpu, ins.dst[1]) + 4 * offset) & M32
        value = cpu.mem_read(ea, 4)
        return ea, value, bit & 31
    value = _read_op(cpu, ins.dst, 4)
    return None, value, bit & 31


def _bt_finish(cpu, ins, ea, value):
    if ea is None:
        _write_op(cpu, ins.dst, 4, value)
    else:
        cpu.mem_write(ea, 4, value)


def _h_bt(cpu, ins):
    _, value, bit = _bt_common(cpu, ins)
    cpu.cf = (value >> bit) & 1


def _h_bts(cpu, ins):
    ea, value, bit = _bt_common(cpu, ins)
    cpu.cf = (value >> bit) & 1
    _bt_finish(cpu, ins, ea, value | (1 << bit))


def _h_btr(cpu, ins):
    ea, value, bit = _bt_common(cpu, ins)
    cpu.cf = (value >> bit) & 1
    _bt_finish(cpu, ins, ea, value & ~(1 << bit))


def _h_btc(cpu, ins):
    ea, value, bit = _bt_common(cpu, ins)
    cpu.cf = (value >> bit) & 1
    _bt_finish(cpu, ins, ea, value ^ (1 << bit))


def _h_bsf(cpu, ins):
    value = _read_op(cpu, ins.src, 4)
    if value == 0:
        cpu.zf = 1
        return
    cpu.zf = 0
    cpu.regs[ins.dst[1]] = (value & -value).bit_length() - 1


def _h_bsr(cpu, ins):
    value = _read_op(cpu, ins.src, 4)
    if value == 0:
        cpu.zf = 1
        return
    cpu.zf = 0
    cpu.regs[ins.dst[1]] = value.bit_length() - 1


def _h_bswap(cpu, ins):
    value = cpu.regs[ins.dst[1]]
    cpu.regs[ins.dst[1]] = int.from_bytes(
        value.to_bytes(4, "little"), "big")


def _h_cmpxchg(cpu, ins):
    size = ins.size
    dest = _read_op(cpu, ins.dst, size)
    acc = cpu.regs[0] & _mask(size)
    res = (acc - dest) & _mask(size)
    _flags_sub(cpu, acc, dest, res, size)
    if acc == dest:
        _write_op(cpu, ins.dst, size, _read_op(cpu, ins.src, size))
    else:
        if size == 1:
            cpu.regs[0] = (cpu.regs[0] & ~0xFF) | dest
        else:
            cpu.regs[0] = dest


def _h_xadd(cpu, ins):
    size = ins.size
    a = _read_op(cpu, ins.dst, size)
    b = _read_op(cpu, ins.src, size)
    res = (a + b) & _mask(size)
    _flags_add(cpu, a, b, res, size)
    _write_op(cpu, ins.src, size, a)
    _write_op(cpu, ins.dst, size, res)


def _h_loop(cpu, ins):
    cpu.regs[1] = (cpu.regs[1] - 1) & M32
    if cpu.regs[1]:
        cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32


def _h_loope(cpu, ins):
    cpu.regs[1] = (cpu.regs[1] - 1) & M32
    if cpu.regs[1] and cpu.zf:
        cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32


def _h_loopne(cpu, ins):
    cpu.regs[1] = (cpu.regs[1] - 1) & M32
    if cpu.regs[1] and not cpu.zf:
        cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32


def _h_jcxz(cpu, ins):
    if cpu.regs[1] == 0:
        cpu.next_eip = (ins.addr + ins.length + ins.rel) & M32


def _h_leave(cpu, ins):
    cpu.regs[4] = cpu.regs[5]
    cpu.regs[5] = cpu.pop32()


def _h_enter(cpu, ins):
    cpu.push32(cpu.regs[5])
    cpu.regs[5] = cpu.regs[4]
    cpu.regs[4] = (cpu.regs[4] - (ins.dst[1] & 0xFFFF)) & M32


def _h_les(cpu, ins):
    ea = _ea(cpu, ins.src[1])
    offset = cpu.mem_read(ea, 4)
    selector = cpu.mem_read((ea + 4) & M32, 2)
    _load_seg(cpu, 0, selector)
    cpu.regs[ins.dst[1]] = offset


def _h_lds(cpu, ins):
    ea = _ea(cpu, ins.src[1])
    offset = cpu.mem_read(ea, 4)
    selector = cpu.mem_read((ea + 4) & M32, 2)
    _load_seg(cpu, 3, selector)
    cpu.regs[ins.dst[1]] = offset


# -- string operations --------------------------------------------------


def _h_movs(cpu, ins):
    size = ins.size
    step = -size if cpu.df else size
    if ins.rep is None:
        value = cpu.mem_read(cpu.regs[6], size)
        cpu.mem_write(cpu.regs[7], size, value)
        cpu.regs[6] = (cpu.regs[6] + step) & M32
        cpu.regs[7] = (cpu.regs[7] + step) & M32
        return
    iterations = 0
    while cpu.regs[1] and iterations < _REP_CHUNK:
        value = cpu.mem_read(cpu.regs[6], size)
        cpu.mem_write(cpu.regs[7], size, value)
        cpu.regs[6] = (cpu.regs[6] + step) & M32
        cpu.regs[7] = (cpu.regs[7] + step) & M32
        cpu.regs[1] = (cpu.regs[1] - 1) & M32
        iterations += 1
    if cpu.regs[1]:
        cpu.next_eip = ins.addr  # resume the rep after host events


def _h_stos(cpu, ins):
    size = ins.size
    step = -size if cpu.df else size
    value = cpu.regs[0] & _mask(size)
    if ins.rep is None:
        cpu.mem_write(cpu.regs[7], size, value)
        cpu.regs[7] = (cpu.regs[7] + step) & M32
        return
    iterations = 0
    while cpu.regs[1] and iterations < _REP_CHUNK:
        cpu.mem_write(cpu.regs[7], size, value)
        cpu.regs[7] = (cpu.regs[7] + step) & M32
        cpu.regs[1] = (cpu.regs[1] - 1) & M32
        iterations += 1
    if cpu.regs[1]:
        cpu.next_eip = ins.addr


def _h_lods(cpu, ins):
    size = ins.size
    step = -size if cpu.df else size
    count = 1
    if ins.rep is not None:
        count = cpu.regs[1]
        cpu.regs[1] = 0
    value = cpu.regs[0] & _mask(size)
    for _ in range(min(count, _REP_CHUNK)):
        value = cpu.mem_read(cpu.regs[6], size)
        cpu.regs[6] = (cpu.regs[6] + step) & M32
    if size == 1:
        cpu.regs[0] = (cpu.regs[0] & ~0xFF) | value
    else:
        cpu.regs[0] = value


def _h_cmps(cpu, ins):
    size = ins.size
    step = -size if cpu.df else size

    def one():
        a = cpu.mem_read(cpu.regs[6], size)
        b = cpu.mem_read(cpu.regs[7], size)
        res = (a - b) & _mask(size)
        _flags_sub(cpu, a, b, res, size)
        cpu.regs[6] = (cpu.regs[6] + step) & M32
        cpu.regs[7] = (cpu.regs[7] + step) & M32

    if ins.rep is None:
        one()
        return
    want_zf = 1 if ins.rep == "rep" else 0
    iterations = 0
    while cpu.regs[1] and iterations < _REP_CHUNK:
        one()
        cpu.regs[1] = (cpu.regs[1] - 1) & M32
        iterations += 1
        if cpu.zf != want_zf:
            return
    if cpu.regs[1]:
        cpu.next_eip = ins.addr


def _h_scas(cpu, ins):
    size = ins.size
    step = -size if cpu.df else size
    acc = cpu.regs[0] & _mask(size)

    def one():
        b = cpu.mem_read(cpu.regs[7], size)
        res = (acc - b) & _mask(size)
        _flags_sub(cpu, acc, b, res, size)
        cpu.regs[7] = (cpu.regs[7] + step) & M32

    if ins.rep is None:
        one()
        return
    want_zf = 1 if ins.rep == "rep" else 0
    iterations = 0
    while cpu.regs[1] and iterations < _REP_CHUNK:
        one()
        cpu.regs[1] = (cpu.regs[1] - 1) & M32
        iterations += 1
        if cpu.zf != want_zf:
            return
    if cpu.regs[1]:
        cpu.next_eip = ins.addr


# -- I/O and system instructions -----------------------------------------


def _h_in(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    if ins.size == 1:
        cpu.regs[0] = (cpu.regs[0] & ~0xFF) | 0xFF
    else:
        cpu.regs[0] = M32


def _h_out(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)


def _h_ins(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    step = -ins.size if cpu.df else ins.size
    cpu.mem_write(cpu.regs[7], ins.size, 0)
    cpu.regs[7] = (cpu.regs[7] + step) & M32


def _h_outs(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    step = -ins.size if cpu.df else ins.size
    cpu.mem_read(cpu.regs[6], ins.size)
    cpu.regs[6] = (cpu.regs[6] + step) & M32


def _h_mov_to_cr(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    value = cpu.regs[ins.dst[1]]
    cr = ins.src[1]
    if cr == 0:
        cpu.cr0 = value
        cpu.bus.paging_enabled = bool(value & 0x80000000)
        cpu.bus.flush_tlb()
    elif cr == 2:
        cpu.cr2 = value
    elif cr == 3:
        cpu.bus.set_cr3(value)
    elif cr == 4:
        cpu.cr4 = value
    else:
        raise Trap(VEC_INVALID_OP)


def _h_mov_from_cr(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    cr = ins.src[1]
    if cr == 0:
        value = cpu.cr0
    elif cr == 2:
        value = cpu.cr2
    elif cr == 3:
        value = cpu.bus.cr3
    elif cr == 4:
        value = cpu.cr4
    else:
        raise Trap(VEC_INVALID_OP)
    cpu.regs[ins.dst[1]] = value & M32


def _h_mov_to_dr(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    cpu.write_dr(ins.src[1], cpu.regs[ins.dst[1]])


def _h_mov_from_dr(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    cpu.regs[ins.dst[1]] = cpu.dr[ins.src[1]]


def _h_wrmsr(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    msr = cpu.regs[1]
    if msr == MSR_ESP0:
        cpu.esp0 = cpu.regs[0]
    elif msr == MSR_IDT_BASE:
        cpu.idt_base = cpu.regs[0]
    else:
        raise Trap(VEC_GPF, error_code=0)


def _h_rdmsr(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    msr = cpu.regs[1]
    if msr == MSR_ESP0:
        cpu.regs[0] = cpu.esp0
    elif msr == MSR_IDT_BASE:
        cpu.regs[0] = cpu.idt_base
    else:
        raise Trap(VEC_GPF, error_code=0)
    cpu.regs[2] = 0


def _h_rdtsc(cpu, ins):
    cpu.regs[0] = cpu.cycles & M32
    cpu.regs[2] = (cpu.cycles >> 32) & M32


def _h_rdpmc(cpu, ins):
    cpu.regs[0] = cpu.cycles & M32
    cpu.regs[2] = (cpu.cycles >> 32) & M32


def _h_cpuid(cpu, ins):
    leaf = cpu.regs[0]
    if leaf == 0:
        cpu.regs[0] = 1
        cpu.regs[3] = 0x756E6547  # "Genu"
        cpu.regs[2] = 0x6C65746E  # "ntel"
        cpu.regs[1] = 0x49656E69  # "ineI"
    else:
        cpu.regs[0] = 0x00000F12  # family 15 (P4), model 1
        cpu.regs[3] = 0
        cpu.regs[1] = 0
        cpu.regs[2] = 0x00000001
    # clobbers all four: done above


def _h_sysgrp(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)
    op2, reg = ins.imm2
    if op2 == 0x01 and reg == 7 and ins.dst[0] == "m":  # invlpg
        cpu.bus.invlpg(_ea(cpu, ins.dst[1]))
    # Other system-group members (sgdt/lldt/ltr/smsw...) are accepted
    # as no-ops at CPL0: the simulated platform has fixed descriptors.


def _h_xlatb(cpu, ins):
    addr = (cpu.regs[3] + (cpu.regs[0] & 0xFF)) & M32
    value = cpu.mem_read(addr, 1)
    cpu.regs[0] = (cpu.regs[0] & ~0xFF) | value


def _h_aam(cpu, ins):
    base = _read_op(cpu, ins.src, 1)
    if base == 0:
        raise Trap(VEC_DIVIDE)
    al = cpu.regs[0] & 0xFF
    ah = al // base
    al = al % base
    cpu.regs[0] = (cpu.regs[0] & 0xFFFF0000) | (ah << 8) | al
    _flags_logic(cpu, al, 1)


def _h_aad(cpu, ins):
    base = _read_op(cpu, ins.src, 1)
    al = ((cpu.regs[0] & 0xFF) + ((cpu.regs[0] >> 8) & 0xFF) * base) & 0xFF
    cpu.regs[0] = (cpu.regs[0] & 0xFFFF0000) | al
    _flags_logic(cpu, al, 1)


def _h_daa(cpu, ins):
    al = cpu.regs[0] & 0xFF
    if (al & 0xF) > 9:
        al = (al + 6) & 0xFF
    if al > 0x9F or cpu.cf:
        al = (al + 0x60) & 0xFF
        cpu.cf = 1
    carry = cpu.cf
    cpu.regs[0] = (cpu.regs[0] & ~0xFF) | al
    _flags_logic(cpu, al, 1)
    cpu.cf = carry


def _h_das(cpu, ins):
    al = cpu.regs[0] & 0xFF
    if (al & 0xF) > 9:
        al = (al - 6) & 0xFF
    carry = 1 if al > 0x9F or cpu.cf else 0
    if carry:
        al = (al - 0x60) & 0xFF
    cpu.regs[0] = (cpu.regs[0] & ~0xFF) | al
    _flags_logic(cpu, al, 1)
    cpu.cf = carry


def _h_aaa(cpu, ins):
    al = cpu.regs[0] & 0xFF
    if (al & 0xF) > 9:
        cpu.regs[0] = (cpu.regs[0] + 0x106) & M32
        cpu.cf = 1
    else:
        cpu.cf = 0
    cpu.regs[0] &= 0xFFFFFF0F


def _h_aas(cpu, ins):
    al = cpu.regs[0] & 0xFF
    if (al & 0xF) > 9:
        cpu.regs[0] = (cpu.regs[0] - 6) & M32
        cpu.cf = 1
    else:
        cpu.cf = 0


def _h_wait(cpu, ins):
    pass


def _h_clts(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)


def _h_invd(cpu, ins):
    if cpu.cpl == 3:
        raise Trap(VEC_GPF, error_code=0)


_HANDLERS = {
    "mov": _h_mov,
    "lea": _h_lea,
    "add": _h_add,
    "adc": _h_adc,
    "sub": _h_sub,
    "sbb": _h_sbb,
    "cmp": _h_cmp,
    "and": _h_and,
    "or": _h_or,
    "xor": _h_xor,
    "test": _h_test,
    "inc": _h_inc,
    "dec": _h_dec,
    "neg": _h_neg,
    "not": _h_not,
    "xchg": _h_xchg,
    "push": _h_push,
    "pop": _h_pop,
    "pusha": _h_pusha,
    "popa": _h_popa,
    "push_sr": _h_push_sr,
    "pop_sr": _h_pop_sr,
    "mov_to_sr": _h_mov_to_sr,
    "mov_from_sr": _h_mov_from_sr,
    "jcc": _h_jcc,
    "jmp": _h_jmp,
    "call": _h_call,
    "call_ind": _h_call_ind,
    "jmp_ind": _h_jmp_ind,
    "callf": _h_callf,
    "jmpf": _h_jmpf,
    "callf_ind": _h_callf_ind,
    "jmpf_ind": _h_jmpf_ind,
    "ret": _h_ret,
    "lret": _h_lret,
    "iret": _h_iret,
    "int": _h_int,
    "int3": _h_int3,
    "into": _h_into,
    "bound": _h_bound,
    "ud2": _h_ud2,
    "nop": _h_nop,
    "hlt": _h_hlt,
    "cli": _h_cli,
    "sti": _h_sti,
    "clc": _h_clc,
    "stc": _h_stc,
    "cmc": _h_cmc,
    "cld": _h_cld,
    "std": _h_std,
    "pushf": _h_pushf,
    "popf": _h_popf,
    "sahf": _h_sahf,
    "lahf": _h_lahf,
    "movzx": _h_movzx,
    "movsx": _h_movsx,
    "setcc": _h_setcc,
    "cmovcc": _h_cmovcc,
    "cwde": _h_cwde,
    "cdq": _h_cdq,
    "mul": _h_mul,
    "imul1": _h_imul1,
    "imul2": _h_imul2,
    "imul3": _h_imul3,
    "div": _h_div,
    "idiv": _h_idiv,
    "shl": _h_shl,
    "shr": _h_shr,
    "sar": _h_sar,
    "rol": _h_rol,
    "ror": _h_ror,
    "rcl": _h_rcl,
    "rcr": _h_rcr,
    "shld": _h_shld,
    "shrd": _h_shrd,
    "bt": _h_bt,
    "bts": _h_bts,
    "btr": _h_btr,
    "btc": _h_btc,
    "bsf": _h_bsf,
    "bsr": _h_bsr,
    "bswap": _h_bswap,
    "cmpxchg": _h_cmpxchg,
    "xadd": _h_xadd,
    "loop": _h_loop,
    "loope": _h_loope,
    "loopne": _h_loopne,
    "jcxz": _h_jcxz,
    "leave": _h_leave,
    "enter": _h_enter,
    "les": _h_les,
    "lds": _h_lds,
    "movs": _h_movs,
    "stos": _h_stos,
    "lods": _h_lods,
    "cmps": _h_cmps,
    "scas": _h_scas,
    "in": _h_in,
    "out": _h_out,
    "ins": _h_ins,
    "outs": _h_outs,
    "mov_to_cr": _h_mov_to_cr,
    "mov_from_cr": _h_mov_from_cr,
    "mov_to_dr": _h_mov_to_dr,
    "mov_from_dr": _h_mov_from_dr,
    "wrmsr": _h_wrmsr,
    "rdmsr": _h_rdmsr,
    "rdtsc": _h_rdtsc,
    "rdpmc": _h_rdpmc,
    "cpuid": _h_cpuid,
    "sysgrp": _h_sysgrp,
    "xlat": _h_xlatb,
    "aam": _h_aam,
    "aad": _h_aad,
    "daa": _h_daa,
    "das": _h_das,
    "aaa": _h_aaa,
    "aas": _h_aas,
    "wait": _h_wait,
    "clts": _h_clts,
    "invd": _h_invd,
}
