"""Physical memory, MMIO routing, and the two-level x86 paging MMU.

The page tables live *inside simulated physical memory* (CR3 points at a
page directory of 32-bit PDEs, which point at pages of 32-bit PTEs), so
kernel memory-management code manipulates real translation structures and
an injected error in ``zap_page_range`` or ``do_wp_page`` corrupts actual
mappings — the mechanism behind several of the paper's severe crashes.

The MMU runs with CR0.WP=1 semantics (i486+, as Linux 2.4 does):
supervisor writes honour the read/write PTE bit, so kernel stores into
copy-on-write user pages fault into ``do_page_fault`` exactly like the
real uaccess path.
"""

from repro.cpu.traps import PF_PRESENT, PF_USER, PF_WRITE, Trap, \
    VEC_PAGE_FAULT

PAGE_SIZE = 4096
PAGE_SHIFT = 12

PTE_PRESENT = 0x001
PTE_RW = 0x002
PTE_USER = 0x004
PTE_ACCESSED = 0x020
PTE_DIRTY = 0x040


class MemoryBus:
    """Physical RAM plus memory-mapped devices, with paging translation."""

    def __init__(self, ram_bytes, mmio_base=None):
        self.ram = bytearray(ram_bytes)
        self.ram_size = ram_bytes
        #: per-page write generation counters; the CPU's decode cache
        #: validates against these so that injected bit flips (and any
        #: self-modifying store) invalidate stale decodes.
        self.page_versions = [0] * ((ram_bytes >> PAGE_SHIFT) + 1)
        self.mmio_base = mmio_base if mmio_base is not None else ram_bytes
        self.devices = []  # (start, end, device)
        self.cr3 = 0
        self.tlb = {}
        #: bumped on every TLB invalidation; the CPU's decode cache keys
        #: user-space entries by this generation (I-TLB semantics), so a
        #: remap becomes visible exactly when a real CPU would see it.
        self.tlb_gen = 0
        self.paging_enabled = False
        #: optional write observer (repro.cpu.translate.BlockCache):
        #: every store path reports the physical byte range written so
        #: translated blocks covering those bytes are evicted.  The
        #: decode cache needs no callback — it revalidates against
        #: page_versions — but both caches are fed by the same store
        #: paths, keeping one invalidation protocol for both.
        self.code_watch = None

    # -- device plumbing ---------------------------------------------------

    def attach_device(self, phys_addr, size, device):
        """Map *device* at physical [phys_addr, phys_addr+size)."""
        self.devices.append((phys_addr, phys_addr + size, device))

    def _device_at(self, phys):
        for start, end, device in self.devices:
            if start <= phys < end:
                return device, phys - start
        return None, 0

    # -- paging -------------------------------------------------------------

    def set_cr3(self, value):
        self.cr3 = value & ~0xFFF
        self.tlb.clear()
        self.tlb_gen += 1

    def flush_tlb(self):
        self.tlb.clear()
        self.tlb_gen += 1

    def invlpg(self, vaddr):
        self.tlb.pop(vaddr >> PAGE_SHIFT, None)
        self.tlb_gen += 1

    def translate(self, vaddr, write, user):
        """Translate a virtual address; raises #PF on failure.

        Returns the physical address.  With paging disabled (early boot),
        addresses are physical already.
        """
        if not self.paging_enabled:
            return vaddr
        vpn = vaddr >> PAGE_SHIFT
        entry = self.tlb.get(vpn)
        if entry is None:
            entry = self._walk(vaddr, write, user)
            self.tlb[vpn] = entry
        pfn, flags = entry
        if user and not flags & PTE_USER:
            raise Trap(VEC_PAGE_FAULT,
                       error_code=PF_PRESENT | PF_USER
                       | (PF_WRITE if write else 0),
                       cr2=vaddr)
        if write and not flags & PTE_RW:
            # CR0.WP=1 semantics (i486+, as Linux 2.4 uses): supervisor
            # writes honour the R/W bit too — kernel writes to COW'd user
            # pages fault into do_page_fault, like the real uaccess path.
            raise Trap(VEC_PAGE_FAULT,
                       error_code=PF_PRESENT | PF_WRITE
                       | (PF_USER if user else 0),
                       cr2=vaddr)
        return (pfn << PAGE_SHIFT) | (vaddr & 0xFFF)

    def _walk(self, vaddr, write, user):
        error = (PF_WRITE if write else 0) | (PF_USER if user else 0)
        pde_addr = self.cr3 + ((vaddr >> 22) << 2)
        pde = self._phys_read32_checked(pde_addr, vaddr, error)
        if not pde & PTE_PRESENT:
            raise Trap(VEC_PAGE_FAULT, error_code=error, cr2=vaddr)
        pte_addr = (pde & ~0xFFF) + (((vaddr >> PAGE_SHIFT) & 0x3FF) << 2)
        pte = self._phys_read32_checked(pte_addr, vaddr, error)
        if not pte & PTE_PRESENT:
            raise Trap(VEC_PAGE_FAULT, error_code=error, cr2=vaddr)
        flags = pte & pde & (PTE_USER | PTE_RW) | PTE_PRESENT
        return (pte >> PAGE_SHIFT, flags)

    def _phys_read32_checked(self, phys, vaddr, error):
        """Read a paging-structure entry; a wild CR3/PDE => page fault."""
        if phys + 4 > self.ram_size:
            raise Trap(VEC_PAGE_FAULT, error_code=error, cr2=vaddr)
        return int.from_bytes(self.ram[phys:phys + 4], "little")

    # -- physical access ------------------------------------------------------

    def phys_read(self, phys, size):
        if phys + size <= self.ram_size:
            return int.from_bytes(self.ram[phys:phys + size], "little")
        device, offset = self._device_at(phys)
        if device is not None:
            return device.mmio_read(offset, size)
        # Reads beyond RAM float high, like a real bus.
        return (1 << (8 * size)) - 1

    def phys_write(self, phys, size, value):
        if phys + size <= self.ram_size:
            self.ram[phys:phys + size] = value.to_bytes(size, "little")
            first = phys >> PAGE_SHIFT
            self.page_versions[first] += 1
            # A write may straddle a page boundary; bump the second
            # page's generation too, or decodes cached there go stale.
            last = (phys + size - 1) >> PAGE_SHIFT
            if last != first:
                self.page_versions[last] += 1
            watch = self.code_watch
            if watch is not None \
                    and (first in watch.page_ranges
                         or last in watch.page_ranges):
                watch.note_write(phys, size)
            return
        device, offset = self._device_at(phys)
        if device is not None:
            device.mmio_write(offset, size, value)

    def phys_read_bytes(self, phys, length):
        return bytes(self.ram[phys:phys + length])

    def phys_write_bytes(self, phys, data):
        if not data:
            return
        self.ram[phys:phys + len(data)] = data
        first = phys >> PAGE_SHIFT
        last = (phys + len(data) - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self.page_versions[page] += 1
        watch = self.code_watch
        if watch is not None:
            watch.note_write(phys, len(data))

    # -- virtual access (used by the CPU) -------------------------------------

    def read(self, vaddr, size, user):
        vaddr &= 0xFFFFFFFF
        if (vaddr & 0xFFF) + size > PAGE_SIZE:  # split across pages
            value = 0
            for i in range(size):
                phys = self.translate((vaddr + i) & 0xFFFFFFFF, False, user)
                value |= self.phys_read(phys, 1) << (8 * i)
            return value
        phys = self.translate(vaddr, False, user)
        return self.phys_read(phys, size)

    def write(self, vaddr, size, value, user):
        vaddr &= 0xFFFFFFFF
        if (vaddr & 0xFFF) + size > PAGE_SIZE:
            for i in range(size):
                phys = self.translate((vaddr + i) & 0xFFFFFFFF, True, user)
                self.phys_write(phys, 1, (value >> (8 * i)) & 0xFF)
            return
        phys = self.translate(vaddr, True, user)
        self.phys_write(phys, size, value)


class PageTableBuilder:
    """Host-side helper that writes boot page tables into physical RAM.

    The simulated kernel receives control with paging already enabled
    (mirroring the situation after head.S on Linux): the kernel linear
    map ``KERNEL_BASE + phys -> phys`` is in place, built by this class.
    """

    def __init__(self, bus, table_phys_base):
        self.bus = bus
        self.next_free = table_phys_base
        self.pgdir = self._alloc_page()

    def _alloc_page(self):
        page = self.next_free
        self.next_free += PAGE_SIZE
        self.bus.ram[page:page + PAGE_SIZE] = b"\0" * PAGE_SIZE
        return page

    def map_page(self, vaddr, phys, user=False, writable=True):
        flags = PTE_PRESENT
        if writable:
            flags |= PTE_RW
        if user:
            flags |= PTE_USER
        pde_addr = self.pgdir + ((vaddr >> 22) << 2)
        pde = int.from_bytes(self.bus.ram[pde_addr:pde_addr + 4], "little")
        if not pde & PTE_PRESENT:
            table = self._alloc_page()
            # Leave PDEs maximally permissive; PTE bits gate access.
            pde = table | PTE_PRESENT | PTE_RW | PTE_USER
            self.bus.ram[pde_addr:pde_addr + 4] = pde.to_bytes(4, "little")
        table = pde & ~0xFFF
        pte_addr = table + (((vaddr >> PAGE_SHIFT) & 0x3FF) << 2)
        pte = phys | flags
        self.bus.ram[pte_addr:pte_addr + 4] = pte.to_bytes(4, "little")

    def map_range(self, vaddr, phys, length, user=False, writable=True):
        offset = 0
        while offset < length:
            self.map_page(vaddr + offset, phys + offset, user=user,
                          writable=writable)
            offset += PAGE_SIZE

    def activate(self):
        self.bus.set_cr3(self.pgdir)
        self.bus.paging_enabled = True
        return self.pgdir
