"""Tokenizer for MinC."""

import re


class LexError(Exception):
    """Raised on unrecognizable input."""


KEYWORDS = frozenset([
    "int", "const", "if", "else", "while", "do", "for", "return",
    "break", "continue", "asm", "void", "char",
])

# Longest-match-first operator list.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"'}


class Token:
    """A lexical token with source position for diagnostics."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind  # "num", "name", "kw", "op", "string", "eof"
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%s, %r, line %d)" % (self.kind, self.value, self.line)


def _unescape(body):
    out = []
    i = 0
    while i < len(body):
        char = body[i]
        if char == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def tokenize(source):
    """Tokenize MinC source into a list of :class:`Token` (ending in eof)."""
    tokens = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError("line %d: unexpected character %r"
                           % (line, source[pos]))
        text = match.group(0)
        line += text.count("\n")
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        start_line = line - text.count("\n")
        if match.lastgroup == "num":
            value = int(text, 16) if text.lower().startswith("0x") \
                else int(text)
            tokens.append(Token("num", value, start_line))
        elif match.lastgroup == "char":
            body = _unescape(text[1:-1])
            if len(body) != 1:
                raise LexError("line %d: bad character literal %s"
                               % (start_line, text))
            tokens.append(Token("num", ord(body), start_line))
        elif match.lastgroup == "string":
            tokens.append(Token("string", _unescape(text[1:-1]),
                                start_line))
        elif match.lastgroup == "name":
            kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, start_line))
        else:
            tokens.append(Token("op", text, start_line))
    tokens.append(Token("eof", None, line))
    return tokens
