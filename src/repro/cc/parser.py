"""Recursive-descent parser for MinC."""

from repro.cc import astnodes as ast
from repro.cc.lexer import tokenize


class ParseError(Exception):
    """Raised on syntactically invalid MinC."""


_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="])

# Binary operator precedence (higher binds tighter).
_BINARY_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            raise ParseError("line %d: expected %s, got %r"
                             % (actual.line, value or kind, actual.value))
        return token

    def error(self, message):
        raise ParseError("line %d: %s" % (self.peek().line, message))

    # -- top level --------------------------------------------------------

    def parse_program(self):
        decls = []
        while self.peek().kind != "eof":
            decls.append(self.parse_top_decl())
        return ast.Program(decls)

    def parse_top_decl(self):
        token = self.peek()
        if token.kind == "kw" and token.value == "const":
            return self.parse_const()
        if token.kind == "kw" and token.value in ("int", "void", "char"):
            self.next()
            name = self.expect("name").value
            if self.peek().kind == "op" and self.peek().value == "(":
                return self.parse_func(name, token.line)
            return self.parse_global_var(name, token.line)
        self.error("expected declaration, got %r" % (token.value,))

    def parse_const(self):
        line = self.expect("kw", "const").line
        name = self.expect("name").value
        self.expect("op", "=")
        value = self.parse_expr()
        self.expect("op", ";")
        return ast.ConstDecl(name, value, line)

    def parse_func(self, name, line):
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            while True:
                if self.peek().kind == "kw" and self.peek().value in (
                        "int", "char"):
                    self.next()
                    # allow pointer-ish spelling "int *p"
                    while self.accept("op", "*"):
                        pass
                if self.peek().kind == "kw" and self.peek().value == "void":
                    self.next()
                    break
                params.append(self.expect("name").value)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDef(name, params, body, line)

    def parse_global_var(self, name, line):
        array_size = None
        init = None
        if self.accept("op", "["):
            if self.peek().kind == "op" and self.peek().value == "]":
                array_size = -1  # inferred from initializer
            else:
                array_size = self.parse_expr()
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.accept("op", "{"):
                init = []
                if not self.accept("op", "}"):
                    while True:
                        init.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", "}")
            elif self.peek().kind == "string":
                init = ast.Str(self.next().value, line)
            else:
                init = self.parse_assignment()
        self.expect("op", ";")
        return ast.GlobalVar(name, array_size, init, line)

    # -- statements -------------------------------------------------------

    def parse_block(self):
        line = self.expect("op", "{").line
        stmts = []
        while not self.accept("op", "}"):
            if self.peek().kind == "eof":
                raise ParseError("line %d: unterminated block" % line)
            stmts.append(self.parse_stmt())
        return ast.Block(stmts, line)

    def parse_stmt(self):
        token = self.peek()
        if token.kind == "op" and token.value == "{":
            return self.parse_block()
        if token.kind == "kw":
            keyword = token.value
            if keyword in ("int", "char"):
                return self.parse_local_decl()
            if keyword == "if":
                return self.parse_if()
            if keyword == "while":
                return self.parse_while()
            if keyword == "do":
                return self.parse_do_while()
            if keyword == "for":
                return self.parse_for()
            if keyword == "return":
                self.next()
                expr = None
                if not (self.peek().kind == "op"
                        and self.peek().value == ";"):
                    expr = self.parse_expr()
                self.expect("op", ";")
                return ast.Return(expr, token.line)
            if keyword == "break":
                self.next()
                self.expect("op", ";")
                node = ast.Break()
                node.line = token.line
                return node
            if keyword == "continue":
                self.next()
                self.expect("op", ";")
                node = ast.Continue()
                node.line = token.line
                return node
            if keyword == "asm":
                self.next()
                self.expect("op", "(")
                text = self.expect("string").value
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.AsmStmt(text, token.line)
        if token.kind == "op" and token.value == ";":
            self.next()
            return ast.Block([], token.line)
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(expr, token.line)

    def parse_local_decl(self):
        line = self.next().line  # int/char
        while self.accept("op", "*"):
            pass
        name = self.expect("name").value
        array_size = None
        init = None
        if self.accept("op", "["):
            array_size = self.parse_expr()
            self.expect("op", "]")
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.LocalDecl(name, array_size, init, line)

    def parse_if(self):
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        els = None
        if self.accept("kw", "else"):
            els = self.parse_stmt()
        return ast.If(cond, then, els, line)

    def parse_while(self):
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(cond, body, line)

    def parse_do_while(self):
        line = self.expect("kw", "do").line
        body = self.parse_stmt()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body, cond, line)

    def parse_for(self):
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not (self.peek().kind == "op" and self.peek().value == ";"):
            init = self.parse_expr()
        self.expect("op", ";")
        cond = None
        if not (self.peek().kind == "op" and self.peek().value == ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        post = None
        if not (self.peek().kind == "op" and self.peek().value == ")"):
            post = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.For(init, cond, post, body, line)

    # -- expressions ------------------------------------------------------

    def parse_expr(self):
        expr = self.parse_assignment()
        while self.accept("op", ","):
            right = self.parse_assignment()
            expr = ast.Binary(",", expr, right, expr.line)
        return expr

    def parse_assignment(self):
        left = self.parse_ternary()
        token = self.peek()
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.Assign(token.value, left, value, token.line)
        return left

    def parse_ternary(self):
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_assignment()
            self.expect("op", ":")
            els = self.parse_assignment()
            return ast.Cond(cond, then, els, cond.line)
        return cond

    def parse_binary(self, min_prec):
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op":
                return left
            prec = _BINARY_PREC.get(token.value)
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(token.value, left, right, token.line)

    def parse_unary(self):
        token = self.peek()
        if token.kind == "op":
            if token.value in ("-", "!", "~"):
                self.next()
                return ast.Unary(token.value, self.parse_unary(), token.line)
            if token.value == "+":
                self.next()
                return self.parse_unary()
            if token.value == "*":
                self.next()
                return ast.Deref(self.parse_unary(), token.line)
            if token.value == "&":
                self.next()
                return ast.AddrOf(self.parse_unary(), token.line)
            if token.value in ("++", "--"):
                self.next()
                target = self.parse_unary()
                return ast.IncDec(token.value, target, False, token.line)
            if token.value == "(":
                self.next()
                expr = self.parse_expr()
                self.expect("op", ")")
                return self.parse_postfix(expr)
        if token.kind == "num":
            self.next()
            return self.parse_postfix(ast.Num(token.value, token.line))
        if token.kind == "string":
            self.next()
            return self.parse_postfix(ast.Str(token.value, token.line))
        if token.kind == "name":
            self.next()
            return self.parse_postfix(ast.Name(token.value, token.line))
        self.error("expected expression, got %r" % (token.value,))

    def parse_postfix(self, expr):
        while True:
            token = self.peek()
            if token.kind != "op":
                return expr
            if token.value == "(":
                self.next()
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                expr = ast.Call(expr, args, token.line)
            elif token.value == "[":
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(expr, index, token.line)
            elif token.value in ("++", "--"):
                self.next()
                expr = ast.IncDec(token.value, expr, True, token.line)
            else:
                return expr


def parse(source):
    """Parse MinC source text into an :class:`~repro.cc.astnodes.Program`."""
    return Parser(tokenize(source)).parse_program()
