"""MinC: a small C dialect compiled to IA-32-subset assembly.

The simulated kernel and the UnixBench-like workloads are written in MinC
rather than hand-rolled machine code so that the injected-error statistics
emerge from *compiler-shaped* instruction streams: natural mixes of
``mov``/``cmp``/``jcc``/``call``, short and near branches, ``test`` against
zero, and — crucially — ``BUG()`` assertions compiled to a conditional
branch over ``ud2``, the exact mechanism behind the paper's campaign-C
invalid-opcode dominance (Figure 6, Table 7 example 4).

Language summary (everything is a 32-bit word, as in B):

* declarations: ``int x;``, ``int x = e;``, ``int a[N];``, ``const K = e;``
* statements: ``if``/``else``, ``while``, ``do``/``while``, ``for``,
  ``return``, ``break``, ``continue``, blocks, ``asm("...");``
* expressions: C operator set (incl. ``?:``, ``&&``, ``||``, compound
  assignment, ``++``/``--``), word-indexed ``p[i]``, ``*p``, ``&x``
* builtins: ``BUG()``, ``ldb``/``stb`` (byte access), unsigned compares
  ``ult``/``ule``/``ugt``/``uge``, ``udiv``/``umod``, ``cli``/``sti``,
  ``rep_movsd``/``rep_stosd``, CR/DR/MSR access helpers
"""

from repro.cc.lexer import LexError, tokenize
from repro.cc.parser import ParseError, parse
from repro.cc.codegen import CodegenError, CodeGenerator
from repro.cc.compiler import CompileError, compile_single, compile_unit

__all__ = [
    "compile_single",
    "LexError",
    "tokenize",
    "ParseError",
    "parse",
    "CodegenError",
    "CodeGenerator",
    "CompileError",
    "compile_unit",
]
