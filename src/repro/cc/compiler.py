"""Compiler driver: MinC sources -> one assembly translation unit."""

from repro.cc.codegen import CodeGenerator, CodegenError
from repro.cc.lexer import LexError
from repro.cc.parser import ParseError, parse


class CompileError(Exception):
    """Wraps lexer/parser/codegen errors with the source-unit name."""


def compile_unit(sources, externs=()):
    """Compile MinC sources into one translation unit.

    Args:
        sources: list of ``(unit_name, subsystem, source_text)`` tuples.
            All sources share one global namespace (they are "linked"
            together), and each function is attributed to its source's
            subsystem for the paper's per-subsystem analyses.

        externs: names of symbols defined in hand-written assembly
            (entry stubs); they resolve as function addresses.

    Returns:
        :class:`~repro.cc.codegen.CompiledUnit` with ``.text`` and
        ``.data`` assembly strings.
    """
    units = []
    for unit_name, subsystem, text in sources:
        try:
            program = parse(text)
        except (LexError, ParseError) as exc:
            raise CompileError("%s: %s" % (unit_name, exc)) from exc
        units.append((program, subsystem))
    generator = CodeGenerator(externs=externs)
    try:
        return generator.compile_program(units)
    except CodegenError as exc:
        raise CompileError(str(exc)) from exc


def compile_single(source, subsystem="user", unit_name="<unit>", externs=()):
    """Convenience wrapper for compiling one source string."""
    return compile_unit([(unit_name, subsystem, source)], externs=externs)
