"""AST node classes for MinC (lightweight, slots-only)."""


class Node:
    """Base class: every node carries its source line."""

    __slots__ = ("line",)

    def __init__(self, line=0):
        self.line = line


# -- declarations ---------------------------------------------------------


class Program(Node):
    """A whole translation unit: a list of declarations."""

    __slots__ = ("decls",)

    def __init__(self, decls):
        super().__init__()
        self.decls = decls


class FuncDef(Node):
    """``int name(params) { body }``."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body, line):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body


class GlobalVar(Node):
    """Top-level variable/array with optional initializer."""

    __slots__ = ("name", "array_size", "init")

    def __init__(self, name, array_size, init, line):
        super().__init__(line)
        self.name = name
        self.array_size = array_size  # None for scalars
        self.init = init  # const expr, list of const exprs, or None


class ConstDecl(Node):
    """``const NAME = constant-expression;``."""

    __slots__ = ("name", "value")

    def __init__(self, name, value, line):
        super().__init__(line)
        self.name = name
        self.value = value


# -- statements -----------------------------------------------------------


class Block(Node):
    """``{ statements... }``."""

    __slots__ = ("stmts",)

    def __init__(self, stmts, line):
        super().__init__(line)
        self.stmts = stmts


class LocalDecl(Node):
    """``int name[size] = init;`` inside a function."""

    __slots__ = ("name", "array_size", "init")

    def __init__(self, name, array_size, init, line):
        super().__init__(line)
        self.name = name
        self.array_size = array_size
        self.init = init


class If(Node):
    """``if (cond) then [else els]``."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els, line):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class While(Node):
    """``while (cond) body``."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    """``do body while (cond);``."""

    __slots__ = ("body", "cond")

    def __init__(self, body, cond, line):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Node):
    """``for (init; cond; post) body``."""

    __slots__ = ("init", "cond", "post", "body")

    def __init__(self, init, cond, post, body, line):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.post = post
        self.body = body


class Return(Node):
    """``return [expr];``."""

    __slots__ = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


class Break(Node):
    """``break;``."""

    __slots__ = ()


class Continue(Node):
    """``continue;``."""

    __slots__ = ()


class ExprStmt(Node):
    """An expression evaluated for effect."""

    __slots__ = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


class AsmStmt(Node):
    """``asm("...")`` raw assembly passthrough."""

    __slots__ = ("text",)

    def __init__(self, text, line):
        super().__init__(line)
        self.text = text


# -- expressions ----------------------------------------------------------


class Num(Node):
    """Integer literal (already an int value)."""

    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class Str(Node):
    """String literal; its value is the pooled string's address."""

    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class Name(Node):
    """Identifier reference."""

    __slots__ = ("name",)

    def __init__(self, name, line=0):
        super().__init__(line)
        self.name = name


class Unary(Node):
    """``-e``, ``!e`` or ``~e``."""

    __slots__ = ("op", "expr")

    def __init__(self, op, expr, line=0):
        super().__init__(line)
        self.op = op  # "-", "!", "~"
        self.expr = expr


class Deref(Node):
    """``*e`` (word load, or store as an lvalue)."""

    __slots__ = ("expr",)

    def __init__(self, expr, line=0):
        super().__init__(line)
        self.expr = expr


class AddrOf(Node):
    """``&lvalue``."""

    __slots__ = ("expr",)

    def __init__(self, expr, line=0):
        super().__init__(line)
        self.expr = expr


class Binary(Node):
    """Infix operation ``left op right``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, line=0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Assign(Node):
    """``target op= value`` (op may be plain ``=``)."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op, target, value, line=0):
        super().__init__(line)
        self.op = op  # "=", "+=", ...
        self.target = target
        self.value = value


class Cond(Node):
    """``cond ? then : els``."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els, line=0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class Call(Node):
    """``func(args...)`` (func may be any expression)."""

    __slots__ = ("func", "args")

    def __init__(self, func, args, line=0):
        super().__init__(line)
        self.func = func  # Name or expression (indirect call)
        self.args = args


class Index(Node):
    """``base[index]`` — word at ``base + 4*index``."""

    __slots__ = ("base", "index")

    def __init__(self, base, index, line=0):
        super().__init__(line)
        self.base = base
        self.index = index


class IncDec(Node):
    """``++x``/``x++``/``--x``/``x--``."""

    __slots__ = ("op", "target", "is_post")

    def __init__(self, op, target, is_post, line=0):
        super().__init__(line)
        self.op = op  # "++" or "--"
        self.target = target
        self.is_post = is_post
