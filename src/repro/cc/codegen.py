"""MinC -> IA-32-subset assembly code generator.

Calling convention (cdecl-like): arguments pushed right-to-left, caller
cleans the stack, result in ``eax``.  All registers except ``ebp``/``esp``
are caller-clobbered.  Frame layout: ``[ebp+8+4i]`` parameters,
``[ebp-4k]`` locals.

The generator favours the instruction shapes a period compiler would
emit — ``xor reg, reg`` to zero, ``test eax, eax`` against zero,
``cmp``+``jcc`` fused conditions, short forward branches around ``ud2``
for ``BUG()`` — because those shapes are what the paper's bit-flip
campaigns interact with.
"""

from repro.cc import astnodes as ast


class CodegenError(Exception):
    """Raised for semantic errors (undefined names, bad lvalues...)."""


_SIGNED_SET = {"==": "e", "!=": "ne", "<": "l", ">": "g",
               "<=": "le", ">=": "ge"}
_SIGNED_JUMP_FALSE = {"==": "jne", "!=": "je", "<": "jge", ">": "jle",
                      "<=": "jg", ">=": "jl"}
_SIGNED_JUMP_TRUE = {"==": "je", "!=": "jne", "<": "jl", ">": "jg",
                     "<=": "jle", ">=": "jge"}
_UNSIGNED_CMP = {"ult": ("b", "jb", "jae"), "ule": ("be", "jbe", "ja"),
                 "ugt": ("a", "ja", "jbe"), "uge": ("ae", "jae", "jb")}
_SIMPLE_BINOP = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor"}

# Names reserved for builtins (not callable as ordinary functions).
BUILTIN_NAMES = frozenset([
    "BUG", "cli", "sti", "halt", "ldb", "stb", "ld", "st",
    "ult", "ule", "ugt", "uge", "udiv", "umod", "asr",
    "rep_movsd", "rep_movsb", "rep_stosd",
    "read_cr2", "read_cr3", "write_cr3", "flush_tlb", "invlpg",
    "set_esp0", "set_idt", "set_dr", "get_dr", "rdtsc_lo",
    "ret_addr", "syscall",
])


class VarInfo:
    __slots__ = ("kind", "offset", "name", "is_array")

    def __init__(self, kind, offset=0, name=None, is_array=False):
        self.kind = kind  # "local", "param", "global", "func", "const"
        self.offset = offset
        self.name = name
        self.is_array = is_array


class CompiledUnit:
    """Result of compiling one MinC translation unit."""

    def __init__(self, text, data, functions):
        self.text = text  # assembly for the text section
        self.data = data  # assembly for the data section
        self.functions = functions  # [(name, subsystem)]


class CodeGenerator:
    """Compile a merged MinC program to assembly text."""

    def __init__(self, externs=()):
        #: symbols defined outside MinC (assembly stubs); resolve as
        #: function addresses and direct-call targets.
        self.externs = frozenset(externs)
        self.consts = {}
        self.globals = {}  # name -> VarInfo(kind="global")
        self.funcs = {}    # name -> subsystem
        self.text = []
        self.data = []
        self.strings = {}
        self.label_counter = 0
        # per-function state
        self.locals = None
        self.frame_bytes = 0
        self.break_labels = []
        self.continue_labels = []
        self.epilogue_label = None
        self.cold_blocks = []

    # -- helpers -----------------------------------------------------------

    def emit(self, line):
        self.text.append("    " + line)

    def emit_label(self, label):
        self.text.append(label + ":")

    def new_label(self):
        """A fresh local label (.L<n>)."""
        self.label_counter += 1
        return ".L%d" % self.label_counter

    def error(self, node, message):
        raise CodegenError("line %d: %s" % (getattr(node, "line", 0),
                                            message))

    def intern_string(self, value):
        """Pool a string literal; returns its data label."""
        label = self.strings.get(value)
        if label is None:
            label = ".Lstr%d" % len(self.strings)
            self.strings[value] = label
        return label

    # -- constant evaluation -------------------------------------------------

    def const_value(self, node):
        """Evaluate a compile-time constant; None if not constant."""
        if isinstance(node, ast.Num):
            return node.value & 0xFFFFFFFF
        if isinstance(node, ast.Name):
            return self.consts.get(node.name)
        if isinstance(node, ast.Unary):
            inner = self.const_value(node.expr)
            if inner is None:
                return None
            if node.op == "-":
                return (-inner) & 0xFFFFFFFF
            if node.op == "~":
                return (~inner) & 0xFFFFFFFF
            if node.op == "!":
                return 0 if inner else 1
        if isinstance(node, ast.Binary):
            left = self.const_value(node.left)
            right = self.const_value(node.right)
            if left is None or right is None:
                return None
            return _fold(node.op, left, right)
        return None

    # -- top level -----------------------------------------------------------

    def compile_program(self, units):
        """Compile merged units: list of (program_ast, subsystem)."""
        # Pass 1: collect symbols so cross-references resolve.
        for program, subsystem in units:
            for decl in program.decls:
                if isinstance(decl, ast.ConstDecl):
                    value = self.const_value(decl.value)
                    if value is None:
                        self.error(decl, "const %r is not a compile-time "
                                   "constant" % decl.name)
                    self.consts[decl.name] = value
                elif isinstance(decl, ast.FuncDef):
                    if decl.name in self.funcs:
                        self.error(decl, "duplicate function %r" % decl.name)
                    self.funcs[decl.name] = subsystem
                elif isinstance(decl, ast.GlobalVar):
                    info = VarInfo("global", name=decl.name,
                                   is_array=decl.array_size is not None)
                    self.globals[decl.name] = info
        # Pass 2: emit.
        for program, subsystem in units:
            for decl in program.decls:
                if isinstance(decl, ast.FuncDef):
                    self.compile_func(decl, subsystem)
                elif isinstance(decl, ast.GlobalVar):
                    self.emit_global(decl)
        for value, label in self.strings.items():
            self.data.append("%s:" % label)
            self.data.append('    .asciz "%s"' % _escape(value))
        functions = [(name, sub) for name, sub in self.funcs.items()]
        return CompiledUnit("\n".join(self.text) + "\n",
                            "\n".join(self.data) + "\n", functions)

    def emit_global(self, decl):
        """Emit a global scalar/array (with initializers) into .data."""
        self.data.append(".align 4")
        self.data.append(".global %s" % decl.name)
        if decl.array_size is None:
            value = 0
            if decl.init is not None:
                value = self.const_value(decl.init)
                if value is None:
                    symbol = self._init_symbol(decl.init)
                    if symbol is None:
                        self.error(decl, "global initializer for %r is not "
                                   "constant" % decl.name)
                    self.data.append("    .long %s" % symbol)
                    return
            self.data.append("    .long %d" % value)
            return
        size = None
        if decl.array_size != -1:
            size = self.const_value(decl.array_size)
            if size is None:
                self.error(decl, "array size for %r is not constant"
                           % decl.name)
        if isinstance(decl.init, ast.Str):
            text = decl.init.value
            self.data.append('    .asciz "%s"' % _escape(text))
            used = len(text) + 1
            if size is not None and size * 4 > used:
                self.data.append("    .space %d" % (size * 4 - used))
            return
        if decl.init is not None:
            entries = []
            for item in decl.init:
                value = self.const_value(item)
                if value is not None:
                    entries.append(str(value))
                    continue
                symbol = self._init_symbol(item)
                if symbol is None:
                    self.error(decl, "array initializer for %r is not "
                               "constant" % decl.name)
                entries.append(symbol)
            self.data.append("    .long " + ", ".join(entries))
            remaining = (size or len(entries)) - len(entries)
            if remaining > 0:
                self.data.append("    .space %d" % (remaining * 4))
            return
        if size is None:
            self.error(decl, "array %r needs a size or initializer"
                       % decl.name)
        self.data.append("    .space %d" % (size * 4))

    def _init_symbol(self, node):
        if isinstance(node, ast.Name) and (node.name in self.funcs
                                           or node.name in self.globals
                                           or node.name in self.externs):
            return node.name
        if isinstance(node, ast.Str):
            return self.intern_string(node.value)
        if isinstance(node, ast.AddrOf) and isinstance(node.expr, ast.Name):
            target = node.expr.name
            if target in self.globals:
                return target
        return None

    # -- functions -----------------------------------------------------------

    def compile_func(self, decl, subsystem):
        """Compile one function: prologue, body, epilogue, cold blocks."""
        self.locals = {}
        self.frame_bytes = 0
        self.break_labels = []
        self.continue_labels = []
        self.cold_blocks = []
        self.epilogue_label = self.new_label()
        for i, param in enumerate(decl.params):
            if param in self.locals:
                self.error(decl, "duplicate parameter %r" % param)
            self.locals[param] = VarInfo("param", offset=8 + 4 * i)

        body_mark = len(self.text)
        self.compile_stmt(decl.body)

        body = self.text[body_mark:]
        del self.text[body_mark:]
        self.text.append(".func %s %s" % (decl.name, subsystem))
        self.emit_label(decl.name)
        self.emit("push ebp")
        self.emit("mov ebp, esp")
        if self.frame_bytes:
            self.emit("sub esp, %d" % self.frame_bytes)
        self.text.extend(body)
        self.emit_label(self.epilogue_label)
        self.emit("leave")
        self.emit("ret")
        # Cold out-of-line blocks (error returns / early exits), placed
        # after the hot body like a period compiler's .text.unlikely:
        # the conditional branches that reach them are NOT taken on the
        # common path — the shape behind the paper's Table 6 analysis.
        index = 0
        while index < len(self.cold_blocks):
            label, stmt, breaks, continues = self.cold_blocks[index]
            index += 1
            saved_breaks = self.break_labels
            saved_continues = self.continue_labels
            self.break_labels = breaks
            self.continue_labels = continues
            self.emit_label(label)
            self.compile_stmt(stmt)
            self.break_labels = saved_breaks
            self.continue_labels = saved_continues
        self.text.append(".endfunc")
        self.locals = None

    def _alloc_local(self, name, words, node, is_array=False):
        if name in self.locals:
            self.error(node, "duplicate local %r" % name)
        self.frame_bytes += 4 * words
        info = VarInfo("local", offset=-self.frame_bytes,
                       is_array=is_array)
        self.locals[name] = info
        return info

    # -- statements ------------------------------------------------------------

    def compile_stmt(self, node):
        if isinstance(node, ast.Block):
            for stmt in node.stmts:
                self.compile_stmt(stmt)
        elif isinstance(node, ast.LocalDecl):
            words = 1
            if node.array_size is not None:
                words = self.const_value(node.array_size)
                if words is None or words <= 0:
                    self.error(node, "bad array size for %r" % node.name)
            info = self._alloc_local(node.name, words, node,
                                     is_array=node.array_size is not None)
            if node.init is not None:
                self.compile_expr(node.init)
                self.emit("mov [ebp%+d], eax" % info.offset)
        elif isinstance(node, ast.ExprStmt):
            self.compile_expr(node.expr)
        elif isinstance(node, ast.If):
            self.compile_if(node)
        elif isinstance(node, ast.While):
            self.compile_while(node)
        elif isinstance(node, ast.DoWhile):
            self.compile_do_while(node)
        elif isinstance(node, ast.For):
            self.compile_for(node)
        elif isinstance(node, ast.Return):
            if node.expr is not None:
                self.compile_expr(node.expr)
            self.emit("jmp %s" % self.epilogue_label)
        elif isinstance(node, ast.Break):
            if not self.break_labels:
                self.error(node, "break outside loop")
            self.emit("jmp %s" % self.break_labels[-1])
        elif isinstance(node, ast.Continue):
            if not self.continue_labels:
                self.error(node, "continue outside loop")
            self.emit("jmp %s" % self.continue_labels[-1])
        elif isinstance(node, ast.AsmStmt):
            for line in node.text.split("\n"):
                if line.strip():
                    self.emit(line.strip())
        else:
            self.error(node, "cannot compile statement %r" % node)

    @staticmethod
    def _is_cold_exit(stmt):
        """True for bodies compiled out of line (no fall-through)."""
        if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Block) and stmt.stmts:
            last = stmt.stmts[-1]
            if not isinstance(last, (ast.Return, ast.Break,
                                     ast.Continue)):
                return False
            return all(not isinstance(s, ast.LocalDecl)
                       for s in stmt.stmts)
        return False

    def compile_if(self, node):
        if node.els is None and self._is_cold_exit(node.then):
            cold = self.new_label()
            self.branch_if_true(node.cond, cold)
            self.cold_blocks.append((cold, node.then,
                                     list(self.break_labels),
                                     list(self.continue_labels)))
            return
        else_label = self.new_label()
        self.branch_if_false(node.cond, else_label)
        self.compile_stmt(node.then)
        if node.els is not None:
            end_label = self.new_label()
            self.emit("jmp %s" % end_label)
            self.emit_label(else_label)
            self.compile_stmt(node.els)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def compile_while(self, node):
        top = self.new_label()
        end = self.new_label()
        self.emit_label(top)
        self.branch_if_false(node.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(top)
        self.compile_stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit("jmp %s" % top)
        self.emit_label(end)

    def compile_do_while(self, node):
        top = self.new_label()
        cond_label = self.new_label()
        end = self.new_label()
        self.emit_label(top)
        self.break_labels.append(end)
        self.continue_labels.append(cond_label)
        self.compile_stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit_label(cond_label)
        self.branch_if_true(node.cond, top)
        self.emit_label(end)

    def compile_for(self, node):
        top = self.new_label()
        post_label = self.new_label()
        end = self.new_label()
        if node.init is not None:
            self.compile_expr(node.init)
        self.emit_label(top)
        if node.cond is not None:
            self.branch_if_false(node.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(post_label)
        self.compile_stmt(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit_label(post_label)
        if node.post is not None:
            self.compile_expr(node.post)
        self.emit("jmp %s" % top)
        self.emit_label(end)

    # -- branches ----------------------------------------------------------------

    def _compare_sides(self, left, right):
        """Leave left in eax, right in ecx (immediate-aware)."""
        rconst = self.const_value(right)
        if rconst is not None:
            self.compile_expr(left)
            if rconst == 0:
                self.emit("test eax, eax")
            else:
                self.emit("cmp eax, %d" % _s32(rconst))
            return True
        self.compile_expr(left)
        self.emit("push eax")
        self.compile_expr(right)
        self.emit("mov ecx, eax")
        self.emit("pop eax")
        self.emit("cmp eax, ecx")
        return False

    def branch_if_false(self, node, label):
        value = self.const_value(node)
        if value is not None:
            if value == 0:
                self.emit("jmp %s" % label)
            return
        if isinstance(node, ast.Unary) and node.op == "!":
            self.branch_if_true(node.expr, label)
            return
        if isinstance(node, ast.Binary):
            if node.op == "&&":
                self.branch_if_false(node.left, label)
                self.branch_if_false(node.right, label)
                return
            if node.op == "||":
                skip = self.new_label()
                self.branch_if_true(node.left, skip)
                self.branch_if_false(node.right, label)
                self.emit_label(skip)
                return
            if node.op in _SIGNED_JUMP_FALSE:
                self._compare_sides(node.left, node.right)
                self.emit("%s %s" % (_SIGNED_JUMP_FALSE[node.op], label))
                return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.name in _UNSIGNED_CMP:
            _, jtrue, jfalse = _UNSIGNED_CMP[node.func.name]
            self._compare_sides(node.args[0], node.args[1])
            self.emit("%s %s" % (jfalse, label))
            return
        self.compile_expr(node)
        self.emit("test eax, eax")
        self.emit("je %s" % label)

    def branch_if_true(self, node, label):
        value = self.const_value(node)
        if value is not None:
            if value != 0:
                self.emit("jmp %s" % label)
            return
        if isinstance(node, ast.Unary) and node.op == "!":
            self.branch_if_false(node.expr, label)
            return
        if isinstance(node, ast.Binary):
            if node.op == "&&":
                skip = self.new_label()
                self.branch_if_false(node.left, skip)
                self.branch_if_true(node.right, label)
                self.emit_label(skip)
                return
            if node.op == "||":
                self.branch_if_true(node.left, label)
                self.branch_if_true(node.right, label)
                return
            if node.op in _SIGNED_JUMP_TRUE:
                self._compare_sides(node.left, node.right)
                self.emit("%s %s" % (_SIGNED_JUMP_TRUE[node.op], label))
                return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.name in _UNSIGNED_CMP:
            _, jtrue, _ = _UNSIGNED_CMP[node.func.name]
            self._compare_sides(node.args[0], node.args[1])
            self.emit("%s %s" % (jtrue, label))
            return
        self.compile_expr(node)
        self.emit("test eax, eax")
        self.emit("jne %s" % label)

    # -- expressions ----------------------------------------------------------------

    def lookup(self, name, node):
        if self.locals is not None and name in self.locals:
            return self.locals[name]
        if name in self.consts:
            return VarInfo("const", offset=self.consts[name])
        if name in self.globals:
            return self.globals[name]
        if name in self.funcs or name in self.externs:
            return VarInfo("func", name=name)
        self.error(node, "undefined name %r" % name)

    def compile_expr(self, node):
        """Evaluate *node* into eax."""
        value = self.const_value(node)
        if value is not None:
            if value == 0:
                self.emit("xor eax, eax")
            else:
                self.emit("mov eax, %d" % _s32(value))
            return
        if isinstance(node, ast.Name):
            info = self.lookup(node.name, node)
            if info.kind == "local" or info.kind == "param":
                if info.is_array:
                    self.emit("lea eax, [ebp%+d]" % info.offset)
                else:
                    self.emit("mov eax, [ebp%+d]" % info.offset)
            elif info.kind == "global":
                if info.is_array:
                    self.emit("mov eax, %s" % node.name)
                else:
                    self.emit("mov eax, [%s]" % node.name)
            elif info.kind == "func":
                self.emit("mov eax, %s" % node.name)
            else:
                raise AssertionError
            return
        if isinstance(node, ast.Str):
            self.emit("mov eax, %s" % self.intern_string(node.value))
            return
        if isinstance(node, ast.Unary):
            self.compile_expr(node.expr)
            if node.op == "-":
                self.emit("neg eax")
            elif node.op == "~":
                self.emit("not eax")
            elif node.op == "!":
                self.emit("test eax, eax")
                self.emit("sete al")
                self.emit("movzx eax, al")
            return
        if isinstance(node, ast.Deref):
            self.compile_expr(node.expr)
            self.emit("mov eax, [eax]")
            return
        if isinstance(node, ast.AddrOf):
            self.compile_addr(node.expr)
            return
        if isinstance(node, ast.Index):
            self.compile_expr(node.base)
            self.emit("push eax")
            self.compile_expr(node.index)
            self.emit("mov ecx, eax")
            self.emit("pop eax")
            self.emit("mov eax, [eax+ecx*4]")
            return
        if isinstance(node, ast.Binary):
            self.compile_binary(node)
            return
        if isinstance(node, ast.Assign):
            self.compile_assign(node)
            return
        if isinstance(node, ast.IncDec):
            self.compile_incdec(node)
            return
        if isinstance(node, ast.Cond):
            else_label = self.new_label()
            end_label = self.new_label()
            self.branch_if_false(node.cond, else_label)
            self.compile_expr(node.then)
            self.emit("jmp %s" % end_label)
            self.emit_label(else_label)
            self.compile_expr(node.els)
            self.emit_label(end_label)
            return
        if isinstance(node, ast.Call):
            self.compile_call(node)
            return
        self.error(node, "cannot compile expression %r" % node)

    def compile_binary(self, node):
        op = node.op
        if op == ",":
            self.compile_expr(node.left)
            self.compile_expr(node.right)
            return
        if op in ("&&", "||"):
            false_label = self.new_label()
            end_label = self.new_label()
            self.branch_if_false(node, false_label)
            self.emit("mov eax, 1")
            self.emit("jmp %s" % end_label)
            self.emit_label(false_label)
            self.emit("xor eax, eax")
            self.emit_label(end_label)
            return
        if op in _SIGNED_SET:
            self._compare_sides(node.left, node.right)
            self.emit("set%s al" % _SIGNED_SET[op])
            self.emit("movzx eax, al")
            return
        rconst = self.const_value(node.right)
        if rconst is not None and op in _SIMPLE_BINOP:
            self.compile_expr(node.left)
            self.emit("%s eax, %d" % (_SIMPLE_BINOP[op], _s32(rconst)))
            return
        if rconst is not None and op in ("<<", ">>"):
            self.compile_expr(node.left)
            # ">>" is a LOGICAL shift: MinC values are untyped 32-bit
            # words and the kernel shifts addresses constantly.  Use the
            # asr() builtin for the rare arithmetic shift.
            mnemonic = "shl" if op == "<<" else "shr"
            self.emit("%s eax, %d" % (mnemonic, rconst & 31))
            return
        if rconst is not None and op == "*":
            self.compile_expr(node.left)
            self.emit("imul eax, eax, %d" % _s32(rconst))
            return
        self.compile_expr(node.left)
        self.emit("push eax")
        self.compile_expr(node.right)
        self.emit("mov ecx, eax")
        self.emit("pop eax")
        self._binop_regs(op, node)

    def _binop_regs(self, op, node):
        """eax = eax <op> ecx."""
        if op in _SIMPLE_BINOP:
            self.emit("%s eax, ecx" % _SIMPLE_BINOP[op])
        elif op == "*":
            self.emit("imul eax, ecx")
        elif op == "/":
            self.emit("cdq")
            self.emit("idiv ecx")
        elif op == "%":
            self.emit("cdq")
            self.emit("idiv ecx")
            self.emit("mov eax, edx")
        elif op == "<<":
            self.emit("shl eax, cl")
        elif op == ">>":
            self.emit("shr eax, cl")
        else:
            self.error(node, "unsupported operator %r" % op)

    # -- lvalues ---------------------------------------------------------------

    def compile_addr(self, node):
        """Evaluate the address of an lvalue into eax."""
        if isinstance(node, ast.Name):
            info = self.lookup(node.name, node)
            if info.kind in ("local", "param"):
                self.emit("lea eax, [ebp%+d]" % info.offset)
            elif info.kind == "global":
                self.emit("mov eax, %s" % node.name)
            elif info.kind == "func":
                self.emit("mov eax, %s" % node.name)
            else:
                self.error(node, "cannot take address of %r" % node.name)
            return
        if isinstance(node, ast.Deref):
            self.compile_expr(node.expr)
            return
        if isinstance(node, ast.Index):
            self.compile_expr(node.base)
            self.emit("push eax")
            self.compile_expr(node.index)
            self.emit("mov ecx, eax")
            self.emit("pop eax")
            self.emit("lea eax, [eax+ecx*4]")
            return
        self.error(node, "expression is not an lvalue")

    def compile_assign(self, node):
        target = node.target
        # Fast paths for scalar names.
        if isinstance(target, ast.Name):
            info = self.lookup(target.name, target)
            if info.kind in ("local", "param") and not info.is_array:
                slot = "[ebp%+d]" % info.offset
            elif info.kind == "global" and not info.is_array:
                slot = "[%s]" % target.name
            else:
                slot = None
            if slot is not None:
                if node.op == "=":
                    self.compile_expr(node.value)
                    self.emit("mov %s, eax" % slot)
                    return
                self.compile_expr(node.value)
                self.emit("mov ecx, eax")
                self.emit("mov eax, %s" % slot)
                self._binop_regs(node.op[:-1], node)
                self.emit("mov %s, eax" % slot)
                return
        # General memory path.
        self.compile_addr(target)
        self.emit("push eax")
        self.compile_expr(node.value)
        if node.op == "=":
            self.emit("pop ecx")
            self.emit("mov [ecx], eax")
            return
        self.emit("mov ecx, eax")
        self.emit("pop edx")
        self.emit("push edx")
        self.emit("mov eax, [edx]")
        self._binop_regs(node.op[:-1], node)
        self.emit("pop ecx")
        self.emit("mov [ecx], eax")

    def compile_incdec(self, node):
        mnemonic = "inc" if node.op == "++" else "dec"
        target = node.target
        if isinstance(target, ast.Name):
            info = self.lookup(target.name, target)
            if info.kind in ("local", "param") and not info.is_array:
                slot = "dword [ebp%+d]" % info.offset
            elif info.kind == "global" and not info.is_array:
                slot = "dword [%s]" % target.name
            else:
                slot = None
            if slot is not None:
                if node.is_post:
                    self.emit("mov eax, %s" % slot.split(" ", 1)[1])
                    self.emit("%s %s" % (mnemonic, slot))
                else:
                    self.emit("%s %s" % (mnemonic, slot))
                    self.emit("mov eax, %s" % slot.split(" ", 1)[1])
                return
        self.compile_addr(target)
        self.emit("mov edx, eax")
        if node.is_post:
            self.emit("mov eax, [edx]")
            self.emit("%s dword [edx]" % mnemonic)
        else:
            self.emit("%s dword [edx]" % mnemonic)
            self.emit("mov eax, [edx]")

    # -- calls and builtins -------------------------------------------------------

    def compile_call(self, node):
        if isinstance(node.func, ast.Name):
            name = node.func.name
            if name in BUILTIN_NAMES:
                self.compile_builtin(name, node)
                return
            if name in self.funcs or name in self.externs:
                for arg in reversed(node.args):
                    self.compile_expr(arg)
                    self.emit("push eax")
                self.emit("call %s" % name)
                if node.args:
                    self.emit("add esp, %d" % (4 * len(node.args)))
                return
        # Indirect call through a value.
        for arg in reversed(node.args):
            self.compile_expr(arg)
            self.emit("push eax")
        self.compile_expr(node.func)
        self.emit("call eax")
        if node.args:
            self.emit("add esp, %d" % (4 * len(node.args)))

    def _expect_args(self, node, count):
        if len(node.args) != count:
            self.error(node, "builtin expects %d argument(s), got %d"
                       % (count, len(node.args)))

    def compile_builtin(self, name, node):
        if name == "BUG":
            self._expect_args(node, 0)
            self.emit("ud2")
            return
        if name == "cli":
            self._expect_args(node, 0)
            self.emit("cli")
            return
        if name == "sti":
            self._expect_args(node, 0)
            self.emit("sti")
            return
        if name == "halt":
            self._expect_args(node, 0)
            self.emit("hlt")
            return
        if name == "ldb":
            self._expect_args(node, 1)
            self.compile_expr(node.args[0])
            self.emit("movzx eax, byte [eax]")
            return
        if name == "stb":
            self._expect_args(node, 2)
            self.compile_expr(node.args[0])
            self.emit("push eax")
            self.compile_expr(node.args[1])
            self.emit("pop ecx")
            self.emit("movb [ecx], al")
            return
        if name == "ld":
            self._expect_args(node, 1)
            self.compile_expr(node.args[0])
            self.emit("mov eax, [eax]")
            return
        if name == "st":
            self._expect_args(node, 2)
            self.compile_expr(node.args[0])
            self.emit("push eax")
            self.compile_expr(node.args[1])
            self.emit("pop ecx")
            self.emit("mov [ecx], eax")
            return
        if name in _UNSIGNED_CMP:
            self._expect_args(node, 2)
            setcc, _, _ = _UNSIGNED_CMP[name]
            self._compare_sides(node.args[0], node.args[1])
            self.emit("set%s al" % setcc)
            self.emit("movzx eax, al")
            return
        if name == "asr":
            self._expect_args(node, 2)
            shift = self.const_value(node.args[1])
            if shift is not None:
                self.compile_expr(node.args[0])
                self.emit("sar eax, %d" % (shift & 31))
                return
            self.compile_expr(node.args[0])
            self.emit("push eax")
            self.compile_expr(node.args[1])
            self.emit("mov ecx, eax")
            self.emit("pop eax")
            self.emit("sar eax, cl")
            return
        if name in ("udiv", "umod"):
            self._expect_args(node, 2)
            self.compile_expr(node.args[0])
            self.emit("push eax")
            self.compile_expr(node.args[1])
            self.emit("mov ecx, eax")
            self.emit("pop eax")
            self.emit("xor edx, edx")
            self.emit("div ecx")
            if name == "umod":
                self.emit("mov eax, edx")
            return
        if name in ("rep_movsd", "rep_movsb"):
            self._expect_args(node, 3)
            self.compile_expr(node.args[0])
            self.emit("push eax")
            self.compile_expr(node.args[1])
            self.emit("push eax")
            self.compile_expr(node.args[2])
            self.emit("mov ecx, eax")
            self.emit("pop esi")
            self.emit("pop edi")
            self.emit("cld")
            self.emit("rep %s" % ("movsd" if name == "rep_movsd"
                                  else "movsb"))
            return
        if name == "rep_stosd":
            self._expect_args(node, 3)
            self.compile_expr(node.args[0])
            self.emit("push eax")
            self.compile_expr(node.args[1])
            self.emit("push eax")
            self.compile_expr(node.args[2])
            self.emit("mov ecx, eax")
            self.emit("pop eax")
            self.emit("pop edi")
            self.emit("cld")
            self.emit("rep stosd")
            return
        if name == "read_cr2":
            self._expect_args(node, 0)
            self.emit("mov eax, cr2")
            return
        if name == "read_cr3":
            self._expect_args(node, 0)
            self.emit("mov eax, cr3")
            return
        if name == "write_cr3":
            self._expect_args(node, 1)
            self.compile_expr(node.args[0])
            self.emit("mov cr3, eax")
            return
        if name == "flush_tlb":
            self._expect_args(node, 0)
            self.emit("mov eax, cr3")
            self.emit("mov cr3, eax")
            return
        if name == "invlpg":
            self._expect_args(node, 1)
            self.compile_expr(node.args[0])
            self.emit("invlpg [eax]")
            return
        if name == "set_esp0":
            self._expect_args(node, 1)
            self.compile_expr(node.args[0])
            self.emit("mov ecx, 0x175")
            self.emit("wrmsr")
            return
        if name == "set_idt":
            self._expect_args(node, 1)
            self.compile_expr(node.args[0])
            self.emit("mov ecx, 0x176")
            self.emit("wrmsr")
            return
        if name == "set_dr":
            self._expect_args(node, 2)
            index = self.const_value(node.args[0])
            if index is None or not 0 <= index <= 7:
                self.error(node, "set_dr needs a constant register index")
            self.compile_expr(node.args[1])
            self.emit("mov dr%d, eax" % index)
            return
        if name == "get_dr":
            self._expect_args(node, 1)
            index = self.const_value(node.args[0])
            if index is None or not 0 <= index <= 7:
                self.error(node, "get_dr needs a constant register index")
            self.emit("mov eax, dr%d" % index)
            return
        if name == "rdtsc_lo":
            self._expect_args(node, 0)
            self.emit("rdtsc")
            return
        if name == "ret_addr":
            self._expect_args(node, 0)
            self.emit("mov eax, [ebp+4]")
            return
        if name == "syscall":
            if not 1 <= len(node.args) <= 5:
                self.error(node, "syscall takes 1-5 arguments")
            for arg in node.args:
                self.compile_expr(arg)
                self.emit("push eax")
            regs = ["eax", "ebx", "ecx", "edx", "esi"]
            for reg in reversed(regs[:len(node.args)]):
                self.emit("pop %s" % reg)
            self.emit("int 0x80")
            return
        self.error(node, "unhandled builtin %r" % name)


def _fold(op, left, right):
    mask = 0xFFFFFFFF
    sl = left - (1 << 32) if left >> 31 else left
    sr = right - (1 << 32) if right >> 31 else right
    if op == "+":
        return (left + right) & mask
    if op == "-":
        return (left - right) & mask
    if op == "*":
        return (left * right) & mask
    if op == "/":
        return int(sl / sr) & mask if sr else None
    if op == "%":
        return (sl - int(sl / sr) * sr) & mask if sr else None
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return (left << (right & 31)) & mask
    if op == ">>":
        return (left >> (right & 31)) & mask
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if sl < sr else 0
    if op == ">":
        return 1 if sl > sr else 0
    if op == "<=":
        return 1 if sl <= sr else 0
    if op == ">=":
        return 1 if sl >= sr else 0
    if op == "&&":
        return 1 if left and right else 0
    if op == "||":
        return 1 if left or right else 0
    return None


def _s32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >> 31 else value


def _escape(text):
    return text.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r") \
        .replace("\0", "\\0")
