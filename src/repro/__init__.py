"""linux-sim-fi: reproduction of "Characterization of Linux Kernel
Behavior under Errors" (Gu, Kalbarczyk, Iyer, Yang — DSN 2003).

Subpackages, bottom-up:

- ``repro.isa`` / ``repro.cpu`` — IA-32-subset simulator (the hardware)
- ``repro.cc`` — the MinC compiler
- ``repro.kernel`` / ``repro.userland`` — the mini-Linux + workloads
- ``repro.machine`` — boot rig, disk image tools (mkfs/fsck)
- ``repro.profiling`` — Kernprof-style PC sampling (Table 1)
- ``repro.injection`` — campaigns A/B/C (+R), injector, classification
- ``repro.analysis`` — statistics, propagation, severity, availability
- ``repro.experiments`` — one module per paper table/figure
- ``repro.tools`` — objdump / ksymoops command-line equivalents

Start with ``repro.experiments.ExperimentContext`` or the examples/.
"""

__version__ = "1.0.0"
