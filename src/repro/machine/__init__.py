"""Machine lifecycle: disk image tools, boot, run, reboot, severity."""

from repro.machine.disk import (
    BLOCK_SIZE,
    DISK_BLOCKS,
    FsckReport,
    LIBC_CONTENT,
    mkfs,
    fsck,
    read_file,
    list_dir,
)
from repro.machine.machine import CrashRecord, Machine, RunResult, \
    build_standard_disk

__all__ = [
    "BLOCK_SIZE",
    "DISK_BLOCKS",
    "FsckReport",
    "LIBC_CONTENT",
    "mkfs",
    "fsck",
    "read_file",
    "list_dir",
    "CrashRecord",
    "Machine",
    "RunResult",
    "build_standard_disk",
]
