"""The simulated machine: RAM + CPU + devices + boot protocol.

Mirrors the paper's experimental rig (Figure 3): build the machine,
configure which workload ``init`` runs (via ``/etc/workload``), boot,
optionally arm a debug-register breakpoint for the injector, run under a
host watchdog, and collect console output, crash dumps and the final
disk image for severity grading.
"""

import struct

from repro.cpu.cpu import CPU, CpuHalted, WatchdogExpired
from repro.cpu.devices import ConsoleDevice, DiskDevice, DumpDevice, \
    MachineShutdown, ShutdownDevice
from repro.cpu.memory import MemoryBus, PageTableBuilder
from repro.cpu.traps import TripleFault
from repro.kernel.layout import KernelLayout
from repro.machine.disk import LIBC_CONTENT, mkfs

DEFAULT_WATCHDOG = 30_000_000


class CrashRecord:
    """Parsed kernel crash dump (written by the kernel's crash handler).

    Word layout (see arch crash_dump): vector, error code, cr2, eip, cs,
    eflags, 8 pusha registers, tsc, pid, recovered flag (0 = the dump
    preceded a halt; 1 = oops-kill-continue; 2 = soft-lockup kill).
    """

    REG_NAMES = ("edi", "esi", "ebp", "esp", "ebx", "edx", "ecx", "eax")

    def __init__(self, words):
        self.words = list(words)
        self.vector = words[0]
        self.error_code = words[1]
        self.cr2 = words[2]
        self.eip = words[3]
        self.cs = words[4]
        self.eflags = words[5]
        self.regs = dict(zip(self.REG_NAMES, words[6:14]))
        self.tsc = words[14] if len(words) > 14 else 0
        self.pid = words[15] if len(words) > 15 else -1
        #: Nonzero when the kernel attempted kill-and-continue recovery
        #: after writing this dump (old dumps lack the word: fatal).
        self.recovered = words[16] if len(words) > 16 else 0

    def __repr__(self):
        return ("CrashRecord(vector=%d, cr2=%#x, eip=%#x, tsc=%d%s)"
                % (self.vector, self.cr2, self.eip, self.tsc,
                   ", recovered" if self.recovered else ""))


class RunResult:
    """Outcome of one machine run."""

    def __init__(self, status, exit_code, console, crash, cycles, instret,
                 disk_image, detail="", crashes=None, trace=None,
                 translation=None):
        #: "shutdown" (clean power-off), "halted" (CPU wedged — a dumped
        #: crash if ``crash`` is set, otherwise a hang), "watchdog"
        #: (hang), or "triple_fault" (unknown crash, no dump possible).
        self.status = status
        self.exit_code = exit_code
        self.console = console
        self.crash = crash          # CrashRecord or None (the last dump)
        #: Every dump record written during the run, in order.  A fault
        #: taken inside the crash handler writes a second record; the
        #: full list makes such nested faults visible to propagation
        #: analysis instead of silently keeping only the last.
        if crashes is not None:
            self.crashes = list(crashes)
        else:
            self.crashes = [crash] if crash is not None else []
        self.cycles = cycles
        self.instret = instret
        self.disk_image = disk_image
        self.detail = detail
        #: :class:`~repro.tracing.ring.Trace` snapshot when the machine
        #: ran with :meth:`Machine.enable_trace`, else ``None``.
        self.trace = trace
        #: Translation-cache telemetry dict (blocks translated, hits,
        #: invalidations, single_steps, resident) when the machine ran
        #: with ``Machine(translate=True)``, else ``None``.  Telemetry
        #: only — a translated run's architectural results are
        #: bit-identical to the interpreter's.
        self.translation = translation

    @property
    def crashed(self):
        return self.crash is not None or self.status == "triple_fault"

    @property
    def recovered_dumps(self):
        """Dump records after which the kernel kept running."""
        return [c for c in self.crashes if getattr(c, "recovered", 0)]

    @property
    def continued_after_dump(self):
        """The kernel wrote a crash dump yet the machine ran on.

        Distinct from "halted": a fail-stop kernel always halts at its
        dump, so this is only true for recovery kernels that killed the
        offending task and rescheduled (whatever the eventual status —
        a recovered run may still shut down, hang, or crash later).
        """
        return bool(self.recovered_dumps)

    def __repr__(self):
        return "RunResult(%s, exit=%r, cycles=%d)" % (
            self.status, self.exit_code, self.cycles)


def build_standard_disk(binaries, workload, extra_files=None):
    """Assemble the root filesystem image.

    Args:
        binaries: name -> :class:`~repro.userland.build.UserBinary`.
        workload: program that ``init`` should run (e.g. ``"pipe"``),
            or None for a boot-only image.
        extra_files: extra path -> bytes entries.
    """
    files = {"/lib/libc.txt": LIBC_CONTENT,
             "/etc/motd": b"Welcome to linux-sim 2.4.19-repro\n"}
    for name, binary in binaries.items():
        files["/bin/" + name] = binary.image
    if workload is not None:
        files["/etc/workload"] = ("/bin/" + workload).encode()
    if extra_files:
        files.update(extra_files)
    return mkfs(files)


class Machine:
    """One bootable machine instance.

    The constructor is cheap relative to a run: it copies the kernel
    image and disk image into fresh RAM, so every injection experiment
    gets a pristine machine, exactly like the paper's reboot-per-run
    protocol.
    """

    def __init__(self, kernel, disk_image, layout=None, timer=True,
                 translate=False):
        self.kernel = kernel
        self.layout = layout or kernel.layout or KernelLayout()
        lay = self.layout
        self.bus = MemoryBus(lay.RAM_BYTES)
        # Kernel image into physical memory.
        self.bus.phys_write_bytes(lay.KERNEL_PHYS, kernel.code)
        # Boot page tables: linear kernel map + MMIO window.
        builder = PageTableBuilder(self.bus, lay.BOOT_PGDIR_PHYS)
        builder.map_range(lay.KERNEL_BASE, 0, lay.RAM_BYTES)
        builder.map_range(lay.KERNEL_BASE + lay.MMIO_PHYS, lay.MMIO_PHYS,
                          lay.MMIO_BYTES)
        builder.activate()
        # Devices.
        self.console = ConsoleDevice()
        self.disk = DiskDevice(self.bus, disk_image)
        self.dump = DumpDevice()
        self.bus.attach_device(lay.CONSOLE_PHYS, 0x100, self.console)
        self.bus.attach_device(lay.DISK_PHYS, 0x100, self.disk)
        self.bus.attach_device(lay.DUMP_PHYS, 0x100, self.dump)
        self.bus.attach_device(lay.SHUTDOWN_PHYS, 0x100, ShutdownDevice())
        # CPU.
        self.cpu = CPU(self.bus)
        self.cpu.eip = kernel.symbols["_start"]
        if timer:
            self.cpu.timer_interval = lay.TIMER_INTERVAL
            self.cpu.timer_next = lay.TIMER_INTERVAL
        self._page_table_pages = builder.next_free
        self.tracer = None
        self.translate = bool(translate)
        self.block_cache = None
        if self.translate:
            self._arm_translation()

    def _arm_translation(self):
        """Attach a translated-execution block cache to this machine.

        Per-machine (closures are cheap to build but the underlying RAM
        diverges between clones); the CFG leader sweep is cached on the
        kernel image so campaigns pay it once.
        """
        from repro.cpu.translate import BlockCache, kernel_block_leaders
        self.block_cache = BlockCache(
            self.bus, leaders=kernel_block_leaders(self.kernel))
        self.cpu.translator = self.block_cache

    # -- injection plumbing -------------------------------------------------

    def arm_breakpoint(self, vaddr, callback):
        """Arm DR0 at *vaddr*; *callback(machine)* fires on first hit.

        This is the paper's injection trigger: the injector flips a bit
        in the instruction, records the cycle counter, disarms the
        breakpoint, and resumes the kernel.
        """
        cpu = self.cpu

        def hook(_cpu, index):
            cpu.write_dr(7, 0)      # one-shot
            callback(self)

        cpu.write_dr(0, vaddr)
        cpu.write_dr(7, 1)
        cpu.on_breakpoint = hook

    def flip_bit(self, vaddr, bit):
        """Flip one bit of the byte at kernel-virtual *vaddr*."""
        phys = vaddr - self.layout.KERNEL_BASE
        value = self.bus.phys_read(phys, 1)
        self.bus.phys_write(phys, 1, value ^ (1 << bit))

    def write_byte(self, vaddr, value):
        phys = vaddr - self.layout.KERNEL_BASE
        self.bus.phys_write(phys, 1, value & 0xFF)

    def write_word(self, vaddr, value):
        phys = vaddr - self.layout.KERNEL_BASE
        self.bus.phys_write(phys, 4, value & 0xFFFFFFFF)

    def enable_recovery(self, panic_on_oops=False):
        """Arm the kernel's recovery ladder (patch before booting).

        Sets the ``recovery_enabled`` kernel global (and optionally
        ``panic_on_oops``) in the pristine image, the host-side
        equivalent of a boot parameter.
        """
        self.write_word(self.kernel.symbols["recovery_enabled"], 1)
        if panic_on_oops:
            self.write_word(self.kernel.symbols["panic_on_oops"], 1)

    def enable_disk_retry(self, retries=2):
        """Arm the IDE driver's bounded retry/backoff path (patch
        before booting, like :meth:`enable_recovery`).

        Sets the ``disk_retries`` kernel global: a failed disk transfer
        is then re-issued up to *retries* times with linear backoff
        before ``-EIO`` propagates.  The default 0 (fail-stop driver)
        is what the paper measured; the knob exists for the
        graceful-degradation ablations of the fault-model framework.
        """
        self.write_word(self.kernel.symbols["disk_retries"],
                        int(retries))

    def enable_trace(self, channels=None, capacity=None):
        """Arm the execution flight recorder for this machine's runs.

        Args:
            channels: iterable of channel names from
                :data:`repro.tracing.ring.CHANNELS` (default: retired
                branches + traps, what the divergence diff needs).
            capacity: ring capacity in events; ``None`` records the
                whole run (needed for exact golden-vs-injected
                diffing), a finite value keeps a flight-recorder
                window and counts what it overwrote.

        Recording is purely observational — a traced run is
        bit-identical to an untraced one.  The tracer survives
        multiple ``run`` calls on this machine; clones of a snapshot
        start untraced and must call ``enable_trace`` themselves.
        Returns the :class:`~repro.tracing.recorder.Tracer`.
        """
        from repro.tracing.recorder import Tracer
        from repro.tracing.ring import DEFAULT_CHANNELS, EV_SUBSYS
        channels = tuple(channels) if channels else DEFAULT_CHANNELS
        subsystem_of = None
        if EV_SUBSYS in channels:
            subsystem_of = self.trace_domain_of
        self.tracer = Tracer(self.cpu, channels=channels,
                             capacity=capacity,
                             subsystem_of=subsystem_of)
        return self.tracer

    def trace_domain_of(self, eip):
        """Trace-domain name for an address: subsystem, user, or gap."""
        if eip < self.layout.KERNEL_BASE:
            return "user"
        info = self.kernel.find_function(eip)
        return info.subsystem if info is not None else "(kernel)"

    def read_byte(self, vaddr):
        return self.bus.phys_read(vaddr - self.layout.KERNEL_BASE, 1)

    def read_word(self, vaddr):
        return self.bus.phys_read(vaddr - self.layout.KERNEL_BASE, 4)

    def snapshot(self):
        """Freeze the current state (see :class:`MachineSnapshot`)."""
        return MachineSnapshot(self)

    # -- running -------------------------------------------------------------

    def run(self, max_cycles=DEFAULT_WATCHDOG, coverage=None):
        """Boot/resume the machine until it stops; returns a RunResult."""
        cpu = self.cpu
        status = "watchdog"
        exit_code = None
        detail = ""
        try:
            cpu.run(max_cycles, coverage=coverage)
        except MachineShutdown as stop:
            status = "shutdown"
            exit_code = stop.code
        except CpuHalted as stop:
            status = "halted"
            detail = str(stop)
        except WatchdogExpired as stop:
            status = "watchdog"
            detail = str(stop)
        except TripleFault as stop:
            status = "triple_fault"
            detail = str(stop)
        crashes = [CrashRecord(words) for words in self.dump.records]
        return RunResult(
            status=status,
            exit_code=exit_code,
            console=self.console.text,
            crash=crashes[-1] if crashes else None,
            cycles=cpu.cycles,
            instret=cpu.instret,
            disk_image=bytes(self.disk.image),
            detail=detail,
            crashes=crashes,
            trace=(self.tracer.snapshot() if self.tracer is not None
                   else None),
            translation=(self.block_cache.stats()
                         if self.block_cache is not None else None),
        )

    def run_until_console(self, marker, max_cycles=DEFAULT_WATCHDOG,
                          chunk=4096, coverage=None):
        """Run until *marker* appears on the console (boot milestone).

        Used to reproduce the paper's protocol: the injector is armed on
        a running system, just before the benchmark starts.  Raises
        WatchdogExpired if the marker never appears.  *coverage*, when
        given, collects every executed EIP (the delta planner uses it
        to learn which functions boot executes).
        """
        needle = marker.encode("latin-1")
        cpu = self.cpu
        while needle not in self.console.buffer:
            if cpu.cycles >= max_cycles:
                raise WatchdogExpired("marker %r never appeared" % marker)
            try:
                cpu.run(min(cpu.cycles + chunk, max_cycles),
                        coverage=coverage)
            except WatchdogExpired:
                if cpu.cycles >= max_cycles:
                    raise

    def run_sampled(self, max_cycles=DEFAULT_WATCHDOG, sample_interval=997,
                    skip_cycles=0):
        """Run while sampling the program counter (Kernprof-style).

        Returns ``(RunResult, samples)`` where *samples* is a list of
        sampled EIP values.  The odd default interval avoids aliasing
        with loop periods, as real sampling profilers do.  Samples before
        *skip_cycles* are discarded (lets profiling exclude boot, like
        the paper's steady-state Kernprof runs).
        """
        cpu = self.cpu
        samples = []
        status = exit_code = None
        detail = ""
        try:
            while cpu.cycles < max_cycles:
                try:
                    cpu.run(min(cpu.cycles + sample_interval, max_cycles))
                except WatchdogExpired:
                    if cpu.cycles >= max_cycles:
                        raise
                if cpu.cycles >= skip_cycles:
                    samples.append(cpu.eip)
            raise WatchdogExpired("profiling budget exhausted")
        except MachineShutdown as stop:
            status, exit_code = "shutdown", stop.code
        except CpuHalted as stop:
            status, detail = "halted", str(stop)
        except WatchdogExpired as stop:
            status, detail = "watchdog", str(stop)
        except TripleFault as stop:
            status, detail = "triple_fault", str(stop)
        crashes = [CrashRecord(words) for words in self.dump.records]
        result = RunResult(status, exit_code, self.console.text,
                           crashes[-1] if crashes else None,
                           cpu.cycles, cpu.instret,
                           bytes(self.disk.image), detail,
                           crashes=crashes,
                           trace=(self.tracer.snapshot()
                                  if self.tracer is not None else None),
                           translation=(self.block_cache.stats()
                                        if self.block_cache is not None
                                        else None))
        return result, samples


class MachineSnapshot:
    """Frozen machine state (RAM, disk, CPU, console) for fast cloning.

    Booting to the injection point costs more than most injected runs;
    campaigns snapshot the freshly-booted machine once per workload and
    clone it per experiment.  Cloning copies every mutable buffer, so a
    clone is exactly as pristine as a fresh boot (verified by test).
    """

    CPU_FIELDS = ("eip", "cf", "pf", "zf", "sf", "of", "if_flag", "df",
                  "cpl", "cr0", "cr2", "cr4", "esp0", "idt_base",
                  "cycles", "timer_interval", "timer_next",
                  "pending_irq", "instret")

    def __init__(self, machine):
        cpu = machine.cpu
        self.kernel = machine.kernel
        self.layout = machine.layout
        self.ram = bytes(machine.bus.ram)
        self.cr3 = machine.bus.cr3
        self.paging_enabled = machine.bus.paging_enabled
        self.disk = bytes(machine.disk.image)
        self.console = bytes(machine.console.buffer)
        self.regs = list(cpu.regs)
        self.segs = list(cpu.segs)
        self.dr = list(cpu.dr)
        self.fields = {name: getattr(cpu, name)
                       for name in self.CPU_FIELDS}
        #: Clones inherit the execution mode; since translated and
        #: interpreted runs are bit-identical, a snapshot restored from
        #: a store may have this overridden by the harness that loads
        #: it (the state itself is mode-independent).
        self.translate = getattr(machine, "translate", False)

    def clone(self):
        """Materialize a runnable Machine from this snapshot."""
        machine = Machine.__new__(Machine)
        machine.kernel = self.kernel
        machine.layout = self.layout
        lay = self.layout
        from repro.cpu.memory import MemoryBus
        bus = MemoryBus(lay.RAM_BYTES)
        bus.ram[:] = self.ram
        bus.cr3 = self.cr3
        bus.paging_enabled = self.paging_enabled
        machine.bus = bus
        machine.console = ConsoleDevice()
        machine.console.buffer[:] = self.console
        machine.disk = DiskDevice(bus, self.disk)
        machine.dump = DumpDevice()
        bus.attach_device(lay.CONSOLE_PHYS, 0x100, machine.console)
        bus.attach_device(lay.DISK_PHYS, 0x100, machine.disk)
        bus.attach_device(lay.DUMP_PHYS, 0x100, machine.dump)
        bus.attach_device(lay.SHUTDOWN_PHYS, 0x100, ShutdownDevice())
        cpu = CPU(bus)
        cpu.regs[:] = self.regs
        cpu.segs[:] = self.segs
        for index, value in enumerate(self.dr):
            cpu.dr[index] = value
        cpu._recompute_breakpoints()
        for name, value in self.fields.items():
            setattr(cpu, name, value)
        machine.cpu = cpu
        machine._page_table_pages = None
        machine.tracer = None
        machine.translate = getattr(self, "translate", False)
        machine.block_cache = None
        if machine.translate:
            machine._arm_translation()
        return machine


def parse_bx_header(image):
    """Parse a user binary header -> (magic, entry, filesz, bss)."""
    return struct.unpack_from("<4I", image, 0)
