"""Host-side ext2lite image tools: mkfs, file access, and fsck.

``fsck`` is the severity oracle of §7.1: after every crash the harness
inspects the disk image and grades the damage:

* ``clean``         — cleanly unmounted, no issues (normal reboot)
* ``dirty``         — mounted-dirty flag only; auto-fsck on boot (normal)
* ``inconsistent``  — structural damage fsck can repair (severe: >5 min,
  operator-assisted, per the paper)
* ``unrecoverable`` — superblock/root/critical files destroyed; the
  filesystem must be re-created (most severe: ~1 h reinstall)
"""

import struct

BLOCK_SIZE = 1024
DISK_BLOCKS = 1024          # 1 MiB image
N_INODES = 128
BITMAP_BLOCK = 1
ITABLE_BLOCK = 2
ITABLE_BLOCKS = 8
DATA_START = ITABLE_BLOCK + ITABLE_BLOCKS
ROOT_INO = 1
EXT2_MAGIC = 0xEF53
DINODE_BYTES = 64
INODES_PER_BLOCK = BLOCK_SIZE // DINODE_BYTES
DIRENT_BYTES = 32
NBLOCKS_PER_INODE = 12      # inode slots: 11 direct + 1 single-indirect
NDIR_BLOCKS = 11
IND_SLOT = 11
ADDR_PER_BLOCK = BLOCK_SIZE // 4
MAX_FILE_BLOCKS = NDIR_BLOCKS + ADDR_PER_BLOCK

IT_FILE = 1
IT_DIR = 2

LIBC_CONTENT = (b"LIBC-2.2.4-SIM\n"
                b"This file stands in for /lib/i686/libc.so.6; init "
                b"refuses to run when it is truncated or corrupt "
                b"(paper Table 5 case 1).\n")


class MkfsError(Exception):
    pass


class _Builder:
    def __init__(self):
        self.image = bytearray(BLOCK_SIZE * DISK_BLOCKS)
        self.used_blocks = set(range(DATA_START))
        self.next_ino = ROOT_INO
        self.inodes = {}        # ino -> dict(type, size, blocks)
        self.dirs = {}          # path -> ino
        self.dirents = {}       # dir ino -> [(name, ino)]

    def alloc_ino(self, itype):
        ino = self.next_ino
        if ino >= N_INODES:
            raise MkfsError("out of inodes")
        self.next_ino += 1
        self.inodes[ino] = {"type": itype, "size": 0, "blocks": []}
        return ino

    def alloc_block(self):
        for blk in range(DATA_START, DISK_BLOCKS):
            if blk not in self.used_blocks:
                self.used_blocks.add(blk)
                return blk
        raise MkfsError("out of blocks")

    def write_data(self, ino, data):
        node = self.inodes[ino]
        if len(data) > MAX_FILE_BLOCKS * BLOCK_SIZE:
            raise MkfsError("file too large: %d bytes" % len(data))
        data_blocks = []
        offset = 0
        while offset < len(data):
            blk = self.alloc_block()
            data_blocks.append(blk)
            chunk = data[offset:offset + BLOCK_SIZE]
            self.image[blk * BLOCK_SIZE:blk * BLOCK_SIZE + len(chunk)] = \
                chunk
            offset += BLOCK_SIZE
        node["blocks"] = data_blocks[:NDIR_BLOCKS]
        overflow = data_blocks[NDIR_BLOCKS:]
        if overflow:
            ind = self.alloc_block()
            base = ind * BLOCK_SIZE
            for i, blk in enumerate(overflow):
                struct.pack_into("<I", self.image, base + 4 * i, blk)
            node["blocks"] += [0] * (NDIR_BLOCKS - len(node["blocks"]))
            node["blocks"].append(ind)
        node["size"] = len(data)

    def add_dirent(self, dir_ino, name, ino):
        if len(name) > 27:
            raise MkfsError("name too long %r" % name)
        self.dirents.setdefault(dir_ino, []).append((name, ino))

    def get_dir(self, path):
        if path in self.dirs:
            return self.dirs[path]
        if path == "/":
            ino = self.alloc_ino(IT_DIR)
            self.dirs["/"] = ino
            return ino
        parent_path, _, name = path.rstrip("/").rpartition("/")
        parent = self.get_dir(parent_path or "/")
        ino = self.alloc_ino(IT_DIR)
        self.add_dirent(parent, name, ino)
        self.dirs[path] = ino
        return ino

    def add_file(self, path, data):
        parent_path, _, name = path.rpartition("/")
        parent = self.get_dir(parent_path or "/")
        ino = self.alloc_ino(IT_FILE)
        self.write_data(ino, data)
        self.add_dirent(parent, name, ino)
        return ino

    def _write_dirents(self):
        for dir_ino, entries in self.dirents.items():
            node = self.inodes[dir_ino]
            per_block = BLOCK_SIZE // DIRENT_BYTES
            if (len(entries) + per_block - 1) // per_block > NDIR_BLOCKS:
                raise MkfsError("directory too large")
            for start in range(0, len(entries), per_block):
                blk = self.alloc_block()
                node["blocks"].append(blk)
                base = blk * BLOCK_SIZE
                for i, (name, ino) in enumerate(
                        entries[start:start + per_block]):
                    entry = struct.pack("<I", ino) \
                        + name.encode().ljust(28, b"\0")
                    self.image[base + i * DIRENT_BYTES:
                               base + (i + 1) * DIRENT_BYTES] = entry
                node["size"] += BLOCK_SIZE

    def finalize(self):
        self._write_dirents()
        # Superblock.
        struct.pack_into(
            "<10I", self.image, 0,
            EXT2_MAGIC, DISK_BLOCKS, N_INODES, BITMAP_BLOCK, ITABLE_BLOCK,
            ITABLE_BLOCKS, DATA_START, ROOT_INO, 1, 0)
        # Bitmap.
        bitmap_base = BITMAP_BLOCK * BLOCK_SIZE
        self.image[bitmap_base:bitmap_base + BLOCK_SIZE] = \
            b"\0" * BLOCK_SIZE
        for blk in self.used_blocks:
            self.image[bitmap_base + (blk >> 3)] |= 1 << (blk & 7)
        # Inode table.
        for ino, node in self.inodes.items():
            base = ITABLE_BLOCK * BLOCK_SIZE + ino * DINODE_BYTES
            blocks = node["blocks"] + [0] * (NBLOCKS_PER_INODE
                                             - len(node["blocks"]))
            struct.pack_into("<4I12I", self.image, base,
                             node["type"], node["size"], 1, 0, *blocks)
        return bytes(self.image)


def mkfs(files, dirs=("/bin", "/etc", "/lib", "/var")):
    """Build an ext2lite image.

    Args:
        files: mapping path -> bytes.
        dirs: directories to pre-create (parents are implied).
    """
    builder = _Builder()
    builder.get_dir("/")
    for path in dirs:
        builder.get_dir(path)
    for path in sorted(files):
        builder.add_file(path, files[path])
    return builder.finalize()


# -- read access -------------------------------------------------------------


def _read_inode(image, ino):
    base = ITABLE_BLOCK * BLOCK_SIZE + ino * DINODE_BYTES
    fields = struct.unpack_from("<4I12I", image, base)
    return {"type": fields[0], "size": fields[1],
            "blocks": [b for b in fields[4:16]]}


def _data_blocks(image, node):
    """Expand an inode's slot list into its full data-block list."""
    blocks = list(node["blocks"][:NDIR_BLOCKS])
    indirect = node["blocks"][IND_SLOT] \
        if len(node["blocks"]) > IND_SLOT else 0
    if indirect and DATA_START <= indirect < DISK_BLOCKS:
        base = indirect * BLOCK_SIZE
        for i in range(ADDR_PER_BLOCK):
            blocks.append(struct.unpack_from("<I", image,
                                             base + 4 * i)[0])
    return blocks, indirect


def list_dir(image, dir_ino=ROOT_INO):
    """Return [(name, ino)] for a directory inode."""
    node = _read_inode(image, dir_ino)
    entries = []
    nblocks = (node["size"] + BLOCK_SIZE - 1) // BLOCK_SIZE
    for i in range(min(nblocks, NBLOCKS_PER_INODE)):
        blk = node["blocks"][i]
        if not blk or blk >= DISK_BLOCKS:
            continue  # wild pointers are reported by fsck's walk
        base = blk * BLOCK_SIZE
        for slot in range(0, BLOCK_SIZE, DIRENT_BYTES):
            ino = struct.unpack_from("<I", image, base + slot)[0]
            if ino:
                raw = bytes(image[base + slot + 4:base + slot + 32])
                name = raw.split(b"\0")[0].decode("latin-1")
                entries.append((name, ino))
    return entries


def _lookup(image, path):
    ino = ROOT_INO
    for part in path.strip("/").split("/"):
        if not part:
            continue
        node = _read_inode(image, ino)
        if node["type"] != IT_DIR:
            return None
        found = None
        for name, child in list_dir(image, ino):
            if name == part:
                found = child
                break
        if found is None:
            return None
        ino = found
    return ino


def read_file(image, path):
    """Read a file's content from the image (None if absent)."""
    ino = _lookup(image, path)
    if ino is None:
        return None
    node = _read_inode(image, ino)
    if node["type"] != IT_FILE:
        return None
    blocks, _indirect = _data_blocks(image, node)
    out = bytearray()
    remaining = node["size"]
    for blk in blocks:
        if remaining <= 0:
            break
        take = min(BLOCK_SIZE, remaining)
        if blk == 0 or blk >= DISK_BLOCKS:
            out += b"\0" * take
        else:
            out += image[blk * BLOCK_SIZE:blk * BLOCK_SIZE + take]
        remaining -= take
    return bytes(out)


# -- fsck ------------------------------------------------------------------------


class FsckReport:
    """Result of checking an image.

    ``status``: ``clean`` / ``dirty`` / ``inconsistent`` /
    ``unrecoverable``; ``issues`` lists human-readable findings;
    ``repaired`` carries the repaired image if repair was requested.
    """

    def __init__(self, status, issues, repaired=None):
        self.status = status
        self.issues = issues
        self.repaired = repaired

    def __repr__(self):
        return "FsckReport(%s, %d issue(s))" % (self.status,
                                                len(self.issues))


def fsck(image, golden_files=None, repair=False):
    """Check (and optionally repair) an ext2lite image.

    Args:
        image: image bytes.
        golden_files: optional mapping path -> expected bytes for
            *critical* files (e.g. ``/bin/init``); corruption of these is
            unrecoverable — the paper's "requires reformat" class.
        repair: attempt repair; the result lands in ``report.repaired``.
    """
    issues = []
    image = bytearray(image)
    try:
        sb = struct.unpack_from("<10I", image, 0)
    except struct.error:
        return FsckReport("unrecoverable", ["image too small"])
    magic, nblocks, ninodes, bitmap_blk, itable, iblocks, data_start, \
        root_ino, state, _mounts = sb
    if magic & 0xFFFF != EXT2_MAGIC:
        return FsckReport("unrecoverable", ["bad superblock magic"])
    if (nblocks != DISK_BLOCKS or bitmap_blk != BITMAP_BLOCK
            or itable != ITABLE_BLOCK or data_start != DATA_START
            or root_ino != ROOT_INO):
        return FsckReport("unrecoverable", ["superblock geometry damaged"])
    if state != 1:
        issues.append("filesystem was not cleanly unmounted")

    # Walk the tree from the root, collecting block usage.
    used = set(range(DATA_START))
    seen_inodes = set()
    structural = []

    def walk(ino, path):
        if ino in seen_inodes:
            structural.append("inode %d reached twice (%s)" % (ino, path))
            return
        seen_inodes.add(ino)
        if not 0 < ino < N_INODES:
            structural.append("bad inode number %d (%s)" % (ino, path))
            return
        node = _read_inode(image, ino)
        if node["type"] not in (IT_FILE, IT_DIR):
            structural.append("inode %d has bad type %d (%s)"
                              % (ino, node["type"], path))
            return
        needed = (node["size"] + BLOCK_SIZE - 1) // BLOCK_SIZE
        if needed > MAX_FILE_BLOCKS:
            structural.append("inode %d size %d too large (%s)"
                              % (ino, node["size"], path))
            needed = MAX_FILE_BLOCKS
        blocks, indirect = _data_blocks(image, node)
        if indirect:
            if not DATA_START <= indirect < DISK_BLOCKS:
                structural.append("inode %d indirect block %d out of "
                                  "range (%s)" % (ino, indirect, path))
            elif indirect in used:
                structural.append("indirect block %d multiply used (%s)"
                                  % (indirect, path))
            else:
                used.add(indirect)
        for i, blk in enumerate(blocks):
            if blk == 0:
                continue
            if not DATA_START <= blk < DISK_BLOCKS:
                structural.append("inode %d block %d out of range (%s)"
                                  % (ino, blk, path))
                continue
            if blk in used:
                structural.append("block %d multiply used (%s)"
                                  % (blk, path))
            used.add(blk)
        if node["type"] == IT_DIR:
            for name, child in list_dir(image, ino):
                walk(child, path + "/" + name)

    root = _read_inode(image, ROOT_INO)
    if root["type"] != IT_DIR:
        return FsckReport("unrecoverable",
                          issues + ["root inode is not a directory"])
    walk(ROOT_INO, "")

    # Bitmap consistency.
    bitmap_base = BITMAP_BLOCK * BLOCK_SIZE
    marked = set()
    for blk in range(DISK_BLOCKS):
        if image[bitmap_base + (blk >> 3)] & (1 << (blk & 7)):
            marked.add(blk)
    leaked = marked - used
    missing = used - marked
    if missing:
        structural.append("%d in-use blocks missing from bitmap"
                          % len(missing))
    if leaked:
        issues.append("%d blocks marked used but unreferenced"
                      % len(leaked))

    # Critical-file integrity (unrecoverable when damaged).
    fatal = []
    if golden_files:
        for path, expected in golden_files.items():
            actual = read_file(bytes(image), path)
            if actual != expected:
                fatal.append("critical file %s damaged" % path)
    libc = read_file(bytes(image), "/lib/libc.txt")
    if libc is not None and not libc.startswith(b"LIBC-2.2.4-SIM"):
        fatal.append("/lib/libc.txt corrupt")

    if fatal:
        return FsckReport("unrecoverable", issues + structural + fatal)
    if structural:
        status = "inconsistent"
    elif state != 1:
        status = "dirty"
    else:
        status = "clean" if not issues else "dirty"

    repaired = None
    if repair:
        # Rebuild the bitmap from the walk and mark the fs clean.
        fresh = bytearray(image)
        fresh[bitmap_base:bitmap_base + BLOCK_SIZE] = b"\0" * BLOCK_SIZE
        for blk in used:
            fresh[bitmap_base + (blk >> 3)] |= 1 << (blk & 7)
        struct.pack_into("<I", fresh, 8 * 4, 1)  # state = clean
        repaired = bytes(fresh)

    return FsckReport(status, issues + structural, repaired=repaired)
