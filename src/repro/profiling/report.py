"""Textual reports for profiling results (the paper's Table 1)."""


def format_table1(profile, coverage=0.95):
    """Render the paper's Table 1: function distribution among modules."""
    core = profile.top_functions(coverage=coverage)
    rows = profile.subsystem_table(core=core)
    lines = []
    lines.append("Table 1: Function Distribution Among Kernel Modules")
    lines.append("%-10s %28s %26s" % ("Subsystem", "Profiled functions",
                                      "Contribution to core %d" % len(core)))
    total_funcs = 0
    total_core = 0
    for name, funcs, core_count in rows:
        core_text = str(core_count) if core_count else "n/a"
        lines.append("%-10s %28d %26s" % (name, funcs, core_text))
        total_funcs += funcs
        total_core += core_count
    lines.append("%-10s %28d %26d" % ("Total", total_funcs, total_core))
    return "\n".join(lines)


def format_top_functions(profile, coverage=0.95):
    """List the core (top-N) functions with their sample shares."""
    core = profile.top_functions(coverage=coverage)
    kernel_total = max(1, profile.kernel_samples)
    lines = ["Top %d kernel functions (>= %.0f%% of kernel samples):"
             % (len(core), coverage * 100)]
    acc = 0
    for i, item in enumerate(core, start=1):
        acc += item.samples
        lines.append(
            "%3d. %-26s %-8s %6d samples  %5.1f%%  (cum %5.1f%%)  via %s"
            % (i, item.name, item.subsystem, item.samples,
               100.0 * item.samples / kernel_total,
               100.0 * acc / kernel_total,
               item.dominant_workload()))
    return "\n".join(lines)
