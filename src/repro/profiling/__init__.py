"""Kernel profiling (the paper's §4): PC sampling over the workloads."""

from repro.profiling.sampler import FunctionProfile, KernelProfile, \
    profile_kernel
from repro.profiling.report import format_table1, format_top_functions

__all__ = ["FunctionProfile", "KernelProfile", "profile_kernel",
           "format_table1", "format_top_functions"]
