"""Kernprof-equivalent PC-sampling profiler.

Runs every workload on a pristine machine while sampling the program
counter at a fixed cycle interval, then attributes samples to kernel
functions through the symbol table.  The output drives both the paper's
Table 1 (function distribution among kernel modules) and the selection
of injection targets (the top functions covering ≥95 % of kernel
samples).
"""

from collections import Counter

from repro.machine.machine import Machine, build_standard_disk


class FunctionProfile:
    """Per-function sample statistics."""

    __slots__ = ("name", "subsystem", "samples", "per_workload")

    def __init__(self, name, subsystem):
        self.name = name
        self.subsystem = subsystem
        self.samples = 0
        self.per_workload = Counter()

    def dominant_workload(self):
        if not self.per_workload:
            return None
        return self.per_workload.most_common(1)[0][0]

    def __repr__(self):
        return "FunctionProfile(%s/%s, %d samples)" % (
            self.subsystem, self.name, self.samples)


class KernelProfile:
    """Aggregated profile over all workloads."""

    def __init__(self, kernel, functions, total_samples, kernel_samples,
                 user_samples):
        self.kernel = kernel
        self.functions = functions        # name -> FunctionProfile
        self.total_samples = total_samples
        self.kernel_samples = kernel_samples
        self.user_samples = user_samples

    def ranked(self):
        """Kernel functions by descending sample count."""
        return sorted((f for f in self.functions.values() if f.samples),
                      key=lambda f: (-f.samples, f.name))

    def top_functions(self, coverage=0.95):
        """The most-used functions covering *coverage* of kernel samples.

        This is the paper's core-function selection: its top 32 covered
        95 % of all profiling values.
        """
        ranked = self.ranked()
        threshold = coverage * sum(f.samples for f in ranked)
        out = []
        acc = 0
        for profile in ranked:
            out.append(profile)
            acc += profile.samples
            if acc >= threshold:
                break
        return out

    def subsystem_table(self, core=None):
        """Rows for Table 1: (subsystem, #profiled funcs, #core funcs)."""
        core_names = {f.name for f in (core or self.top_functions())}
        rows = {}
        for profile in self.functions.values():
            if profile.samples == 0:
                continue
            row = rows.setdefault(profile.subsystem, [0, 0])
            row[0] += 1
            if profile.name in core_names:
                row[1] += 1
        order = ("arch", "fs", "kernel", "mm", "drivers", "ipc", "lib",
                 "net")
        out = []
        for name in order:
            total, core_count = rows.get(name, (0, 0))
            out.append((name, total, core_count))
        for name in sorted(rows):
            if name not in order:
                out.append((name, rows[name][0], rows[name][1]))
        return out

    def workload_for(self, function_name):
        """The workload that exercises *function_name* the most."""
        profile = self.functions.get(function_name)
        if profile is None:
            return None
        return profile.dominant_workload()


def profile_kernel(kernel, binaries, workloads, sample_interval=211,
                   max_cycles=60_000_000, skip_boot_cycles=260_000):
    """Profile the kernel under each workload (the paper's §4 procedure).

    Args:
        kernel: built :class:`~repro.kernel.build.KernelImage`.
        binaries: name -> UserBinary (must include init and workloads).
        workloads: iterable of workload names to run.
        sample_interval: cycles between PC samples (prime to avoid
            aliasing with loop periods).

    Returns:
        :class:`KernelProfile`.
    """
    functions = {}
    for info in kernel.functions:
        functions[info.name] = FunctionProfile(info.name, info.subsystem)
    total = 0
    kernel_hits = 0
    user_hits = 0
    for workload in workloads:
        disk = build_standard_disk(binaries, workload)
        machine = Machine(kernel, disk)
        result, samples = machine.run_sampled(
            max_cycles=max_cycles, sample_interval=sample_interval,
            skip_cycles=skip_boot_cycles)
        if result.status != "shutdown":
            raise RuntimeError("profiling run of %r did not complete: %r"
                               % (workload, result))
        for pc in samples:
            total += 1
            info = kernel.find_function(pc)
            if info is None:
                user_hits += 1
                continue
            kernel_hits += 1
            profile = functions[info.name]
            profile.samples += 1
            profile.per_workload[workload] += 1
    return KernelProfile(kernel, functions, total, kernel_hits, user_hits)
