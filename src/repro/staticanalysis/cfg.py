"""Control-flow graphs over the built kernel image.

The assembler lays every function out contiguously (``FuncInfo.start`` /
``.end`` from :mod:`repro.kernel.build`), and the image contains no data
interleaved with code inside a function, so a linear sweep with the real
decoder recovers the exact instruction stream.  On top of the sweep we
compute basic-block leaders the classic way (function entry, branch
targets, fall-throughs of terminators) and connect blocks with edges.

Terminology used throughout the package:

* *terminator* — an instruction ending a block with an explicit
  successor set: ``ret``/``lret``/``iret`` (none), ``jmp`` (one),
  conditional branches (two), indirect/far jumps (unknown), ``ud2``
  (none).  ``hlt`` falls through: the simulated CPU resumes after it
  on the next timer interrupt.
* ``call`` does **not** terminate a block — control returns to the next
  instruction — but each call site is recorded for the call graph.
* A branch whose target lies outside the function (the hand-written
  trap stubs ``jmp common_trap``) is recorded in
  ``FunctionCFG.external_targets`` instead of creating an edge.
"""

from repro.isa.decoder import decode_all

#: Ops that end a basic block with no fall-through successor.  ``hlt``
#: is *not* here: the simulated CPU resumes after the halted
#: instruction on the next timer tick (``cpu_idle``'s ``sti; hlt``
#: loop), so control genuinely falls through it.
_STOP_OPS = frozenset((
    "ret", "lret", "iret", "jmp", "jmp_ind", "jmpf", "jmpf_ind",
    "ud2", "(bad)",
))

#: Conditional control transfers: branch edge + fall-through edge.
_COND_OPS = frozenset(("jcc", "loop", "loope", "loopne", "jcxz"))

#: Direct near calls and their indirect forms (call-graph edges).
_CALL_OPS = frozenset(("call", "call_ind", "callf", "callf_ind"))


def branch_target(ins):
    """Absolute target of a direct relative branch/call, else ``None``."""
    if ins.rel is None:
        return None
    return ins.addr + ins.length + ins.rel


class BasicBlock:
    """A maximal straight-line instruction sequence.

    Attributes:
        start: address of the first instruction.
        end: address one past the last instruction.
        instrs: the decoded :class:`~repro.isa.instr.Instr` list.
        succs: successor block start addresses (within the function).
        preds: predecessor block start addresses.
    """

    __slots__ = ("start", "end", "instrs", "succs", "preds")

    def __init__(self, start, instrs):
        self.start = start
        self.instrs = instrs
        self.end = instrs[-1].addr + instrs[-1].length
        self.succs = []
        self.preds = []

    @property
    def terminator(self):
        return self.instrs[-1]

    @property
    def falls_through(self):
        """True when control may reach ``self.end`` sequentially."""
        return self.terminator.op not in _STOP_OPS

    def __contains__(self, addr):
        return self.start <= addr < self.end

    def __repr__(self):
        return "BasicBlock(%#x..%#x, %d instrs)" % (
            self.start, self.end, len(self.instrs))


class FunctionCFG:
    """CFG of one kernel function.

    Attributes:
        info: the :class:`~repro.isa.assembler.FuncInfo`.
        blocks: ``{start_addr: BasicBlock}``.
        entry: address of the entry block (== ``info.start``).
        calls: ``[(call_instr_addr, target_addr_or_None)]`` — ``None``
            marks an indirect call.
        external_targets: jump targets outside ``[start, end)``.
        has_indirect_jump: an unresolvable ``jmp_ind``/``jmpf_ind``
            appears — successor sets are incomplete.
        has_bad_instr: the sweep hit undecodable bytes.
    """

    __slots__ = ("info", "blocks", "entry", "calls", "external_targets",
                 "has_indirect_jump", "has_bad_instr")

    def __init__(self, info, blocks, calls, external_targets,
                 has_indirect_jump, has_bad_instr):
        self.info = info
        self.blocks = blocks
        self.entry = info.start
        self.calls = calls
        self.external_targets = external_targets
        self.has_indirect_jump = has_indirect_jump
        self.has_bad_instr = has_bad_instr

    def block_at(self, addr):
        """The block containing *addr*, or ``None``."""
        for block in self.blocks.values():
            if addr in block:
                return block
        return None

    def block_order(self):
        """Blocks in address order."""
        return [self.blocks[a] for a in sorted(self.blocks)]

    def reachable(self, extra_entries=()):
        """Block start addresses reachable from the entry.

        *extra_entries* adds roots the CFG cannot see (``__ex_table``
        landing pads are entered by the fault path, not by an edge).
        """
        seen = set()
        work = [self.entry]
        for addr in extra_entries:
            if addr in self.blocks:
                work.append(addr)
        while work:
            addr = work.pop()
            if addr in seen or addr not in self.blocks:
                continue
            seen.add(addr)
            work.extend(self.blocks[addr].succs)
        return seen

    def instructions(self):
        """All instructions in address order."""
        for block in self.block_order():
            for ins in block.instrs:
                yield ins

    def instr_at(self, addr):
        """The instruction starting at *addr*, or ``None``."""
        for block in self.blocks.values():
            if addr in block:
                for ins in block.instrs:
                    if ins.addr == addr:
                        return ins
        return None

    def __repr__(self):
        return "FunctionCFG(%s: %d blocks)" % (
            self.info.name, len(self.blocks))


def build_cfg(kernel, info):
    """Build the CFG for one function of a built kernel image.

    Args:
        kernel: a :class:`~repro.kernel.build.KernelImage` (anything
            with ``code``/``base`` works).
        info: the function's ``FuncInfo``.
    """
    code = kernel.code[info.start - kernel.base:info.end - kernel.base]
    instrs = decode_all(code, base=info.start)
    return build_cfg_from_instrs(info, instrs)


def build_cfg_from_instrs(info, instrs):
    """CFG construction from an already-decoded instruction list."""
    by_addr = {ins.addr: ins for ins in instrs}
    leaders = {info.start}
    calls = []
    external_targets = set()
    has_indirect_jump = False
    has_bad_instr = False

    for ins in instrs:
        if ins.op == "(bad)":
            has_bad_instr = True
        if ins.op in _CALL_OPS:
            calls.append((ins.addr, branch_target(ins)))
            continue  # call does not end a block
        target = None
        if ins.op == "jmp" or ins.op in _COND_OPS:
            target = branch_target(ins)
            if target is not None:
                if info.start <= target < info.end and target in by_addr:
                    leaders.add(target)
                else:
                    external_targets.add(target)
        if ins.op in ("jmp_ind", "jmpf_ind"):
            has_indirect_jump = True
        if ins.op in _STOP_OPS or ins.op in _COND_OPS:
            fall = ins.addr + ins.length
            if fall in by_addr:
                leaders.add(fall)

    # Split the sweep at the leaders.
    blocks = {}
    current = []
    for ins in instrs:
        if ins.addr in leaders and current:
            block = BasicBlock(current[0].addr, current)
            blocks[block.start] = block
            current = []
        current.append(ins)
    if current:
        block = BasicBlock(current[0].addr, current)
        blocks[block.start] = block

    # Edges.
    for block in blocks.values():
        term = block.terminator
        succs = []
        if term.op == "jmp" or term.op in _COND_OPS:
            target = branch_target(term)
            if target is not None and target in blocks:
                succs.append(target)
        if term.op not in _STOP_OPS:
            fall = term.addr + term.length
            if fall in blocks:
                succs.append(fall)
        block.succs = succs
    for block in blocks.values():
        for succ in block.succs:
            blocks[succ].preds.append(block.start)

    return FunctionCFG(info, blocks, calls, external_targets,
                       has_indirect_jump, has_bad_instr)


def build_callgraph(kernel, functions=None):
    """Direct call graph over the image.

    Returns ``{caller_name: set(callee_names)}``; indirect calls add the
    pseudo-callee ``"<indirect>"``.  Unresolvable direct targets (there
    are none in the shipped image) add ``"<unknown>"``.
    """
    if functions is None:
        functions = kernel.functions
    graph = {}
    for info in functions:
        cfg = build_cfg(kernel, info)
        callees = set()
        for _, target in cfg.calls:
            if target is None:
                callees.add("<indirect>")
                continue
            callee = kernel.find_function(target)
            callees.add(callee.name if callee is not None else "<unknown>")
        graph[info.name] = callees
    return graph


def describe_block(cfg, addr, symbolize=None):
    """Human-readable location of *addr* in its basic block.

    Used by ``ksymoops`` to annotate oops dumps: names the block span,
    the instruction index inside it, and the predecessor blocks.
    """
    block = cfg.block_at(addr)
    if block is None:
        return None
    index = None
    for i, ins in enumerate(block.instrs):
        if ins.addr <= addr < ins.addr + ins.length:
            index = i
            break
    preds = sorted(block.preds)
    if symbolize is None:
        def symbolize(a):
            return "%#010x" % a
    lines = [
        "basic block %s..%s (%d instrs), faulting instr #%s"
        % (symbolize(block.start), "%#010x" % block.end,
           len(block.instrs),
           index if index is not None else "?"),
    ]
    if preds:
        lines.append("reached from: "
                     + ", ".join(symbolize(p) for p in preds))
    elif block.start == cfg.entry:
        lines.append("reached from: function entry")
    else:
        lines.append("reached from: no static predecessor"
                     " (fault/landing path)")
    return "\n".join(lines)
