"""Bit-flip pre-classifier: predict an injection's outcome statically.

For a campaign site ``(instruction, byte_offset, bit)`` the classifier
re-decodes the mutated byte stream and compares it against the original
instruction:

``PRED_INVALID_OPCODE``
    The mutated bytes no longer decode — the first fetch of the site
    raises #UD (a likely crash, Figure 6's *invalid opcode* cause).
``PRED_LENGTH_CHANGE``
    The mutated instruction decodes with a different length, so the
    following bytes are re-interpreted as a shifted instruction stream
    (the paper's Table 7 example 2).
``PRED_BRANCH_REVERSAL``
    A conditional branch decodes to the inverted condition with the
    same displacement — campaign C's intended effect.
``PRED_DEAD``
    The flip provably cannot change architectural state: the mutation
    decodes identically (redundant encodings), or the only difference
    is a write to registers/flags that are dead at the site.  Predicted
    dynamic outcome: NOT_MANIFESTED (or NOT_ACTIVATED).
``PRED_UNKNOWN``
    Anything the analysis cannot bound.

The dead-write reasoning is deliberately *precise rather than
complete*: liveness assumes everything is live at calls and exits, so
a PRED_DEAD verdict is a strong claim (validated against dynamic
campaign outcomes by ``repro.experiments.static_validation``).
"""

from repro.isa.decoder import DecodeError, decode
from repro.isa.registers import REG_NAMES
from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.dataflow import (
    ALL_RESOURCES,
    instr_defs_uses,
    live_after_map,
)

PRED_INVALID_OPCODE = "PRED_INVALID_OPCODE"
PRED_DEAD = "PRED_DEAD"
PRED_LENGTH_CHANGE = "PRED_LENGTH_CHANGE"
PRED_BRANCH_REVERSAL = "PRED_BRANCH_REVERSAL"
PRED_UNKNOWN = "PRED_UNKNOWN"

PRED_CLASSES = (
    PRED_INVALID_OPCODE,
    PRED_DEAD,
    PRED_LENGTH_CHANGE,
    PRED_BRANCH_REVERSAL,
    PRED_UNKNOWN,
)

#: Semantic fields of a decoded instruction.  ``raw`` is deliberately
#: excluded (redundant encodings differ in bytes, not behaviour); so is
#: ``rep``-irrelevant segment/lock prefix noise, which the decoder
#: already normalises away from these fields.
_SEM_FIELDS = ("op", "size", "dst", "src", "cc", "rel", "imm2", "rep")


def _same_semantics(a, b):
    """True when two decoded instructions are behaviourally identical."""
    return all(getattr(a, f) == getattr(b, f) for f in _SEM_FIELDS) \
        and a.length == b.length


def _decode_mutated(code, base, ins, byte_offset, bit):
    """Decode the instruction at ``ins.addr`` after flipping one bit.

    Returns ``(instr, None)`` or ``(None, pred_class)`` when decoding
    itself settles the classification.
    """
    mutated = bytearray(code)
    pos = ins.addr - base + byte_offset
    mutated[pos] ^= 1 << bit

    def read(addr):
        offset = addr - base
        if 0 <= offset < len(mutated):
            return mutated[offset]
        raise IndexError("read past function end")

    try:
        mut = decode(read, ins.addr)
    except DecodeError:
        return None, PRED_INVALID_OPCODE
    except IndexError:
        # The mutation made the instruction swallow bytes beyond the
        # function: the stream is desynchronised past repair.
        return None, PRED_LENGTH_CHANGE
    return mut, None


def _dead_resources(live):
    """Complement of a live set, as register/flag names."""
    return ALL_RESOURCES - live


def _is_dead_write_pair(orig_eff, mut_eff, dead):
    """True when orig and mutant differ only in writes to *dead* state.

    Requires both to be straight-line register/flag instructions: no
    memory traffic, no traps, no side effects, no control transfer.
    """
    for eff in (orig_eff, mut_eff):
        if (eff.side_effects or eff.may_trap or eff.reads_mem
                or eff.writes_mem):
            return False
    return (orig_eff.may_defs | mut_eff.may_defs) <= dead


#: ALU pairs whose flag results are computed identically by the CPU
#: (same helper, same inputs); they differ only in whether the
#: destination is written.  ``cmp``/``sub`` share ``_flags_sub``.
_FLAG_TWIN = {("cmp", "sub"), ("sub", "cmp")}


def classify_flip(code, base, ins, byte_offset, bit, live_after):
    """Classify one injection site.

    Args:
        code: the function's byte string.
        base: address of ``code[0]``.
        ins: the decoded original instruction at the site.
        byte_offset: byte within the instruction.
        bit: bit within the byte.
        live_after: resources (register/flag names) possibly read after
            this instruction — from
            :func:`repro.staticanalysis.dataflow.live_after_map`.

    Returns:
        One of :data:`PRED_CLASSES`.
    """
    mut, verdict = _decode_mutated(code, base, ins, byte_offset, bit)
    if verdict is not None:
        return verdict
    if mut.length != ins.length:
        return PRED_LENGTH_CHANGE
    if _same_semantics(ins, mut):
        return PRED_DEAD
    if (ins.op == "jcc" and mut.op == "jcc"
            and mut.rel == ins.rel and mut.cc == ins.cc ^ 1):
        return PRED_BRANCH_REVERSAL

    dead = _dead_resources(live_after)

    # Flag-twin rule: cmp <-> sub with identical operands compute the
    # identical flag set; the only behavioural delta is the gained or
    # lost write to the destination register.
    if ((ins.op, mut.op) in _FLAG_TWIN
            and ins.size == mut.size
            and ins.dst == mut.dst and ins.src == mut.src
            and ins.dst is not None and ins.dst[0] == "r"
            and REG_NAMES[ins.dst[1]] in dead):
        return PRED_DEAD

    # General dead-write rule: both original and mutant only write
    # dead registers/flags, with no memory or control effects either
    # way — swapping one for the other cannot change live state.
    if not ins.is_branch and not mut.is_branch:
        if _is_dead_write_pair(instr_defs_uses(ins),
                               instr_defs_uses(mut), dead):
            return PRED_DEAD

    return PRED_UNKNOWN


class PreClassifier:
    """Caches per-function CFG + liveness and classifies campaign sites.

    >>> pre = PreClassifier(kernel)
    >>> pre.classify_spec(spec)
    'PRED_UNKNOWN'
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self._funcs = {}

    def _function_state(self, name):
        state = self._funcs.get(name)
        if state is None:
            info = next((f for f in self.kernel.functions
                         if f.name == name), None)
            if info is None:
                return None
            cfg = build_cfg(self.kernel, info)
            live = live_after_map(cfg)
            code = self.kernel.code[info.start - self.kernel.base:
                                    info.end - self.kernel.base]
            instrs = {ins.addr: ins for ins in cfg.instructions()}
            state = (info, code, instrs, live)
            self._funcs[name] = state
        return state

    def classify_site(self, function, instr_addr, byte_offset, bit):
        """Classify ``(function, instr_addr, byte_offset, bit)``."""
        state = self._function_state(function)
        if state is None:  # not in the image (e.g. a synthetic spec)
            return PRED_UNKNOWN
        info, code, instrs, live = state
        ins = instrs.get(instr_addr)
        if ins is None:
            return PRED_UNKNOWN
        # An unknown site keeps everything live (nothing is "dead").
        live_after = live.get(instr_addr, ALL_RESOURCES)
        return classify_flip(code, info.start, ins, byte_offset, bit,
                             live_after)

    def classify_spec(self, spec):
        """Classify an :class:`~repro.injection.campaigns.InjectionSpec`."""
        return self.classify_site(spec.function, spec.instr_addr,
                                  spec.byte_offset, spec.bit)
