"""Symbolic error-propagation analysis (static Fig 6/7/8 prediction).

The pre-classifier (:mod:`repro.staticanalysis.predict`) answers *what
the mutated instruction is*; this module answers *what the corruption
does next*.  For a flip site it seeds a symbolic corruption and runs an
interprocedural abstract interpretation over the function's CFG,
propagating a corruption lattice through registers, flags and stack
slots, and across call/return boundaries via cached per-function
summaries (the FastFlip recipe: analyze each section once, compose).

The lattice, per tracked resource::

    CLEAN < CORRUPT_VALUE < CORRUPT_POINTER      (registers, slots)
    CLEAN < CORRUPT_FLAGS                        (cf zf sf of pf df)
    CORRUPT_PC                                   (terminal: wild fetch)

``CORRUPT_VALUE`` is a wrong bit pattern flowing through data moves and
ALU ops; it is promoted to ``CORRUPT_POINTER`` at the moment it is used
to *address* memory — the use site is then a potential faulting use.
``CORRUPT_FLAGS`` diverges control at the next consuming ``jcc``.
``CORRUPT_PC`` (stream desync, corrupted branch target, corrupted
return address) makes the machine fetch from an unintended address:
every trap class is then reachable.

For each site the solver emits a :class:`SiteVerdict`:

* ``traps`` — the set of first-failure trap classes the corruption can
  reach (:data:`TRAP_CLASSES`; ``silent`` means a no-crash execution is
  possible).
* ``latency_lo``/``latency_hi`` — instruction-count bounds from the
  flip to the first faulting use along shortest/longest CFG paths
  (``hi`` is ``None`` when a loop, a callee of unknown length, or an
  escape makes the window unbounded).
* ``subsystems`` — subsystems reachable by corrupted definitions (the
  static Figure 8 propagation set; ``(wild)`` marks PC corruption).
* ``escapes`` — corrupted defs can leave the home subsystem.

Verdicts are *may* analyses: the trap set over-approximates, the lower
bound under-approximates, the upper bound over-approximates.  The
``static_propagation`` exhibit scores them against the dynamic
campaigns and ``--smoke`` gates the two acceptance rates in CI.
"""

import hashlib
import heapq

from repro.isa.registers import REG_NAMES
from repro.staticanalysis.cfg import branch_target, build_cfg
from repro.staticanalysis.dataflow import FLAGS, instr_defs_uses
from repro.staticanalysis.predict import (
    PRED_INVALID_OPCODE,
    PRED_LENGTH_CHANGE,
    _decode_mutated,
    _same_semantics,
)
from repro.staticanalysis.stackdepth import _Unanalyzable, _step

# --- the corruption lattice -------------------------------------------

CLEAN = "CLEAN"
CORRUPT_VALUE = "CORRUPT_VALUE"
CORRUPT_POINTER = "CORRUPT_POINTER"
CORRUPT_FLAGS = "CORRUPT_FLAGS"
CORRUPT_PC = "CORRUPT_PC"

LATTICE = (CLEAN, CORRUPT_VALUE, CORRUPT_POINTER, CORRUPT_FLAGS,
           CORRUPT_PC)

#: Taint kind ordering for joins (POINTER subsumes VALUE).
_KIND_RANK = {CORRUPT_VALUE: 1, CORRUPT_POINTER: 2}

# --- predicted first-failure trap classes -----------------------------

TRAP_PAGE_FAULT = "page_fault"        # null deref / bad paging request
TRAP_GPF = "gpf"
TRAP_INVALID_OPCODE = "invalid_opcode"
TRAP_DIVIDE = "divide_error"
TRAP_NONE = "silent"                  # a no-crash execution is possible

TRAP_CLASSES = (TRAP_PAGE_FAULT, TRAP_GPF, TRAP_INVALID_OPCODE,
                TRAP_DIVIDE, TRAP_NONE)

#: A corrupted pointer dereference: unmapped (#PF) or out of segment
#: bounds (#GP) on the simulated CPU.
POINTER_TRAPS = frozenset((TRAP_PAGE_FAULT, TRAP_GPF))
#: Wild fetch (corrupted PC): garbage decodes, derefs, divides.
WILD_TRAPS = frozenset((TRAP_PAGE_FAULT, TRAP_GPF,
                        TRAP_INVALID_OPCODE, TRAP_DIVIDE))
#: Control divergence: valid code runs on the wrong path — skipped
#: validity checks deref bad pointers, BUG() paths hit ud2.
DIVERGED_TRAPS = frozenset((TRAP_PAGE_FAULT, TRAP_GPF,
                            TRAP_INVALID_OPCODE, TRAP_DIVIDE,
                            TRAP_NONE))

#: Pseudo-subsystem marking PC corruption (execution can land anywhere),
#: mirroring the ``(wild)`` bucket of the dynamic Figure 8 analysis.
WILD_SUBSYSTEM = "(wild)"

#: Dynamic ``crash_cause`` -> static trap class (Figure 6 vocabulary).
CAUSE_TO_TRAP = {
    "null_pointer": TRAP_PAGE_FAULT,
    "paging_request": TRAP_PAGE_FAULT,
    "gpf": TRAP_GPF,
    "invalid_opcode": TRAP_INVALID_OPCODE,
    "divide_error": TRAP_DIVIDE,
}

#: Kernel functions that never return to their caller; the solver (and
#: the stack-depth fixpoint) treats a ``call`` into them as a path end.
NORETURN_FUNCTIONS = frozenset(("panic", "do_exit"))

_GPRS = frozenset(REG_NAMES)
_FLAG_SET = frozenset(FLAGS)

_COND_OPS = frozenset(("jcc", "loop", "loope", "loopne", "jcxz"))
_RET_OPS = frozenset(("ret", "lret", "iret"))


def trap_of_cause(cause):
    """Map a dynamic crash cause onto the static trap vocabulary."""
    return CAUSE_TO_TRAP.get(cause, "other")


#: Cycle cost ceiling of one simulated instruction (most cost 1, a few
#: complex ops up to ~10; 16 is a safe ceiling) — converts a static
#: instruction-count upper bound into a cycle bound.
MAX_CYCLES_PER_INSTR = 16

#: Fixed slack added to converted upper bounds: interrupt handling and
#: the crash path itself burn cycles between the faulting use and the
#: recorded crash timestamp.
LATENCY_SLACK_CYCLES = 200


def latency_within_bounds(latency_cycles, lo, hi):
    """Does a measured crash latency fall inside a static bound?

    *lo* is in instructions along the shortest path — every
    instruction costs at least one cycle, so it lower-bounds cycles
    directly.  *hi* is in instructions along the longest path and is
    scaled by :data:`MAX_CYCLES_PER_INSTR` (plus
    :data:`LATENCY_SLACK_CYCLES`) before comparing; ``None`` means
    unbounded.
    """
    if latency_cycles is None:
        return False
    if (lo or 0) > latency_cycles:
        return False
    if hi is None:
        return True
    return latency_cycles <= hi * MAX_CYCLES_PER_INSTR \
        + LATENCY_SLACK_CYCLES


class SiteVerdict:
    """Static prediction for one flip site.

    ``escapes`` is the broad flag (corrupted defs can leave the home
    *subsystem*, e.g. through a call with corrupted arguments);
    ``escapes_caller`` is the narrower — and for the delta planner
    decisive — fact that corruption *survives the return* (in eax or
    a global store), so execution after the home function can diverge
    anywhere in its caller cone.
    """

    __slots__ = ("seed", "traps", "latency_lo", "latency_hi",
                 "subsystems", "escapes", "escapes_caller")

    def __init__(self, seed, traps, latency_lo, latency_hi, subsystems,
                 escapes, escapes_caller=False):
        self.seed = seed
        self.traps = frozenset(traps)
        self.latency_lo = latency_lo
        self.latency_hi = latency_hi
        self.subsystems = frozenset(subsystems)
        self.escapes = escapes
        self.escapes_caller = escapes_caller

    @property
    def predicts_crash(self):
        return bool(self.traps - frozenset((TRAP_NONE,)))

    @property
    def predicts_silent_only(self):
        return self.traps == frozenset((TRAP_NONE,))

    def to_dict(self):
        return {
            "seed": self.seed,
            "traps": sorted(self.traps),
            "latency_lo": self.latency_lo,
            "latency_hi": self.latency_hi,
            "subsystems": sorted(self.subsystems),
            "escapes": self.escapes,
            "escapes_caller": self.escapes_caller,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["seed"], data["traps"], data["latency_lo"],
                   data["latency_hi"], data["subsystems"],
                   data["escapes"],
                   data.get("escapes_caller", False))

    def __repr__(self):
        hi = "inf" if self.latency_hi is None else self.latency_hi
        return ("SiteVerdict(%s, traps=%s, latency=[%s, %s], -> %s)"
                % (self.seed, "|".join(sorted(self.traps)),
                   self.latency_lo, hi, "+".join(sorted(self.subsystems))))


class FunctionSummary:
    """Cached interprocedural facts about one function.

    The FastFlip-style composition unit: computed once per function,
    reused by every site analysis that crosses a call boundary into it.

    Attributes:
        min_fault_distance: fewest instructions from entry to a
            may-trap instruction (lower bound for faults *inside* a
            callee entered with corrupted arguments), or ``None`` when
            the function cannot trap at all.
        min_len: fewest instructions entry -> return (call-through
            lower-bound contribution).
        max_len: most instructions entry -> return along acyclic
            paths, ``None`` when a loop or an unbounded callee makes
            the walk unbounded.
        reach_subsystems: subsystems of the function plus everything
            transitively callable from it.
        noreturn: the function never returns (``panic``/``do_exit``).
    """

    __slots__ = ("name", "subsystem", "min_fault_distance", "min_len",
                 "max_len", "reach_subsystems", "noreturn")

    def __init__(self, name, subsystem, min_fault_distance, min_len,
                 max_len, reach_subsystems, noreturn=False):
        self.name = name
        self.subsystem = subsystem
        self.min_fault_distance = min_fault_distance
        self.min_len = min_len
        self.max_len = max_len
        self.reach_subsystems = frozenset(reach_subsystems)
        self.noreturn = noreturn

    def __repr__(self):
        return ("FunctionSummary(%s/%s, fault>=%s, len=[%s,%s], %s)"
                % (self.name, self.subsystem, self.min_fault_distance,
                   self.min_len, self.max_len,
                   "+".join(sorted(self.reach_subsystems))))


class _TaintState:
    """Mutable abstract state: which resources hold corrupted data.

    ``regs``/``slots`` map resource -> kind (CORRUPT_VALUE or
    CORRUPT_POINTER); ``flags`` is the set of corrupted flag names;
    ``mem`` means corruption reached non-stack memory (globals / wild
    stores); ``diverged`` means control already forked off the golden
    path.  ``slots`` keys are stack depths as defined by
    :mod:`repro.staticanalysis.stackdepth` (key 0 = the return
    address slot).
    """

    __slots__ = ("regs", "flags", "slots", "mem", "diverged")

    def __init__(self, regs=None, flags=None, slots=None, mem=False,
                 diverged=False):
        self.regs = dict(regs or {})
        self.flags = set(flags or ())
        self.slots = dict(slots or {})
        self.mem = mem
        self.diverged = diverged

    def copy(self):
        return _TaintState(self.regs, self.flags, self.slots, self.mem,
                           self.diverged)

    @property
    def empty(self):
        return not (self.regs or self.flags or self.slots or self.mem)

    def join(self, other):
        """In-place join; returns True when anything changed."""
        changed = False
        for reg, kind in other.regs.items():
            if _KIND_RANK.get(kind, 0) > _KIND_RANK.get(
                    self.regs.get(reg), 0):
                self.regs[reg] = kind
                changed = True
        if not other.flags <= self.flags:
            self.flags |= other.flags
            changed = True
        for key, kind in other.slots.items():
            if _KIND_RANK.get(kind, 0) > _KIND_RANK.get(
                    self.slots.get(key), 0):
                self.slots[key] = kind
                changed = True
        if other.mem and not self.mem:
            self.mem = True
            changed = True
        if other.diverged and not self.diverged:
            self.diverged = True
            changed = True
        return changed

    def __repr__(self):
        return ("_TaintState(regs=%s, flags=%s, slots=%s, mem=%s)"
                % (sorted(self.regs), sorted(self.flags),
                   sorted(self.slots), self.mem))


class _SiteSolve:
    """Accumulator for one site's fixpoint (events + escape facts)."""

    __slots__ = ("events", "silent", "escapes_caller", "call_reaches",
                 "wild", "diverged")

    def __init__(self):
        # addr -> (traps frozenset, extra_lo int, extra_hi int|None)
        self.events = {}
        self.silent = False           # a no-fault execution exists
        self.escapes_caller = False   # corruption survives the return
        self.call_reaches = set()     # subsystems entered corrupted
        self.wild = False             # PC corruption occurred
        self.diverged = False

    def add_event(self, addr, traps, extra_lo=0, extra_hi=0):
        old = self.events.get(addr)
        if old is None:
            self.events[addr] = (frozenset(traps), extra_lo, extra_hi)
            return
        traps = old[0] | frozenset(traps)
        lo = min(old[1], extra_lo)
        hi = None if (old[2] is None or extra_hi is None) \
            else max(old[2], extra_hi)
        self.events[addr] = (traps, lo, hi)


class PropagationAnalyzer:
    """Whole-image symbolic error-propagation analysis.

    Caches per-function CFGs, depth maps and summaries so analyzing
    every site of the kernel image is one pass over each function plus
    O(1) summary lookups at call boundaries.  The summary cache is
    keyed by ``(name, composed byte-fingerprint)`` — the function's
    raw bytes hashed together with those of its transitive direct
    callees — never by name alone, so a summary dict that outlives a
    kernel rebuild (a warm analyzer, a persisted cache) can only ever
    serve entries whose code is provably identical; a rebuilt
    function, or any function calling into one, misses and
    recomputes.

    >>> analyzer = PropagationAnalyzer(kernel)
    >>> analyzer.analyze_site("sys_open", addr, 0, 3)
    SiteVerdict(CORRUPT_VALUE, traps=gpf|page_fault, ...)
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self._by_name = {f.name: f for f in kernel.functions}
        self._cfgs = {}
        self._depths = {}
        self._summaries = {}
        self._byte_fps = {}
        self._summary_keys = {}
        self._in_progress = set()
        self._callers = None
        self._noreturn_addrs = frozenset(
            f.start for f in kernel.functions
            if f.name in NORETURN_FUNCTIONS)

    # -- cache keys --------------------------------------------------

    def byte_fingerprint(self, name):
        """sha256 (truncated) of the function's raw image bytes."""
        fp = self._byte_fps.get(name)
        if fp is None:
            info = self._by_name[name]
            code = bytes(self.kernel.code[
                info.start - self.kernel.base:
                info.end - self.kernel.base])
            fp = hashlib.sha256(code).hexdigest()[:16]
            self._byte_fps[name] = fp
        return fp

    def summary_key(self, name):
        """Composed cache key: own bytes + transitive callees' bytes.

        A :class:`FunctionSummary` folds in callee facts, so byte
        identity of the function alone is not enough for reuse — the
        key hashes the whole forward call closure.
        """
        key = self._summary_keys.get(name)
        if key is None:
            closure = set()
            work = [name]
            while work:
                current = work.pop()
                if current in closure or current not in self._by_name:
                    continue
                closure.add(current)
                cfg = self.cfg(current)
                if cfg is None:
                    continue
                for _, target in cfg.calls:
                    if target is None:
                        continue
                    callee = self._find_function(target)
                    if callee is not None:
                        work.append(callee.name)
            blob = "|".join("%s=%s" % (n, self.byte_fingerprint(n))
                            for n in sorted(closure))
            key = (name,
                   hashlib.sha256(blob.encode()).hexdigest()[:16])
            self._summary_keys[name] = key
        return key

    # -- shared per-function state ----------------------------------

    def _find_function(self, addr):
        finder = getattr(self.kernel, "find_function", None)
        if finder is not None:
            return finder(addr)
        for info in self.kernel.functions:
            if info.start <= addr < info.end:
                return info
        return None

    def cfg(self, name):
        cfg = self._cfgs.get(name)
        if cfg is None:
            info = self._by_name.get(name)
            if info is None:
                return None
            cfg = build_cfg(self.kernel, info)
            self._cfgs[name] = cfg
        return cfg

    def _depth_map(self, name):
        """{instr_addr: (depth, frame)} before each instruction.

        ``None`` when the function's stack discipline is untrackable
        (slot tracking is then disabled and call-argument taint falls
        back to "any corruption at all").
        """
        if name in self._depths:
            return self._depths[name]
        cfg = self.cfg(name)
        result = None
        if cfg is not None and not cfg.has_bad_instr:
            result = {}
            seen = {cfg.entry: (0, None)}
            work = [cfg.entry]
            try:
                while work:
                    start = work.pop()
                    depth, frame = seen[start]
                    block = cfg.blocks[start]
                    terminated = False
                    for ins in block.instrs:
                        result[ins.addr] = (depth, frame)
                        if self._noreturn_call_target(ins) is not None:
                            terminated = True  # path ends mid-block
                            break
                        depth, frame = _step(ins, depth, frame)
                    if terminated:
                        continue
                    for succ in block.succs:
                        if succ not in seen:
                            seen[succ] = (depth, frame)
                            work.append(succ)
            except _Unanalyzable:
                result = None
        self._depths[name] = result
        return result

    def _call_target(self, ins):
        if ins.op != "call":
            return None
        target = branch_target(ins)
        if target is None:
            return None
        return self._find_function(target)

    def _noreturn_call_target(self, ins):
        info = self._call_target(ins)
        if info is not None and info.name in NORETURN_FUNCTIONS:
            return info
        return None

    def callers_of(self, name):
        """Subsystems of the direct callers of *name* (reverse edges)."""
        if self._callers is None:
            callers = {}
            for info in self.kernel.functions:
                cfg = self.cfg(info.name)
                for _, target in cfg.calls:
                    if target is None:
                        continue
                    callee = self._find_function(target)
                    if callee is not None:
                        callers.setdefault(callee.name, set()).add(
                            info.subsystem)
            self._callers = callers
        return self._callers.get(name, set())

    # -- per-function summaries (the FastFlip composition unit) ------

    def summary(self, name):
        info = self._by_name.get(name)
        if info is None or name in self._in_progress:
            # Unknown callee or call-graph cycle: sound bottom.
            return FunctionSummary(name, None, 0, 1, None,
                                   (info.subsystem,) if info else ())
        key = self.summary_key(name)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        self._in_progress.add(name)
        try:
            summary = self._compute_summary(info)
        finally:
            self._in_progress.discard(name)
        self._summaries[key] = summary
        return summary

    def _compute_summary(self, info):
        cfg = self.cfg(info.name)
        reach = {info.subsystem}
        callee_min = {}
        callee_max = {}
        for addr, target in cfg.calls:
            callee = None if target is None \
                else self._find_function(target)
            if callee is None:
                # Indirect/unresolved call: anything may run.
                reach.add(WILD_SUBSYSTEM)
                callee_min[addr] = 1
                callee_max[addr] = None
                continue
            sub = self.summary(callee.name)
            reach |= sub.reach_subsystems
            callee_min[addr] = 1 if sub.noreturn else 1 + sub.min_len
            callee_max[addr] = None if (sub.noreturn
                                        or sub.max_len is None) \
                else 1 + sub.max_len
        min_fault = self._min_distance(
            cfg, cfg.entry,
            lambda ins: instr_defs_uses(ins).may_trap,
            callee_min)
        min_len = self._min_distance(
            cfg, cfg.entry, lambda ins: ins.op in _RET_OPS, callee_min,
            inclusive=True)
        noreturn = info.name in NORETURN_FUNCTIONS or min_len is None
        max_len = None if noreturn else self._max_len(cfg, callee_max)
        return FunctionSummary(
            info.name, info.subsystem, min_fault,
            min_len if min_len is not None else 1,
            max_len, reach, noreturn)

    def _instr_successors(self, cfg, callee_weights=None):
        """{addr: [(succ_addr, weight)]} over the instruction graph.

        The weight of an edge out of a ``call`` carries the callee's
        path-length contribution (from *callee_weights*, keyed by call
        address; ``None`` marks an unbounded callee).  Calls into
        noreturn functions get no successors.
        """
        succs = {}
        for block in cfg.block_order():
            instrs = block.instrs
            for index, ins in enumerate(instrs):
                out = []
                weight = 1
                if callee_weights is not None \
                        and ins.addr in callee_weights:
                    weight = callee_weights[ins.addr]
                if self._noreturn_call_target(ins) is not None:
                    succs[ins.addr] = []
                    continue
                if index + 1 < len(instrs):
                    out.append((instrs[index + 1].addr, weight))
                else:
                    for succ in block.succs:
                        target = cfg.blocks[succ].instrs[0].addr
                        out.append((target, weight))
                succs[ins.addr] = out
        return succs

    def _min_distance(self, cfg, entry, goal, callee_min,
                      inclusive=False):
        """Fewest instructions from *entry* to an instruction matching
        *goal* (0 when the entry instruction matches).  *inclusive*
        counts the matching instruction itself (path lengths)."""
        succs = self._instr_successors(cfg, callee_min)
        start = cfg.blocks[entry].instrs[0].addr
        dist = {start: 0}
        heap = [(0, start)]
        instr_at = {i.addr: i for b in cfg.blocks.values()
                    for i in b.instrs}
        while heap:
            d, addr = heapq.heappop(heap)
            if d > dist.get(addr, float("inf")):
                continue
            ins = instr_at[addr]
            if goal(ins):
                return d + (1 if inclusive else 0)
            for succ, weight in succs.get(addr, ()):
                if weight is None:
                    weight = 1  # lower bound through unbounded callee
                nd = d + weight
                if nd < dist.get(succ, float("inf")):
                    dist[succ] = nd
                    heapq.heappush(heap, (nd, succ))
        return None

    def _max_len(self, cfg, callee_max):
        """Longest entry->ret instruction count, ``None`` if unbounded
        (cyclic CFG, unbounded callee, or no return at all)."""
        if any(weight is None for weight in callee_max.values()):
            return None
        order = self._topo_blocks(cfg)
        if order is None:
            return None
        best = {cfg.entry: 0}
        result = None
        for start in order:
            if start not in best:
                continue
            total = best[start]
            block = cfg.blocks[start]
            for ins in block.instrs:
                total += callee_max.get(ins.addr, 1)
                if ins.op in _RET_OPS:
                    result = total if result is None \
                        else max(result, total)
            for succ in block.succs:
                if total > best.get(succ, -1):
                    best[succ] = total
        return result

    @staticmethod
    def _topo_blocks(cfg):
        """Topological block order, or ``None`` when the CFG has a
        cycle."""
        indeg = {start: 0 for start in cfg.blocks}
        for block in cfg.blocks.values():
            for succ in block.succs:
                indeg[succ] += 1
        ready = sorted(s for s, d in indeg.items() if d == 0)
        order = []
        while ready:
            start = ready.pop()
            order.append(start)
            for succ in cfg.blocks[start].succs:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(cfg.blocks):
            return None
        return order

    # -- site analysis -----------------------------------------------

    def analyze_spec(self, spec):
        """Verdict for an :class:`~repro.injection.campaigns.InjectionSpec`."""
        return self.analyze_site(spec.function, spec.instr_addr,
                                 spec.byte_offset, spec.bit)

    def analyze_site(self, function, instr_addr, byte_offset, bit):
        """Analyze one flip site; always returns a :class:`SiteVerdict`.

        Unknown functions or addresses get the sound catch-all
        (everything possible, unbounded window).
        """
        info = self._by_name.get(function)
        cfg = self.cfg(function) if info is not None else None
        ins = cfg.instr_at(instr_addr) if cfg is not None else None
        if ins is None:
            return SiteVerdict(
                CORRUPT_VALUE, WILD_TRAPS | {TRAP_NONE}, 0, None,
                {WILD_SUBSYSTEM}, True, escapes_caller=True)
        home = info.subsystem
        code = self.kernel.code[info.start - self.kernel.base:
                                info.end - self.kernel.base]
        mut, decode_verdict = _decode_mutated(code, info.start, ins,
                                              byte_offset, bit)
        if decode_verdict == PRED_INVALID_OPCODE:
            # First fetch of the site raises #UD: latency 0, contained.
            return SiteVerdict(CORRUPT_PC, {TRAP_INVALID_OPCODE}, 0, 0,
                               {home}, False)
        if decode_verdict == PRED_LENGTH_CHANGE \
                or mut.length != ins.length:
            # Stream desync: the following bytes re-decode shifted.
            return SiteVerdict(CORRUPT_PC, WILD_TRAPS | {TRAP_NONE}, 0,
                               None, {home, WILD_SUBSYSTEM}, True,
                               escapes_caller=True)
        if _same_semantics(ins, mut):
            return SiteVerdict(CLEAN, {TRAP_NONE}, None, None, set(),
                               False)
        return self._solve(info, cfg, ins, mut)

    # -- seeding ------------------------------------------------------

    def _seed(self, cfg, ins, mut, solve, state, depth_frame=None):
        """Seed corruption for executing *mut* in place of *ins*.

        Returns the seed lattice class, or ``None`` when the mutation
        is a pure control corruption already fully recorded in *solve*.
        """
        home = cfg.info.subsystem

        def corrupt_store(memop):
            """The value stored through *memop* is wrong."""
            key = None
            if depth_frame is not None:
                key = _slot_key(memop, depth_frame[0], depth_frame[1])
            if key is not None:
                state.slots[key] = CORRUPT_VALUE
            else:
                state.mem = True
        orig_eff = instr_defs_uses(ins)
        mut_eff = instr_defs_uses(mut)

        # Control-transfer mutations first: they corrupt the PC.
        orig_target = branch_target(ins)
        mut_target = branch_target(mut)
        orig_ctl = ins.op in _COND_OPS or ins.op in ("jmp", "call")
        mut_ctl = mut.op in _COND_OPS or mut.op in ("jmp", "call")
        if orig_ctl or mut_ctl:
            if ins.op == "jcc" and mut.op == "jcc" \
                    and orig_target == mut_target:
                # Condition change only (campaign C's bit): wrong but
                # valid path — control divergence, not a wild fetch.
                solve.diverged = True
                solve.silent = True
                solve.add_event(ins.addr, DIVERGED_TRAPS,
                                extra_hi=None)
                return CORRUPT_FLAGS
            if mut_ctl and mut_target is not None \
                    and mut_target in cfg.blocks:
                # Retargeted branch landing on a real block boundary:
                # wrong path, valid instruction stream.
                solve.diverged = True
                solve.silent = True
                solve.add_event(ins.addr, DIVERGED_TRAPS,
                                extra_hi=None)
                return CORRUPT_PC
            # Anything else — branch into the middle of an
            # instruction, out of the function, a call to a wrong
            # target, a transfer gained or lost — is a wild fetch.
            solve.wild = True
            solve.add_event(ins.addr, WILD_TRAPS, extra_hi=None)
            solve.silent = True
            return CORRUPT_PC

        # Memory-operand mutations: the site itself may fault, and a
        # store to a wrong address corrupts memory at large.
        orig_mem = _mem_operand(ins)
        mut_mem = _mem_operand(mut)
        if mut_mem is not None and not _same_mem(orig_mem, mut_mem) \
                and (mut_eff.reads_mem or mut_eff.writes_mem):
            solve.add_event(ins.addr, POINTER_TRAPS)
            if mut_eff.writes_mem:
                # Store to a wrong address: anything may be hit.
                state.mem = True
                solve.wild = True
                solve.add_event(ins.addr, WILD_TRAPS, extra_hi=None)
        if orig_eff.writes_mem and not mut_eff.writes_mem:
            # A lost store: downstream readers see a stale value.
            state.mem = True
        if mut_eff.writes_mem and mut_mem is not None \
                and _same_mem(orig_mem, mut_mem) \
                and (ins.op != mut.op or ins.src != mut.src):
            # Same address, different stored value.
            corrupt_store(mut_mem)
        if ins.op == "push" and mut.op == "push" \
                and ins.dst != mut.dst:
            # Wrong value pushed: the new stack slot is corrupt.
            if depth_frame is not None:
                state.slots[depth_frame[0] + 4] = CORRUPT_VALUE
            else:
                state.mem = True

        if mut.op in ("div", "idiv") and mut.op != ins.op:
            solve.add_event(ins.addr, {TRAP_DIVIDE})
        if mut_eff.side_effects and not orig_eff.side_effects:
            # The mutation became a system/exotic op: anything goes.
            solve.wild = True
            solve.add_event(ins.addr, WILD_TRAPS, extra_hi=None)
        elif mut_eff.may_trap and not orig_eff.may_trap:
            solve.add_event(ins.addr, POINTER_TRAPS | {TRAP_DIVIDE})

        # Data corruption: every register/flag either instruction may
        # write can now hold a wrong value.
        changed = (orig_eff.may_defs | mut_eff.may_defs)
        for reg in changed & _GPRS:
            if reg != "esp":
                state.regs[reg] = CORRUPT_VALUE
        state.flags |= changed & _FLAG_SET
        if "esp" in changed and ins.op != mut.op:
            # The stack pointer itself: every later stack access is
            # misdirected — treat as wild.
            solve.wild = True
            solve.add_event(ins.addr, WILD_TRAPS, extra_hi=None)
        if home is None:
            state.mem = True
        if state.regs or state.mem or state.slots:
            return CORRUPT_VALUE
        return CORRUPT_FLAGS if state.flags else CORRUPT_VALUE

    # -- the fixpoint -------------------------------------------------

    def _solve(self, info, cfg, ins, mut):
        solve = _SiteSolve()
        state = _TaintState()
        depth_map = self._depth_map(info.name)
        site_df = depth_map.get(ins.addr) if depth_map else None
        seed = self._seed(cfg, ins, mut, solve, state, site_df)

        if state.empty and not solve.events:
            return SiteVerdict(CLEAN, {TRAP_NONE}, None, None, set(),
                               False)

        block = cfg.block_at(ins.addr)
        in_states = {}
        work = []
        if not state.empty:
            # Walk the remainder of the site's block, then fixpoint.
            out = self._walk_block(cfg, block, state, solve, depth_map,
                                   from_addr=ins.addr, skip_first=True)
            if out is not None:
                for succ in block.succs:
                    in_states[succ] = out.copy()
                    work.append(succ)

        rounds = 0
        limit = 200 * (len(cfg.blocks) + 1)
        while work and rounds < limit:
            rounds += 1
            start = work.pop()
            current = in_states[start].copy()
            out = self._walk_block(cfg, cfg.blocks[start], current,
                                   solve, depth_map)
            if out is None:
                continue
            for succ in cfg.blocks[start].succs:
                seen = in_states.get(succ)
                if seen is None:
                    in_states[succ] = out.copy()
                    work.append(succ)
                elif seen.join(out):
                    if succ not in work:
                        work.append(succ)

        return self._verdict(info, cfg, ins, seed, solve)

    def _walk_block(self, cfg, block, state, solve, depth_map,
                    from_addr=None, skip_first=False):
        """Push *state* through *block*; returns the out-state or
        ``None`` when every path through the block terminates (ret,
        noreturn call, or the corruption provably dies)."""
        started = from_addr is None
        for ins in block.instrs:
            if not started:
                if ins.addr != from_addr:
                    continue
                started = True
                if skip_first:
                    continue  # the site instruction itself was seeded
            if state.empty:
                solve.silent = True
                return None
            df = depth_map.get(ins.addr) if depth_map else None
            stop = self._transfer(cfg, ins, state, solve, df)
            if stop:
                return None
        return state

    def _transfer(self, cfg, ins, state, solve, depth_frame):
        """Abstract-execute one pristine instruction.  Returns True
        when the path ends here (ret / noreturn call / wild)."""
        op = ins.op
        eff = instr_defs_uses(ins)
        depth, frame = depth_frame if depth_frame else (None, None)

        corrupted_uses = set(eff.uses & _GPRS) & set(state.regs)
        corrupted_flags = eff.uses & state.flags

        # 1. Addressing with a corrupted register: faulting use.
        mem = _mem_operand(ins)
        addr_corrupt = False
        if mem is not None and (eff.reads_mem or eff.writes_mem):
            bases = set()
            if mem.base is not None:
                bases.add(REG_NAMES[mem.base])
            if mem.index is not None:
                bases.add(REG_NAMES[mem.index])
            tainted = bases & set(state.regs)
            if tainted:
                addr_corrupt = True
                for reg in tainted:
                    state.regs[reg] = CORRUPT_POINTER
                solve.add_event(ins.addr, POINTER_TRAPS)
                if eff.writes_mem:
                    # A *successful* wild store can hit anything —
                    # code bytes, return addresses, unrelated
                    # structures — so every later trap class opens up.
                    state.mem = True
                    solve.wild = True
                    solve.add_event(ins.addr, WILD_TRAPS,
                                    extra_hi=None)
        if op in ("movs", "cmps", "stos", "lods", "scas", "ins",
                  "outs"):
            pointers = {"esi", "edi"} & set(state.regs)
            if pointers:
                for reg in pointers:
                    state.regs[reg] = CORRUPT_POINTER
                solve.add_event(ins.addr, POINTER_TRAPS)
                if op in ("movs", "stos", "ins"):
                    state.mem = True
                    solve.wild = True
                    solve.add_event(ins.addr, WILD_TRAPS,
                                    extra_hi=None)

        # 2. Divides with corrupted inputs raise #DE.
        if op in ("div", "idiv") and (corrupted_uses
                                      or addr_corrupt or state.mem):
            solve.add_event(ins.addr, {TRAP_DIVIDE})

        # 3. Control consumed corrupted state.
        if op == "jcc" and corrupted_flags:
            state.diverged = True
            solve.diverged = True
            solve.add_event(ins.addr, DIVERGED_TRAPS, extra_hi=None)
        if op in _COND_OPS and op != "jcc" and (corrupted_flags
                                                or "ecx" in
                                                corrupted_uses):
            state.diverged = True
            solve.diverged = True
            solve.add_event(ins.addr, DIVERGED_TRAPS, extra_hi=None)
        if op in ("jmp_ind", "jmpf_ind", "call_ind", "callf_ind"):
            if corrupted_uses or addr_corrupt:
                solve.wild = True
                solve.add_event(ins.addr, WILD_TRAPS, extra_hi=None)
                return True

        # 4. Stack slots (when the depth discipline is trackable).
        value_taint = self._value_taint(state, ins, depth, frame,
                                        addr_corrupt)
        if depth is not None:
            if op == "push":
                if value_taint:
                    state.slots[depth + 4] = value_taint
                else:
                    state.slots.pop(depth + 4, None)
            elif op == "pop":
                taken = state.slots.pop(depth, None)
                if ins.dst is not None and ins.dst[0] == "r":
                    reg = REG_NAMES[ins.dst[1]]
                    if taken:
                        state.regs[reg] = taken
                    else:
                        state.regs.pop(reg, None)
                return False
            elif eff.writes_mem and mem is not None \
                    and not addr_corrupt:
                key = _slot_key(mem, depth, frame)
                if key is not None:
                    if value_taint:
                        state.slots[key] = value_taint
                    else:
                        state.slots.pop(key, None)
                elif value_taint and _is_global_mem(mem):
                    state.mem = True
                elif value_taint:
                    state.mem = True
        elif eff.writes_mem and value_taint:
            state.mem = True

        # 5. Returns: corrupted return address is a wild transfer;
        # corruption surviving in eax / memory escapes to the caller.
        if op in _RET_OPS:
            if depth is not None and state.slots.get(0):
                solve.wild = True
                solve.add_event(ins.addr, WILD_TRAPS, extra_hi=None)
            elif "eax" in state.regs or state.mem:
                solve.escapes_caller = True
                solve.silent = True
            else:
                solve.silent = True
            return True

        # 6. Calls: compose with the callee summary.
        if op == "call":
            noreturn = self._noreturn_call_target(ins)
            if noreturn is not None:
                solve.silent = True  # panic path: no *trap* class
                return True
            return self._transfer_call(cfg, ins, state, solve, depth)
        if op in ("call_ind", "callf_ind"):
            # Unknown callee runs with the current corruption.
            if not state.empty:
                solve.call_reaches.add(WILD_SUBSYSTEM)
                solve.add_event(ins.addr, POINTER_TRAPS | {TRAP_DIVIDE},
                                extra_lo=1, extra_hi=None)
                state.regs["eax"] = CORRUPT_VALUE
            else:
                state.regs.pop("eax", None)
            return False

        # 7. Plain data flow: kill must-defs fed by clean inputs,
        # corrupt everything written from corrupted inputs.
        source_corrupt = bool(corrupted_uses or corrupted_flags
                              or value_taint
                              or (eff.reads_mem and state.mem
                                  and _slot_key(mem, depth, frame)
                                  is None))
        if source_corrupt:
            kind = CORRUPT_VALUE
            for reg in eff.may_defs & _GPRS:
                if reg != "esp":
                    state.regs[reg] = kind
            state.flags |= eff.may_defs & _FLAG_SET
        else:
            for reg in eff.must_defs & _GPRS:
                state.regs.pop(reg, None)
            state.flags -= eff.must_defs
        return False

    def _transfer_call(self, cfg, ins, state, solve, depth):
        """Direct near call: decide whether corruption enters the
        callee, account for in-callee faults, and model the return."""
        callee = self._call_target(ins)
        if callee is None:
            # Unresolved direct target (absent from the shipped
            # image): treat like an indirect call.
            entered = not state.empty
            if entered:
                solve.call_reaches.add(WILD_SUBSYSTEM)
                solve.add_event(ins.addr, POINTER_TRAPS | {TRAP_DIVIDE},
                                extra_lo=1, extra_hi=None)
                state.regs["eax"] = CORRUPT_VALUE
            else:
                state.regs.pop("eax", None)
            return False
        sub = self.summary(callee.name)
        if depth is not None:
            args_corrupt = state.mem or any(
                key > 0 for key in state.slots)
        else:
            args_corrupt = not state.empty
        if args_corrupt:
            solve.call_reaches |= sub.reach_subsystems
            if sub.min_fault_distance is not None:
                solve.add_event(
                    ins.addr, POINTER_TRAPS | {TRAP_DIVIDE},
                    extra_lo=1 + sub.min_fault_distance,
                    extra_hi=None)
            state.regs["eax"] = CORRUPT_VALUE
        else:
            # Fresh return value computed from clean inputs.
            state.regs.pop("eax", None)
        return False

    def _value_taint(self, state, ins, depth, frame, addr_corrupt):
        """Taint kind of the value an instruction stores/moves."""
        if addr_corrupt:
            return CORRUPT_VALUE  # read through a wild pointer
        src = ins.src if ins.src is not None else \
            (ins.dst if ins.op == "push" else None)
        if src is None:
            return None
        kind = src[0]
        if kind == "r":
            return state.regs.get(REG_NAMES[src[1]])
        if kind == "r8":
            from repro.staticanalysis.dataflow import _R8_PARENT
            return state.regs.get(REG_NAMES[_R8_PARENT[src[1]]])
        if kind == "m":
            key = _slot_key(src[1], depth, frame)
            if key is not None:
                return state.slots.get(key)
            return CORRUPT_VALUE if state.mem else None
        return None

    # -- verdict assembly ---------------------------------------------

    def _verdict(self, info, cfg, ins, seed, solve):
        home = info.subsystem
        subsystems = {home}
        subsystems |= solve.call_reaches
        if solve.wild:
            subsystems.add(WILD_SUBSYSTEM)
        escapes_caller = solve.escapes_caller
        if escapes_caller:
            subsystems |= self.callers_of(info.name)
        if solve.diverged:
            subsystems |= self.summary(info.name).reach_subsystems

        traps = set()
        for event_traps, _, _ in solve.events.values():
            traps |= event_traps
        if solve.silent or not solve.events:
            traps.add(TRAP_NONE)
        if escapes_caller:
            traps |= POINTER_TRAPS

        lo, hi = self._latency_bounds(cfg, ins, solve)
        if escapes_caller:
            hi = None
        escapes = bool(subsystems - {home, None}) or escapes_caller
        return SiteVerdict(seed, traps, lo, hi, subsystems, escapes,
                           escapes_caller=escapes_caller)

    def _latency_bounds(self, cfg, site_ins, solve):
        """[lo, hi] instruction distances from the site to its events."""
        if not solve.events:
            return None, None
        callee_min = {}
        callee_max = {}
        for addr, target in cfg.calls:
            callee = None if target is None \
                else self._find_function(target)
            if callee is None:
                callee_min[addr] = 1
                callee_max[addr] = None
                continue
            sub = self.summary(callee.name)
            callee_min[addr] = 1 if sub.noreturn else 1 + sub.min_len
            callee_max[addr] = None if (sub.noreturn
                                        or sub.max_len is None) \
                else 1 + sub.max_len

        # Shortest distances (Dijkstra over the instruction graph).
        succs = self._instr_successors(cfg, callee_min)
        dist = {site_ins.addr: 0}
        heap = [(0, site_ins.addr)]
        while heap:
            d, addr = heapq.heappop(heap)
            if d > dist.get(addr, float("inf")):
                continue
            for succ, weight in succs.get(addr, ()):
                nd = d + (weight if weight is not None else 1)
                if nd < dist.get(succ, float("inf")):
                    dist[succ] = nd
                    heapq.heappush(heap, (nd, succ))

        lo = None
        for addr, (_, extra_lo, _) in solve.events.items():
            if addr not in dist:
                continue
            candidate = dist[addr] + extra_lo
            lo = candidate if lo is None else min(lo, candidate)
        if lo is None:
            lo = 0

        hi = self._upper_bound(cfg, site_ins, solve, callee_max)
        if hi is not None and hi < lo:
            hi = lo
        return lo, hi

    def _upper_bound(self, cfg, site_ins, solve, callee_max):
        """Longest site->event distance, ``None`` when unbounded."""
        if solve.wild or solve.diverged or solve.escapes_caller:
            return None
        if any(extra_hi is None
               for _, _, extra_hi in solve.events.values()):
            return None
        if any(weight is None for weight in callee_max.values()):
            return None
        order = self._topo_blocks(cfg)
        if order is None:
            return None
        site_block = cfg.block_at(site_ins.addr).start
        best = {}
        result = None
        started = False
        for start in order:
            if start == site_block:
                started = True
                total = 0
                skip = True
                for ins in cfg.blocks[start].instrs:
                    if skip:
                        if ins.addr == site_ins.addr:
                            skip = False
                        else:
                            continue
                    event = solve.events.get(ins.addr)
                    if event is not None:
                        candidate = total + (event[2] or 0)
                        result = candidate if result is None \
                            else max(result, candidate)
                    if ins.addr != site_ins.addr:
                        total += callee_max.get(ins.addr, 1)
                    else:
                        total += 1
                for succ in cfg.blocks[start].succs:
                    if total > best.get(succ, -1):
                        best[succ] = total
                continue
            if not started or start not in best:
                continue
            total = best[start]
            for ins in cfg.blocks[start].instrs:
                event = solve.events.get(ins.addr)
                if event is not None:
                    candidate = total + (event[2] or 0)
                    result = candidate if result is None \
                        else max(result, candidate)
                total += callee_max.get(ins.addr, 1)
            for succ in cfg.blocks[start].succs:
                if total > best.get(succ, -1):
                    best[succ] = total
        return result

    # -- image-level products -----------------------------------------

    def propagation_matrix(self, specs):
        """Static Figure 8: {src_subsystem: {dst_subsystem: sites}}.

        Counts, per home subsystem, the flip sites whose corruption
        can reach each destination subsystem (crash-predicting sites
        only — mirrors the dynamic matrix built from dumped crashes).
        """
        matrix = {}
        for spec in specs:
            verdict = self.analyze_spec(spec)
            if not verdict.predicts_crash:
                continue
            row = matrix.setdefault(spec.subsystem, {})
            for dst in verdict.subsystems:
                if dst is None:
                    continue
                row[dst] = row.get(dst, 0) + 1
        return matrix

    def leak_channels(self, name):
        """Cross-subsystem escape channels of one function.

        The ``propagation-leak`` lint: a channel is a call site into
        another subsystem (corrupted arguments ride along), a return
        to callers in other subsystems (corrupted ``eax`` rides
        along), or an indirect call (destination unknowable).
        Returns ``[(addr, description)]``.
        """
        info = self._by_name.get(name)
        if info is None:
            return []
        cfg = self.cfg(name)
        home = info.subsystem
        channels = []
        for addr, target in cfg.calls:
            if target is None:
                channels.append(
                    (addr, "indirect call: corrupted arguments may "
                           "reach any subsystem"))
                continue
            callee = self._find_function(target)
            if callee is None:
                continue
            reached = self.summary(callee.name).reach_subsystems \
                - {home, None}
            if reached:
                channels.append(
                    (addr, "call %s leaks corrupted defs into %s"
                     % (callee.name,
                        "+".join(sorted(str(s) for s in reached)))))
        foreign_callers = {s for s in self.callers_of(name)
                           if s not in (home, None)}
        if foreign_callers:
            channels.append(
                (info.start,
                 "returns into %s callers (corrupted eax escapes)"
                 % "+".join(sorted(foreign_callers))))
        return channels


def _mem_operand(ins):
    """The memory operand of *ins*, or ``None``."""
    for operand in (ins.dst, ins.src):
        if operand is not None and operand[0] == "m":
            return operand[1]
    return None


def _same_mem(a, b):
    if a is None or b is None:
        return a is b
    return (a.base == b.base and a.index == b.index
            and a.scale == b.scale and a.disp == b.disp)


def _is_global_mem(mem):
    return mem.base is None and mem.index is None


def _slot_key(mem, depth, frame):
    """Stack-slot key for a frame-relative memory operand, else None."""
    if mem is None or depth is None or mem.index is not None:
        return None
    disp = mem.disp or 0
    if disp >= (1 << 31):
        disp -= 1 << 32
    if mem.base == 4:                       # esp-relative
        return depth - disp
    if mem.base == 5 and frame is not None:  # ebp-relative
        return frame - disp
    return None
