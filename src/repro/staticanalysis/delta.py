"""Static kernel differ + FastFlip-style delta-campaign planner.

The campaigns in this repo are deterministic functions of (kernel
image, campaign key, seed, stride) — so when the kernel is rebuilt
with a small source change, most injection outcomes are *provably*
unchanged and can be carried forward from a prior campaign journal
instead of re-executed.  FastFlip (arXiv 2403.13989) does this with
per-section injection summaries; here the unit of reuse is the
function and the carrier is the campaign journal.

Fingerprints
------------

Every function gets two fingerprints:

* **own fingerprint** — sha256 over the *normalized* instruction
  stream.  Instructions without a relative branch displacement hash
  as ``(op, raw-bytes)`` verbatim; direct branches/calls hash as
  ``(op, cc, length, target-token)`` where the token is
  ``local:<offset>`` for intra-function targets,
  ``<callee>+<offset>`` when the target falls inside another known
  function, and ``ext:<addr>`` when it resolves to no function.
  Absolute addresses never enter the hash for control transfers, so a
  **pure move** (same bytes, different link address) keeps its own
  fingerprint; any single-byte *code* edit changes op, cc, length,
  raw bytes, or the resolved target token and therefore the
  fingerprint.
* **composed fingerprint** — sha256 over the own fingerprint plus the
  sorted own fingerprints of every function reachable through the
  call graph (``build_callgraph`` edges plus resolved *external
  branch targets*, so the trap stubs' tail ``jmp common_trap`` counts
  as an edge).  A changed callee anywhere in the forward closure
  changes the composed fingerprint of every transitive caller — the
  impact closure the planner uses.

Functions containing an indirect call/jump or an unresolved external
target are **fingerprint-opaque**: their outgoing edges cannot be
enumerated statically, so they are conservatively impacted whenever
*anything* changes (``kerncheck --rule fingerprint-opaque`` counts
them).  The data section is fingerprinted as one blob: any data
change (a flipped initializer, a moved table) forces a global re-run
because function fingerprints cannot see it.

Carry-forward rules
-------------------

The machine is a deterministic simulator, so a carried record is
bit-identical to a re-run exactly when the old run **never executed a
changed function**: corrupted data flowing through unchanged code is
harmless, because unchanged code on identical inputs behaves
identically.  The planner over-approximates each old run's executed
set statically and carries a record only when that set provably
avoids every changed (or moved) function.  The checks, in order:

1. no global invalidation (data section, added/removed functions,
   image base);
2. the site's function is byte-identical, unmoved, and outside the
   impact closure;
3. an old record exists at the same coordinates ``(function, addr,
   byte_offset, bit)`` with the same workload assignment, the same
   activation decision, and no enrichment (``pred_*``/``trace_*`` —
   an unenriched re-run could not reproduce those fields);
4. ``HARNESS_ERROR`` outcomes always re-run (they describe the
   harness, not the kernel);
5. a non-activated record is synthesized from the spec alone, so the
   checks above suffice — it carries;
6. an activated record's executed set is bounded by the **execution
   cone**: every function the boot + golden run of its workload
   executes (measured, instruction-granular), closed over the static
   call graph — the post-flip run can wrong-branch anywhere inside
   code golden executes, but direct calls can only reach the static
   closure.  The cone is unresolvable (carry nothing) if it meets an
   opaque function, except that the syscall dispatcher's indirect
   table call is *resolved*: its targets are the ``sys_call_table``
   entries for syscall numbers some user binary on disk can actually
   issue (user code is unchanged between kernels and uses direct
   calls only, so even a corrupted user process can only re-enter
   the kernel through its own ``int 0x80`` stubs).  On top of the
   cone: the trap-delivery roots must be unimpacted (a faulting run
   executes them even when golden did not), the recorded crash locus
   (crash_eip + nested dumps, resolved on the *base* kernel) must be
   unimpacted, and the site's propagation verdict must not be
   ``(wild)`` — a corrupted program counter escapes every static
   bound.

HANG / CRASH_UNKNOWN outcomes *do* carry when the rules above hold:
the watchdog budget derives from golden cycles of an unchanged
golden run, so a wedge wedges identically.  The one documented
approximation is user-space feedback: a kernel fault that smashes
user memory badly enough to repoint user control flow is bounded by
the user binaries' own syscall stubs, not modeled instruction-by-
instruction.  The ``delta_validation`` exhibit and
``benchmarks/bench_delta.py`` both gate the end result — delta ==
from-scratch **bit-identically** — on every CI run.

Carried records enter the new journal through
:meth:`~repro.injection.engine.CampaignJournal.record_carried` with a
``carried`` provenance block::

    {"source_journal": <old plan fingerprint>,
     "base_kernel":    <kernel fingerprint the journal ran against>,
     "new_kernel":     <kernel fingerprint being planned for>}

and the engine then resumes over the pre-seeded journal, executing
only the live remainder — which means a delta plan shards, merges,
resumes and journal-audits exactly like any other plan.
"""

import hashlib
import json
import os
import struct
import tempfile
from collections import Counter

from repro.injection.engine import (
    CampaignEngine,
    CampaignJournal,
    EngineConfig,
    plan_fingerprint,
    prefer_result,
    read_journal_lines,
)
from repro.injection.outcomes import (
    HARNESS_ERROR,
    InjectionResult,
)
from repro.isa.decoder import decode_all
from repro.staticanalysis.cfg import build_cfg_from_instrs
from repro.staticanalysis.propagation import (
    PropagationAnalyzer,
    WILD_SUBSYSTEM,
)

#: The hand-written entry points of the trap-delivery path.  An
#: activated injection can fault through these even when the golden
#: run never does, so activated records are only carried when the
#: whole trap path is unimpacted.
TRAP_ROOTS = (
    "divide_error", "debug_trap", "nmi_trap", "int3_trap",
    "overflow_trap", "bounds_trap", "invalid_op_trap",
    "device_na_trap", "double_fault_trap", "coproc_trap",
    "invalid_tss_trap", "segment_np_trap", "stack_fault_trap",
    "gpf_trap", "page_fault_trap", "common_trap",
)

#: Maximum cycles granted to the instrumented boot the planner uses
#: to learn which functions boot executes (mirrors the harness).
_BOOT_BUDGET = 10_000_000

#: The recovery-flag rebuild exercised by the ``delta_validation``
#: exhibit: invert the ``oops_recoverable`` gate so the fail-stop
#: kernel starts recovering oopses.  Verified size-preserving — the
#: rebuilt image differs from the base in exactly this one function.
RECOVERY_GATE_EDIT = (
    ("arch/i386/traps.c",
     "if (!recovery_enabled)\n        return 0;",
     "if (recovery_enabled)\n        return 0;"),
)

_INDIRECT = "<indirect>"


# ---------------------------------------------------------------------------
# fingerprinting


def _normalize_instr(kernel, info, ins):
    """One instruction's contribution to the own fingerprint."""
    if ins.rel is None:
        return (ins.op, ins.raw.hex())
    target = ins.addr + ins.length + ins.rel
    if info.start <= target < info.end:
        token = "local:%d" % (target - info.start)
    else:
        callee = kernel.find_function(target)
        if callee is None:
            token = "ext:%#x" % target
        else:
            token = "%s+%d" % (callee.name, target - callee.start)
    return (ins.op, ins.cc, ins.length, token)


def fingerprint_function(kernel, info, instrs=None):
    """Relocation-normalized own fingerprint of one function."""
    if instrs is None:
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        instrs = decode_all(code, base=info.start)
    records = [_normalize_instr(kernel, info, ins) for ins in instrs]
    blob = json.dumps(records, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def data_fingerprint(kernel):
    """Fingerprint of everything past ``__data_start`` (one blob)."""
    start = kernel.symbols.get("__data_start")
    if start is None:
        blob = bytes(kernel.code)
    else:
        blob = bytes(kernel.code[start - kernel.base:])
    return hashlib.sha256(blob).hexdigest()[:16]


class KernelFingerprints:
    """Per-function own/composed fingerprints + call edges of an image.

    ``edges`` maps each function to the names it can transfer control
    to (calls **and** resolved external branch targets); unresolvable
    transfers appear as ``<indirect>`` / ``ext:<addr>`` tokens and
    mark the function opaque (``opacity[name]`` holds the reason).
    """

    __slots__ = ("kernel", "own", "composed", "edges", "opacity",
                 "starts", "data")

    def __init__(self, kernel):
        self.kernel = kernel
        self.own = {}
        self.edges = {}
        self.opacity = {}
        self.starts = {}
        self.data = data_fingerprint(kernel)
        for info in kernel.functions:
            code = kernel.code[info.start - kernel.base:
                               info.end - kernel.base]
            instrs = decode_all(code, base=info.start)
            cfg = build_cfg_from_instrs(info, instrs)
            self.own[info.name] = fingerprint_function(
                kernel, info, instrs=instrs)
            self.starts[info.name] = info.start
            self.edges[info.name] = self._edges(kernel, info, cfg)
        self.composed = self._compose()

    def _edges(self, kernel, info, cfg):
        edges = set()
        reasons = []
        for _, target in cfg.calls:
            if target is None:
                edges.add(_INDIRECT)
                reasons.append("indirect call")
                continue
            callee = kernel.find_function(target)
            if callee is None:
                edges.add("ext:%#x" % target)
                reasons.append("unresolved call target %#x" % target)
            else:
                edges.add(callee.name)
        for target in cfg.external_targets:
            callee = kernel.find_function(target)
            if callee is None:
                edges.add("ext:%#x" % target)
                reasons.append("unresolved branch target %#x" % target)
            else:
                edges.add(callee.name)
        if cfg.has_indirect_jump:
            edges.add(_INDIRECT)
            reasons.append("indirect jump")
        if cfg.has_bad_instr:
            reasons.append("undecodable bytes")
        if reasons:
            self.opacity[info.name] = sorted(set(reasons))
        return edges

    def _closure(self, name):
        """Forward transitive closure of *name* over ``edges``."""
        seen = set()
        work = [name]
        while work:
            for callee in self.edges.get(work.pop(), ()):
                if callee not in seen:
                    seen.add(callee)
                    if callee in self.edges:
                        work.append(callee)
        return seen

    def _compose(self):
        composed = {}
        for name in self.own:
            parts = [self.own[name]]
            for callee in sorted(self._closure(name)):
                # Pseudo-targets (<indirect>, ext:...) hash as
                # themselves: gaining or losing one changes the
                # composition even though it has no own fingerprint.
                parts.append("%s=%s" % (callee,
                                        self.own.get(callee, "?")))
            blob = "|".join(parts)
            composed[name] = hashlib.sha256(
                blob.encode()).hexdigest()[:16]
        return composed


def fingerprint_kernel(kernel):
    """Fingerprint every function of *kernel*; cached per image."""
    return KernelFingerprints(kernel)


def opaque_functions(kernel):
    """``{name: [reasons]}`` of fingerprint-opaque functions.

    A function is opaque when its outgoing control transfers cannot
    be fully enumerated statically (indirect call/jump, a branch
    target outside every known function, undecodable bytes); the
    differ treats every opaque function as impacted whenever any
    function changes.  Shared with the ``fingerprint-opaque`` lint
    rule.
    """
    return dict(fingerprint_kernel(kernel).opacity)


# ---------------------------------------------------------------------------
# syscall-dispatch resolution


def user_syscall_numbers(binary):
    """Syscall numbers *binary* can issue, or ``None`` if unprovable.

    Walks the direct-call closure from the entry point (user code
    carries no indirect calls) and, along each reached function,
    symbolically tracks the immediate that the MinC syscall stubs
    push and later ``pop eax`` right before ``int 0x80``.  Returns
    the exact set of issuable numbers; any indirect call, undecodable
    stream, or ``int`` with an untracked ``eax`` yields ``None`` —
    the caller must then assume every number.
    """
    try:
        ins_list = decode_all(binary.image,
                              base=binary.entry & ~0xFFF)
    except Exception:
        return None
    by_addr = {ins.addr: ins for ins in ins_list}
    addrs = sorted(by_addr)
    index = {addr: n for n, addr in enumerate(addrs)}
    numbers = set()
    seen = set()
    work = [binary.entry]
    while work:
        start = work.pop()
        if start in seen:
            continue
        seen.add(start)
        if start not in index:
            return None                   # call into undecoded bytes
        eax = None
        stack = []
        for n in range(index[start], len(addrs)):
            ins = by_addr[addrs[n]]
            op = ins.op
            if op == "call":
                if ins.rel is None:
                    return None
                work.append(ins.addr + ins.length + ins.rel)
                eax = None
                stack = []
            elif op == "call_ind":
                return None
            elif op == "int":
                if eax is None:
                    return None
                numbers.add(eax)
            elif op == "mov" and ins.dst == ("r", 0):
                eax = (ins.src[1]
                       if ins.src and ins.src[0] == "i" else None)
            elif op == "push":
                stack.append(eax if ins.dst == ("r", 0) else None)
            elif op == "pop":
                value = stack.pop() if stack else None
                if ins.dst == ("r", 0):
                    eax = value
            elif op == "ret":
                break
            elif ins.dst == ("r", 0):
                eax = None
    return numbers


def issuable_syscalls(binaries):
    """Union of syscall numbers any of *binaries* can issue.

    Every shipped binary lands on the boot disk, and a corrupted
    ``exec`` path could start any of them, so the union is the sound
    bound on what user space can dispatch.  ``None`` when any binary
    defeats the scan (assume everything).
    """
    union = set()
    for binary in binaries.values():
        numbers = user_syscall_numbers(binary)
        if numbers is None:
            return None
        union |= numbers
    return union


def resolve_syscall_dispatch(kernel, prints, numbers=None):
    """Resolve indirect syscall-table dispatch: ``{fn: handlers}``.

    A function qualifies as the dispatcher when its *only* opacity is
    a single indirect call and it bounds-checks ``eax`` against an
    immediate N for which all N words at ``sys_call_table`` are
    function entry points.  Its resolved targets are those handlers —
    restricted to *numbers* when given (the user-issuable set).
    Returns ``{}`` when nothing resolves; cone computation then treats
    the dispatcher as opaque and carries nothing through it.
    """
    table = kernel.symbols.get("sys_call_table")
    if table is None:
        return {}
    resolved = {}
    for name, reasons in prints.opacity.items():
        if reasons != ["indirect call"]:
            continue
        info = next((f for f in kernel.functions if f.name == name),
                    None)
        if info is None:
            continue
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        instrs = decode_all(code, base=info.start)
        if sum(1 for ins in instrs if ins.op == "call_ind") != 1:
            continue
        bounds = [ins.src[1] for ins in instrs
                  if ins.op == "cmp" and ins.dst == ("r", 0)
                  and ins.src and ins.src[0] == "i"]
        for count in bounds:
            if not 0 < count <= 512:
                continue
            offset = table - kernel.base
            if offset + 4 * count > len(kernel.code):
                continue
            words = struct.unpack_from("<%dI" % count, kernel.code,
                                       offset)
            handlers = {}
            for number, word in enumerate(words):
                target = kernel.find_function(word)
                if target is None or target.start != word:
                    handlers = None
                    break
                handlers[number] = target.name
            if handlers is None:
                continue
            wanted = (set(handlers) if numbers is None
                      else set(numbers) & set(handlers))
            resolved[name] = frozenset(handlers[n] for n in wanted)
            break
    return resolved


def _execution_cone(prints, executed, dispatch):
    """Close *executed* function names over the call graph.

    *dispatch* substitutes resolved targets for a dispatcher's
    indirect call.  Returns ``None`` — cone unresolvable — when the
    closure meets any other opaque edge (``<indirect>`` /
    ``ext:<addr>``), or when *executed* itself is ``None``.
    """
    if executed is None:
        return None
    cone = set()
    work = [name for name in executed if name in prints.edges]
    cone.update(work)
    while work:
        name = work.pop()
        edges = prints.edges.get(name, ())
        resolved = dispatch.get(name)
        for target in edges:
            if target == _INDIRECT or target.startswith("ext:"):
                if resolved is None:
                    return None
                continue
            if target not in cone:
                cone.add(target)
                if target in prints.edges:
                    work.append(target)
        if resolved:
            for target in resolved:
                if target not in cone:
                    cone.add(target)
                    if target in prints.edges:
                        work.append(target)
    return cone


# ---------------------------------------------------------------------------
# diffing


class KernelDiff:
    """Function-level difference between two kernel images.

    Name sets (all on the *new* image unless noted): ``changed`` (own
    fingerprint differs), ``moved`` (same bytes, different address),
    ``unchanged``, ``added``, ``removed`` (base-only names), and
    ``impacted`` — the carry-blocking closure: changed functions,
    every transitive caller of one (composed fingerprint differs),
    and — when anything at all changed — every fingerprint-opaque
    function.  ``global_reasons`` is non-empty when no record can be
    carried at all (data-section change, added/removed functions,
    relinked image base).
    """

    __slots__ = ("base", "new", "changed", "moved", "unchanged",
                 "added", "removed", "impacted", "opaque",
                 "data_changed", "global_reasons", "trap_impacted")

    def __init__(self, base, new):
        self.base = base
        self.new = new
        base_names = set(base.own)
        new_names = set(new.own)
        self.added = new_names - base_names
        self.removed = base_names - new_names
        common = base_names & new_names
        self.changed = {n for n in common
                        if base.own[n] != new.own[n]}
        self.moved = {n for n in common - self.changed
                      if base.starts[n] != new.starts[n]}
        self.unchanged = common - self.changed - self.moved
        self.opaque = set(new.opacity)
        self.data_changed = base.data != new.data
        self.global_reasons = []
        if self.data_changed:
            self.global_reasons.append("data-section-changed")
        if self.added:
            self.global_reasons.append(
                "functions-added: %s" % ", ".join(sorted(self.added)))
        if self.removed:
            self.global_reasons.append(
                "functions-removed: %s"
                % ", ".join(sorted(self.removed)))
        if base.kernel.base != new.kernel.base:
            self.global_reasons.append("image-base-changed")
        impacted = set(self.added)
        for name in common:
            if base.composed[name] != new.composed[name]:
                impacted.add(name)
        if self.any_change:
            impacted |= self.opaque
        self.impacted = impacted
        self.trap_impacted = sorted(
            n for n in TRAP_ROOTS
            if n in self.impacted or n in self.removed)

    @property
    def any_change(self):
        return bool(self.changed or self.added or self.removed
                    or self.data_changed or self.moved)

    def summary(self):
        return {
            "changed": sorted(self.changed),
            "moved": sorted(self.moved),
            "added": sorted(self.added),
            "removed": sorted(self.removed),
            "unchanged": len(self.unchanged),
            "impacted": sorted(self.impacted),
            "opaque": len(self.opaque),
            "data_changed": self.data_changed,
            "trap_impacted": self.trap_impacted,
            "global_reasons": list(self.global_reasons),
        }


def diff_kernels(base, new):
    """Diff two :class:`KernelImage` (or pre-computed fingerprint)
    objects into a :class:`KernelDiff`."""
    if not isinstance(base, KernelFingerprints):
        base = fingerprint_kernel(base)
    if not isinstance(new, KernelFingerprints):
        new = fingerprint_kernel(new)
    return KernelDiff(base, new)


# ---------------------------------------------------------------------------
# journal access


def _journal_header(records, path):
    for record in records:
        if record.get("type") in ("header", "shard_header"):
            return record
    raise ValueError("%s is not a campaign journal (no header)" % path)


def load_journal_results(path):
    """``(header, {coords: InjectionResult})`` from a campaign journal.

    Coordinates are ``(function, addr, byte_offset, bit,
    fault_model)`` — the same identity the engine journals under —
    so records match across plans whose indices differ.  Duplicate
    records (replays, shard merges) collapse through
    :func:`~repro.injection.engine.prefer_result`.
    """
    records, _ = read_journal_lines(path)
    header = _journal_header(records, path)
    by_coords = {}
    for record in records:
        if record.get("type") != "result":
            continue
        payload = record.get("result") or {}
        result = InjectionResult.from_dict(payload)
        coords = (result.function, result.addr, result.byte_offset,
                  result.bit, result.fault_model)
        if coords in by_coords:
            by_coords[coords] = prefer_result(by_coords[coords], result)
        else:
            by_coords[coords] = result
    return header, by_coords


def write_results_journal(results, path):
    """Materialize a :class:`CampaignResults` as a campaign journal.

    Lets in-memory (or JSON-cached) campaign results act as the
    delta source when the original run kept no journal.
    """
    meta = results.meta
    journal = CampaignJournal(path)
    journal.start(meta["fingerprint"], meta["campaign"], meta["seed"],
                  len(results.results), fresh=True)
    try:
        for index, result in enumerate(results.results):
            journal.record(index, result)
    finally:
        journal.close()
    return path


# ---------------------------------------------------------------------------
# planning


def _enriched(result):
    """True when the record carries pred_*/trace_* enrichment (a
    fresh unenriched run could not reproduce it bit-identically)."""
    fields = ("pred_class", "pred_seed", "pred_traps",
              "pred_subsystems", "trace_diverged", "trace_complete")
    return any(getattr(result, f) is not None for f in fields)


class DeltaPlan:
    """A campaign plan split into carried and live sites."""

    __slots__ = ("campaign", "seed", "byte_stride", "functions",
                 "specs", "fingerprint", "diff", "carried",
                 "live_indices", "reasons", "provenance")

    def __init__(self, campaign, seed, byte_stride, functions, specs,
                 fingerprint, diff, carried, live_indices, reasons,
                 provenance):
        self.campaign = campaign
        self.seed = seed
        self.byte_stride = byte_stride
        self.functions = functions
        self.specs = specs
        self.fingerprint = fingerprint
        self.diff = diff
        self.carried = carried
        self.live_indices = live_indices
        self.reasons = reasons
        self.provenance = provenance

    @property
    def rerun_fraction(self):
        if not self.specs:
            return 0.0
        return len(self.live_indices) / len(self.specs)

    def summary(self):
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "byte_stride": self.byte_stride,
            "n_specs": len(self.specs),
            "carried": len(self.carried),
            "live": len(self.live_indices),
            "rerun_fraction": round(self.rerun_fraction, 4),
            "reasons": dict(self.reasons),
            "diff": self.diff.summary(),
            "provenance": dict(self.provenance),
        }

    def seed_journal(self, journal):
        """Record every carried result into an already-started
        journal (main journals and shard journals alike)."""
        for index in sorted(self.carried):
            journal.record_carried(index, self.carried[index],
                                   self.provenance)


def _kernel_fp(kernel):
    from repro.injection.fabric import kernel_fingerprint
    return kernel_fingerprint(kernel)


def plan_delta(harness, base_kernel, source_journal, campaign_key,
               seed=2003, byte_stride=1, functions=None,
               max_per_function=None, max_specs=None):
    """Plan campaign *campaign_key* on ``harness.kernel``, carrying
    forward every record of *source_journal* (run against
    *base_kernel*) that the differ proves equivalent.

    Returns a :class:`DeltaPlan`.  The harness must be a plain
    untraced harness: trace/verdict enrichment embeds absolute
    addresses and timings the differ does not model.
    """
    if getattr(harness, "trace", False):
        raise ValueError("delta planning requires an untraced harness")
    header, old = load_journal_results(source_journal)
    base_prints = fingerprint_kernel(base_kernel)
    new_prints = fingerprint_kernel(harness.kernel)
    diff = KernelDiff(base_prints, new_prints)
    functions, specs = harness.plan_specs(
        campaign_key, functions=functions, seed=seed,
        byte_stride=byte_stride, max_per_function=max_per_function,
        max_specs=max_specs)
    fingerprint = plan_fingerprint(campaign_key, specs, seed,
                                   byte_stride)
    provenance = {
        "source_journal": header.get("fingerprint"),
        "base_kernel": _kernel_fp(base_kernel),
        "new_kernel": _kernel_fp(harness.kernel),
    }

    touched = diff.changed | diff.moved
    blocked = diff.impacted | diff.moved
    analyzer = PropagationAnalyzer(harness.kernel)
    dispatch = resolve_syscall_dispatch(
        harness.kernel, new_prints,
        numbers=issuable_syscalls(harness.binaries))
    cones = {}

    def executed_functions(workload):
        """Function names boot + golden execution of *workload*
        touches, measured instruction-by-instruction.  ``None`` when
        the instrumented boot fails (carry nothing)."""
        from repro.injection.runner import BOOT_MARKER
        from repro.machine.machine import Machine, build_standard_disk
        coverage = set()
        disk = build_standard_disk(harness.binaries, workload)
        machine = Machine(harness.kernel, disk)
        if harness.recovery:
            machine.enable_recovery()
        if harness.disk_retries:
            machine.enable_disk_retry(harness.disk_retries)
        try:
            machine.run_until_console(BOOT_MARKER,
                                      max_cycles=_BOOT_BUDGET,
                                      coverage=coverage)
        except Exception:
            return None
        coverage |= harness.golden(workload).coverage
        names = set()
        for eip in coverage:
            info = harness.kernel.find_function(eip)
            if info is not None:
                names.add(info.name)
        return names

    def cone_blocked(workload):
        """True unless the workload's execution cone — every function
        boot/golden executes, closed over the (dispatch-resolved)
        call graph — provably avoids every changed/moved function."""
        if not touched:
            return False
        verdict = cones.get(workload)
        if verdict is None:
            executed = executed_functions(workload)
            cone = _execution_cone(new_prints, executed, dispatch)
            verdict = cone is None or bool(cone & touched)
            cones[workload] = verdict
        return verdict

    def crash_locus_blocked(result):
        eips = [result.crash_eip]
        for nested in result.nested_crashes or ():
            if isinstance(nested, dict):
                eips.append(nested.get("eip"))
        for eip in eips:
            if eip is None:
                continue
            info = base_kernel.find_function(eip)
            if info is None or info.name in blocked:
                return True
        return False

    def live_reason(spec):
        if diff.global_reasons:
            return "global"
        if spec.fault_model is not None:
            return "fault-model"
        if spec.function in diff.impacted:
            return "impacted"
        if spec.function in diff.moved:
            return "moved"
        coords = (spec.function, spec.instr_addr, spec.byte_offset,
                  spec.bit, None)
        old_result = old.get(coords)
        if old_result is None:
            return "new-site"
        if _enriched(old_result):
            return "enriched-source"
        covered = harness.assign_workload(spec)
        if old_result.workload != spec.workload:
            return "workload-changed"
        if bool(old_result.activated) != bool(covered):
            return "activation-changed"
        if old_result.outcome == HARNESS_ERROR:
            return "harness-error"
        if not covered:
            return None                     # NOT_ACTIVATED carries
        if not diff.any_change:
            return None          # identical images: trivially carries
        if diff.trap_impacted:
            return "trap-path"
        if crash_locus_blocked(old_result):
            return "crash-locus"
        if WILD_SUBSYSTEM in analyzer.analyze_spec(spec).subsystems:
            return "wild"
        if cone_blocked(spec.workload):
            return "execution-cone"
        return None

    carried = {}
    live_indices = []
    reasons = Counter()
    for index, spec in enumerate(specs):
        reason = live_reason(spec)
        if reason is None:
            carried[index] = old[(spec.function, spec.instr_addr,
                                  spec.byte_offset, spec.bit, None)]
        else:
            live_indices.append(index)
            reasons[reason] += 1
    return DeltaPlan(campaign_key, seed, byte_stride, functions,
                     specs, fingerprint, diff, carried, live_indices,
                     reasons, provenance)


# ---------------------------------------------------------------------------
# execution


def run_delta_campaign(harness, base_kernel, source_journal,
                       campaign_key, seed=2003, byte_stride=1,
                       functions=None, max_per_function=None,
                       max_specs=None, grade=True, progress=None,
                       jobs=1, timeout=None, retries=2,
                       max_worker_failures=3, journal_path=None):
    """Run a delta campaign; returns a normal ``CampaignResults``.

    Plans with :func:`plan_delta`, pre-seeds the journal with every
    carried record (provenance attached), then lets the standard
    engine resume over it — only live sites execute.
    ``meta["delta"]`` carries the plan summary (re-run fraction,
    per-reason live counts, the diff digest, provenance).
    """
    from repro.injection.runner import CampaignResults
    plan = plan_delta(harness, base_kernel, source_journal,
                      campaign_key, seed=seed, byte_stride=byte_stride,
                      functions=functions,
                      max_per_function=max_per_function,
                      max_specs=max_specs)
    if journal_path is None:
        workdir = tempfile.mkdtemp(prefix="delta_campaign_")
        journal_path = os.path.join(workdir, "delta.journal.jsonl")
    journal = CampaignJournal(journal_path)
    journal.start(plan.fingerprint, campaign_key, seed,
                  len(plan.specs), fresh=True)
    try:
        plan.seed_journal(journal)
    finally:
        journal.close()
    config = EngineConfig(jobs=jobs, timeout=timeout, retries=retries,
                          max_worker_failures=max_worker_failures,
                          journal_path=journal_path, resume=True)
    engine = CampaignEngine(harness, config)
    results, engine_meta = engine.execute(
        campaign_key, plan.specs, seed, byte_stride, grade=grade,
        progress=progress)
    meta = {
        "campaign": campaign_key,
        "seed": seed,
        "byte_stride": byte_stride,
        "n_targets": len(plan.functions),
        "fingerprint": plan.fingerprint,
        "engine": engine_meta,
        "delta": plan.summary(),
    }
    return CampaignResults(campaign_key, results, meta)


def seed_shard_journals(plan, shards, workdir):
    """Pre-seed one shard journal per shard with the plan's carried
    records; returns the journal paths.

    A delta plan shards like any other plan: each shard journal gets
    the carried records that fall inside its index slice, and
    ``run_shard(..., resume=True)`` over the pre-seeded journal then
    executes only that shard's live sites.  The merged result is
    bit-identical to the serial delta run.
    """
    from repro.injection.fabric import ShardJournal
    os.makedirs(workdir, exist_ok=True)
    paths = []
    for shard in shards:
        path = os.path.join(
            workdir, "shard_%d_of_%d.journal.jsonl"
            % (shard.index, shard.count))
        subset = [plan.specs[i] for i in shard.indices]
        fingerprint = plan_fingerprint(plan.campaign, subset,
                                       plan.seed, plan.byte_stride)
        journal = ShardJournal(path, shard)
        journal.start(fingerprint, plan.campaign, plan.seed,
                      len(subset), fresh=True)
        try:
            for local, global_index in enumerate(shard.indices):
                if global_index in plan.carried:
                    journal.record_carried(
                        local, plan.carried[global_index],
                        plan.provenance)
        finally:
            journal.close()
        paths.append(path)
    return paths
