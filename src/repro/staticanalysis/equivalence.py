"""Fault-site equivalence classes: pilot campaigns + audited
extrapolation.

The campaigns inject every sampled bit-flip site even though most
sites are provably redundant: flips with the same instruction shape,
the same flipped-bit semantic role, the same liveness of the clobbered
definitions and the same symbolic propagation verdict overwhelmingly
produce the same dynamic outcome.  PR 8's delta campaigns exploit
that redundancy across kernel *versions*; this module exploits it
across *sites within one kernel* (the scaling move of the
CentOS-like-OS study, arXiv 2210.08728 — see PAPERS.md).

Class fingerprint
-----------------

:class:`SitePartitioner` keys every plannable injection site by a
canonical **class fingerprint** — a sha256 digest over:

* the instruction shape: op, coarse instruction class, encoded length
  (:func:`repro.injection.campaigns.instruction_class`);
* the flipped bit's semantic role — the
  :func:`repro.staticanalysis.predict.classify_flip` verdict for the
  exact ``(byte, bit)``, so an opcode-smashing flip never shares a
  class with a dead-write flip of the same instruction;
* liveness of the clobbered definitions: the instruction's may-defs
  intersected with the live-after set from
  :mod:`repro.staticanalysis.dataflow`;
* the propagation verdict digest from
  :mod:`repro.staticanalysis.propagation` — predicted trap set,
  order-of-magnitude latency band, reachable-subsystem spread and the
  escape flags of the site's :class:`SiteVerdict`;
* containing-function and call-graph context: the function's
  *composed* fingerprint from :mod:`repro.staticanalysis.delta`
  (own instruction stream + forward call closure) and its subsystem.

Sites carrying a pluggable ``fault_model`` dict have no flipped
instruction byte; they class by the canonical model dict plus the
same function context instead.

Pilot campaigns
---------------

:func:`plan_equivalence` partitions a campaign plan, refines each
static class by the deterministic activation decision (workload
assignment + golden coverage — an uncovered site's outcome is provably
``NOT_ACTIVATED``, so uncovered sites collapse into one dormant class
per workload), then selects ``K`` seeded pilots per class (default 2)
and a seeded audit fraction of the non-pilot members.

:func:`run_equiv_campaign` executes in two rounds through the standard
fault-tolerant engine.  Round one runs only the pilots; a class whose
pilots already disagree is split on the first discriminating site
feature (byte offset, then bit, then instruction address, then
singletons) and the subgroups are re-piloted, so gross static
misgroupings are caught and repaired *before* any accuracy is
measured.  Round two runs the audits and grades each one against its
refined class's pilot outcome — that measured purity is the
``audit_accuracy`` the ``equivalence_validation`` exhibit gates.  A
class an audit catches impure is split and re-piloted the same way
until every group's observed outcomes agree.

Only then does extrapolation happen: each remaining member is
journaled via
:meth:`~repro.injection.engine.CampaignJournal.record_extrapolated`
with ``{"pilot_index", "class_fp", "n_members"}`` provenance.  The
journal keeps a plain full-plan header, so
``CampaignJournal.load``/resume and the fabric's
``merge_shard_journals`` accept it unchanged (extrapolated records are
ordinary result records with one extra key that loaders ignore).

An extrapolated record clones its pilot's dynamic fields;
site-identity and static-enrichment fields are the member's own.
Crash loci, latencies and console tails are therefore the *pilot's* —
the documented approximation, bounded by the audit and gated by the
``equivalence_validation`` exhibit and ``benchmarks/bench_equiv.py``
on every CI run.  Harness errors describe the rig, not the kernel:
a group that observed one never extrapolates — every member runs.
"""

import hashlib
import json
import os
import random
import tempfile

from repro.injection.campaigns import instruction_class
from repro.injection.engine import (
    CampaignEngine,
    CampaignJournal,
    EngineConfig,
    plan_fingerprint,
)
from repro.injection.outcomes import HARNESS_ERROR, InjectionResult
from repro.staticanalysis.dataflow import (
    ALL_RESOURCES,
    instr_defs_uses,
)
from repro.staticanalysis.delta import fingerprint_kernel
from repro.staticanalysis.predict import PRED_UNKNOWN, PreClassifier
from repro.staticanalysis.propagation import (
    PropagationAnalyzer,
    trap_of_cause,
)

#: Ladder of site features an impure class is split on, most
#: semantically meaningful first; a class no feature discriminates
#: falls apart into singletons (which are trivially pure).
SPLIT_FEATURES = ("byte_offset", "bit", "instr_addr")

#: Result fields that identify the *site* (or derive statically from
#: its spec); an extrapolated record takes these from the member spec
#: and everything else from its pilot's dynamic outcome.
_SITE_FIELDS = (
    "campaign", "function", "subsystem", "addr", "byte_offset", "bit",
    "mnemonic", "instr_class", "is_branch", "pred_class", "pred_traps",
    "pred_latency_lo", "pred_latency_hi", "pred_subsystems",
    "pred_seed", "workload",
)


def _digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _latency_band(value):
    """Order-of-magnitude band of a latency bound (``None`` = open)."""
    if value is None:
        return "open"
    value = int(value)
    if value <= 0:
        return "0"
    return "1e%d" % (len(str(value)) - 1)


class SitePartitioner:
    """Static equivalence-class fingerprints for injection sites.

    Stateless apart from caches; the same kernel image always yields
    the same features and the same class fingerprint for a site, so
    fingerprints are stable across partitioner instances (and across
    re-decodes of the image).
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self._pre = PreClassifier(kernel)
        self._analyzer = PropagationAnalyzer(kernel)
        self._prints = None
        self._cache = {}

    def _composed_fp(self, function):
        if self._prints is None:
            self._prints = fingerprint_kernel(self.kernel)
        return self._prints.composed.get(function, "?")

    def features(self, spec):
        """Canonical (JSON-able) class features of one planned spec."""
        fault_model = getattr(spec, "fault_model", None)
        if fault_model is not None:
            return {
                "kind": "model",
                "model": fault_model,
                "function": spec.function,
                "subsystem": spec.subsystem,
                "context": self._composed_fp(spec.function),
            }
        return self.features_site(spec.function, spec.instr_addr,
                                  spec.byte_offset, spec.bit)

    def features_site(self, function, instr_addr, byte_offset, bit):
        """Class features of a raw ``(function, addr, byte, bit)``."""
        key = (function, instr_addr, byte_offset, bit)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        state = self._pre._function_state(function)
        if state is None:
            feats = {"kind": "unknown", "function": function}
            self._cache[key] = feats
            return feats
        info, code, instrs, live = state
        ins = instrs.get(instr_addr)
        verdict = self._analyzer.analyze_site(function, instr_addr,
                                              byte_offset, bit)
        feats = {
            "kind": "flip",
            "subsystem": info.subsystem,
            "context": self._composed_fp(function),
            "traps": sorted(verdict.traps),
            "latency": [_latency_band(verdict.latency_lo),
                        _latency_band(verdict.latency_hi)],
            "spread": sorted(verdict.subsystems),
            "escapes": [bool(verdict.escapes),
                        bool(verdict.escapes_caller)],
        }
        if ins is None:
            feats.update(op=None, iclass=None, ilen=None,
                         flip=PRED_UNKNOWN, live_defs=["?"])
        else:
            from repro.staticanalysis.predict import classify_flip
            live_after = live.get(instr_addr, ALL_RESOURCES)
            effect = instr_defs_uses(ins)
            feats.update(
                op=ins.op,
                iclass=instruction_class(ins),
                ilen=ins.length,
                flip=classify_flip(code, info.start, ins, byte_offset,
                                   bit, live_after),
                live_defs=sorted(effect.may_defs & live_after),
            )
        self._cache[key] = feats
        return feats

    def fingerprint(self, spec):
        """The class fingerprint of one planned spec."""
        return _digest(self.features(spec))

    def fingerprint_site(self, function, instr_addr, byte_offset, bit):
        return _digest(self.features_site(function, instr_addr,
                                          byte_offset, bit))

    def partition(self, specs):
        """Group spec indices by class fingerprint.

        Returns ``{class_fp: [indices]}`` (indices in plan order).
        """
        classes = {}
        for index, spec in enumerate(specs):
            classes.setdefault(self.fingerprint(spec), []).append(index)
        return classes


class EquivClass:
    """One activation-refined equivalence class inside a plan."""

    __slots__ = ("fp", "features", "members", "pilots", "audits")

    def __init__(self, fp, features, members, pilots, audits):
        self.fp = fp
        self.features = features
        self.members = tuple(members)
        self.pilots = tuple(pilots)
        self.audits = tuple(audits)

    @property
    def injected(self):
        return tuple(sorted(set(self.pilots) | set(self.audits)))


class EquivalencePlan:
    """A campaign plan split into pilots, audits and extrapolations."""

    __slots__ = ("campaign", "seed", "byte_stride", "functions",
                 "specs", "fingerprint", "classes", "pilots_per_class",
                 "audit_fraction")

    def __init__(self, campaign, seed, byte_stride, functions, specs,
                 fingerprint, classes, pilots_per_class,
                 audit_fraction):
        self.campaign = campaign
        self.seed = seed
        self.byte_stride = byte_stride
        self.functions = functions
        self.specs = specs
        self.fingerprint = fingerprint
        self.classes = classes
        self.pilots_per_class = pilots_per_class
        self.audit_fraction = audit_fraction

    @property
    def injected_indices(self):
        injected = set()
        for cls in self.classes.values():
            injected.update(cls.injected)
        return sorted(injected)

    @property
    def injected_fraction(self):
        if not self.specs:
            return 0.0
        return len(self.injected_indices) / len(self.specs)

    def summary(self):
        sizes = sorted((len(c.members) for c in self.classes.values()),
                       reverse=True)
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "byte_stride": self.byte_stride,
            "n_specs": len(self.specs),
            "n_classes": len(self.classes),
            "pilots": sum(len(c.pilots)
                          for c in self.classes.values()),
            "audits": sum(len(c.audits)
                          for c in self.classes.values()),
            "planned_injected": len(self.injected_indices),
            "planned_fraction": round(self.injected_fraction, 4),
            "pilots_per_class": self.pilots_per_class,
            "audit_fraction": self.audit_fraction,
            "largest_class": sizes[0] if sizes else 0,
            "singletons": sum(1 for s in sizes if s == 1),
        }


def _refined_classes(harness, specs, partitioner):
    """Activation-refined partition: ``{fp: (features, [indices])}``.

    A covered site's class is its static fingerprint refined by the
    assigned workload; uncovered sites collapse into one dormant class
    per workload — their outcome is provably ``NOT_ACTIVATED``
    (deterministic coverage), so static features cannot discriminate
    further.
    """
    refined = {}
    for index, spec in enumerate(specs):
        covered = harness.assign_workload(spec)
        if covered:
            features = dict(partitioner.features(spec))
            features["workload"] = spec.workload
            fp = _digest(features)
        else:
            features = {"kind": "dormant", "workload": spec.workload}
            fp = _digest(features)
        entry = refined.setdefault(fp, (features, []))
        entry[1].append(index)
    return refined


def plan_equivalence(harness, campaign_key, seed=2003, byte_stride=1,
                     functions=None, max_per_function=None,
                     max_specs=None, specs=None, pilots_per_class=2,
                     audit_fraction=0.15, prune_dead=False,
                     partitioner=None):
    """Partition campaign *campaign_key* into equivalence classes and
    select seeded pilots + audits; returns an :class:`EquivalencePlan`.

    *specs* short-circuits planning with a pre-built spec list (how
    fault-model campaigns and externally pruned plans compose);
    *prune_dead* drops statically dead sites before partitioning,
    exactly like ``run_campaign``'s planner flag.
    """
    if specs is None:
        functions, specs = harness.plan_specs(
            campaign_key, functions=functions, seed=seed,
            byte_stride=byte_stride,
            max_per_function=max_per_function, max_specs=max_specs,
            prune_dead=prune_dead)
    else:
        specs = list(specs)
        functions = functions or []
        if prune_dead:
            from repro.injection.campaigns import apply_predictions
            specs = apply_predictions(harness.kernel, specs,
                                      prune_dead=True)
    fingerprint = plan_fingerprint(campaign_key, specs, seed,
                                   byte_stride)
    if partitioner is None:
        partitioner = SitePartitioner(harness.kernel)
    refined = _refined_classes(harness, specs, partitioner)
    classes = {}
    for fp in sorted(refined):
        features, members = refined[fp]
        rng = random.Random(repr((seed, "equiv-pilot", fp)))
        pilots = sorted(rng.sample(members,
                                   min(pilots_per_class,
                                       len(members))))
        rest = [m for m in members if m not in pilots]
        rng = random.Random(repr((seed, "equiv-audit", fp)))
        audits = [m for m in rest if rng.random() < audit_fraction]
        classes[fp] = EquivClass(fp, features, members, pilots, audits)
    _ensure_audited(classes, seed)
    return EquivalencePlan(campaign_key, seed, byte_stride, functions,
                           specs, fingerprint, classes,
                           pilots_per_class, audit_fraction)


def _ensure_audited(classes, seed):
    """Guarantee at least one audit when any class has siblings.

    The seeded Bernoulli draw can legitimately select zero audits on a
    tiny plan, which would leave extrapolation accuracy unmeasured;
    force one audit in the largest multi-member class instead.
    """
    if any(c.audits for c in classes.values()):
        return
    candidates = [c for c in classes.values()
                  if len(c.members) > len(c.pilots)]
    if not candidates:
        return
    target = max(candidates,
                 key=lambda c: (len(c.members), c.fp))
    rest = [m for m in target.members if m not in target.pilots]
    rng = random.Random(repr((seed, "equiv-audit-force", target.fp)))
    classes[target.fp] = EquivClass(target.fp, target.features,
                                    target.members, target.pilots,
                                    (rng.choice(rest),))


class _EquivJournal(CampaignJournal):
    """Journal adapter for running a subset of a plan's indices.

    The engine executes pilots/audits as a dense local spec list; this
    adapter journals them under their *global* plan indices beneath a
    plain full-plan header, so the on-disk file is an ordinary
    campaign journal of the whole plan (loadable, resumable and
    fabric-mergeable as the degenerate 1/1 shard) that simply has not
    completed its extrapolated indices yet.
    """

    def __init__(self, path, indices, fingerprint, campaign, seed,
                 n_specs):
        super().__init__(path)
        self._indices = tuple(indices)
        self._by_global = {g: i for i, g in enumerate(self._indices)}
        self._plan_fp = fingerprint
        self._campaign = campaign
        self._plan_seed = seed
        self._n_specs = n_specs

    def _check_header(self, header, fingerprint):
        super()._check_header(header, self._plan_fp)

    def _local_index(self, stored_index):
        return self._by_global.get(stored_index)

    def _note_loaded(self, completed):
        self._seen.update(self._indices[i] for i in completed)

    def _stored_index(self, index):
        return self._indices[index]

    def _header(self, fingerprint, campaign_key, seed, n_specs):
        return super()._header(self._plan_fp, self._campaign,
                               self._plan_seed, self._n_specs)


def _site_fields(spec):
    """The member-identity field overrides for an extrapolated record."""
    fields = {
        "campaign": spec.campaign,
        "function": spec.function,
        "subsystem": spec.subsystem,
        "addr": spec.instr_addr,
        "byte_offset": spec.byte_offset,
        "bit": spec.bit,
        "mnemonic": spec.mnemonic,
        "workload": spec.workload,
        "fault_model": None,
        "fault_target": None,
    }
    for name in ("instr_class", "is_branch", "pred_class",
                 "pred_traps", "pred_latency_lo", "pred_latency_hi",
                 "pred_subsystems", "pred_seed"):
        fields[name] = getattr(spec, name, None)
    if getattr(spec, "fault_model", None) is not None:
        from repro.injection.faultmodels import resolve_model
        model = resolve_model(spec)
        fields["fault_model"] = model.kind
        fields["fault_target"] = model.target_name(spec)
    return fields


def extrapolate_result(spec, pilot_result):
    """Clone *pilot_result*'s dynamic outcome onto *spec*'s site."""
    payload = pilot_result.to_dict()
    payload.update(_site_fields(spec))
    payload.pop("repro", None)
    return InjectionResult.from_dict(payload)


def _split_groups(fp, members, specs, ran):
    """Split an impure group on its first discriminating feature.

    Walks :data:`SPLIT_FEATURES` and accepts the first feature that
    both discriminates (>1 subgroup) and explains the observed
    disagreement (every subgroup's real outcomes agree); otherwise the
    group falls apart into singletons.  Returns
    ``[(sub_fp, feature, members)]``.
    """
    for feature in SPLIT_FEATURES:
        subgroups = {}
        for m in members:
            subgroups.setdefault(getattr(specs[m], feature),
                                 []).append(m)
        if len(subgroups) <= 1:
            continue
        consistent = all(
            len({ran[m].outcome for m in group if m in ran}) <= 1
            for group in subgroups.values())
        if not consistent:
            continue
        return [(_digest(["split", fp, feature, repr(value)]),
                 feature, group)
                for value, group in sorted(subgroups.items(),
                                           key=lambda kv: repr(kv[0]))]
    return [(_digest(["split", fp, "singleton", m]), "singleton", [m])
            for m in members]


def _execute_subset(harness, plan, indices, journal_path, grade,
                    progress, jobs, timeout, retries,
                    max_worker_failures):
    """Run the plan's *indices* through the engine, resuming over the
    shared full-plan journal; returns ``{global_index: result}``."""
    indices = sorted(indices)
    subset = [plan.specs[i] for i in indices]
    journal = _EquivJournal(journal_path, indices, plan.fingerprint,
                            plan.campaign, plan.seed, len(plan.specs))
    config = EngineConfig(jobs=jobs, timeout=timeout, retries=retries,
                          max_worker_failures=max_worker_failures,
                          resume=True)
    engine = CampaignEngine(harness, config)
    results, engine_meta = engine.execute(
        plan.campaign, subset, plan.seed, plan.byte_stride,
        grade=grade, progress=progress, journal=journal)
    return ({g: results[i] for i, g in enumerate(indices)},
            engine_meta)


def _converge_groups(plan, pending, ran, execute, stats):
    """Split groups until every group's observed outcomes agree.

    Walks the split ladder on any group whose real results disagree,
    re-pilots subgroups left without a real result, and runs *every*
    member of a group that observed a harness error (a harness error
    describes the rig, not the kernel, so it never extrapolates).
    Returns ``(final_groups, ran)`` with ``final_groups`` a list of
    ``(fp, members)`` whose ran members all agree.
    """
    final = []
    while pending:
        need = set()
        for fp, members in pending:
            if not any(m in ran for m in members):
                need.add(min(members))
        if need:
            stats["rounds"] += 1
            stats["repilot_runs"] += len(need)
            ran, _ = execute(set(ran) | need)
        next_pending = []
        for fp, members in pending:
            outcomes = {ran[m].outcome for m in members if m in ran}
            if len(outcomes) == 1 \
                    and HARNESS_ERROR not in outcomes:
                final.append((fp, members))
            elif len(members) == 1 or HARNESS_ERROR in outcomes:
                unran = [m for m in members if m not in ran]
                if unran:
                    stats["rounds"] += 1
                    stats["repilot_runs"] += len(unran)
                    ran, _ = execute(set(ran) | set(unran))
                final.append((fp, members))
            else:
                stats["splits"] += 1
                for sub_fp, _, group in _split_groups(
                        fp, members, plan.specs, ran):
                    next_pending.append((sub_fp, group))
        pending = next_pending
    return final, ran


def run_equiv_campaign(harness, campaign_key, seed=2003, byte_stride=1,
                       functions=None, max_per_function=None,
                       max_specs=None, specs=None, grade=True,
                       progress=None, jobs=1, timeout=None, retries=2,
                       max_worker_failures=3, journal_path=None,
                       resume=False, pilots_per_class=2,
                       audit_fraction=0.15, prune_dead=False,
                       partitioner=None):
    """Run an equivalence-pruned campaign; returns ``CampaignResults``.

    Plans with :func:`plan_equivalence`, then executes over a plain
    full-plan journal in two rounds: pilots first (classes whose
    pilots disagree are split and re-piloted before anything else),
    then the seeded audits, each graded against its refined class's
    pilot outcome.  Classes an audit catches impure are split and
    re-piloted until every group's observed outcomes agree; the
    remaining members are journaled via ``record_extrapolated`` with
    ``{pilot_index, class_fp, n_members}`` provenance.
    ``meta["equivalence"]`` carries the plan summary plus the measured
    audit accuracy and injected fraction.
    """
    from repro.injection.runner import CampaignResults
    plan = plan_equivalence(
        harness, campaign_key, seed=seed, byte_stride=byte_stride,
        functions=functions, max_per_function=max_per_function,
        max_specs=max_specs, specs=specs,
        pilots_per_class=pilots_per_class,
        audit_fraction=audit_fraction, prune_dead=prune_dead,
        partitioner=partitioner)
    if journal_path is None:
        workdir = tempfile.mkdtemp(prefix="equiv_campaign_")
        journal_path = os.path.join(workdir, "equiv.journal.jsonl")
    if not resume:
        fresh = CampaignJournal(journal_path)
        fresh.start(plan.fingerprint, campaign_key, seed,
                    len(plan.specs), fresh=True)
        fresh.close()

    def execute(indices):
        return _execute_subset(
            harness, plan, indices, journal_path, grade, progress,
            jobs, timeout, retries, max_worker_failures)

    pilot_set, audit_set = set(), set()
    for cls in plan.classes.values():
        pilot_set.update(cls.pilots)
        audit_set.update(cls.audits)
    audit_set -= pilot_set
    stats = {"splits": 0, "repilot_runs": 0, "rounds": 0}

    # -- round 1: pilots; repair classes whose pilots disagree -------
    if pilot_set:
        ran, engine_meta = execute(pilot_set)
    else:
        ran, engine_meta = {}, {}
    pending = [(cls.fp, list(cls.members))
               for fp, cls in sorted(plan.classes.items())]
    refined, ran = _converge_groups(plan, pending, ran, execute, stats)

    # -- round 2: audits, graded against the refined groups ----------
    group_of = {}
    for fp, members in refined:
        ran_members = [m for m in members if m in ran]
        outcome = (ran[min(ran_members)].outcome
                   if ran_members else None)
        for member in members:
            group_of[member] = (fp, outcome)
    if audit_set:
        ran, _ = execute(set(ran) | audit_set)
    audit_checked = audit_matched = 0
    impure = set()
    for index in sorted(audit_set):
        fp, outcome = group_of[index]
        if outcome is None:
            continue
        audit_checked += 1
        if ran[index].outcome == outcome:
            audit_matched += 1
        else:
            impure.add(fp)

    # -- split impure groups and re-pilot until every group agrees ---
    final, ran = _converge_groups(plan, refined, ran, execute, stats)

    # -- extrapolate the remaining members off their group pilots ----
    results = dict(ran)
    extrapolated = 0
    journal = CampaignJournal(journal_path)
    journal.load(plan.fingerprint)
    journal.start(plan.fingerprint, campaign_key, seed,
                  len(plan.specs), fresh=False)
    try:
        for fp, members in final:
            ran_members = [m for m in members if m in ran]
            pilot = min(ran_members)
            provenance = {"pilot_index": pilot, "class_fp": fp,
                          "n_members": len(members)}
            for member in members:
                if member in ran:
                    continue
                result = extrapolate_result(plan.specs[member],
                                            ran[pilot])
                journal.record_extrapolated(member, result, provenance)
                results[member] = result
                extrapolated += 1
    finally:
        journal.close()

    ordered = [results[i] for i in range(len(plan.specs))]
    injected = len(ran)
    meta = {
        "campaign": campaign_key,
        "seed": seed,
        "byte_stride": byte_stride,
        "n_targets": len(plan.functions),
        "fingerprint": plan.fingerprint,
        "engine": engine_meta,
        "equivalence": dict(
            plan.summary(),
            injected=injected,
            injected_fraction=(
                round(injected / len(plan.specs), 4)
                if plan.specs else 0.0),
            extrapolated=extrapolated,
            audit_checked=audit_checked,
            audit_matched=audit_matched,
            audit_accuracy=(
                round(audit_matched / audit_checked, 4)
                if audit_checked else None),
            impure_classes=len(impure),
            splits=stats["splits"],
            repilot_runs=stats["repilot_runs"],
            repilot_rounds=stats["rounds"],
        ),
    }
    return CampaignResults(campaign_key, results=ordered, meta=meta)


# ---------------------------------------------------------------------------
# journal audit + dump annotation


def journal_extrapolation(path):
    """Provenance census of a campaign journal.

    Returns ``{"executed", "extrapolated", "carried", "provenance"}``
    where ``provenance`` maps class fingerprints to member counts of
    the well-formed ``extrapolated`` blocks.  Used by ``kequiv audit``
    and the ``equivalence_validation`` exhibit to check that *every*
    extrapolated record carries ``{pilot_index, class_fp}``.
    """
    from repro.injection.engine import read_journal_lines
    records, _ = read_journal_lines(path)
    census = {"executed": 0, "extrapolated": 0, "carried": 0,
              "malformed": 0, "provenance": {}}
    for record in records[1:]:
        if record.get("type") != "result":
            continue
        block = record.get("extrapolated")
        if block is None:
            if record.get("carried") is not None:
                census["carried"] += 1
            else:
                census["executed"] += 1
            continue
        census["extrapolated"] += 1
        if not isinstance(block, dict) \
                or not isinstance(block.get("pilot_index"), int) \
                or not isinstance(block.get("class_fp"), str):
            census["malformed"] += 1
            continue
        fp = block["class_fp"]
        census["provenance"][fp] = census["provenance"].get(fp, 0) + 1
    return census


def describe_site_class(kernel, function, instr_addr, byte_offset, bit,
                        crash_cause=None, partitioner=None):
    """``EQUIV:`` annotation lines for one injection site.

    Enumerates the sibling sites of the containing function at the
    same bit position, reports the site's class fingerprint, its
    pilot-or-member role (pilot = first class member in enumeration
    order), the function-local class size and — when a dynamic crash
    cause is known — the audit verdict against the class's predicted
    trap set.
    """
    part = partitioner or SitePartitioner(kernel)
    feats = part.features_site(function, instr_addr, byte_offset, bit)
    fp = _digest(feats)
    state = part._pre._function_state(function)
    size = role = None
    if state is not None:
        info, _, instrs, _ = state
        first = None
        size = 0
        for addr in sorted(instrs):
            for byte in range(instrs[addr].length):
                if part.fingerprint_site(function, addr, byte,
                                         bit) != fp:
                    continue
                size += 1
                if first is None:
                    first = (addr, byte)
        role = ("pilot" if first == (instr_addr, byte_offset)
                else "member")
    lines = ["EQUIV:"]
    lines.append("  class %s  (%s of %s function-local site(s) "
                 "at bit %d)"
                 % (fp, role or "?", size if size is not None else "?",
                    bit))
    if feats.get("kind") == "flip":
        lines.append("  key: op=%s class=%s len=%s flip=%s live-defs=%s"
                     % (feats["op"], feats["iclass"], feats["ilen"],
                        feats["flip"],
                        ",".join(feats["live_defs"]) or "-"))
        lines.append("  verdict: traps=%s latency=[%s..%s] spread=%s"
                     % (",".join(feats["traps"]) or "-",
                        feats["latency"][0], feats["latency"][1],
                        ",".join(feats["spread"]) or "-"))
    if crash_cause is not None:
        trap = trap_of_cause(crash_cause)
        traps = feats.get("traps") or []
        verdict = ("consistent" if trap in traps
                   else "OUTSIDE predicted trap set")
        lines.append("  audit: observed %s -> %s (%s)"
                     % (crash_cause, trap, verdict))
    else:
        lines.append("  audit: no dynamic crash to compare")
    return lines
