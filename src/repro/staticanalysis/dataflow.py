"""Register/flag def-use model and dataflow fixpoints over a CFG.

The tracked resources are the eight GPRs by name plus the six flags the
simulated CPU keeps (``cf zf sf of pf df``).  The def/use model mirrors
:mod:`repro.cpu.cpu` — *this simulator*, not architectural IA-32 — so
the quirks matter and are encoded here deliberately:

* ``inc``/``dec`` preserve CF (the handler saves and restores it).
* ``mul``/``imul`` write only CF and OF; ``div``/``idiv`` write no
  flags at all.
* Shifts and rotates with a zero count write *nothing* (flags
  included), so a ``cl``-count shift only **may**-define its results.
* ``rol``/``ror`` touch only CF among the flags; ``sahf``/``shld``/
  ``shrd`` do not write OF.
* ``not`` writes no flags.

Two definition strengths are distinguished, because liveness and
dead-store reasoning need opposite conservatisms:

* ``must_defs`` — resources the instruction certainly overwrites
  (safe to *kill* in the backward liveness transfer).
* ``may_defs`` — resources it possibly writes, a superset of
  ``must_defs`` (a store is dead only if **every** may-def is dead).

Anything outside the model (BCD ops, system instructions…) falls back
to "uses everything, may-define everything, kills nothing" — sound for
both analyses, and irrelevant in practice since the compiler and the
hand-written stubs never emit those ops.
"""

from repro.isa.registers import REG_NAMES

#: Parent GPR of each byte register (al cl dl bl ah ch dh bh).
_R8_PARENT = (0, 1, 2, 3, 0, 1, 2, 3)

FLAGS = ("cf", "zf", "sf", "of", "pf", "df")
_ARITH = frozenset(("cf", "zf", "sf", "of", "pf"))
ALL_RESOURCES = frozenset(REG_NAMES) | frozenset(FLAGS)

_EMPTY = frozenset()

#: Flags read by ``cc_holds`` for each condition base (cc >> 1); the
#: low cc bit only negates the predicate and reads nothing extra.
CC_FLAG_USES = (
    frozenset(("of",)),             # o / no
    frozenset(("cf",)),             # b / ae
    frozenset(("zf",)),             # e / ne
    frozenset(("cf", "zf")),        # be / a
    frozenset(("sf",)),             # s / ns
    frozenset(("pf",)),             # p / np
    frozenset(("sf", "of")),        # l / ge
    frozenset(("zf", "sf", "of")),  # le / g
)


def cc_flag_uses(cc):
    """Flags a jcc/setcc/cmovcc with condition nibble *cc* reads."""
    return CC_FLAG_USES[(cc >> 1) & 7]


class InstrEffect:
    """Def/use summary of one instruction."""

    __slots__ = ("uses", "must_defs", "may_defs", "reads_mem",
                 "writes_mem", "side_effects", "may_trap")

    def __init__(self, uses=_EMPTY, must_defs=_EMPTY, may_defs=None,
                 reads_mem=False, writes_mem=False, side_effects=False,
                 may_trap=False):
        self.uses = frozenset(uses)
        self.must_defs = frozenset(must_defs)
        if may_defs is None:
            may_defs = must_defs
        self.may_defs = frozenset(may_defs) | self.must_defs
        self.reads_mem = reads_mem
        self.writes_mem = writes_mem
        self.side_effects = side_effects
        self.may_trap = may_trap

    def __repr__(self):
        return ("InstrEffect(uses=%s, must=%s, may=%s)"
                % (sorted(self.uses), sorted(self.must_defs),
                   sorted(self.may_defs)))


def _operand_uses(operand):
    """Resources read just to *address* or *evaluate* an operand."""
    if operand is None:
        return _EMPTY, False
    kind = operand[0]
    if kind == "r":
        return frozenset((REG_NAMES[operand[1]],)), False
    if kind == "r8":
        return frozenset((REG_NAMES[_R8_PARENT[operand[1]]],)), False
    if kind == "m":
        mem = operand[1]
        used = set()
        if mem.base is not None:
            used.add(REG_NAMES[mem.base])
        if mem.index is not None:
            used.add(REG_NAMES[mem.index])
        return frozenset(used), True
    if kind == "cl":
        return frozenset(("ecx",)), False
    if kind == "dx":
        return frozenset(("edx",)), False
    return _EMPTY, False  # immediates, segment registers


def _dst_write(operand):
    """(must_def_regs, may_def_regs, writes_mem) for writing *operand*.

    A byte-register write only may-defines the parent GPR (the other
    24 bits survive), so it can never kill liveness.
    """
    if operand is None:
        return _EMPTY, _EMPTY, False
    kind = operand[0]
    if kind == "r":
        name = frozenset((REG_NAMES[operand[1]],))
        return name, name, False
    if kind == "r8":
        return _EMPTY, frozenset((REG_NAMES[_R8_PARENT[operand[1]]],)), \
            False
    if kind == "m":
        return _EMPTY, _EMPTY, True
    return _EMPTY, _EMPTY, False


def _shift_const_count(ins):
    """The shift count when static (immediate), else ``None``."""
    if ins.src is not None and ins.src[0] == "i":
        return ins.src[1] & 31
    return None


_STACK_READS = frozenset(("esp",))
_STACK = frozenset(("esp",))


def instr_defs_uses(ins):  # noqa: C901  (one big dispatch, kept flat)
    """Def/use summary for *ins* under the simulated CPU's semantics."""
    op = ins.op
    dst_uses, dst_is_mem = _operand_uses(ins.dst)
    src_uses, src_is_mem = _operand_uses(ins.src)
    addr_uses = dst_uses | src_uses
    must_dst, may_dst, dst_mem_write = _dst_write(ins.dst)

    # Resources read to address a memory *destination* (its register
    # value is not read unless the op also reads the destination).
    dst_addr_uses = dst_uses if dst_is_mem else _EMPTY

    # --- data movement ---------------------------------------------
    if op == "mov":
        return InstrEffect(
            uses=src_uses | dst_addr_uses,
            must_defs=must_dst, may_defs=may_dst,
            reads_mem=src_is_mem, writes_mem=dst_mem_write,
            may_trap=src_is_mem or dst_mem_write)
    if op in ("movzx", "movsx"):
        return InstrEffect(
            uses=src_uses | dst_addr_uses, must_defs=must_dst,
            reads_mem=src_is_mem, may_trap=src_is_mem)
    if op == "lea":
        return InstrEffect(uses=src_uses, must_defs=must_dst)
    if op == "xchg":
        # Both operands are read and written.
        m2, may2, mem2 = _dst_write(ins.src)
        return InstrEffect(
            uses=addr_uses, must_defs=must_dst | m2,
            may_defs=may_dst | may2,
            reads_mem=src_is_mem or dst_is_mem,
            writes_mem=dst_mem_write or mem2,
            may_trap=src_is_mem or dst_is_mem)
    if op == "bswap":
        return InstrEffect(uses=dst_uses, must_defs=must_dst)
    if op == "push":
        return InstrEffect(
            uses=addr_uses | _STACK_READS, must_defs=_STACK,
            reads_mem=dst_is_mem, writes_mem=True, may_trap=True)
    if op == "pop":
        return InstrEffect(
            uses=dst_addr_uses | _STACK_READS,
            must_defs=must_dst | _STACK,
            may_defs=may_dst | _STACK, reads_mem=True,
            writes_mem=dst_mem_write, may_trap=True)
    if op == "pusha":
        return InstrEffect(
            uses=frozenset(REG_NAMES), must_defs=_STACK,
            writes_mem=True, may_trap=True)
    if op == "popa":
        # Writes every GPR except esp (skipped), reads the stack.
        regs = frozenset(n for n in REG_NAMES if n != "esp") | _STACK
        return InstrEffect(
            uses=_STACK_READS, must_defs=regs, reads_mem=True,
            may_trap=True)

    # --- ALU -------------------------------------------------------
    if op in ("add", "sub", "xor", "or", "and"):
        return InstrEffect(
            uses=addr_uses,
            must_defs=must_dst | _ARITH, may_defs=may_dst | _ARITH,
            reads_mem=src_is_mem or dst_is_mem,
            writes_mem=dst_mem_write,
            may_trap=src_is_mem or dst_is_mem)
    if op in ("adc", "sbb"):
        return InstrEffect(
            uses=addr_uses | frozenset(("cf",)),
            must_defs=must_dst | _ARITH, may_defs=may_dst | _ARITH,
            reads_mem=src_is_mem or dst_is_mem,
            writes_mem=dst_mem_write,
            may_trap=src_is_mem or dst_is_mem)
    if op in ("cmp", "test"):
        return InstrEffect(
            uses=addr_uses, must_defs=_ARITH,
            reads_mem=src_is_mem or dst_is_mem,
            may_trap=src_is_mem or dst_is_mem)
    if op in ("inc", "dec"):
        # The handler saves and restores CF: only zf/sf/of/pf change.
        flags = _ARITH - frozenset(("cf",))
        return InstrEffect(
            uses=dst_uses, must_defs=must_dst | flags,
            may_defs=may_dst | flags,
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)
    if op == "neg":
        return InstrEffect(
            uses=dst_uses, must_defs=must_dst | _ARITH,
            may_defs=may_dst | _ARITH,
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)
    if op == "not":
        return InstrEffect(
            uses=dst_uses, must_defs=must_dst, may_defs=may_dst,
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)

    # --- shifts and rotates ----------------------------------------
    if op in ("shl", "shr", "sar", "rol", "ror", "rcl", "rcr"):
        flag_written = (_ARITH if op in ("shl", "shr", "sar")
                        else frozenset(("cf",)))
        uses = dst_uses | src_uses
        if op in ("rcl", "rcr"):
            uses |= frozenset(("cf",))
        count = _shift_const_count(ins)
        writes = count is not None and count != 0
        if op in ("rol", "ror") and count is not None:
            writes = count % (8 * ins.size) != 0
        if writes:
            return InstrEffect(
                uses=uses, must_defs=must_dst | flag_written,
                may_defs=may_dst | flag_written,
                reads_mem=dst_is_mem, writes_mem=dst_mem_write,
                may_trap=dst_is_mem)
        # cl-count (or count 0): everything is only a may-def.
        return InstrEffect(
            uses=uses, must_defs=_EMPTY,
            may_defs=may_dst | must_dst | flag_written,
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)
    if op in ("shld", "shrd"):
        flags = _ARITH - frozenset(("of",))
        uses = dst_uses | src_uses
        if ins.imm2[0] == "cl":
            uses |= frozenset(("ecx",))
            count = None
        else:
            count = ins.imm2[1] & 31
        if count:
            return InstrEffect(
                uses=uses, must_defs=must_dst | flags,
                may_defs=may_dst | flags,
                reads_mem=dst_is_mem, writes_mem=dst_mem_write,
                may_trap=dst_is_mem)
        return InstrEffect(
            uses=uses, must_defs=_EMPTY,
            may_defs=may_dst | must_dst | flags,
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)

    # --- multiply / divide -----------------------------------------
    if op in ("mul", "imul1"):
        defs = frozenset(("eax", "cf", "of"))
        if ins.size == 4:
            defs |= frozenset(("edx",))
        return InstrEffect(
            uses=dst_uses | frozenset(("eax",)), must_defs=defs,
            reads_mem=dst_is_mem, may_trap=dst_is_mem)
    if op in ("imul2", "imul3"):
        # imul2 reads its destination; imul3 (r = r/m * imm) does not.
        uses = addr_uses if op == "imul2" else src_uses
        return InstrEffect(
            uses=uses, must_defs=must_dst | frozenset(("cf", "of")),
            reads_mem=src_is_mem, may_trap=src_is_mem)
    if op in ("div", "idiv"):
        uses = dst_uses | frozenset(("eax",))
        defs = frozenset(("eax",))
        if ins.size == 4:
            uses |= frozenset(("edx",))
            defs |= frozenset(("edx",))
        return InstrEffect(
            uses=uses, must_defs=defs, reads_mem=dst_is_mem,
            may_trap=True)  # #DE on zero/overflow
    if op == "cwde":
        return InstrEffect(uses=frozenset(("eax",)),
                           must_defs=frozenset(("eax",)))
    if op == "cdq":
        return InstrEffect(uses=frozenset(("eax",)),
                           must_defs=frozenset(("edx",)))

    # --- bit ops ---------------------------------------------------
    if op == "bt":
        return InstrEffect(
            uses=addr_uses, must_defs=frozenset(("cf",)),
            reads_mem=dst_is_mem, may_trap=dst_is_mem)
    if op in ("bts", "btr", "btc"):
        return InstrEffect(
            uses=addr_uses, must_defs=must_dst | frozenset(("cf",)),
            may_defs=may_dst | frozenset(("cf",)),
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)
    if op in ("bsf", "bsr"):
        return InstrEffect(
            uses=src_uses, must_defs=frozenset(("zf",)),
            may_defs=may_dst | frozenset(("zf",)),
            reads_mem=src_is_mem, may_trap=src_is_mem)

    # --- flag manipulation -----------------------------------------
    if op in ("clc", "stc", "cmc"):
        uses = frozenset(("cf",)) if op == "cmc" else _EMPTY
        return InstrEffect(uses=uses, must_defs=frozenset(("cf",)))
    if op == "cld" or op == "std":
        return InstrEffect(must_defs=frozenset(("df",)))
    if op == "sahf":
        return InstrEffect(
            uses=frozenset(("eax",)),
            must_defs=frozenset(("cf", "pf", "zf", "sf")))
    if op == "lahf":
        return InstrEffect(
            uses=frozenset(("eax", "cf", "pf", "zf", "sf")),
            must_defs=frozenset(("eax",)))
    if op == "pushf":
        return InstrEffect(
            uses=frozenset(FLAGS) | _STACK_READS, must_defs=_STACK,
            writes_mem=True, may_trap=True)
    if op == "popf":
        return InstrEffect(
            uses=_STACK_READS, must_defs=frozenset(FLAGS) | _STACK,
            reads_mem=True, side_effects=True, may_trap=True)

    # --- conditionals ----------------------------------------------
    if op == "setcc":
        # A byte-register target is a partial (pass-through) write:
        # the parent GPR is neither used nor killed.
        return InstrEffect(
            uses=cc_flag_uses(ins.cc) | dst_addr_uses,
            may_defs=may_dst,
            writes_mem=dst_mem_write, may_trap=dst_is_mem)
    if op == "cmovcc":
        return InstrEffect(
            uses=cc_flag_uses(ins.cc) | src_uses,
            may_defs=may_dst, reads_mem=src_is_mem,
            may_trap=src_is_mem)
    if op == "jcc":
        return InstrEffect(uses=cc_flag_uses(ins.cc))
    if op in ("loop", "loope", "loopne"):
        uses = frozenset(("ecx",))
        if op != "loop":
            uses |= frozenset(("zf",))
        return InstrEffect(uses=uses, must_defs=frozenset(("ecx",)))
    if op == "jcxz":
        return InstrEffect(uses=frozenset(("ecx",)))

    # --- control transfer ------------------------------------------
    if op == "jmp":
        return InstrEffect()
    if op in ("jmp_ind", "jmpf_ind"):
        return InstrEffect(uses=addr_uses, reads_mem=dst_is_mem,
                           side_effects=True, may_trap=True)
    if op in ("call", "call_ind", "callf", "callf_ind"):
        return InstrEffect(
            uses=addr_uses | _STACK_READS, must_defs=_STACK,
            reads_mem=dst_is_mem, writes_mem=True,
            side_effects=True, may_trap=True)
    if op in ("ret", "lret", "iret"):
        return InstrEffect(
            uses=_STACK_READS, must_defs=_STACK, reads_mem=True,
            side_effects=True, may_trap=True)
    if op in ("int", "int3", "into", "bound"):
        return InstrEffect(uses=ALL_RESOURCES, may_defs=ALL_RESOURCES,
                           side_effects=True, may_trap=True)

    # --- string ops ------------------------------------------------
    if op in ("movs", "cmps", "stos", "lods", "scas"):
        uses = {"df"}
        defs = set()
        if op in ("movs", "cmps", "lods"):
            uses.add("esi")
            defs.add("esi")
        if op in ("movs", "cmps", "stos", "scas"):
            uses.add("edi")
            defs.add("edi")
        if op in ("stos", "scas"):
            uses.add("eax")
        if ins.rep is not None:
            uses.add("ecx")
            defs.add("ecx")
        flags = set()
        if op in ("cmps", "scas"):
            flags = set(_ARITH)
        acc = set()
        if op == "lods":
            acc = {"eax"}
        if ins.rep is not None:
            # ecx == 0 skips every write, flags included.
            return InstrEffect(
                uses=frozenset(uses), must_defs=_EMPTY,
                may_defs=frozenset(defs | flags | acc),
                reads_mem=op != "stos", writes_mem=op in ("movs", "stos"),
                may_trap=True)
        must = defs | flags | (acc if ins.size == 4 else set())
        return InstrEffect(
            uses=frozenset(uses), must_defs=frozenset(must),
            may_defs=frozenset(defs | flags | acc),
            reads_mem=op != "stos", writes_mem=op in ("movs", "stos"),
            may_trap=True)
    if op == "xlat":
        return InstrEffect(
            uses=frozenset(("eax", "ebx")),
            may_defs=frozenset(("eax",)), reads_mem=True,
            may_trap=True)

    # --- read-modify-write compound ops ----------------------------
    if op == "cmpxchg":
        return InstrEffect(
            uses=addr_uses | frozenset(("eax",)),
            must_defs=_ARITH,
            may_defs=may_dst | must_dst | _ARITH | frozenset(("eax",)),
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)
    if op == "xadd":
        m2, may2, _ = _dst_write(ins.src)
        return InstrEffect(
            uses=addr_uses, must_defs=must_dst | m2 | _ARITH,
            may_defs=may_dst | may2 | _ARITH,
            reads_mem=dst_is_mem, writes_mem=dst_mem_write,
            may_trap=dst_is_mem)

    # --- frame management ------------------------------------------
    if op == "leave":
        return InstrEffect(
            uses=frozenset(("ebp",)),
            must_defs=frozenset(("esp", "ebp")), reads_mem=True,
            may_trap=True)
    if op == "enter":
        return InstrEffect(
            uses=frozenset(("esp", "ebp")),
            must_defs=frozenset(("esp", "ebp")), writes_mem=True,
            may_trap=True)

    # --- no-ops and I/O --------------------------------------------
    if op in ("nop", "wait"):
        return InstrEffect()
    if op == "in":
        return InstrEffect(
            uses=src_uses, may_defs=frozenset(("eax",)),
            side_effects=True)
    if op == "out":
        return InstrEffect(
            uses=dst_uses | frozenset(("eax",)), side_effects=True)
    if op in ("ins", "outs"):
        return InstrEffect(
            uses=frozenset(("edx", "esi", "edi", "ecx", "df")),
            may_defs=frozenset(("esi", "edi", "ecx")),
            reads_mem=True, writes_mem=True, side_effects=True,
            may_trap=True)

    # Everything else (system instructions, BCD, segment moves, hlt,
    # cli/sti, (bad)…): sound catch-all.
    return InstrEffect(uses=ALL_RESOURCES, may_defs=ALL_RESOURCES,
                       side_effects=True, may_trap=True)


def block_transfer(block):
    """(use, must_kill) summarising *block* for the liveness fixpoint.

    ``use`` are resources live on entry due to an upward-exposed read;
    ``must_kill`` are resources certainly overwritten before any read.
    A call (or any side-effecting instruction) inside the block makes
    everything after it irrelevant for the kill set and everything
    *conservatively used* at that point — callees' live-in is unknown.
    """
    use = set()
    kill = set()
    for ins in block.instrs:
        eff = instr_defs_uses(ins)
        if eff.side_effects:
            # Unknown code runs here (call, trap, I/O): treat every
            # resource as read, nothing as reliably killed after.
            use |= ALL_RESOURCES - kill
            return frozenset(use), frozenset(kill)
        use |= eff.uses - kill
        kill |= eff.must_defs
    return frozenset(use), frozenset(kill)


def liveness(cfg, exit_live=ALL_RESOURCES):
    """Backward liveness fixpoint at block granularity.

    Returns ``(live_in, live_out)`` dicts keyed by block start.  Any
    block with an incomplete successor set — function exit, external
    jump target, indirect jump, fall-through off the decoded region —
    gets *exit_live* (default: everything) in its live-out, which keeps
    the analysis sound for dead-store queries.
    """
    from repro.staticanalysis.cfg import branch_target

    transfer = {b.start: block_transfer(b) for b in cfg.blocks.values()}
    live_in = {start: frozenset() for start in cfg.blocks}
    live_out = {start: frozenset() for start in cfg.blocks}
    incomplete = set()
    for block in cfg.blocks.values():
        term = block.terminator
        exits = not block.succs
        if term.op in ("jmp", "jcc", "loop", "loope", "loopne",
                       "jcxz"):
            target = branch_target(term)
            if target is not None and target not in cfg.blocks:
                exits = True
        if term.op in ("jmp_ind", "jmpf_ind"):
            exits = True
        if block.falls_through and (term.addr + term.length
                                    not in cfg.blocks):
            exits = True
        if exits:
            incomplete.add(block.start)

    changed = True
    while changed:
        changed = False
        for start in sorted(cfg.blocks, reverse=True):
            block = cfg.blocks[start]
            out = set()
            if start in incomplete:
                out |= exit_live
            for succ in block.succs:
                out |= live_in[succ]
            out = frozenset(out)
            use, kill = transfer[start]
            new_in = use | (out - kill)
            if out != live_out[start] or new_in != live_in[start]:
                live_out[start] = out
                live_in[start] = new_in
                changed = True
    return live_in, live_out


def live_after_map(cfg, live_out=None):
    """Per-instruction live-after sets: ``{instr_addr: frozenset}``.

    The set answers "which resources may be read after this
    instruction completes, before being rewritten?" — the question the
    dead-write predictor asks of an injection site.
    """
    if live_out is None:
        _, live_out = liveness(cfg)
    result = {}
    for block in cfg.blocks.values():
        live = set(live_out[block.start])
        for ins in reversed(block.instrs):
            result[ins.addr] = frozenset(live)
            eff = instr_defs_uses(ins)
            if eff.side_effects:
                live = set(ALL_RESOURCES)
            else:
                live -= eff.must_defs
                live |= eff.uses
    return result


def reaching_definitions(cfg):
    """Forward reaching-definitions fixpoint at block granularity.

    A definition is ``(instr_addr, resource)`` for every may-defined
    resource; the synthetic ``("<entry>", r)`` definitions flow in from
    the function entry.  Returns ``(reach_in, reach_out)`` dicts keyed
    by block start.
    """
    gen = {}
    kill_res = {}
    for block in cfg.blocks.values():
        block_gen = {}
        killed = set()
        for ins in block.instrs:
            eff = instr_defs_uses(ins)
            for res in eff.may_defs:
                block_gen[res] = (ins.addr, res)
            killed |= eff.must_defs
        gen[block.start] = set(block_gen.values())
        kill_res[block.start] = killed

    entry_defs = frozenset(("<entry>", r) for r in ALL_RESOURCES)
    reach_in = {start: set() for start in cfg.blocks}
    reach_out = {start: set() for start in cfg.blocks}
    reach_in[cfg.entry] = set(entry_defs)

    changed = True
    while changed:
        changed = False
        for start in sorted(cfg.blocks):
            block = cfg.blocks[start]
            in_set = set(entry_defs) if start == cfg.entry else set()
            for pred in block.preds:
                in_set |= reach_out[pred]
            killed = kill_res[start]
            out = gen[start] | {d for d in in_set
                                if d[1] not in killed}
            if in_set != reach_in[start] or out != reach_out[start]:
                reach_in[start] = in_set
                reach_out[start] = out
                changed = True
    return reach_in, reach_out
