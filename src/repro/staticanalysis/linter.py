"""Image lint rules over the per-function CFGs (``kerncheck``).

Four rules, each encoding an invariant the shipped kernel genuinely
holds — so a finding is a defect, not noise:

``unreachable-block``
    A basic block no edge reaches.  Exempt: ``__ex_table`` landing
    pads (entered by the fault path, not by an edge), functions
    containing an indirect jump (the successor set is unknowable), and
    the compiler's *implicit-return tail* — the ``mov/xor eax``,
    ``leave``, ``ret`` epilogue MinC must emit after a ``while (1)``
    body because it cannot prove non-termination.
``fall-off-end``
    Control can run sequentially past the function's last byte into
    the next function — the exact stream-desync failure mode the
    injection campaigns provoke, but present at build time.
``uncovered-uaccess``
    Inside the user-access API (:data:`UACCESS_FUNCTIONS`), a memory
    dereference that is not stack-frame-relative, not a kernel global,
    not covered by an ``__ex_table`` fixup range, and not dominated by
    a validity check (``access_ok``/``user_prefault``) — i.e. a user
    pointer the kernel would oops on (the paper §5's dominant crash
    cause, *unable to handle kernel paging request*).
``stack-imbalance``
    A path reaches ``ret`` with a non-zero push/pop balance, a join
    with conflicting depths, or pops below the entry esp (see
    :mod:`repro.staticanalysis.stackdepth`).  Calls into noreturn
    functions (``panic``/``do_exit``) end the path rather than
    propagating a bogus post-call depth.

One additional rule is *opt-in* (``kerncheck --rules
propagation-leak``), because it describes exposure rather than a
defect — nearly every function has at least one escape channel, and
the default rule set must stay finding-free for CI:

``propagation-leak``
    A channel through which corrupted definitions can escape the
    function's home subsystem: a call into another subsystem
    (corrupted arguments ride along), a return to callers in other
    subsystems (corrupted ``eax``), or an indirect call (destination
    unknowable).  Computed by
    :class:`repro.staticanalysis.propagation.PropagationAnalyzer` —
    the static side of the paper's Figure 8 spread measurement.

``fingerprint-opaque``
    The function's outgoing control transfers cannot be fully
    enumerated statically — an indirect call/jump, a branch target
    outside every known function, or undecodable bytes.  The delta
    planner (:mod:`repro.staticanalysis.delta`) must treat every such
    function as impacted whenever *any* function changes, so each
    finding is a standing tax on incremental campaigns; the count
    going up in review is a cue to reconsider the construct.
"""

import re

from repro.staticanalysis.cfg import build_cfg
from repro.staticanalysis.propagation import NORETURN_FUNCTIONS
from repro.staticanalysis.stackdepth import analyze_stack

#: Functions whose memory dereferences handle user-supplied pointers.
#: Everything else dereferences kernel structures, where the
#: guarded-access discipline does not apply.
UACCESS_FUNCTIONS = re.compile(
    r"^(__copy_user|copy_to_user|copy_from_user"
    r"|put_user\w*|get_user\w*|strncpy_from_user)$")

#: Callees that establish "this user range is safe to dereference".
UACCESS_GUARDS = ("access_ok", "user_prefault")

RULES = ("unreachable-block", "fall-off-end", "uncovered-uaccess",
         "stack-imbalance")

#: Opt-in rules: informative, not invariant-violating (a default run
#: must stay finding-free, since kerncheck's exit status is the count).
OPTIONAL_RULES = ("propagation-leak", "fingerprint-opaque")


class LintFinding:
    """One linter hit."""

    __slots__ = ("rule", "function", "addr", "message")

    def __init__(self, rule, function, addr, message):
        self.rule = rule
        self.function = function
        self.addr = addr
        self.message = message

    def to_dict(self):
        return {"rule": self.rule, "function": self.function,
                "addr": self.addr, "message": self.message}

    def __repr__(self):
        return "%s: %s@%#x: %s" % (
            self.rule, self.function, self.addr, self.message)

    def format(self, kernel=None):
        return "%-18s %s @ %#010x: %s" % (
            self.rule, self.function, self.addr, self.message)


def read_ex_table(kernel):
    """The image's fixup triples ``[(start, end, landing), ...]``.

    Reads the ``.long`` triples the build layer emits between the
    ``__ex_table`` and ``__ex_table_end`` symbols.
    """
    start = kernel.symbols.get("__ex_table")
    end = kernel.symbols.get("__ex_table_end")
    if start is None or end is None:
        return []
    entries = []
    for addr in range(start, end, 12):
        off = addr - kernel.base
        words = [int.from_bytes(kernel.code[off + i:off + i + 4],
                                "little") for i in (0, 4, 8)]
        entries.append(tuple(words))
    return entries


def _dominators(cfg):
    """Iterative dominator sets ``{block_start: set(block_starts)}``."""
    all_blocks = set(cfg.blocks)
    dom = {start: set(all_blocks) for start in cfg.blocks}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for start in sorted(cfg.blocks):
            if start == cfg.entry:
                continue
            preds = cfg.blocks[start].preds
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()  # unreachable: dominated by nothing useful
            new |= {start}
            if new != dom[start]:
                dom[start] = new
                changed = True
    return dom


class KernelLinter:
    """Run the lint rules over a built kernel image."""

    def __init__(self, kernel, rules=RULES):
        self.kernel = kernel
        self.rules = tuple(rules)
        self.ex_table = read_ex_table(kernel)
        self._landing_pads = {entry[2] for entry in self.ex_table}
        self._noreturn = frozenset(
            f.start for f in kernel.functions
            if f.name in NORETURN_FUNCTIONS)
        self._propagation = None
        self._opacity = None

    def _ex_covered(self, addr):
        return any(start <= addr < end
                   for start, end, _ in self.ex_table)

    def lint_function(self, info):
        cfg = build_cfg(self.kernel, info)
        findings = []
        if "unreachable-block" in self.rules:
            findings += self._check_unreachable(cfg)
        if "fall-off-end" in self.rules:
            findings += self._check_fall_off_end(cfg)
        if "uncovered-uaccess" in self.rules:
            findings += self._check_uaccess(cfg)
        if "stack-imbalance" in self.rules:
            findings += self._check_stack(cfg)
        if "propagation-leak" in self.rules:
            findings += self._check_propagation_leak(info)
        if "fingerprint-opaque" in self.rules:
            findings += self._check_fingerprint_opaque(info)
        return findings

    def lint_image(self, functions=None):
        if functions is None:
            functions = self.kernel.functions
        findings = []
        for info in functions:
            findings += self.lint_function(info)
        return findings

    # --- rules -----------------------------------------------------

    #: Ops an implicit-return tail may consist of: load the return
    #: value, unwind the frame, return (plus the jump linking them).
    _EPILOGUE_OPS = frozenset(("mov", "xor", "jmp", "leave", "ret",
                               "pop"))

    def _check_unreachable(self, cfg):
        if cfg.has_indirect_jump:
            return []
        pads = [a for a in self._landing_pads if a in cfg.blocks]
        reachable = cfg.reachable(extra_entries=pads)
        unreachable = set(cfg.blocks) - reachable

        # Implicit-return tails: unreachable blocks built purely from
        # epilogue ops whose unreachable successors are also exempt.
        exempt = {start for start in unreachable
                  if all(i.op in self._EPILOGUE_OPS
                         for i in cfg.blocks[start].instrs)}
        shrunk = True
        while shrunk:
            shrunk = False
            for start in sorted(exempt):
                block = cfg.blocks[start]
                if any(s in unreachable and s not in exempt
                       for s in block.succs):
                    exempt.discard(start)
                    shrunk = True

        out = []
        for start in sorted(unreachable - exempt):
            block = cfg.blocks[start]
            out.append(LintFinding(
                "unreachable-block", cfg.info.name, start,
                "block %#x..%#x (%d instrs) has no path from entry"
                % (start, block.end, len(block.instrs))))
        return out

    def _check_fall_off_end(self, cfg):
        out = []
        for block in cfg.blocks.values():
            if not block.falls_through:
                continue
            if block.terminator.op == "hlt":
                continue  # parked CPU (_start): never resumes
            fall = block.end
            if fall not in cfg.blocks and fall >= cfg.info.end:
                out.append(LintFinding(
                    "fall-off-end", cfg.info.name,
                    block.terminator.addr,
                    "control falls past the function's last byte"
                    " (%#x)" % cfg.info.end))
        return out

    def _check_uaccess(self, cfg):
        from repro.staticanalysis.dataflow import instr_defs_uses

        if not UACCESS_FUNCTIONS.match(cfg.info.name):
            return []
        guard_blocks = self._guard_call_blocks(cfg)
        dom = _dominators(cfg)
        out = []
        for block in cfg.blocks.values():
            guarded_in_block = False
            for ins in block.instrs:
                if self._is_guard_call(ins):
                    guarded_in_block = True
                eff = instr_defs_uses(ins)
                if not (eff.reads_mem or eff.writes_mem):
                    continue
                mem = self._mem_operand(ins)
                if mem is None or self._benign_mem(mem):
                    continue
                if self._ex_covered(ins.addr):
                    continue
                if guarded_in_block or any(
                        d in guard_blocks for d in dom[block.start]
                        if d != block.start):
                    continue
                out.append(LintFinding(
                    "uncovered-uaccess", cfg.info.name, ins.addr,
                    "%s dereference neither fixup-covered nor"
                    " guarded by %s" % (ins.op,
                                        "/".join(UACCESS_GUARDS))))
        return out

    def _guard_call_blocks(self, cfg):
        return {block.start for block in cfg.blocks.values()
                if any(self._is_guard_call(i) for i in block.instrs)}

    def _is_guard_call(self, ins):
        if ins.op != "call" or ins.rel is None:
            return False
        target = ins.addr + ins.length + ins.rel
        callee = self.kernel.find_function(target)
        return callee is not None and callee.name in UACCESS_GUARDS

    @staticmethod
    def _mem_operand(ins):
        for operand in (ins.dst, ins.src):
            if operand is not None and operand[0] == "m":
                return operand[1]
        return None

    def _benign_mem(self, mem):
        """Stack-frame slots and direct kernel globals cannot be user
        pointers."""
        if mem.base in (4, 5) and mem.index is None:  # esp/ebp
            return True
        if mem.base is None and mem.index is None:
            return (mem.disp & 0xFFFFFFFF) >= self.kernel.base
        return False

    def _check_stack(self, cfg):
        pads = [a for a in self._landing_pads if a in cfg.blocks]
        analysis = analyze_stack(cfg, extra_entries=pads,
                                 noreturn_targets=self._noreturn)
        return [LintFinding("stack-imbalance", cfg.info.name, addr,
                            message)
                for addr, message in analysis.findings]

    def _check_propagation_leak(self, info):
        if self._propagation is None:
            from repro.staticanalysis.propagation import \
                PropagationAnalyzer
            self._propagation = PropagationAnalyzer(self.kernel)
        return [LintFinding("propagation-leak", info.name, addr,
                            message)
                for addr, message in
                self._propagation.leak_channels(info.name)]

    def _check_fingerprint_opaque(self, info):
        if self._opacity is None:
            from repro.staticanalysis.delta import opaque_functions
            self._opacity = opaque_functions(self.kernel)
        reasons = self._opacity.get(info.name)
        if not reasons:
            return []
        return [LintFinding(
            "fingerprint-opaque", info.name, info.start,
            "outgoing edges not statically enumerable (%s): "
            "conservatively impacted by every kernel change"
            % "; ".join(reasons))]
