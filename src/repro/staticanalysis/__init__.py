"""Static binary analysis of the built kernel image.

The paper's experiment spends most of its >35,000 injections learning
that a flip was never activated or never manifested.  This package is
the static layer that predicts those outcomes *before* burning a run
(FastFlip-style compositional analysis, see PAPERS.md), and that lints
the image for defects the dynamic campaigns only find by crashing:

* :mod:`repro.staticanalysis.cfg` — per-function control-flow graphs
  (basic blocks, edges) and the image-wide call graph, built on the
  existing :mod:`repro.isa.decoder`.
* :mod:`repro.staticanalysis.dataflow` — per-instruction def/use sets
  for registers and arithmetic flags, backward-liveness and
  reaching-definitions fixpoints over the CFG.
* :mod:`repro.staticanalysis.predict` — the bit-flip pre-classifier:
  for an injection site ``(instruction, byte, bit)``, decode the
  mutated stream and predict the outcome class (invalid opcode,
  dead write, length change, branch reversal, unknown).
* :mod:`repro.staticanalysis.stackdepth` — symbolic stack-depth
  fixpoint used by the linter's stack-imbalance rule.
* :mod:`repro.staticanalysis.equivalence` — fault-site equivalence
  classes: static partitioning of injection sites by canonical class
  fingerprint, pilot-only campaigns with audited extrapolation
  (``repro.tools.kequiv`` CLI).
* :mod:`repro.staticanalysis.linter` — image lint rules (unreachable
  blocks, fall-through off a function end, user-pointer dereferences
  outside ``__ex_table`` coverage, stack imbalance) behind the
  ``repro.tools.kerncheck`` CLI.

See ``docs/static-analysis.md`` for the design and for how campaign
pruning preserves the paper's Table 3/4 semantics.
"""

from repro.staticanalysis.cfg import (
    BasicBlock,
    FunctionCFG,
    build_cfg,
    build_callgraph,
    describe_block,
)
from repro.staticanalysis.dataflow import (
    instr_defs_uses,
    live_after_map,
    liveness,
    reaching_definitions,
)
from repro.staticanalysis.predict import (
    PRED_BRANCH_REVERSAL,
    PRED_CLASSES,
    PRED_DEAD,
    PRED_INVALID_OPCODE,
    PRED_LENGTH_CHANGE,
    PRED_UNKNOWN,
    PreClassifier,
    classify_flip,
)
from repro.staticanalysis.equivalence import (
    EquivalencePlan,
    SitePartitioner,
    describe_site_class,
    plan_equivalence,
    run_equiv_campaign,
)
from repro.staticanalysis.linter import KernelLinter, LintFinding

__all__ = [
    "EquivalencePlan", "SitePartitioner", "describe_site_class",
    "plan_equivalence", "run_equiv_campaign",
    "BasicBlock", "FunctionCFG", "build_cfg", "build_callgraph",
    "describe_block",
    "instr_defs_uses", "liveness", "live_after_map",
    "reaching_definitions",
    "PRED_BRANCH_REVERSAL", "PRED_CLASSES", "PRED_DEAD",
    "PRED_INVALID_OPCODE", "PRED_LENGTH_CHANGE", "PRED_UNKNOWN",
    "PreClassifier", "classify_flip",
    "KernelLinter", "LintFinding",
]
