"""Symbolic stack-depth fixpoint for the linter's imbalance rule.

Tracks, per basic block, how many bytes the function has pushed since
entry (depth 0 = esp as on entry, return address on top).  The walk
knows the idioms the compiler and the hand-written stubs actually use:

* ``push``/``pop``/``pushf``/``popf``/``push_sr``/``pop_sr`` (±4),
  ``pusha``/``popa`` (±32);
* ``sub esp, imm`` / ``add esp, imm``;
* the ``ebp`` frame dance: ``mov ebp, esp`` records the current depth,
  ``leave`` (or ``mov esp, ebp``; ``pop ebp``) restores it;
* ``call`` is depth-neutral (callees return with the caller's esp) —
  except calls into *noreturn* functions (``panic``/``do_exit``),
  which end the path: the depth after them never flows anywhere, so
  propagating it would manufacture bogus joins downstream.

Anything else that writes ``esp`` — ``iret``, loading esp from memory
(``__switch_to``), ``enter``, arithmetic through registers — makes the
function *unanalyzable* and the rule deliberately stays silent rather
than guessing (these are the context-switch/trap-entry stubs, whose
stack discipline is the interrupt frame's business).

Reported findings:

* a ``ret`` reached with non-zero depth (the classic smashed epilogue);
* a block reachable with two different depths (imbalanced join);
* popping below the entry depth (negative depth).
"""

from repro.staticanalysis.dataflow import instr_defs_uses

#: ops with a fixed depth delta.
_SIMPLE_DELTA = {
    "push": 4, "pushf": 4, "push_sr": 4,
    "pop": -4, "popf": -4, "pop_sr": -4,
    "pusha": 32, "popa": -32,
}

#: System/flag ops that certainly leave esp and ebp alone, even though
#: the general def/use model treats them with a catch-all summary.
_ESP_NEUTRAL = frozenset((
    "cli", "sti", "cld", "std", "clc", "stc", "cmc", "nop", "wait",
    "hlt", "sahf", "lahf", "cwde", "cdq", "xlat", "in", "out",
    # system ops writing only eax/ebx/ecx/edx (or nothing)
    "rdtsc", "rdmsr", "wrmsr", "rdpmc", "cpuid", "invd", "clts",
    "sysgrp", "mov_to_cr", "mov_to_dr",
    # ud2 is the BUG() trap: it terminates its block, so the depth
    # after it never flows anywhere
    "ud2",
))


class StackAnalysis:
    """Result of :func:`analyze_stack`.

    Attributes:
        analyzable: False when the function manipulates esp in ways
            the model does not track (findings is then empty).
        findings: list of ``(addr, message)``.
        depth_in: block start -> entry depth (for analyzable funcs).
    """

    __slots__ = ("analyzable", "findings", "depth_in")

    def __init__(self, analyzable, findings, depth_in):
        self.analyzable = analyzable
        self.findings = findings
        self.depth_in = depth_in


class _Unanalyzable(Exception):
    pass


def _step(ins, depth, frame):
    """Apply one instruction: returns (depth, frame_depth).

    *frame* is the depth recorded at ``mov ebp, esp`` (None when ebp
    does not currently mirror a known stack position).
    """
    op = ins.op
    if op in _SIMPLE_DELTA:
        # pop into esp itself leaves esp = popped value: untrackable.
        if op == "pop" and ins.dst == ("r", 4):
            raise _Unanalyzable("pop esp")
        return depth + _SIMPLE_DELTA[op], frame
    if op == "mov" and ins.dst == ("r", 5) and ins.src == ("r", 4):
        return depth, depth                  # mov ebp, esp
    if op == "mov" and ins.dst == ("r", 4) and ins.src == ("r", 5):
        if frame is None:
            raise _Unanalyzable("mov esp, ebp with unknown ebp")
        return frame, frame                  # mov esp, ebp
    if op == "leave":
        if frame is None:
            raise _Unanalyzable("leave with unknown ebp")
        return frame - 4, None               # esp = ebp; pop ebp
    if op in ("add", "sub") and ins.dst == ("r", 4):
        if ins.src is None or ins.src[0] != "i":
            raise _Unanalyzable("esp arithmetic by register")
        imm = ins.src[1]
        imm = imm - (1 << 32) if imm >= (1 << 31) else imm
        return depth + (imm if op == "sub" else -imm), frame
    if op in ("call", "call_ind", "int", "int3", "into"):
        return depth, frame                  # balanced callee / trap
    if op in ("ret", "lret"):
        return depth, frame                  # checked by the caller
    if op in _ESP_NEUTRAL:
        return depth, frame
    if op in ("mov_from_cr", "mov_from_dr"):
        if ins.dst == ("r", 4):
            raise _Unanalyzable("control register read into esp")
        return depth, (None if ins.dst == ("r", 5) else frame)
    # ebp overwritten by anything else: the frame anchor is gone.
    eff = instr_defs_uses(ins)
    if "esp" in eff.may_defs:
        raise _Unanalyzable("%s writes esp" % op)
    if "ebp" in eff.may_defs:
        return depth, None
    return depth, frame


def analyze_stack(cfg, extra_entries=(), noreturn_targets=()):
    """Run the depth fixpoint over *cfg*.

    *extra_entries* (``__ex_table`` landing pads) are additional roots;
    they start at unknown depth and are skipped rather than guessed.

    *noreturn_targets* are entry addresses of functions that never
    return (``panic``/``do_exit``): a direct ``call`` into one ends
    the path, so the remaining instructions of its block and the
    block's successors do not receive the (meaningless) post-call
    depth.
    """
    noreturn_targets = frozenset(noreturn_targets)
    if cfg.has_bad_instr:
        return StackAnalysis(False, [], {})
    for block in cfg.blocks.values():
        for ins in block.instrs:
            if ins.op in ("iret", "enter", "jmp_ind", "jmpf_ind"):
                return StackAnalysis(False, [], {})

    findings = []
    skip = set(extra_entries)
    depth_in = {cfg.entry: (0, None)}
    work = [cfg.entry]
    try:
        while work:
            start = work.pop()
            block = cfg.blocks[start]
            depth, frame = depth_in[start]
            terminated = False
            for ins in block.instrs:
                if ins.op in ("ret", "lret") and depth != 0:
                    findings.append(
                        (ins.addr,
                         "ret with stack depth %+d bytes" % depth))
                if (ins.op == "call" and ins.rel is not None
                        and ins.addr + ins.length + ins.rel
                        in noreturn_targets):
                    terminated = True  # path ends inside the callee
                    break
                depth, frame = _step(ins, depth, frame)
                if depth < 0:
                    findings.append(
                        (ins.addr,
                         "stack depth below function entry (%d)"
                         % depth))
                    raise _Unanalyzable("negative depth")
            if terminated:
                continue
            for succ in block.succs:
                if succ in skip:
                    continue
                state = (depth, frame)
                seen = depth_in.get(succ)
                if seen is None:
                    depth_in[succ] = state
                    work.append(succ)
                elif seen[0] != depth:
                    findings.append(
                        (succ,
                         "stack depth mismatch at join: %d vs %d"
                         % (seen[0], depth)))
    except _Unanalyzable:
        if not findings:
            return StackAnalysis(False, [], {})
    return StackAnalysis(
        True, findings,
        {start: state[0] for start, state in depth_in.items()})
