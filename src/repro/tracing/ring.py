"""The flight-recorder ring buffer and the immutable trace snapshot.

Events are plain tuples so the hot recording path is one tuple
construction plus one list store.  Every event starts with the same
stamp triple — ``(kind, cycle, instret, eip, ...)`` — so readers can
sort, align and filter streams without per-kind cases:

==========  =======================================================
kind        payload after ``(kind, cycle, instret, ...)``
==========  =======================================================
"branch"    ``(src_eip, dst_eip)`` — a retired *taken* control
            transfer (jcc/jmp/call/ret/iret/loop...).  Fall-through
            execution and rep-string self-resumes are not branches.
"trap"      ``(eip, vector, error_code, cr2)`` — an exception or
            interrupt entering delivery at ``eip``.
"write"     ``(eip, addr, size, value)`` — a kernel-mode (CPL0)
            memory write issued by the instruction at ``eip``.
"subsys"    ``(eip, from_domain, to_domain)`` — control moved into a
            different kernel subsystem (or "user"); observed at
            retired-branch granularity.
==========  =======================================================
"""

EV_BRANCH = "branch"
EV_TRAP = "trap"
EV_WRITE = "write"
EV_SUBSYS = "subsys"

#: Every channel the recorder knows, in documentation order.
CHANNELS = (EV_BRANCH, EV_TRAP, EV_WRITE, EV_SUBSYS)

#: What :meth:`Machine.enable_trace` records when not told otherwise:
#: control flow and traps — the channels the divergence diff needs —
#: without the much chattier write channel.
DEFAULT_CHANNELS = (EV_BRANCH, EV_TRAP)


class TraceRing:
    """Fixed-capacity overwrite-oldest event buffer.

    ``capacity=None`` means unbounded (used for whole-run divergence
    diffing, where a wrapped buffer would lose the divergence point);
    ``capacity=0`` is a legal black hole that only counts events.
    ``total`` counts every event ever appended; ``dropped`` is how
    many of those are no longer retained.
    """

    __slots__ = ("capacity", "_buf", "_next", "total")

    def __init__(self, capacity=None):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 or None")
        self.capacity = capacity
        self._buf = []
        self._next = 0          # overwrite cursor, used once full
        self.total = 0

    def append(self, event):
        self.total += 1
        cap = self.capacity
        buf = self._buf
        if cap is None or len(buf) < cap:
            buf.append(event)
        elif cap == 0:
            return
        else:
            buf[self._next] = event
            self._next += 1
            if self._next == cap:
                self._next = 0

    def __len__(self):
        return len(self._buf)

    @property
    def dropped(self):
        """Events appended but no longer retained (overwritten)."""
        return self.total - len(self._buf)

    def events(self):
        """Retained events, oldest first."""
        buf = self._buf
        cap = self.capacity
        if cap is None or len(buf) < cap or self._next == 0:
            return list(buf)
        return buf[self._next:] + buf[:self._next]


class Trace:
    """Immutable snapshot of a tracer's ring at end of run.

    Attached to :class:`~repro.machine.machine.RunResult` as
    ``result.trace``.  ``events`` is a tuple of event tuples, oldest
    first; ``total_events`` / ``dropped_events`` carry the ring's
    accounting so analyses can tell a complete trace from a windowed
    one.
    """

    __slots__ = ("channels", "capacity", "events", "total_events",
                 "dropped_events")

    def __init__(self, channels, capacity, events, total_events,
                 dropped_events):
        self.channels = tuple(channels)
        self.capacity = capacity
        self.events = tuple(events)
        self.total_events = total_events
        self.dropped_events = dropped_events

    def __len__(self):
        return len(self.events)

    def of_kind(self, kind):
        """Retained events of one channel, oldest first."""
        return [ev for ev in self.events if ev[0] == kind]

    def branches(self):
        return self.of_kind(EV_BRANCH)

    def traps(self):
        return self.of_kind(EV_TRAP)

    def writes(self):
        return self.of_kind(EV_WRITE)

    def last_branches(self, n, before_cycle=None):
        """The last *n* retired branches, optionally at/before a cycle.

        This is the LBR-style view ksymoops renders under ``TRACE:`` —
        pass the crash dump's tsc as *before_cycle* to cut the handler
        epilogue off.
        """
        picked = [ev for ev in self.events
                  if ev[0] == EV_BRANCH
                  and (before_cycle is None or ev[1] <= before_cycle)]
        return picked[-n:] if n else []

    def to_dict(self):
        return {
            "channels": list(self.channels),
            "capacity": self.capacity,
            "total_events": self.total_events,
            "dropped_events": self.dropped_events,
            "events": [list(ev) for ev in self.events],
        }

    def __repr__(self):
        return ("Trace(%d events, %d dropped, channels=%s)"
                % (len(self.events), self.dropped_events,
                   "+".join(self.channels)))


def format_event(event, symbolize=None):
    """One human-readable line for an event tuple.

    *symbolize* maps an address to a ``name+0xoff`` string (see
    :func:`repro.analysis.oops.symbolize`); addresses print raw
    without it.
    """
    def sym(addr):
        if symbolize is None:
            return "%08x" % addr
        return "%08x <%s>" % (addr, symbolize(addr))

    kind, cycle, instret = event[0], event[1], event[2]
    head = "cycle=%-10d instret=%-9d %-6s" % (cycle, instret, kind)
    if kind == EV_BRANCH:
        return "%s %s -> %s" % (head, sym(event[3]), sym(event[4]))
    if kind == EV_TRAP:
        return ("%s vector=%d err=%#x cr2=%08x at %s"
                % (head, event[4], event[5], event[6], sym(event[3])))
    if kind == EV_WRITE:
        return ("%s [%08x] <- %0*x (%d bytes) at %s"
                % (head, event[4], 2 * event[5], event[6], event[5],
                   sym(event[3])))
    if kind == EV_SUBSYS:
        return ("%s %s -> %s at %s"
                % (head, event[4] or "(start)", event[5],
                   sym(event[3])))
    return "%s %r" % (head, event[3:])
