"""Execution flight recorder: trace ring buffer + divergence diffing.

The paper reads crash latency and propagation off hardware dumps; the
simulator can do better: record the *execution itself*.  This package
is the observability layer (see ``docs/observability.md``):

- ``repro.tracing.ring`` — the fixed-capacity flight-recorder ring
  buffer and the immutable :class:`Trace` snapshot a run returns;
- ``repro.tracing.recorder`` — the :class:`Tracer` that installs the
  CPU observation hooks (retired branches, traps, kernel memory
  writes, subsystem/privilege transitions);
- ``repro.tracing.diff`` — golden-vs-injected trace comparison: the
  first architectural divergence after a bit flip, empirical
  propagation distance, and the ordered subsystem spread.

Tracing is purely observational: an enabled tracer never touches the
architectural state, cycle counter or decode cache, so a traced run is
bit-identical to an untraced one (enforced by test).
"""

from repro.tracing.ring import (
    CHANNELS,
    DEFAULT_CHANNELS,
    EV_BRANCH,
    EV_SUBSYS,
    EV_TRAP,
    EV_WRITE,
    Trace,
    TraceRing,
    format_event,
)
from repro.tracing.recorder import Tracer
from repro.tracing.diff import TraceDiff, diff_traces

__all__ = [
    "CHANNELS",
    "DEFAULT_CHANNELS",
    "EV_BRANCH",
    "EV_SUBSYS",
    "EV_TRAP",
    "EV_WRITE",
    "Trace",
    "TraceDiff",
    "TraceRing",
    "Tracer",
    "diff_traces",
    "format_event",
]
