"""The Tracer: installs CPU observation hooks and fills the ring.

The CPU exposes three optional callbacks, all ``None`` by default so
the untraced hot path pays one attribute test per instruction at most:

- ``cpu.trace_branch(src, dst)`` — after a retired taken control
  transfer (called with the pre-branch EIP and the new EIP);
- ``cpu.trace_trap(vector, error_code, return_eip)`` — at the top of
  trap delivery (nested faults during delivery recurse and are
  recorded too);
- ``cpu.trace_write(vaddr, size, value)`` — on every CPL0 memory
  write, before translation (attempted writes are recorded even if
  they fault: a flight recorder's job is the attempt).

The hooks never mutate CPU state and never touch the cycle counter,
so enabling them cannot perturb the run (the bit-identical property
test holds the recorder to this).
"""

from repro.tracing.ring import (
    CHANNELS,
    DEFAULT_CHANNELS,
    EV_BRANCH,
    EV_SUBSYS,
    EV_TRAP,
    EV_WRITE,
    Trace,
    TraceRing,
)

M32 = 0xFFFFFFFF


class Tracer:
    """Records selected channels from one CPU into a ring buffer.

    Args:
        cpu: the :class:`~repro.cpu.cpu.CPU` to observe.
        channels: iterable of channel names (see
            :data:`~repro.tracing.ring.CHANNELS`).
        capacity: ring capacity in events (``None`` = unbounded).
        subsystem_of: ``eip -> domain-name`` callable; required by the
            ``subsys`` channel (the machine layer supplies a
            kernel-map-backed one).
    """

    def __init__(self, cpu, channels=DEFAULT_CHANNELS, capacity=None,
                 subsystem_of=None):
        channels = tuple(channels)
        unknown = set(channels) - set(CHANNELS)
        if unknown:
            raise ValueError("unknown trace channels %s (have %s)"
                             % (sorted(unknown), list(CHANNELS)))
        if not channels:
            raise ValueError("at least one trace channel is required")
        if EV_SUBSYS in channels and subsystem_of is None:
            raise ValueError("the %r channel needs a subsystem_of "
                             "mapping" % EV_SUBSYS)
        self.cpu = cpu
        self.channels = channels
        self.ring = TraceRing(capacity)
        self.subsystem_of = subsystem_of
        self._emit_branch = EV_BRANCH in channels
        self._emit_trap = EV_TRAP in channels
        self._emit_subsys = EV_SUBSYS in channels
        self._domain_cache = {}
        self._domain = None
        if self._emit_subsys:
            self._domain = self._lookup_domain(cpu.eip)
        if self._emit_branch or self._emit_subsys:
            cpu.trace_branch = self._on_branch
        if self._emit_trap:
            cpu.trace_trap = self._on_trap
        if EV_WRITE in channels:
            cpu.trace_write = self._on_write

    # -- hook bodies (hot; keep lean) -----------------------------------

    def _on_branch(self, src, dst):
        cpu = self.cpu
        if self._emit_branch:
            self.ring.append((EV_BRANCH, cpu.cycles, cpu.instret, src,
                              dst))
        if self._emit_subsys:
            domain = self._domain_cache.get(dst)
            if domain is None:
                domain = self._lookup_domain(dst)
            if domain != self._domain:
                self.ring.append((EV_SUBSYS, cpu.cycles, cpu.instret,
                                  dst, self._domain, domain))
                self._domain = domain

    def _on_trap(self, vector, error_code, return_eip):
        cpu = self.cpu
        self.ring.append((EV_TRAP, cpu.cycles, cpu.instret,
                          return_eip & M32, vector,
                          (error_code or 0) & M32, cpu.cr2))

    def _on_write(self, vaddr, size, value):
        cpu = self.cpu
        self.ring.append((EV_WRITE, cpu.cycles, cpu.instret, cpu.eip,
                          vaddr & M32, size,
                          value & ((1 << (8 * size)) - 1)))

    def _lookup_domain(self, eip):
        domain = self.subsystem_of(eip) or "(none)"
        self._domain_cache[eip] = domain
        return domain

    # -- lifecycle ------------------------------------------------------

    def detach(self):
        """Remove the hooks from the CPU (the ring stays readable)."""
        cpu = self.cpu
        if cpu.trace_branch is self._on_branch:
            cpu.trace_branch = None
        if cpu.trace_trap is self._on_trap:
            cpu.trace_trap = None
        if cpu.trace_write is self._on_write:
            cpu.trace_write = None

    def snapshot(self):
        """Freeze the ring into an immutable :class:`Trace`."""
        ring = self.ring
        return Trace(self.channels, ring.capacity, ring.events(),
                     ring.total, ring.dropped)
