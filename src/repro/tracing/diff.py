"""Golden-vs-injected trace diffing: the empirical propagation oracle.

A campaign run is deterministic, so the traced event stream of an
injected run is *identical* to the golden run's stream right up to the
first architectural consequence of the flip.  :func:`diff_traces`
exploits that: align the two streams, find the first differing event,
and report the empirical propagation distances the paper could only
bound from dumps —

- **flip -> divergence**: instructions and cycles from activation to
  the first event the corruption changed;
- **divergence -> trap**: cycles from that first visible divergence to
  the crash dump's timestamp;
- the **ordered subsystem spread**: which kernel subsystems the
  corrupted run's post-divergence events touched, in first-touch
  order.

This is the dynamic ground truth the ``trace_validation`` exhibit
holds the static propagation analyzer (PR 4) against.
"""

from repro.tracing.ring import EV_BRANCH, EV_SUBSYS, EV_TRAP, EV_WRITE

#: How a divergence was pinned down.
DIV_EVENT = "event"              # a differing event in both streams
DIV_EXTRA = "extra_events"       # injected stream has extra events
DIV_TRUNCATED = "end_of_trace"   # injected stream ended early


class TraceDiff:
    """Result of comparing a golden trace against an injected one."""

    __slots__ = (
        "diverged", "divergence_kind", "divergence_cycle",
        "divergence_instret", "divergence_eip", "divergence_event",
        "flip_to_divergence_cycles", "flip_to_divergence_instrs",
        "divergence_to_trap_cycles", "flip_to_trap_cycles",
        "subsystems", "compared_events", "complete",
    )

    def __init__(self, **kwargs):
        for name in self.__slots__:
            setattr(self, name, kwargs.pop(name, None))
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    def to_dict(self):
        out = {name: getattr(self, name) for name in self.__slots__}
        if out["divergence_event"] is not None:
            out["divergence_event"] = list(out["divergence_event"])
        return out

    def __repr__(self):
        if not self.diverged:
            return "TraceDiff(no divergence, %d events compared)" \
                % (self.compared_events or 0)
        return ("TraceDiff(%s @ cycle %s, flip->div %s instr, "
                "div->trap %s cycles, spread %s)"
                % (self.divergence_kind, self.divergence_cycle,
                   self.flip_to_divergence_instrs,
                   self.divergence_to_trap_cycles,
                   list(self.subsystems or ())))


def _stamp(event):
    return (event[1], event[2])


def _skip_before(events, stamp):
    """Index of the first event whose stamp is >= *stamp*."""
    for index, event in enumerate(events):
        if _stamp(event) >= stamp:
            return index
    return len(events)


def _event_domains(event, subsystem_of):
    """The domains an event touches, source before destination."""
    kind = event[0]
    if kind == EV_SUBSYS:
        return (event[5],)
    if subsystem_of is None:
        return ()
    if kind == EV_BRANCH:
        return (subsystem_of(event[3]), subsystem_of(event[4]))
    if kind in (EV_TRAP, EV_WRITE):
        return (subsystem_of(event[3]),)
    return ()


def diff_traces(golden, injected, activation_cycle=None,
                activation_instret=None, crash_cycle=None,
                subsystem_of=None):
    """Locate the first divergence between two traces of the same run.

    Args:
        golden: :class:`~repro.tracing.ring.Trace` of the fault-free
            run.
        injected: trace of the corrupted run (same channels, started
            from the same machine state).
        activation_cycle / activation_instret: cycle counter and
            retired-instruction counter at the moment the bit was
            flipped (from the injection callback); enables the
            flip-relative distances.
        crash_cycle: the crash dump's tsc, if the injected run
            crashed; enables divergence -> trap distance.
        subsystem_of: ``eip -> domain`` mapping used to compute the
            post-divergence subsystem spread from branch/trap/write
            events (unnecessary when the ``subsys`` channel was
            recorded).

    Both rings should be complete (unbounded or never wrapped) for
    exact results; a wrapped ring degrades gracefully — the diff is
    still computed over the retained window but ``complete`` is False
    and the divergence may be reported later than it really was.
    """
    g = list(golden.events)
    j = list(injected.events)
    complete = (golden.dropped_events == 0
                and injected.dropped_events == 0)
    gi = ji = 0
    if g and j:
        start = max(_stamp(g[0]), _stamp(j[0]))
        gi = _skip_before(g, start)
        ji = _skip_before(j, start)
    n = min(len(g) - gi, len(j) - ji)
    div_at = None
    for k in range(n):
        if g[gi + k] != j[ji + k]:
            div_at = k
            break
    kind = None
    if div_at is not None:
        kind = DIV_EVENT
    elif len(j) - ji > n:
        div_at, kind = n, DIV_EXTRA
    elif len(g) - gi > n:
        div_at, kind = n, DIV_TRUNCATED

    if kind is None:
        return TraceDiff(diverged=False, complete=complete,
                         compared_events=n, subsystems=())

    fields = dict(diverged=True, divergence_kind=kind,
                  complete=complete, compared_events=div_at)
    tail = []
    if kind in (DIV_EVENT, DIV_EXTRA):
        event = j[ji + div_at]
        tail = j[ji + div_at:]
        fields.update(divergence_event=event,
                      divergence_cycle=event[1],
                      divergence_instret=event[2],
                      divergence_eip=event[3])
    else:
        # The injected run stopped emitting events while the golden
        # run went on: it wedged or crashed without a single further
        # branch/trap/write.  The best stamp is the crash itself, or
        # failing that the injected stream's end.
        last = j[-1] if j else None
        fields.update(
            divergence_event=None,
            divergence_cycle=(crash_cycle if crash_cycle is not None
                              else (last[1] if last else None)),
            divergence_instret=last[2] if last else None,
            divergence_eip=None,
        )

    div_cycle = fields["divergence_cycle"]
    div_instret = fields["divergence_instret"]
    if activation_cycle is not None and div_cycle is not None:
        fields["flip_to_divergence_cycles"] = \
            max(0, div_cycle - activation_cycle)
    if activation_instret is not None and div_instret is not None:
        fields["flip_to_divergence_instrs"] = \
            max(0, div_instret - activation_instret)
    if crash_cycle is not None:
        if div_cycle is not None:
            fields["divergence_to_trap_cycles"] = \
                max(0, crash_cycle - div_cycle)
        if activation_cycle is not None:
            fields["flip_to_trap_cycles"] = \
                max(0, crash_cycle - activation_cycle)

    spread = []
    for event in tail:
        for domain in _event_domains(event, subsystem_of):
            if domain is not None and domain not in spread:
                spread.append(domain)
    fields["subsystems"] = tuple(spread)
    return TraceDiff(**fields)
