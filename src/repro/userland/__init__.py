"""User-mode programs: init plus the UnixBench-like workload suite."""

from repro.userland.build import UserBinary, build_program, build_all_programs
from repro.userland.programs import PROGRAMS, WORKLOADS

__all__ = ["UserBinary", "build_program", "build_all_programs",
           "PROGRAMS", "WORKLOADS"]
