"""MinC sources for the user programs.

``WORKLOADS`` mirrors the eight UnixBench programs the paper selected
(§4): context1, dhry, fstime, hanoi, looper, pipe, spawn, syscall.  Each
prints deterministic results so the harness can compare every injected
run against the golden run (not-manifested vs fail-silence
classification).

Programs reference ``CFG_ITERS`` for their main loop count; the builder
prepends the ``const`` declaration, so workload sizes are a build
parameter.
"""

# Shared user-space runtime ("libc").
ULIB = r"""
int exit(code) {
    syscall(1, code);
    for (;;)
        ;
    return 0;
}

int fork() { return syscall(2); }
int read(fd, buf, n) { return syscall(3, fd, buf, n); }
int write(fd, buf, n) { return syscall(4, fd, buf, n); }
int open(path) { return syscall(5, path); }
int close(fd) { return syscall(6, fd); }
int wait(status_ptr) { return syscall(7, status_ptr); }
int creat(path) { return syscall(8, path); }
int unlink(path) { return syscall(9, path); }
int exec(path) { return syscall(10, path); }
int lseek(fd, off, whence) { return syscall(12, fd, off, whence); }
int getpid() { return syscall(13); }
int dup(fd) { return syscall(14, fd); }
int pipe(fds) { return syscall(15, fds); }
int brk(p) { return syscall(16, p); }
int sched_yield() { return syscall(17); }
int kill(pid, sig) { return syscall(18, pid, sig); }
int sync() { return syscall(19); }
int reboot(code) { return syscall(20, code); }
int sem_op(op) { return syscall(21, op); }
int net_ping(v) { return syscall(22, v); }
int stat(path, buf) { return syscall(11, path, buf); }
int sysinfo(buf) { return syscall(23, buf); }

int strlen(s) {
    int n = 0;
    while (ldb(s + n))
        n++;
    return n;
}

int strcpy(dst, src) {
    int d = dst;
    int c;
    do {
        c = ldb(src);
        stb(d, c);
        src++;
        d++;
    } while (c);
    return dst;
}

int strcmp(a, b) {
    int ca;
    int cb;
    for (;;) {
        ca = ldb(a);
        cb = ldb(b);
        if (ca != cb)
            return ca - cb;
        if (!ca)
            return 0;
        a++;
        b++;
    }
}

int print(s) {
    return write(1, s, strlen(s));
}

int printn(v) {
    int buf[12];
    int tmp[12];
    int n = 0;
    int len = 0;
    if (v < 0) {
        stb(buf, '-');
        len = 1;
        v = -v;
    }
    if (v == 0) {
        tmp[n] = '0';
        n = 1;
    }
    while (v) {
        tmp[n] = '0' + umod(v, 10);
        v = udiv(v, 10);
        n++;
    }
    while (n > 0) {
        n--;
        stb(buf + len, tmp[n]);
        len++;
    }
    return write(1, buf, len);
}

int printx(v) {
    int buf[4];
    int i;
    int digit;
    for (i = 0; i < 8; i++) {
        digit = (v >> ((7 - i) * 4)) & 15;
        if (digit < 10)
            stb(buf + i, '0' + digit);
        else
            stb(buf + i, 'a' + digit - 10);
    }
    return write(1, buf, 8);
}
"""

# Entry stub assembled in front of each program.
USTART_ASM = r"""
.func _ustart user
_ustart:
    call main
    push eax
    call exit
.endfunc
"""

INIT = r"""
int status = 0;

int check_libc() {
    int fd = open("/lib/libc.txt");
    int buf[8];
    int got;
    if (fd < 0)
        return -1;
    got = read(fd, buf, 14);
    close(fd);
    if (got < 14)
        return -1;
    stb(buf + 14, 0);
    if (strcmp(buf, "LIBC-2.2.4-SIM") != 0)
        return -1;
    return 0;
}

int append_bootlog() {
    int fd = open("/var/bootlog");
    if (fd < 0) {
        fd = creat("/var/bootlog");
        if (fd < 0)
            return -1;
    }
    lseek(fd, 0, 2);
    write(fd, "boot\n", 5);
    close(fd);
    return 0;
}

int main() {
    int path[32];
    int got;
    int fd;
    int pid;
    open("/dev/console");       /* fd 0 */
    dup(0);                     /* fd 1 */
    dup(0);                     /* fd 2 */
    print("INIT: version 2.84-sim booting\n");
    if (check_libc() < 0) {
        print("INIT: error while loading shared libraries: /lib/libc.txt: file too short\n");
        reboot(86);
    }
    append_bootlog();
    fd = open("/etc/workload");
    if (fd < 0) {
        print("INIT: no workload configured\n");
        sync();
        reboot(0);
    }
    got = read(fd, path, 100);
    close(fd);
    if (got <= 0) {
        print("INIT: empty workload file\n");
        sync();
        reboot(0);
    }
    stb(path + got, 0);
    print("INIT: starting workload\n");
    pid = fork();
    if (pid == 0) {
        exec(path);
        print("INIT: cannot exec workload\n");
        exit(127);
    }
    if (pid < 0) {
        print("INIT: fork failed\n");
        sync();
        reboot(1);
    }
    wait(&status);
    print("INIT: workload exited status=");
    printn(status);
    print("\n");
    sync();
    reboot(0);
}
"""

NULLTASK = r"""
int main() {
    return 0;
}
"""

# -- the eight UnixBench-equivalent workloads -----------------------------

SYSCALL_BENCH = r"""
/* syscall.c: raw system-call overhead (getpid/dup/close/umask-ish). */
int main() {
    int i;
    int ok = 0;
    int fd;
    open("/dev/console");
    for (i = 0; i < CFG_ITERS; i++) {
        if (getpid() > 0)
            ok++;
        fd = dup(0);
        if (fd >= 0) {
            close(fd);
            ok++;
        }
        sem_op(0);
        sem_op(1);
        if (net_ping(i) >= 0)
            ok++;
    }
    print("syscall: ");
    printn(ok);
    print(" ok\n");
    return 0;
}
"""

PIPE_BENCH = r"""
/* pipe.c: 512-byte round trips through a self-pipe. */
int fds[2];
int buf[128];

int main() {
    int i;
    int j;
    int sum = 0;
    int got;
    open("/dev/console");
    if (pipe(fds) < 0) {
        print("pipe: FAIL create\n");
        return 1;
    }
    for (i = 0; i < CFG_ITERS; i++) {
        for (j = 0; j < 128; j++)
            buf[j] = i * 131 + j;
        if (write(fds[1], buf, 512) != 512) {
            print("pipe: FAIL write\n");
            return 1;
        }
        for (j = 0; j < 128; j++)
            buf[j] = 0;
        got = read(fds[0], buf, 512);
        if (got != 512) {
            print("pipe: FAIL read\n");
            return 1;
        }
        for (j = 0; j < 128; j++)
            sum += buf[j] & 255;
    }
    print("pipe: sum=");
    printn(sum);
    print("\n");
    return 0;
}
"""

CONTEXT1_BENCH = r"""
/* context1.c: token ping-pong between two processes over two pipes. */
int p1[2];
int p2[2];

int main() {
    int i;
    int token[1];
    int pid;
    int status;
    open("/dev/console");
    if (pipe(p1) < 0 || pipe(p2) < 0) {
        print("context1: FAIL pipes\n");
        return 1;
    }
    pid = fork();
    if (pid == 0) {
        /* child: echo tokens from p1 to p2, incremented */
        for (i = 0; i < CFG_ITERS; i++) {
            if (read(p1[0], token, 4) != 4)
                exit(2);
            token[0] = token[0] + 1;
            if (write(p2[1], token, 4) != 4)
                exit(3);
        }
        exit(0);
    }
    if (pid < 0) {
        print("context1: FAIL fork\n");
        return 1;
    }
    token[0] = 0;
    for (i = 0; i < CFG_ITERS; i++) {
        if (write(p1[1], token, 4) != 4) {
            print("context1: FAIL write\n");
            return 1;
        }
        if (read(p2[0], token, 4) != 4) {
            print("context1: FAIL read\n");
            return 1;
        }
        token[0] = token[0] + 1;
    }
    wait(&status);
    print("context1: token=");
    printn(token[0]);
    print(" child=");
    printn(status);
    print("\n");
    return 0;
}
"""

SPAWN_BENCH = r"""
/* spawn.c: process creation rate. */
int main() {
    int i;
    int pid;
    int status;
    int ok = 0;
    int marker[1];
    open("/dev/console");
    for (i = 0; i < CFG_ITERS; i++) {
        marker[0] = i ^ 0x5A;
        pid = fork();
        if (pid == 0) {
            /* touch the COW'd stack page, then exit */
            marker[0] = marker[0] + 1;
            exit(marker[0] & 127);
        }
        if (pid < 0) {
            print("spawn: FAIL fork\n");
            return 1;
        }
        status = -1;
        wait(&status);
        if (status == (((i ^ 0x5A) + 1) & 127))
            ok++;
    }
    print("spawn: ");
    printn(ok);
    print(" ok\n");
    return 0;
}
"""

FSTIME_BENCH = r"""
/* fstime.c: file write / rewind / read / verify / unlink cycle. */
int buf[256];

int main() {
    int fd;
    int i;
    int j;
    int sum = 0;
    int got;
    open("/dev/console");
    for (i = 0; i < CFG_ITERS; i++) {
        fd = creat("/var/fstime.tmp");
        if (fd < 0) {
            print("fstime: FAIL creat\n");
            return 1;
        }
        for (j = 0; j < 256; j++)
            buf[j] = i * 977 + j * 13;
        for (j = 0; j < 4; j++)
            if (write(fd, buf, 1024) != 1024) {
                print("fstime: FAIL write\n");
                return 1;
            }
        close(fd);
        fd = open("/var/fstime.tmp");
        if (fd < 0) {
            print("fstime: FAIL reopen\n");
            return 1;
        }
        for (j = 0; j < 4; j++) {
            got = read(fd, buf, 1024);
            if (got != 1024) {
                print("fstime: FAIL read\n");
                return 1;
            }
        }
        close(fd);
        for (j = 0; j < 256; j++)
            sum += buf[j] & 1023;
        unlink("/var/fstime.tmp");
    }
    sync();
    print("fstime: sum=");
    printn(sum);
    print("\n");
    return 0;
}
"""

DHRY_BENCH = r"""
/* dhry: Dhrystone-flavoured integer and string CPU work. */
int int_glob = 0;
int bool_glob = 0;
int arr1[50];
int arr2[50];
int str1[12];
int str2[12];

int proc7(a, b) {
    return a + b + 2;
}

int proc8(a1, a2, idx, val) {
    a1[idx] = val;
    a1[idx + 1] = a1[idx];
    a1[idx + 30] = idx;
    a2[idx] = a1[idx] + int_glob;
    return 0;
}

int func2(s1, s2) {
    if (strcmp(s1, s2) != 0) {
        int_glob = int_glob + 10;
        return 1;
    }
    return 0;
}

int main() {
    int run;
    int i;
    int sum = 0;
    open("/dev/console");
    strcpy(str1, "DHRYSTONE PROGRAM, 1ST STRING");
    for (run = 0; run < CFG_ITERS; run++) {
        strcpy(str2, "DHRYSTONE PROGRAM, 2ND STRING");
        int_glob = run & 7;
        proc8(arr1, arr2, run % 16, run * 3);
        bool_glob = func2(str1, str2);
        for (i = 0; i < 50; i++)
            sum += arr2[i] ^ arr1[i];
        sum += proc7(run, int_glob);
        if (bool_glob)
            sum += 5;
        else
            sum -= 3;
        if (run % 16 == 0)
            getpid();       /* sprinkle kernel entries, like timer ticks */
    }
    print("dhry: sum=");
    printn(sum);
    print("\n");
    return 0;
}
"""

HANOI_BENCH = r"""
/* hanoi.c: deep recursion. */
int moves = 0;

int hanoi(n, from, to, via) {
    if (n == 1) {
        moves++;
        return 0;
    }
    hanoi(n - 1, from, via, to);
    moves++;
    hanoi(n - 1, via, to, from);
    return 0;
}

int main() {
    int i;
    open("/dev/console");
    for (i = 0; i < CFG_ITERS; i++)
        hanoi(9, 1, 3, 2);
    print("hanoi: moves=");
    printn(moves);
    print("\n");
    return 0;
}
"""

LOOPER_BENCH = r"""
/* looper.c: repeated fork+exec of a trivial program. */
int main() {
    int i;
    int pid;
    int status;
    int ok = 0;
    open("/dev/console");
    for (i = 0; i < CFG_ITERS; i++) {
        pid = fork();
        if (pid == 0) {
            exec("/bin/nulltask");
            exit(99);
        }
        if (pid < 0) {
            print("looper: FAIL fork\n");
            return 1;
        }
        status = -1;
        wait(&status);
        if (status == 0)
            ok++;
    }
    print("looper: ");
    printn(ok);
    print(" ok\n");
    return 0;
}
"""

# name -> (source, default CFG_ITERS)
PROGRAMS = {
    "init": (INIT, 0),
    "nulltask": (NULLTASK, 0),
    "syscall": (SYSCALL_BENCH, 15),
    "pipe": (PIPE_BENCH, 10),
    "context1": (CONTEXT1_BENCH, 10),
    "spawn": (SPAWN_BENCH, 4),
    "fstime": (FSTIME_BENCH, 2),
    "dhry": (DHRY_BENCH, 25),
    "hanoi": (HANOI_BENCH, 3),
    "looper": (LOOPER_BENCH, 2),
}

# The eight benchmark programs of the paper's §4, in its order.
WORKLOADS = ("context1", "dhry", "fstime", "hanoi", "looper", "pipe",
             "spawn", "syscall")
