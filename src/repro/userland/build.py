"""Build user programs into flat "bx" binaries.

Binary layout (matching the kernel's exec loader)::

    +0   magic 0x0B17C0DE
    +4   entry (virtual address of _ustart)
    +8   file size (bytes the loader reads from the file)
    +12  bss size (zero bytes appended after the image)
    +16  text ... [page-aligned gap] ... data
"""

import struct

from repro.cc.compiler import compile_unit
from repro.isa.assembler import assemble
from repro.kernel.layout import PAGE_SIZE, KernelLayout
from repro.userland.programs import PROGRAMS, ULIB, USTART_ASM


class UserBinary:
    """One built user program."""

    def __init__(self, name, image, entry, symbols, functions):
        self.name = name
        self.image = image          # bytes incl. the 16-byte header
        self.entry = entry
        self.symbols = symbols
        self.functions = functions

    def __len__(self):
        return len(self.image)


def build_program(name, iters=None, layout=None, extra_source=""):
    """Compile one user program into a :class:`UserBinary`.

    Args:
        name: key into :data:`~repro.userland.programs.PROGRAMS`.
        iters: override the program's CFG_ITERS build parameter.
        extra_source: additional MinC appended to the program unit
            (used by tests to craft custom programs).
    """
    if layout is None:
        layout = KernelLayout()
    source, default_iters = PROGRAMS[name]
    if iters is None:
        iters = default_iters
    config = "const CFG_ITERS = %d;\n" % iters
    unit = compile_unit([
        ("config.h", "user", config),
        ("ulib.c", "user", ULIB),
        (name + ".c", "user", source + extra_source),
    ], externs=("_ustart",))
    asm_text = (
        ".long %d\n" % 0x0B17C0DE
        + ".long _ustart\n"
        + ".long 0\n"               # file size, patched below
        + ".long 0\n"               # bss
        + USTART_ASM
        + unit.text
        + "\n.align %d\n" % PAGE_SIZE
        + unit.data
    )
    program = assemble(asm_text, base=layout.USER_TEXT)
    image = bytearray(program.code)
    struct.pack_into("<I", image, 8, len(image))
    return UserBinary(
        name=name,
        image=bytes(image),
        entry=program.symbols["_ustart"],
        symbols=program.symbols,
        functions=program.functions,
    )


def build_all_programs(iters_overrides=None, layout=None):
    """Build every program; returns name -> :class:`UserBinary`."""
    overrides = iters_overrides or {}
    return {
        name: build_program(name, iters=overrides.get(name), layout=layout)
        for name in PROGRAMS
    }
