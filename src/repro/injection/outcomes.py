"""Outcome taxonomy (the paper's Table 3) and crash-cause naming."""

# Outcome categories, in the paper's reporting order.
NOT_ACTIVATED = "not_activated"
NOT_MANIFESTED = "not_manifested"
FAIL_SILENCE_VIOLATION = "fail_silence_violation"
CRASH_DUMPED = "crash_dumped"
#: The kernel dumped, killed the offending task, and kept running
#: (recovery kernels only).  Sub-classified by ``recovered_class``:
#: :data:`RECOVERED_WORKLOAD_CORRECT` when the surviving system still
#: produced the golden workload behaviour, :data:`RECOVERED_FSV` when
#: it ran on but visibly diverged, :data:`RECOVERED_LATER_CRASH` when
#: the machine recovered once and then crashed or hung anyway.
CRASH_RECOVERED = "crash_recovered"
CRASH_UNKNOWN = "crash_unknown"     # triple fault / undumped wedge
HANG = "hang"                        # watchdog fired
#: The *harness* (not the simulated kernel) failed while running the
#: experiment: an exception escaped the injector, or a worker process
#: wedged/died past its retry budget.  The paper's rig has the same
#: category implicitly — runs its watchdog/reboot ladder could not
#: complete — and, like the paper, we report these separately instead
#: of mixing them into the kernel-behaviour statistics.
HARNESS_ERROR = "harness_error"

OUTCOME_ORDER = (
    NOT_ACTIVATED,
    NOT_MANIFESTED,
    FAIL_SILENCE_VIOLATION,
    CRASH_DUMPED,
    CRASH_RECOVERED,
    CRASH_UNKNOWN,
    HANG,
    HARNESS_ERROR,
)

#: Outcomes the paper groups as "Crash/Hang" in Figure 4.  A recovered
#: crash is still a crash event (the kernel faulted and dumped); what
#: recovery changes is the downtime, accounted separately.
CRASH_HANG_OUTCOMES = (CRASH_DUMPED, CRASH_RECOVERED, CRASH_UNKNOWN,
                       HANG)

# Post-recovery sub-classification of CRASH_RECOVERED runs.
RECOVERED_WORKLOAD_CORRECT = "workload_correct"
RECOVERED_FSV = "fail_silence_after_recovery"
RECOVERED_LATER_CRASH = "later_crash"

RECOVERED_CLASSES = (
    RECOVERED_WORKLOAD_CORRECT,
    RECOVERED_FSV,
    RECOVERED_LATER_CRASH,
)

# Crash causes, ordered as in Figure 6 (dominant four first).
CAUSE_NULL_POINTER = "null_pointer"
CAUSE_PAGING_REQUEST = "paging_request"
CAUSE_INVALID_OPCODE = "invalid_opcode"
CAUSE_GPF = "gpf"
CAUSE_DIVIDE = "divide_error"
CAUSE_PANIC = "kernel_panic"
CAUSE_SOFT_LOCKUP = "soft_lockup"
CAUSE_OTHER = "other"

CAUSE_ORDER = (
    CAUSE_NULL_POINTER,
    CAUSE_PAGING_REQUEST,
    CAUSE_INVALID_OPCODE,
    CAUSE_GPF,
    CAUSE_DIVIDE,
    CAUSE_PANIC,
    CAUSE_SOFT_LOCKUP,
    CAUSE_OTHER,
)

_VECTOR_CAUSES = {
    0: CAUSE_DIVIDE,
    6: CAUSE_INVALID_OPCODE,
    13: CAUSE_GPF,
    253: CAUSE_SOFT_LOCKUP,     # in-kernel watchdog pseudo-vector
    254: CAUSE_PANIC,   # "No init found"
    255: CAUSE_PANIC,
}

# Crash-latency buckets in CPU cycles (Figure 7's axis).
LATENCY_BUCKETS = (
    (0, 10, "0-10"),
    (10, 100, "10-1e2"),
    (100, 1000, "1e2-1e3"),
    (1000, 10_000, "1e3-1e4"),
    (10_000, 100_000, "1e4-1e5"),
    (100_000, None, ">1e5"),
)


def crash_cause_name(vector, cr2=0):
    """Map a trap vector (+CR2 for #PF) onto the paper's cause classes."""
    if vector == 14:
        if cr2 < 4096:
            return CAUSE_NULL_POINTER
        return CAUSE_PAGING_REQUEST
    return _VECTOR_CAUSES.get(vector, CAUSE_OTHER)


def latency_bucket(latency):
    """Bucket label for a crash latency in cycles (None if unknown)."""
    if latency is None:
        return None
    for low, high, label in LATENCY_BUCKETS:
        if high is None or latency < high:
            if latency >= low:
                return label
    return LATENCY_BUCKETS[-1][2]


class InjectionResult:
    """Everything recorded about one injection experiment.

    ``nested_crashes`` lists dump records written *before* the final one
    (faults taken inside the crash handler itself); ``repro`` is only
    set on :data:`HARNESS_ERROR` outcomes and bundles the spec,
    traceback and seed needed to replay the harness failure.

    ``pred_traps``/``pred_latency_lo``/``pred_latency_hi``/
    ``pred_subsystems``/``pred_seed`` carry the symbolic
    error-propagation verdict (see
    :mod:`repro.staticanalysis.propagation`) when the plan ran with
    ``--static-verdicts``; all default to ``None`` otherwise.

    The ``trace_*`` fields are the execution flight recorder's
    golden-vs-injected divergence measurements (see
    :mod:`repro.tracing.diff`), recorded when the harness ran with
    ``trace=True``: whether the corrupted run visibly diverged, the
    absolute divergence cycle, the empirical flip->divergence distance
    in cycles and retired instructions, divergence->trap cycles, the
    ordered subsystem spread the corrupted run touched after
    diverging, the injected ring's dropped-event count, and whether
    both traces were complete (no ring wrap).  All ``None`` on
    untraced runs.

    ``fault_model``/``fault_target`` identify the pluggable fault
    model that drove the experiment (``"mem"``, ``"reg_trap"``,
    ``"intermittent"``, ``"disk"``, ...) and a human-readable
    description of the corrupted target (``"edx bit 17 @ trap
    entry"``).  Both stay ``None`` for the paper's default
    instruction-stream flip, so pre-framework results round-trip
    unchanged.
    """

    __slots__ = (
        "campaign", "function", "subsystem", "addr", "byte_offset", "bit",
        "mnemonic", "instr_class", "is_branch", "pred_class",
        "pred_traps", "pred_latency_lo", "pred_latency_hi",
        "pred_subsystems", "pred_seed",
        "workload", "outcome", "activated", "activation_tsc",
        "crash_vector", "crash_cause", "crash_cr2", "crash_eip",
        "crash_function", "crash_subsystem", "latency", "severity",
        "run_status", "run_cycles", "exit_code", "console_tail",
        "fs_status", "detail", "nested_crashes", "repro",
        "recovered_class",
        "trace_diverged", "trace_divergence_cycle",
        "trace_divergence_eip",
        "trace_flip_to_divergence_cycles",
        "trace_flip_to_divergence_instrs",
        "trace_divergence_to_trap_cycles", "trace_subsystems",
        "trace_dropped_events", "trace_complete",
        "fault_model", "fault_target",
    )

    def __init__(self, **kwargs):
        for name in self.__slots__:
            setattr(self, name, kwargs.pop(name, None))
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    @property
    def crashed(self):
        return self.outcome in (CRASH_DUMPED, CRASH_UNKNOWN)

    def to_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{k: v for k, v in data.items() if k in cls.__slots__})

    def __repr__(self):
        return ("InjectionResult(%s %s+%d bit %d via %s -> %s%s)"
                % (self.campaign, self.function, self.byte_offset or 0,
                   self.bit or 0, self.workload, self.outcome,
                   " (%s)" % self.crash_cause if self.crash_cause else ""))
