"""Pluggable fault models beyond the instruction-stream bit flip.

The paper injects exactly one fault type: a single-bit flip in the
kernel's instruction stream (its footnote 1 argues this *emulates*
register and data corruption).  Later studies (e.g. the CentOS-like-OS
characterization, PAPERS.md) show failure profiles shift dramatically
across wider fault models, so this module generalizes the hardwired
flip into a **FaultModel abstraction** that plugs into the existing
planner / runner / journal pipeline unchanged:

* ``instr``        — the paper's instruction-stream flip, expressed as
  a model (multi-bit capable).
* ``mem``          — data/memory-state flips delivered at trigger
  time into the current kernel stack frame, the buffer/page-cache
  data pages, or the in-memory inode table.
* ``reg``          — register flip at the trigger instruction
  (campaign R, now riding the shared spec pipeline).
* ``reg_trap``     — register flip delivered at the *next trap or
  interrupt entry* after the trigger, landing in the saved context
  exactly as a hardware fault during trap delivery would.
* ``intermittent`` — multi-bit flip of an instruction that is
  *restored* after N cycles (transient fault: later executions of the
  same site run clean).
* ``disk``         — device-level faults armed in the DMA disk
  controller: read corruption, sticky read timeout, or a transient
  media error that clears after N operations.  Paired with the kernel
  IDE driver's opt-in bounded retry path
  (``Machine.enable_disk_retry``), campaigns measure graceful
  degradation: fail-stop vs retry vs recovery kernel.

A model is carried on :class:`~repro.injection.campaigns.InjectionSpec`
as a JSON dict (``spec.fault_model``) with a ``kind`` and a per-model
version ``v``, so it survives journaling, ``--resume`` and parallel
workers bit-identically; the engine folds the dict into the plan
fingerprint only when set, keeping default instruction-flip plans
byte-compatible with pre-framework journals.
"""

import random

from repro.injection.campaigns import (
    InjectionSpec,
    select_targets,
)
from repro.isa.decoder import decode_all
from repro.isa.registers import REG_NAMES

#: Campaign key per plannable fault-model kind (the instruction models
#: keep the paper's A/B/C keys and the register extension keeps R).
CAMPAIGN_KEYS = {
    "mem": "M",
    "reg_trap": "RT",
    "intermittent": "I",
    "disk": "D",
}

#: Kinds :func:`plan_fault_model_campaign` can plan.
FAULT_KINDS = tuple(sorted(CAMPAIGN_KEYS))

#: Registers worth corrupting (esp excluded: a corrupted stack pointer
#: reduces to the same few double-fault cases — see register_campaign).
DEFAULT_REGS = (0, 1, 2, 3, 5, 6, 7)


class FaultModel:
    """One way of corrupting the machine at (or after) a trigger.

    Models are stateless singletons: every parameter lives in the
    spec's ``fault_model`` dict, so a model instance can serve any
    number of concurrent campaigns.  ``arm`` installs the trigger on a
    freshly-cloned machine and must record ``state["tsc"]`` /
    ``state["instret"]`` at the moment the fault is actually
    *delivered* — the harness classifies a run with no ``tsc`` as
    not-activated, which keeps activation honest for models whose
    delivery is conditional (no trap after the trigger, no disk read
    after arming).
    """

    kind = None
    version = 1

    def params(self, spec):
        return spec.fault_model or {}

    def target_name(self, spec):
        """Human-readable description of the corrupted target."""
        raise NotImplementedError

    def arm(self, harness, machine, spec, state):
        """Install trigger + mutation on *machine* (pre-run)."""
        raise NotImplementedError

    def describe(self, spec):
        """The ``FAULT:`` annotation line for oops/trace tools."""
        return "FAULT: %s" % self.target_name(spec)


class InstructionFlipModel(FaultModel):
    """The paper's instruction-stream flip, as an explicit model.

    ``bits`` (optional) lists ``[byte_offset, bit]`` pairs for
    multi-bit corruption; without it the spec's own
    ``byte_offset``/``bit`` site is flipped, exactly like the default
    pipeline.
    """

    kind = "instr"

    def _bits(self, spec):
        bits = self.params(spec).get("bits")
        if bits:
            return [tuple(pair) for pair in bits]
        return [(spec.byte_offset, spec.bit)]

    def target_name(self, spec):
        sites = ",".join("+%d bit %d" % pair for pair in self._bits(spec))
        return "instr flip %s @ %s" % (sites, spec.function)

    def arm(self, harness, machine, spec, state):
        bits = self._bits(spec)

        def callback(m):
            state["tsc"] = m.cpu.cycles
            state["instret"] = m.cpu.instret
            for byte_offset, bit in bits:
                m.flip_bit(spec.instr_addr + byte_offset, bit)

        machine.arm_breakpoint(spec.instr_addr, callback)


class MemoryStateModel(FaultModel):
    """Data/memory-state flip at trigger time.

    Regions (``region`` param):

    * ``stack``       — ``esp + offset`` at the trigger: the live
      kernel stack frame (saved registers, return addresses).
    * ``pagecache``   — ``buffer_mem + offset``: the buffer/page-cache
      data pages the fs serves reads from.
    * ``inode_table`` — the in-memory inode table.

    ``bits`` lists the bits to flip in the target byte (multi-bit
    capable).  A region that is not materialized yet (``buffer_mem``
    still 0) delivers no fault and the run classifies not-activated.
    """

    kind = "mem"

    REGIONS = ("stack", "pagecache", "inode_table")

    def target_name(self, spec):
        fault = self.params(spec)
        bits = ",".join(str(b) for b in fault.get("bits", ()))
        return "mem flip %s+%#x bit %s" % (fault.get("region"),
                                           fault.get("offset", 0), bits)

    def arm(self, harness, machine, spec, state):
        fault = self.params(spec)
        region = fault["region"]
        offset = fault["offset"]
        bits = fault["bits"]
        symbols = harness.kernel.symbols
        kernel_base = machine.layout.KERNEL_BASE

        def callback(m):
            if region == "stack":
                base = m.cpu.regs[4]
            elif region == "pagecache":
                base = m.read_word(symbols["buffer_mem"])
            elif region == "inode_table":
                base = symbols["inode_table"]
            else:
                raise ValueError("unknown mem region %r" % (region,))
            if base < kernel_base:
                return          # region not materialized: no fault
            state["tsc"] = m.cpu.cycles
            state["instret"] = m.cpu.instret
            for bit in bits:
                m.flip_bit(base + offset, bit)

        machine.arm_breakpoint(spec.instr_addr, callback)


class RegisterFlipModel(FaultModel):
    """Register flip at the trigger instruction (campaign R)."""

    kind = "reg"

    def target_name(self, spec):
        fault = self.params(spec)
        return "reg flip %s bit %d" % (REG_NAMES[fault["reg"]],
                                       fault["bit"])

    def arm(self, harness, machine, spec, state):
        fault = self.params(spec)
        reg = fault["reg"]
        mask = 1 << fault["bit"]

        def callback(m):
            state["tsc"] = m.cpu.cycles
            state["instret"] = m.cpu.instret
            m.cpu.regs[reg] ^= mask

        machine.arm_breakpoint(spec.instr_addr, callback)


class RegisterTrapModel(FaultModel):
    """Register flip delivered at the next trap/interrupt entry.

    The trigger breakpoint installs a one-shot ``on_trap_entry`` hook;
    the flip lands *before* the trap frame is pushed, so the corrupted
    value is saved, propagated through the handler, and restored into
    the interrupted context on ``iret`` — modeling a fault in the
    register file during trap delivery.  If no trap follows the
    trigger inside the watchdog budget the run is not-activated.
    """

    kind = "reg_trap"

    def target_name(self, spec):
        fault = self.params(spec)
        return "reg flip %s bit %d @ trap entry" % (
            REG_NAMES[fault["reg"]], fault["bit"])

    def arm(self, harness, machine, spec, state):
        fault = self.params(spec)
        reg = fault["reg"]
        mask = 1 << fault["bit"]

        def trigger(m):
            def on_trap(cpu, vector, error_code, eip):
                cpu.on_trap_entry = None        # one-shot
                state["tsc"] = cpu.cycles
                state["instret"] = cpu.instret
                state["trap_vector"] = vector
                cpu.regs[reg] ^= mask

            m.cpu.on_trap_entry = on_trap

        machine.arm_breakpoint(spec.instr_addr, trigger)


class IntermittentModel(FaultModel):
    """Multi-bit instruction corruption restored after N cycles.

    At the trigger every ``[byte_offset, bit]`` pair of ``bits`` is
    flipped in the target instruction; a cycle alarm restores the
    original bytes ``duration`` cycles later.  Executions in the
    window run the corrupted code, later ones run clean — an
    intermittent (transient) fault rather than the paper's permanent
    one.
    """

    kind = "intermittent"

    def target_name(self, spec):
        fault = self.params(spec)
        return "intermittent %d-bit flip @ %s for %d cycles" % (
            len(fault.get("bits", ())), spec.function,
            fault.get("duration", 0))

    def arm(self, harness, machine, spec, state):
        fault = self.params(spec)
        bits = [tuple(pair) for pair in fault["bits"]]
        duration = fault["duration"]

        def callback(m):
            state["tsc"] = m.cpu.cycles
            state["instret"] = m.cpu.instret
            for byte_offset, bit in bits:
                m.flip_bit(spec.instr_addr + byte_offset, bit)

            def restore(cpu):
                state["restored_tsc"] = cpu.cycles
                for byte_offset, bit in bits:
                    m.flip_bit(spec.instr_addr + byte_offset, bit)

            m.cpu.alarm_cycle = m.cpu.cycles + duration
            m.cpu.on_alarm = restore

        machine.arm_breakpoint(spec.instr_addr, callback)


class DiskFaultModel(FaultModel):
    """Device-level disk fault armed at the trigger.

    The trigger breakpoint arms the DMA controller's fault state
    (:meth:`repro.cpu.devices.DiskDevice.arm_fault`): ``corrupt``
    flips one bit of the next read's DMA'd data, ``timeout`` makes the
    controller stop answering (sticky), ``transient`` fails ``ops``
    reads with a media error and then recovers.  Activation is
    recorded on the first faulted read — arming a fault no read ever
    hits classifies not-activated.  Combined with
    ``disk_retries`` (the driver's bounded retry path) this is the
    graceful-degradation ablation: a retried transient is masked
    entirely, a retried timeout still fails after the backoff budget.
    """

    kind = "disk"

    FAULTS = ("corrupt", "timeout", "transient")

    def target_name(self, spec):
        fault = self.params(spec)
        name = fault.get("fault")
        if name == "corrupt":
            return "disk read corruption byte %d bit %d" % (
                fault.get("byte", 0), fault.get("bit", 0))
        if name == "timeout":
            return "disk read timeout (sticky)"
        return "disk transient error for %d op(s)" % fault.get("ops", 1)

    def arm(self, harness, machine, spec, state):
        fault = self.params(spec)

        def trigger(m):
            def notify():
                if "tsc" not in state:
                    state["tsc"] = m.cpu.cycles
                    state["instret"] = m.cpu.instret

            m.disk.arm_fault(fault["fault"], ops=fault.get("ops", 1),
                             byte_offset=fault.get("byte", 0),
                             bit=fault.get("bit", 0), notify=notify)

        machine.arm_breakpoint(spec.instr_addr, trigger)


#: kind -> model singleton.
MODELS = {model.kind: model for model in (
    InstructionFlipModel(), MemoryStateModel(), RegisterFlipModel(),
    RegisterTrapModel(), IntermittentModel(), DiskFaultModel(),
)}


def resolve_model(spec):
    """The :class:`FaultModel` for a spec (None = default instr flip).

    Raises ``ValueError`` for an unknown kind or a model version newer
    than this code supports; the engine's containment turns that into
    a :data:`~repro.injection.outcomes.HARNESS_ERROR` result instead
    of losing the campaign.
    """
    fault = getattr(spec, "fault_model", None)
    if fault is None:
        return None
    kind = fault.get("kind")
    model = MODELS.get(kind)
    if model is None:
        raise ValueError("unknown fault model kind %r" % (kind,))
    if fault.get("v", 1) > model.version:
        raise ValueError(
            "fault model %r version %r is newer than supported (%d)"
            % (kind, fault.get("v"), model.version))
    return model


def describe_fault(spec):
    """``FAULT: ...`` annotation for a spec, or None (default flip)."""
    model = resolve_model(spec)
    if model is None:
        return None
    return model.describe(spec)


# -- planning ----------------------------------------------------------------


def _entry_instruction(kernel, info):
    """The first decoded instruction of a function (or None)."""
    code = kernel.code[info.start - kernel.base:info.end - kernel.base]
    for ins in decode_all(code, base=info.start):
        if ins.op != "(bad)":
            return ins
        break
    return None


def _hot_functions(kernel, profile):
    """Trigger sites: the campaign-A hot set, entries first executed.

    Function *entries* are the trigger of choice: whenever the driving
    workload runs the function at all, its entry is in golden
    coverage, so planned faults actually deliver.
    """
    return select_targets(kernel, profile, "A")


def _spec(kind, info, ins, mnemonic, fault):
    fault = dict(fault)
    fault["kind"] = kind
    fault.setdefault("v", MODELS[kind].version)
    return InjectionSpec(
        campaign=CAMPAIGN_KEYS[kind],
        function=info.name,
        subsystem=info.subsystem,
        instr_addr=info.start,
        instr_len=ins.length if ins is not None else 1,
        byte_offset=0,
        bit=0,
        mnemonic=mnemonic,
        fault_model=fault,
    )


#: Byte span sampled per memory region (word-aligned offsets).
_MEM_SPANS = {
    "stack": 32,            # esp+0 .. esp+124: the live frame
    "pagecache": 512,       # first two buffer-cache blocks
    "inode_table": 288,     # the whole in-memory inode table
}


def plan_memory_campaign(kernel, profile, seed=2003, per_function=3):
    """Campaign M: memory-state flips over the hot function set."""
    rng = random.Random("M-%d" % seed)
    regions = MemoryStateModel.REGIONS
    specs = []
    for info in _hot_functions(kernel, profile):
        ins = _entry_instruction(kernel, info)
        for index in range(per_function):
            region = regions[index % len(regions)]
            offset = rng.randrange(_MEM_SPANS[region]) * 4
            nbits = rng.choice((1, 1, 2))
            bits = sorted(rng.sample(range(8), nbits))
            specs.append(_spec("mem", info, ins, "mem:%s" % region,
                               {"region": region, "offset": offset,
                                "bits": bits}))
    return specs


def plan_reg_trap_campaign(kernel, profile, seed=2003, per_function=2,
                           regs=DEFAULT_REGS):
    """Campaign RT: register flips delivered at trap/syscall entry."""
    rng = random.Random("RT-%d" % seed)
    specs = []
    for info in _hot_functions(kernel, profile):
        ins = _entry_instruction(kernel, info)
        for _ in range(per_function):
            reg = rng.choice(regs)
            bit = rng.randrange(32)
            specs.append(_spec("reg_trap", info, ins,
                               "regtrap:%s" % REG_NAMES[reg],
                               {"reg": reg, "bit": bit}))
    return specs


#: Cycle windows for intermittent faults: shorter than one timer tick
#: up to several ticks.
_INTERMITTENT_WINDOWS = (200, 1200, 6000)


def plan_intermittent_campaign(kernel, profile, seed=2003,
                               per_function=2):
    """Campaign I: multi-bit flips restored after N cycles."""
    rng = random.Random("I-%d" % seed)
    specs = []
    for info in _hot_functions(kernel, profile):
        ins = _entry_instruction(kernel, info)
        if ins is None:
            continue
        for _ in range(per_function):
            nbits = rng.choice((2, 2, 3))
            sites = [(byte, bit) for byte in range(ins.length)
                     for bit in range(8)]
            bits = sorted(rng.sample(sites, min(nbits, len(sites))))
            duration = rng.choice(_INTERMITTENT_WINDOWS)
            specs.append(_spec(
                "intermittent", info, ins, "int:%dx" % len(bits),
                {"bits": [list(pair) for pair in bits],
                 "duration": duration}))
    return specs


#: Kernel functions whose entry guarantees disk traffic close behind:
#: every workload execs its binary through bread -> disk_read_block ->
#: disk_io, so these entries sit in every golden coverage set.
DISK_TRIGGER_FUNCTIONS = ("bread", "disk_read_block", "disk_io")

#: (fault kind, params) matrix per trigger function.
_DISK_FAULTS = (
    ("corrupt", {"byte": 0, "bit": 0}),
    ("corrupt", {"byte": 17, "bit": 6}),
    ("timeout", {}),
    ("transient", {"ops": 1}),
    ("transient", {"ops": 2}),
)


def plan_disk_campaign(kernel, profile, seed=2003, per_function=None):
    """Campaign D: device-level disk faults armed at fs/driver entry.

    *per_function* caps the fault variants per trigger function
    (None = the full matrix).
    """
    del seed                    # the matrix is exhaustive, not sampled
    by_name = {f.name: f for f in kernel.functions}
    specs = []
    for name in DISK_TRIGGER_FUNCTIONS:
        info = by_name.get(name)
        if info is None:
            continue
        ins = _entry_instruction(kernel, info)
        faults = _DISK_FAULTS[:per_function]
        for fault_name, params in faults:
            fault = dict(params)
            fault["fault"] = fault_name
            specs.append(_spec("disk", info, ins,
                               "disk:%s" % fault_name, fault))
    return specs


_PLANNERS = {
    "mem": plan_memory_campaign,
    "reg_trap": plan_reg_trap_campaign,
    "intermittent": plan_intermittent_campaign,
    "disk": plan_disk_campaign,
}


def plan_fault_model_campaign(kernel, profile, kind, seed=2003,
                              per_function=None, max_specs=None):
    """Plan one fault-model campaign; returns InjectionSpec list.

    Deterministic for a given (kind, seed): serial, parallel and
    resumed executions re-plan the identical spec list, which the
    engine's plan fingerprint then binds the journal to.
    """
    planner = _PLANNERS.get(kind)
    if planner is None:
        raise ValueError("unknown fault-model kind %r (have %s)"
                         % (kind, ", ".join(FAULT_KINDS)))
    kwargs = {"seed": seed}
    if per_function is not None:
        kwargs["per_function"] = per_function
    specs = planner(kernel, profile, **kwargs)
    if max_specs is not None:
        specs = specs[:max_specs]
    return specs


def run_fault_model_campaign(harness, kind, seed=2003,
                             per_function=None, max_specs=None,
                             grade=True, progress=None, jobs=1,
                             timeout=None, retries=2,
                             max_worker_failures=3, journal_path=None,
                             resume=False):
    """Plan and execute one fault-model campaign end to end.

    Rides the same fault-tolerant engine as the instruction campaigns
    (process isolation, journaling, resume); returns
    :class:`~repro.injection.runner.CampaignResults`.
    """
    from repro.injection.engine import CampaignEngine, EngineConfig
    from repro.injection.runner import CampaignResults

    specs = plan_fault_model_campaign(
        harness.kernel, harness.profile, kind, seed=seed,
        per_function=per_function, max_specs=max_specs)
    campaign_key = CAMPAIGN_KEYS[kind]
    config = EngineConfig(jobs=jobs, timeout=timeout, retries=retries,
                          max_worker_failures=max_worker_failures,
                          journal_path=journal_path, resume=resume)
    engine = CampaignEngine(harness, config)
    results, engine_meta = engine.execute(
        campaign_key, specs, seed=seed, byte_stride=1, grade=grade,
        progress=progress)
    meta = {
        "campaign": campaign_key,
        "fault_model": kind,
        "seed": seed,
        "injected": len(specs),
        "engine": engine_meta,
    }
    return CampaignResults(campaign_key, results, meta)
