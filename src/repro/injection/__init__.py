"""Error injection: campaigns, injector, outcome classification.

Implements the paper's §5-§6 methodology: single-bit errors in the
instruction stream of profiled kernel functions, triggered by a debug
register on first execution, with outcomes classified against golden
runs (Table 3) and crashes analyzed for cause, latency, severity and
propagation (§7).
"""

from repro.injection.outcomes import (
    CAUSE_ORDER,
    HARNESS_ERROR,
    LATENCY_BUCKETS,
    OUTCOME_ORDER,
    InjectionResult,
    crash_cause_name,
    latency_bucket,
)
from repro.injection.engine import (
    CampaignEngine,
    CampaignJournal,
    EngineConfig,
    JournalMismatch,
)
from repro.injection.campaigns import (
    CAMPAIGNS,
    CampaignDef,
    InjectionSpec,
    plan_campaign,
    select_targets,
)
from repro.injection.runner import CampaignResults, GoldenRun, \
    InjectionHarness
from repro.injection.register_campaign import (
    RegisterInjectionSpec,
    plan_register_campaign,
    run_register_campaign,
)
from repro.injection.severity import SEVERITY_DOWNTIME, grade_severity

__all__ = [
    "CAUSE_ORDER",
    "HARNESS_ERROR",
    "LATENCY_BUCKETS",
    "OUTCOME_ORDER",
    "CampaignEngine",
    "CampaignJournal",
    "EngineConfig",
    "JournalMismatch",
    "InjectionResult",
    "crash_cause_name",
    "latency_bucket",
    "CAMPAIGNS",
    "CampaignDef",
    "InjectionSpec",
    "plan_campaign",
    "select_targets",
    "CampaignResults",
    "GoldenRun",
    "InjectionHarness",
    "SEVERITY_DOWNTIME",
    "grade_severity",
    "RegisterInjectionSpec",
    "plan_register_campaign",
    "run_register_campaign",
]
