"""Distributed campaign fabric: shards, coordinator, exactly-once merge.

The paper's characterization rests on >35,000 injections on one rig;
the ROADMAP's north star is millions of sites across many hosts.  This
module is the distribution layer that gets there without giving up the
repo's core invariant — *bit-identical results no matter how the
campaign was executed*:

* **shard planner** — a deterministic campaign plan is split into N
  **content-addressed shards**: shard *i/N* owns the round-robin index
  slice ``{i, i+N, i+2N, ...}`` and is named by a fingerprint derived
  from the plan fingerprint plus ``i/N``.  Any host that can rebuild
  the plan (same kernel, seed, stride) rebuilds the identical shard —
  ``kfabric run --shard i/N`` needs no coordination, just GNU parallel
  or a CI matrix.
* **shard journals** — each shard appends to its own JSONL journal
  whose header binds it to both fingerprints; records carry *global*
  plan indices so journals merge without translation.
* **exactly-once merger** — :func:`merge_shard_journals` combines any
  set of shard journals (including overlapping retries of the same
  shard) into one canonical journal: replayed indices deduplicate via
  :func:`~repro.injection.engine.prefer_result`, torn trailing lines
  from SIGKILLed writers are dropped, and journals from a different
  plan or with a forged shard fingerprint are rejected.  A merged
  N-shard run is bit-identical to the 1-host serial run.
* **coordinator** — :class:`FabricCoordinator` dispatches shards to a
  local worker pool with heartbeat files, lease timeouts, bounded
  retry/backoff, and work stealing (a revoked lease puts the shard
  back on the queue where the next idle worker picks it up and
  *resumes* its journal).  Repeated worker deaths degrade the whole
  fabric to in-process serial execution — the same reformat/reinstall
  rung the per-experiment engine already has, one level up.
* **boot-snapshot store** — :class:`SnapshotStore` content-addresses
  post-boot golden state on (kernel fingerprint, workload, harness
  config) so every shard process — including ones on other hosts
  sharing the directory — skips kernel boot entirely.

See docs/fabric.md for the on-disk formats and protocol details.
"""

import hashlib
import json
import os
import pickle
import random
import signal
import time
import traceback

from repro.injection.engine import (
    CampaignEngine,
    CampaignJournal,
    EngineConfig,
    JournalMismatch,
    plan_fingerprint,
    prefer_result,
    read_journal_lines,
    run_spec_contained,
)
from repro.injection.outcomes import HARNESS_ERROR, InjectionResult

#: Version of the shard-journal header layout.
SHARD_SCHEMA_VERSION = 1

#: Version of the boot-snapshot store's pickle payload.
STORE_VERSION = 1

#: How a shard failure is reported in coordinator telemetry.
SHARD_DIED = "shard_died"
SHARD_STALLED = "shard_stalled"


class MergeError(RuntimeError):
    """A shard journal cannot be merged (wrong plan, forged shard)."""


# ---------------------------------------------------------------------------
# shard planning
# ---------------------------------------------------------------------------

def shard_fingerprint(plan_fp, index, count):
    """Content address of shard *index*/*count* of a plan.

    Folding the shard coordinates into the plan fingerprint means two
    journals merge iff they slice the *same* plan the *same* way; a
    shard of a different campaign, seed, stride or shard count can
    never be mistaken for this one.
    """
    blob = ("%s:%d/%d" % (plan_fp, index, count)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class ShardSpec:
    """One shard's identity: which plan, which slice, which name."""

    __slots__ = ("index", "count", "plan_fingerprint", "fingerprint",
                 "n_specs", "indices")

    def __init__(self, index, count, plan_fp, n_specs):
        self.index = index
        self.count = count
        self.plan_fingerprint = plan_fp
        self.fingerprint = shard_fingerprint(plan_fp, index, count)
        self.n_specs = n_specs
        self.indices = tuple(range(index, n_specs, count))

    def __repr__(self):
        return ("ShardSpec(%d/%d of %s: %d specs)"
                % (self.index, self.count, self.plan_fingerprint,
                   len(self.indices)))


def plan_shards(plan_fp, n_specs, count):
    """Split a plan of *n_specs* into *count* content-addressed shards.

    Round-robin assignment: prioritized plans front-load interesting
    sites, so striding balances them across shards instead of handing
    shard 0 all the crashes.  A shard may be empty when
    ``count > n_specs`` — it still has a fingerprint and journals a
    header, so a CI matrix of fixed width handles any plan size.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1, not %d" % count)
    return [ShardSpec(i, count, plan_fp, n_specs)
            for i in range(count)]


# ---------------------------------------------------------------------------
# shard journals
# ---------------------------------------------------------------------------

class ShardJournal(CampaignJournal):
    """A shard's journal: shard header, *global* plan indices.

    Duck-types :class:`~repro.injection.engine.CampaignJournal` for the
    engine (which runs the shard's spec subset under local indices 0..k
    and never sees the mapping).  Inherits the torn-tail truncation,
    exactly-once ``record`` and duplicate-tolerant ``load``.
    """

    def __init__(self, path, shard):
        CampaignJournal.__init__(self, path)
        self.shard = shard
        self._to_local = {g: l for l, g in enumerate(shard.indices)}

    def _check_header(self, header, fingerprint):
        if header.get("type") != "shard_header" \
                or header.get("fingerprint") != fingerprint \
                or header.get("shard_fingerprint") != \
                self.shard.fingerprint:
            raise JournalMismatch(
                "journal %s was written for a different shard "
                "(shard fingerprint %r, expected %r)"
                % (self.path, header.get("shard_fingerprint"),
                   self.shard.fingerprint))

    def _local_index(self, stored_index):
        return self._to_local.get(stored_index)

    def _note_loaded(self, completed):
        self._seen.update(self.shard.indices[i] for i in completed)

    def _header(self, fingerprint, campaign_key, seed, n_specs):
        from repro.injection.campaigns import SPEC_SCHEMA_VERSION
        shard = self.shard
        return {"type": "shard_header",
                "fingerprint": fingerprint,
                "plan_fingerprint": shard.plan_fingerprint,
                "shard_fingerprint": shard.fingerprint,
                "shard_index": shard.index,
                "shard_count": shard.count,
                "shard_size": len(shard.indices),
                "n_specs": shard.n_specs,
                "campaign": campaign_key, "seed": seed,
                "schema_version": SPEC_SCHEMA_VERSION,
                "shard_schema_version": SHARD_SCHEMA_VERSION}

    def _stored_index(self, index):
        return self.shard.indices[index]


def run_shard(harness, campaign_key, specs, seed, byte_stride, shard,
              journal_path, grade=True, jobs=1, resume=True,
              progress=None, timeout=None, retries=2,
              max_worker_failures=3):
    """Execute one shard of a planned campaign; returns
    ``(results, engine_meta)`` with *results* ordered by the shard's
    local index.

    *specs* is the **full** plan (every participant re-plans it
    deterministically); the shard's subset is carved here so a shard
    run on another host journals exactly the same global indices.  By
    default the shard *resumes* its journal, so retrying a killed
    shard re-runs only what is missing.
    """
    subset = [specs[i] for i in shard.indices]
    journal = ShardJournal(journal_path, shard)
    config = EngineConfig(jobs=jobs, timeout=timeout, retries=retries,
                          max_worker_failures=max_worker_failures,
                          journal_path=journal_path, resume=resume)
    engine = CampaignEngine(harness, config)
    return engine.execute(campaign_key, subset, seed, byte_stride,
                          grade=grade, progress=progress,
                          journal=journal)


# ---------------------------------------------------------------------------
# exactly-once merge
# ---------------------------------------------------------------------------

class MergedCampaign:
    """The result of merging shard journals back into one campaign."""

    def __init__(self, plan_fp, campaign, seed, n_specs):
        self.plan_fingerprint = plan_fp
        self.campaign = campaign
        self.seed = seed
        self.n_specs = n_specs
        self.results = {}       # global index -> InjectionResult
        self.replayed = 0       # duplicate records deduplicated away
        self.shards_seen = []   # (shard_index, shard_count) pairs
        self.journals = 0

    @property
    def missing(self):
        return sorted(set(range(self.n_specs)) - set(self.results))

    @property
    def complete(self):
        return not self.missing

    def ordered(self):
        """Results by plan index; raises MergeError when incomplete."""
        if not self.complete:
            raise MergeError(
                "merge is missing %d of %d results (first missing "
                "index %d)" % (len(self.missing), self.n_specs,
                               self.missing[0]))
        return [self.results[i] for i in range(self.n_specs)]

    def write_journal(self, path):
        """Write the canonical merged journal.

        The output is a plain :class:`CampaignJournal` bound to the
        *plan* fingerprint with results in index order — loadable (and
        resumable, should the merge be partial) by the engine exactly
        as if one host had run the whole campaign.
        """
        journal = CampaignJournal(path)
        journal.start(self.plan_fingerprint, self.campaign, self.seed,
                      self.n_specs, fresh=True)
        try:
            for index in sorted(self.results):
                journal.record(index, self.results[index])
        finally:
            journal.close()


def _add_record(merged, global_index, result):
    if global_index in merged.results:
        merged.replayed += 1
        merged.results[global_index] = prefer_result(
            merged.results[global_index], result)
    else:
        merged.results[global_index] = result


def merge_shard_journals(paths, plan_fp=None, n_specs=None):
    """Merge shard journals into one :class:`MergedCampaign`.

    Tolerates: overlapping journals (two attempts of the same shard),
    replayed indices inside one journal, torn trailing lines, empty
    files and header-only journals (a shard that never got to work, or
    an empty shard of an over-sharded plan).  A plain (non-shard)
    campaign journal is accepted as the degenerate 1/1 shard.

    Rejects with :class:`MergeError`: journals of a different plan
    fingerprint, a shard fingerprint that does not derive from its
    claimed coordinates (forged or corrupted header), a record whose
    index does not belong to its shard's slice, and inconsistent
    ``n_specs`` across headers.
    """
    merged = None
    for path in paths:
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            continue
        records, _ = read_journal_lines(path)
        if not records:
            continue            # torn header: the shard wrote nothing
        header = records[0]
        kind = header.get("type")
        if kind == "header":
            index, count = 0, 1
            journal_plan = header.get("fingerprint")
        elif kind == "shard_header":
            index = header.get("shard_index")
            count = header.get("shard_count")
            journal_plan = header.get("plan_fingerprint")
            if header.get("shard_fingerprint") != \
                    shard_fingerprint(journal_plan, index, count):
                raise MergeError(
                    "%s: shard fingerprint %r does not derive from "
                    "plan %r shard %s/%s"
                    % (path, header.get("shard_fingerprint"),
                       journal_plan, index, count))
        else:
            raise MergeError("%s: not a campaign journal (first "
                             "record type %r)" % (path, kind))
        if plan_fp is None:
            plan_fp = journal_plan
        if journal_plan != plan_fp:
            raise MergeError(
                "%s belongs to plan %r, expected %r"
                % (path, journal_plan, plan_fp))
        total = header.get("n_specs")
        if n_specs is None:
            n_specs = total
        if total is not None and total != n_specs:
            raise MergeError("%s: plan has %s specs, expected %s"
                             % (path, total, n_specs))
        if merged is None:
            merged = MergedCampaign(plan_fp, header.get("campaign"),
                                    header.get("seed"), n_specs or 0)
        merged.journals += 1
        merged.shards_seen.append((index, count))
        for record in records[1:]:
            if record.get("type") != "result":
                continue
            global_index = record["index"]
            if global_index % count != index \
                    or not 0 <= global_index < (n_specs or 0):
                raise MergeError(
                    "%s: record index %d does not belong to shard "
                    "%d/%d" % (path, global_index, index, count))
            _add_record(merged, global_index,
                        InjectionResult.from_dict(record["result"]))
    if merged is None:
        if plan_fp is None or n_specs is None:
            raise MergeError("no journals to merge and no plan "
                             "fingerprint/size given")
        merged = MergedCampaign(plan_fp, None, None, n_specs)
    return merged


# ---------------------------------------------------------------------------
# boot-snapshot store
# ---------------------------------------------------------------------------

def kernel_fingerprint(kernel):
    """Stable content address of a built kernel image."""
    digest = hashlib.sha256()
    digest.update(bytes(kernel.code))
    digest.update(("@%d" % kernel.base).encode())
    return digest.hexdigest()[:16]


class SnapshotStore:
    """Content-addressed store of post-boot golden state.

    Booting to the injection point dominates a shard's startup cost;
    the store keys frozen :class:`~repro.injection.runner.GoldenRun`
    bundles (post-boot machine snapshot, golden workload result,
    coverage, boot cycle count) on ``(kernel fingerprint, workload,
    recovery, disk_retries)`` so a kernel/workload pair boots **once**
    per store, not once per shard process.  Entries are written
    atomically and verified against the live kernel on load; a
    corrupt or stale entry silently falls back to a real boot.

    Layout: ``<root>/<key>.golden`` (pickled state bundle) and
    ``<root>/<key>.const.json`` (small calibration constants such as
    the crash-handler overhead).
    """

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------

    def key(self, kernel, workload, recovery=False, disk_retries=0):
        blob = json.dumps({
            "v": STORE_VERSION,
            "kernel": kernel_fingerprint(kernel),
            "workload": workload,
            "recovery": bool(recovery),
            "disk_retries": int(disk_retries),
        }, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def _path(self, key, suffix=".golden"):
        return os.path.join(self.root, key + suffix)

    # -- golden bundles -----------------------------------------------------

    def load(self, key, kernel):
        """Thaw a GoldenRun for *kernel*, or ``None`` on any mismatch."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ValueError):
            return None
        if payload.get("version") != STORE_VERSION \
                or payload.get("kernel") != kernel_fingerprint(kernel):
            return None
        self.hits += 1
        return _thaw_golden(payload, kernel)

    def save(self, key, golden_run):
        """Freeze *golden_run* under *key* (first writer wins)."""
        path = self._path(key)
        if os.path.exists(path):
            return
        os.makedirs(self.root, exist_ok=True)
        self.misses += 1
        payload = _freeze_golden(golden_run)
        tmp = path + ".tmp.%d" % os.getpid()
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- calibration constants ----------------------------------------------

    def load_constant(self, kernel, name):
        path = self._path(self.key(kernel, "__%s__" % name),
                          suffix=".const.json")
        try:
            with open(path) as fh:
                return json.load(fh)["value"]
        except (OSError, ValueError, KeyError):
            return None

    def save_constant(self, kernel, name, value):
        from repro.injection.engine import atomic_write_json
        os.makedirs(self.root, exist_ok=True)
        path = self._path(self.key(kernel, "__%s__" % name),
                          suffix=".const.json")
        atomic_write_json(path, {"value": value})


#: MachineSnapshot attributes beyond the CPU field dict that the store
#: serializes (the kernel/layout references are re-attached on thaw).
_SNAP_STATE = ("ram", "cr3", "paging_enabled", "disk", "console",
               "regs", "segs", "dr", "fields")

#: Golden RunResult fields the store round-trips (a golden run shut
#: down cleanly, so there are no crash records and no trace).
_RESULT_STATE = ("status", "exit_code", "console", "cycles", "instret",
                 "disk_image", "detail")


def _freeze_golden(run):
    snap = run.snapshot
    return {
        "version": STORE_VERSION,
        "kernel": kernel_fingerprint(snap.kernel),
        "workload": run.workload,
        "boot_cycles": run.boot_cycles,
        "coverage": sorted(run.coverage),
        "disk_image": bytes(run.disk_image.image)
        if hasattr(run.disk_image, "image") else bytes(run.disk_image),
        "snapshot": {name: getattr(snap, name)
                     for name in _SNAP_STATE},
        "result": {name: getattr(run.result, name)
                   for name in _RESULT_STATE},
    }


def _thaw_golden(payload, kernel):
    from repro.machine.machine import MachineSnapshot, RunResult
    from repro.injection.runner import GoldenRun

    snap = MachineSnapshot.__new__(MachineSnapshot)
    snap.kernel = kernel
    snap.layout = kernel.layout
    for name in _SNAP_STATE:
        setattr(snap, name, payload["snapshot"][name])
    fields = payload["result"]
    result = RunResult(fields["status"], fields["exit_code"],
                       fields["console"], None, fields["cycles"],
                       fields["instret"], fields["disk_image"],
                       detail=fields["detail"])
    run = GoldenRun(payload["workload"], result,
                    set(payload["coverage"]), payload["disk_image"],
                    payload["boot_cycles"])
    run.snapshot = snap
    return run


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

class FabricConfig:
    """Tuning knobs for :class:`FabricCoordinator`."""

    __slots__ = ("pool", "shard_jobs", "lease_timeout", "retries",
                 "backoff", "max_worker_failures", "chaos_kills",
                 "chaos_after", "chaos_seed")

    def __init__(self, pool=2, shard_jobs=1, lease_timeout=120.0,
                 retries=2, backoff=0.25, max_worker_failures=None,
                 chaos_kills=0, chaos_after=1, chaos_seed=0):
        self.pool = max(1, int(pool))
        self.shard_jobs = max(1, int(shard_jobs))
        self.lease_timeout = lease_timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_worker_failures = max_worker_failures
        #: Chaos mode: SIGKILL this many shard workers mid-run (each
        #: victim dies after journaling *chaos_after* results on its
        #: first attempt), exercising lease revocation, retry-with-
        #: resume and the merger's replay tolerance end to end.
        self.chaos_kills = int(chaos_kills)
        self.chaos_after = max(1, int(chaos_after))
        self.chaos_seed = chaos_seed


def write_heartbeat(path, done, total):
    """Stamp a shard's lease file (atomic: readers never see a tear)."""
    payload = {"time": time.time(), "done": done, "total": total}
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def read_heartbeat(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _shard_worker_main(harness, campaign_key, specs, seed, byte_stride,
                       shard, journal_path, heartbeat_path, grade,
                       shard_jobs, chaos_after, conn):
    """One coordinator worker: run a shard, heartbeat as it goes.

    Forked, so the harness (kernel, golden snapshots, snapshot store)
    is inherited copy-on-write.  *chaos_after* arms the self-SIGKILL
    used by the validation exhibit's chaos mode: the worker dies for
    real, mid-run, right after fsyncing its n-th record — the
    coordinator must revoke the lease and a retry must resume the
    journal for the campaign to come out bit-identical.
    """
    try:
        total = len(shard.indices)
        write_heartbeat(heartbeat_path, 0, total)

        def beat(done, _total, result):
            write_heartbeat(heartbeat_path, done, total)
            if chaos_after is not None and done >= chaos_after:
                os.kill(os.getpid(), signal.SIGKILL)

        results, meta = run_shard(
            harness, campaign_key, specs, seed, byte_stride, shard,
            journal_path, grade=grade, jobs=shard_jobs, resume=True,
            progress=beat)
        conn.send(("done", shard.index, len(results),
                   meta.get("worker_failures", 0)))
    except BaseException:
        try:
            conn.send(("failed", shard.index, 0,
                       traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class _ShardTask:
    """Coordinator bookkeeping for one shard."""

    __slots__ = ("shard", "journal_path", "heartbeat_path", "attempts",
                 "chaos_after")

    def __init__(self, shard, workdir):
        self.shard = shard
        name = "shard_%d_of_%d" % (shard.index, shard.count)
        self.journal_path = os.path.join(workdir, name + ".jsonl")
        self.heartbeat_path = os.path.join(workdir, name + ".heartbeat")
        self.attempts = 0
        self.chaos_after = None


class _ShardWorker:
    """A leased shard running in a forked process."""

    __slots__ = ("process", "conn", "task", "leased_at")

    def __init__(self, process, conn, task):
        self.process = process
        self.conn = conn
        self.task = task
        self.leased_at = time.time()

    def last_beat(self):
        beat = read_heartbeat(self.task.heartbeat_path)
        if beat is not None and beat["time"] >= self.leased_at:
            return beat["time"]
        return self.leased_at

    def kill(self):
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)


class FabricCoordinator:
    """Crash-tolerant dispatch of campaign shards to a worker pool."""

    def __init__(self, harness, config=None):
        self.harness = harness
        self.config = config or FabricConfig()

    # -- public entry points -------------------------------------------------

    def run_campaign(self, campaign_key, seed=2003, byte_stride=1,
                     shard_count=3, workdir=None, functions=None,
                     max_per_function=None, max_specs=None, grade=True,
                     static_verdicts=False):
        """Plan a campaign and run it sharded; returns CampaignResults.

        The drop-in fabric counterpart of
        :meth:`~repro.injection.runner.InjectionHarness.run_campaign`:
        identical planning, bit-identical results, different execution
        telemetry under ``meta["engine"]``.
        """
        functions, specs = self.harness.plan_specs(
            campaign_key, functions=functions, seed=seed,
            byte_stride=byte_stride, max_per_function=max_per_function,
            max_specs=max_specs, static_verdicts=static_verdicts)
        results, engine_meta = self.run(campaign_key, specs, seed,
                                        byte_stride, shard_count,
                                        workdir, grade=grade)
        from repro.injection.runner import CampaignResults
        meta = {
            "campaign": campaign_key,
            "functions": sorted({f.name for f in functions}),
            "n_functions": len(functions),
            "seed": seed,
            "byte_stride": byte_stride,
            "injected": len(specs),
            "fingerprint": plan_fingerprint(campaign_key, specs, seed,
                                            byte_stride),
            "engine": engine_meta,
        }
        return CampaignResults(campaign_key, results, meta)

    def run(self, campaign_key, specs, seed, byte_stride, shard_count,
            workdir, grade=True):
        """Run *specs* as *shard_count* shards; returns
        ``(ordered_results, fabric_meta)``."""
        config = self.config
        os.makedirs(workdir, exist_ok=True)
        plan_fp = plan_fingerprint(campaign_key, specs, seed,
                                   byte_stride)
        shards = plan_shards(plan_fp, len(specs), shard_count)
        tasks = {s.index: _ShardTask(s, workdir) for s in shards}
        # Warm the golden runs once in the parent: forked workers
        # inherit the booted snapshots copy-on-write, and a shared
        # snapshot store is populated for out-of-process shards.
        for spec in specs:
            self.harness.assign_workload(spec)
        for workload in sorted({s.workload for s in specs
                                if s.workload}):
            self.harness.golden(workload)
        meta = {
            "mode": "fabric",
            "shards": shard_count,
            "pool": config.pool,
            "plan_fingerprint": plan_fp,
            "worker_failures": 0,
            "stalled_leases": 0,
            "stolen_shards": 0,
            "chaos_killed": [],
            "shard_failures": {},
            "degraded": False,
            "replayed_records": 0,
            "serial_completions": 0,
        }
        self._choose_chaos_victims(shards, tasks, meta)
        if config.pool > 1 and self._fork_available() and shards:
            self._run_pooled(campaign_key, specs, seed, byte_stride,
                             shards, tasks, grade, meta)
        else:
            meta["mode"] = "fabric-serial"
            for shard in shards:
                self._run_shard_inline(campaign_key, specs, seed,
                                       byte_stride, tasks[shard.index],
                                       grade)
        ordered = self._merge_and_backfill(campaign_key, specs, seed,
                                           byte_stride, plan_fp, tasks,
                                           grade, meta)
        meta["harness_errors"] = sum(
            1 for r in ordered if r.outcome == HARNESS_ERROR)
        return ordered, meta

    # -- setup helpers -------------------------------------------------------

    @staticmethod
    def _fork_available():
        import multiprocessing
        return "fork" in multiprocessing.get_all_start_methods()

    def _max_worker_failures(self, shard_count):
        configured = self.config.max_worker_failures
        if configured is not None:
            return max(1, int(configured))
        # Leave headroom for every chaos kill plus the retry budget
        # before the fabric gives up on the pool.
        return (self.config.chaos_kills
                + max(4, 2 * shard_count))

    def _choose_chaos_victims(self, shards, tasks, meta):
        config = self.config
        if not config.chaos_kills:
            return
        eligible = [s.index for s in shards
                    if len(s.indices) > config.chaos_after]
        rng = random.Random("fabric-chaos:%s" % config.chaos_seed)
        victims = sorted(rng.sample(
            eligible, min(config.chaos_kills, len(eligible))))
        for index in victims:
            tasks[index].chaos_after = config.chaos_after
        meta["chaos_killed"] = victims

    # -- serial paths --------------------------------------------------------

    def _run_shard_inline(self, campaign_key, specs, seed, byte_stride,
                          task, grade):
        """Run (or finish) one shard in-process, resuming its journal."""
        run_shard(self.harness, campaign_key, specs, seed, byte_stride,
                  task.shard, task.journal_path, grade=grade, jobs=1,
                  resume=True)

    # -- pooled dispatch -----------------------------------------------------

    def _spawn(self, ctx, task, campaign_key, specs, seed, byte_stride,
               grade):
        chaos_after = task.chaos_after if task.attempts == 0 else None
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_shard_worker_main,
            args=(self.harness, campaign_key, specs, seed, byte_stride,
                  task.shard, task.journal_path, task.heartbeat_path,
                  grade, self.config.shard_jobs, chaos_after,
                  child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        task.attempts += 1
        return _ShardWorker(process, parent_conn, task)

    def _run_pooled(self, campaign_key, specs, seed, byte_stride,
                    shards, tasks, grade, meta):
        from multiprocessing.connection import wait as conn_wait
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        config = self.config
        max_failures = self._max_worker_failures(len(shards))
        queue = [s.index for s in shards]
        not_before = {}
        outstanding = set(queue)
        workers = []
        pool = min(config.pool, max(1, len(queue)))
        try:
            while outstanding:
                if meta["worker_failures"] >= max_failures:
                    # The pool is unhealthy; reformat/reinstall one
                    # level up: tear it down and finish every
                    # unfinished shard serially in-process, resuming
                    # the journals the dead workers left behind.
                    meta["degraded"] = True
                    meta["degraded_reason"] = (
                        "%d worker failures"
                        % meta["worker_failures"])
                    for worker in workers:
                        worker.kill()
                    workers = []
                    for index in sorted(outstanding):
                        self._run_shard_inline(campaign_key, specs,
                                               seed, byte_stride,
                                               tasks[index], grade)
                    outstanding.clear()
                    break
                now = time.monotonic()
                while len(workers) < pool and queue:
                    pick = None
                    for position, index in enumerate(queue):
                        if not_before.get(index, 0) <= now:
                            pick = position
                            break
                    if pick is None:
                        break
                    index = queue.pop(pick)
                    if tasks[index].attempts > 0:
                        # A previously-leased shard going to a new
                        # worker: the idle worker steals the
                        # unfinished journal and resumes it.
                        meta["stolen_shards"] += 1
                    workers.append(self._spawn(ctx, tasks[index],
                                               campaign_key, specs,
                                               seed, byte_stride,
                                               grade))
                if not workers:
                    if queue:
                        time.sleep(min(0.05, config.backoff or 0.05))
                        continue
                    break       # retries exhausted; backfill handles it
                ready = conn_wait([w.conn for w in workers],
                                  timeout=0.1)
                for conn in ready:
                    worker = next(w for w in workers if w.conn is conn)
                    self._drain(worker, workers, outstanding, queue,
                                not_before, meta)
                wall = time.time()
                for worker in list(workers):
                    if not worker.process.is_alive():
                        # Harvest a done message that raced the death.
                        self._drain(worker, workers, outstanding,
                                    queue, not_before, meta,
                                    final=True)
                        if worker in workers:
                            self._shard_fail(worker, SHARD_DIED,
                                             workers, outstanding,
                                             queue, not_before, meta)
                    elif wall - worker.last_beat() \
                            > config.lease_timeout:
                        meta["stalled_leases"] += 1
                        self._shard_fail(worker, SHARD_STALLED,
                                         workers, outstanding, queue,
                                         not_before, meta)
        finally:
            for worker in workers:
                worker.kill()

    def _drain(self, worker, workers, outstanding, queue, not_before,
               meta, final=False):
        try:
            if not worker.conn.poll():
                return
            message = worker.conn.recv()
        except (EOFError, OSError):
            return
        kind, shard_index = message[0], message[1]
        if kind == "done":
            outstanding.discard(shard_index)
            worker.kill()
            if worker in workers:
                workers.remove(worker)
        elif kind == "failed" and not final:
            self._shard_fail(worker, SHARD_DIED, workers, outstanding,
                             queue, not_before, meta,
                             detail=message[3])

    def _shard_fail(self, worker, kind, workers, outstanding, queue,
                    not_before, meta, detail=None):
        """Revoke a shard's lease: retry with backoff or give it up.

        A given-up shard's completed prefix still merges from its
        journal; whatever is missing is backfilled serially at the
        end, so a shard failure can cost wall-clock but never results.
        """
        task = worker.task
        meta["worker_failures"] += 1
        worker.kill()
        if worker in workers:
            workers.remove(worker)
        if task.attempts <= self.config.retries:
            not_before[task.shard.index] = time.monotonic() \
                + self.config.backoff * task.attempts
            queue.append(task.shard.index)
        else:
            failures = meta["shard_failures"]
            failures[str(task.shard.index)] = \
                detail or ("%s after %d attempts"
                           % (kind, task.attempts))
            outstanding.discard(task.shard.index)

    # -- merge + backfill ----------------------------------------------------

    def _merge_and_backfill(self, campaign_key, specs, seed,
                            byte_stride, plan_fp, tasks, grade, meta):
        paths = [tasks[i].journal_path for i in sorted(tasks)]
        merged = merge_shard_journals(paths, plan_fp=plan_fp,
                                      n_specs=len(specs))
        meta["replayed_records"] = merged.replayed
        missing = merged.missing
        if missing:
            # Last rung: whatever no shard delivered runs serially
            # right here, with the engine's harness-fault containment.
            meta["serial_completions"] = len(missing)
            for index in missing:
                merged.results[index] = run_spec_contained(
                    self.harness, specs[index], grade, seed)
        return merged.ordered()
