"""Crash severity (§7.1): normal / severe / most severe.

Severity is graded from the *disk image*, not from labels: a crash whose
filesystem fsck cannot repair — or whose repaired system still fails to
boot — is "most severe" (reformat + reinstall, ~1 h in the paper); a
crash needing a real interactive fsck repair is "severe" (>5 min); a
crash that merely left the mounted-dirty flag reboots automatically
("normal", <4 min).

Recovered crashes (recovery kernels killing the offending task and
running on) are graded on the same ladder: a recovered oops can still
have corrupted the filesystem before it was contained, so the harness
fscks their final disk image too.  What recovery changes is the
*downtime attached to a normal-severity event* — no reboot, just a
killed task (:data:`RECOVERED_DOWNTIME`) — not the damage ladder.
"""

from repro.machine.disk import fsck
from repro.machine.machine import Machine

SEVERITY_NORMAL = "normal"
SEVERITY_SEVERE = "severe"
SEVERITY_MOST_SEVERE = "most_severe"

#: Downtime model in seconds, straight from §7.1's prose.
SEVERITY_DOWNTIME = {
    SEVERITY_NORMAL: 4 * 60,
    SEVERITY_SEVERE: 8 * 60,
    SEVERITY_MOST_SEVERE: 55 * 60,
}

#: Downtime of a *recovered* normal-severity crash: the machine never
#: reboots — the kernel kills the offending task and the service is
#: restarted (supervisor respawn), a few seconds instead of minutes.
#: Severe/most-severe damage still pays the full ladder price even
#: when the kernel survived the oops itself.
RECOVERED_DOWNTIME = 10


def _reboots_cleanly(kernel, disk_image, budget=4_000_000):
    """Try to bring the system back up with no workload configured."""
    machine = Machine(kernel, disk_image)
    result = machine.run(max_cycles=budget)
    if result.status != "shutdown" or result.exit_code != 0:
        return False
    return "INIT: no workload configured" in result.console \
        or "INIT: workload exited" in result.console


def grade_severity(kernel, disk_image, golden_files=None,
                   check_reboot=True):
    """Grade post-crash damage.

    Args:
        kernel: the kernel image (for the reboot attempt).
        disk_image: the disk as left by the crashed run.
        golden_files: critical files (path -> expected bytes) whose
            corruption is unrecoverable, e.g. ``/bin/init``.
        check_reboot: attempt an actual reboot when fsck found
            structural damage (slow; skipped for clean/dirty disks).

    Returns:
        ``(severity, fsck_status)``.
    """
    report = fsck(disk_image, golden_files=golden_files, repair=True)
    if report.status == "unrecoverable":
        return SEVERITY_MOST_SEVERE, report.status
    if report.status == "inconsistent":
        if check_reboot and not _reboots_cleanly(kernel, report.repaired):
            return SEVERITY_MOST_SEVERE, report.status
        return SEVERITY_SEVERE, report.status
    # clean or just mounted-dirty: the boot-time fsck handles it.
    return SEVERITY_NORMAL, report.status
