"""Campaign definitions and injection planning (the paper's Table 4).

========= ==================================== ============================
Campaign  Target instructions                  Target bit
========= ==================================== ============================
A         all non-branch instructions          a random bit in each byte
B         all conditional-branch instructions  a random bit in each byte
C         all conditional-branch instructions  the bit that reverses the
                                               branch condition
========= ==================================== ============================
"""

import random

from repro.isa.decoder import decode_all

#: Subsystems targeted by the paper (net deliberately excluded, §3).
TARGET_SUBSYSTEMS = ("arch", "fs", "kernel", "mm")


class CampaignDef:
    """One campaign's selection rules."""

    def __init__(self, key, title, branch_targets, condition_bit):
        self.key = key
        self.title = title
        self.branch_targets = branch_targets  # True: jcc only; False: rest
        self.condition_bit = condition_bit    # True: flip the cc low bit

    def __repr__(self):
        return "CampaignDef(%s: %s)" % (self.key, self.title)


CAMPAIGNS = {
    "A": CampaignDef("A", "Any Random Error", False, False),
    "B": CampaignDef("B", "Random Branch Error", True, False),
    "C": CampaignDef("C", "Valid but Incorrect Branch", True, True),
}


class InjectionSpec:
    """One planned injection."""

    __slots__ = ("campaign", "function", "subsystem", "instr_addr",
                 "instr_len", "byte_offset", "bit", "mnemonic", "workload")

    def __init__(self, campaign, function, subsystem, instr_addr,
                 instr_len, byte_offset, bit, mnemonic, workload=None):
        self.campaign = campaign
        self.function = function
        self.subsystem = subsystem
        self.instr_addr = instr_addr
        self.instr_len = instr_len
        self.byte_offset = byte_offset
        self.bit = bit
        self.mnemonic = mnemonic
        self.workload = workload

    @property
    def target_byte_addr(self):
        return self.instr_addr + self.byte_offset

    def to_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{k: v for k, v in data.items()
                      if k in cls.__slots__})

    def __repr__(self):
        return ("InjectionSpec(%s %s@%#x+%d bit %d [%s])"
                % (self.campaign, self.function, self.instr_addr,
                   self.byte_offset, self.bit, self.mnemonic))


def _is_cond_branch(ins):
    return ins.op in ("jcc", "loop", "loope", "loopne", "jcxz")


def _condition_bit_location(ins):
    """(byte offset, bit) that reverses a conditional branch, or None.

    For ``70+cc rel8`` the condition nibble's low bit is bit 0 of byte 0;
    for ``0F 80+cc rel32`` it is bit 0 of byte 1.  (loop/jcxz have no
    simple reversal bit and are skipped in campaign C, matching the
    paper's focus on Jcc.)
    """
    if ins.op != "jcc":
        return None
    if ins.raw[:1] == b"\x0f":
        return 1, 0
    return 0, 0


def select_targets(kernel, profile, campaign_key, coverage=0.95):
    """Pick the functions to inject for a campaign.

    All campaigns include the core (top-``coverage``) functions; campaign
    B widens to every *profiled* function and campaign C to every
    function in the four target subsystems — reproducing the paper's
    growing function counts (51 / 81 / 176 in its Figure 4).
    """
    core = {f.name for f in profile.top_functions(coverage=coverage)}
    out = []
    for info in kernel.functions:
        if info.subsystem not in TARGET_SUBSYSTEMS:
            continue
        sampled = profile.functions.get(info.name)
        hits = sampled.samples if sampled is not None else 0
        if campaign_key == "A":
            keep = info.name in core
        elif campaign_key == "B":
            keep = info.name in core or hits > 0
        else:
            keep = True
        if keep:
            out.append(info)
    out.sort(key=lambda f: f.start)
    return out


def plan_campaign(kernel, campaign_key, functions, seed=2003,
                  byte_stride=1, max_per_function=None):
    """Expand a campaign over *functions* into concrete injections.

    Args:
        kernel: built KernelImage.
        campaign_key: "A", "B" or "C".
        functions: FuncInfo list (e.g. from :func:`select_targets`).
        seed: RNG seed for the random-bit choice (reproducible plans).
        byte_stride: inject every n-th eligible byte (scales campaign
            size down without biasing instruction selection).
        max_per_function: optional cap per function.

    Returns:
        list of :class:`InjectionSpec` (workload not yet assigned).
    """
    campaign = CAMPAIGNS[campaign_key]
    rng = random.Random((seed, campaign_key, byte_stride).__repr__())
    specs = []
    byte_clock = 0
    for info in functions:
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        per_function = 0
        for ins in decode_all(code, base=info.start):
            if ins.op == "(bad)":
                continue
            is_branch = _is_cond_branch(ins)
            if campaign.branch_targets != is_branch:
                continue
            if campaign.condition_bit:
                location = _condition_bit_location(ins)
                if location is None:
                    continue
                byte_offset, bit = location
                candidates = [(byte_offset, bit)]
            else:
                candidates = [(i, rng.randrange(8))
                              for i in range(ins.length)]
            for byte_offset, bit in candidates:
                byte_clock += 1
                if byte_clock % byte_stride:
                    continue
                if (max_per_function is not None
                        and per_function >= max_per_function):
                    break
                specs.append(InjectionSpec(
                    campaign=campaign_key,
                    function=info.name,
                    subsystem=info.subsystem,
                    instr_addr=ins.addr,
                    instr_len=ins.length,
                    byte_offset=byte_offset,
                    bit=bit,
                    mnemonic=ins.op,
                ))
                per_function += 1
    return specs
