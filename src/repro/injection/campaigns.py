"""Campaign definitions and injection planning (the paper's Table 4).

========= ==================================== ============================
Campaign  Target instructions                  Target bit
========= ==================================== ============================
A         all non-branch instructions          a random bit in each byte
B         all conditional-branch instructions  a random bit in each byte
C         all conditional-branch instructions  the bit that reverses the
                                               branch condition
========= ==================================== ============================
"""

import random

from repro.isa.decoder import decode_all

#: Subsystems targeted by the paper (net deliberately excluded, §3).
TARGET_SUBSYSTEMS = ("arch", "fs", "kernel", "mm")

#: Version of the spec/journal record layout.  Bumped when
#: :class:`InjectionSpec` or the result schema gains fields; readers
#: tolerate older versions (``from_dict`` drops unknown keys, new
#: fields default to ``None``), so journals written before a bump
#: still load and resume.  v1: instruction-stream specs only.
#: v2: optional ``fault_model`` field (PR 6 fault-model framework).
SPEC_SCHEMA_VERSION = 2


class CampaignDef:
    """One campaign's selection rules."""

    def __init__(self, key, title, branch_targets, condition_bit):
        self.key = key
        self.title = title
        self.branch_targets = branch_targets  # True: jcc only; False: rest
        self.condition_bit = condition_bit    # True: flip the cc low bit

    def __repr__(self):
        return "CampaignDef(%s: %s)" % (self.key, self.title)


CAMPAIGNS = {
    "A": CampaignDef("A", "Any Random Error", False, False),
    "B": CampaignDef("B", "Random Branch Error", True, False),
    "C": CampaignDef("C", "Valid but Incorrect Branch", True, True),
}


#: Coarse instruction classes carried on every spec (computed once at
#: plan time from the decoded instruction, so the runner and the
#: analysis layer never re-decode to answer "what kind of site is
#: this?").
INSTR_CLASS_BRANCH = "branch"
INSTR_CLASS_CALL = "call"
INSTR_CLASS_ALU = "alu"
INSTR_CLASS_MOVE = "move"
INSTR_CLASS_STACK = "stack"
INSTR_CLASS_STRING = "string"
INSTR_CLASS_SYSTEM = "system"
INSTR_CLASS_OTHER = "other"

_CLASS_BY_OP = {}
for _op in ("jcc", "jmp", "jmp_ind", "jmpf", "jmpf_ind", "loop",
            "loope", "loopne", "jcxz", "ret", "lret", "iret"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_BRANCH
for _op in ("call", "call_ind", "callf", "callf_ind"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_CALL
for _op in ("add", "sub", "adc", "sbb", "and", "or", "xor", "cmp",
            "test", "inc", "dec", "neg", "not", "shl", "shr", "sar",
            "rol", "ror", "rcl", "rcr", "shld", "shrd", "mul",
            "imul1", "imul2", "imul3", "div", "idiv", "cwde", "cdq",
            "bt", "bts", "btr", "btc", "bsf", "bsr", "setcc"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_ALU
for _op in ("mov", "movzx", "movsx", "lea", "xchg", "bswap", "cmovcc",
            "xadd", "cmpxchg", "xlat"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_MOVE
for _op in ("push", "pop", "pusha", "popa", "pushf", "popf",
            "push_sr", "pop_sr", "enter", "leave"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_STACK
for _op in ("movs", "cmps", "stos", "lods", "scas", "ins", "outs"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_STRING
for _op in ("cli", "sti", "hlt", "int", "int3", "into",
            "sysgrp", "mov_from_cr", "mov_to_cr", "mov_from_dr",
            "mov_to_dr", "mov_from_sr", "mov_to_sr", "wrmsr", "rdmsr",
            "rdtsc", "rdpmc", "cpuid", "invd", "clts", "ud2", "in",
            "out", "bound"):
    _CLASS_BY_OP[_op] = INSTR_CLASS_SYSTEM
del _op


def instruction_class(ins):
    """Coarse class of a decoded instruction (see INSTR_CLASS_*)."""
    return _CLASS_BY_OP.get(ins.op, INSTR_CLASS_OTHER)


class InjectionSpec:
    """One planned injection.

    ``instr_class``/``is_branch`` are decoded-once instruction
    metadata; ``pred_class`` is the static pre-classifier's verdict
    when planning ran with ``preclassify``/``prune_dead``/
    ``prioritize`` (``None`` otherwise).  ``pred_traps``/
    ``pred_latency_lo``/``pred_latency_hi``/``pred_subsystems``/
    ``pred_seed`` carry the symbolic error-propagation verdict
    (:mod:`repro.staticanalysis.propagation`) when planning ran with
    ``static_verdicts``.  All prediction fields default to ``None`` so
    specs serialized by older journals still load, and none of them
    participate in the journal fingerprint (which hashes only the site
    coordinates), so enriched plans resume cleanly over plain
    journals.

    ``fault_model`` is ``None`` for the paper's instruction-stream
    flip (keeping plans, fingerprints and journals byte-identical with
    pre-framework runs) or a JSON-serializable dict describing a
    pluggable fault model (see :mod:`repro.injection.faultmodels`):
    ``{"kind": ..., "v": <model version>, ...params}``.  When set, the
    dict *does* enter the journal fingerprint — a resumed campaign
    must re-deliver exactly the same faults.
    """

    __slots__ = ("campaign", "function", "subsystem", "instr_addr",
                 "instr_len", "byte_offset", "bit", "mnemonic",
                 "workload", "instr_class", "is_branch", "pred_class",
                 "pred_traps", "pred_latency_lo", "pred_latency_hi",
                 "pred_subsystems", "pred_seed", "fault_model")

    def __init__(self, campaign, function, subsystem, instr_addr,
                 instr_len, byte_offset, bit, mnemonic, workload=None,
                 instr_class=None, is_branch=None, pred_class=None,
                 pred_traps=None, pred_latency_lo=None,
                 pred_latency_hi=None, pred_subsystems=None,
                 pred_seed=None, fault_model=None):
        self.campaign = campaign
        self.function = function
        self.subsystem = subsystem
        self.instr_addr = instr_addr
        self.instr_len = instr_len
        self.byte_offset = byte_offset
        self.bit = bit
        self.mnemonic = mnemonic
        self.workload = workload
        self.instr_class = instr_class
        self.is_branch = is_branch
        self.pred_class = pred_class
        self.pred_traps = pred_traps
        self.pred_latency_lo = pred_latency_lo
        self.pred_latency_hi = pred_latency_hi
        self.pred_subsystems = pred_subsystems
        self.pred_seed = pred_seed
        self.fault_model = fault_model

    @property
    def target_byte_addr(self):
        return self.instr_addr + self.byte_offset

    def to_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{k: v for k, v in data.items()
                      if k in cls.__slots__})

    def __repr__(self):
        return ("InjectionSpec(%s %s@%#x+%d bit %d [%s])"
                % (self.campaign, self.function, self.instr_addr,
                   self.byte_offset, self.bit, self.mnemonic))


def _is_cond_branch(ins):
    return ins.op in ("jcc", "loop", "loope", "loopne", "jcxz")


def _condition_bit_location(ins):
    """(byte offset, bit) that reverses a conditional branch, or None.

    For ``70+cc rel8`` the condition nibble's low bit is bit 0 of byte 0;
    for ``0F 80+cc rel32`` it is bit 0 of byte 1.  (loop/jcxz have no
    simple reversal bit and are skipped in campaign C, matching the
    paper's focus on Jcc.)
    """
    if ins.op != "jcc":
        return None
    if ins.raw[:1] == b"\x0f":
        return 1, 0
    return 0, 0


def select_targets(kernel, profile, campaign_key, coverage=0.95):
    """Pick the functions to inject for a campaign.

    All campaigns include the core (top-``coverage``) functions; campaign
    B widens to every *profiled* function and campaign C to every
    function in the four target subsystems — reproducing the paper's
    growing function counts (51 / 81 / 176 in its Figure 4).
    """
    core = {f.name for f in profile.top_functions(coverage=coverage)}
    out = []
    for info in kernel.functions:
        if info.subsystem not in TARGET_SUBSYSTEMS:
            continue
        sampled = profile.functions.get(info.name)
        hits = sampled.samples if sampled is not None else 0
        if campaign_key == "A":
            keep = info.name in core
        elif campaign_key == "B":
            keep = info.name in core or hits > 0
        else:
            keep = True
        if keep:
            out.append(info)
    out.sort(key=lambda f: f.start)
    return out


def plan_campaign(kernel, campaign_key, functions, seed=2003,
                  byte_stride=1, max_per_function=None,
                  preclassify=False, prune_dead=False,
                  prioritize=False, static_verdicts=False,
                  prioritize_latency=False):
    """Expand a campaign over *functions* into concrete injections.

    Args:
        kernel: built KernelImage.
        campaign_key: "A", "B" or "C".
        functions: FuncInfo list (e.g. from :func:`select_targets`).
        seed: RNG seed for the random-bit choice (reproducible plans).
        byte_stride: inject every n-th eligible byte (scales campaign
            size down without biasing instruction selection).
        max_per_function: optional cap per function.
        preclassify: annotate each spec's ``pred_class`` with the
            static pre-classifier's verdict (implied by *prune_dead*
            and *prioritize*).
        prune_dead: drop sites the pre-classifier proves dead
            (``PRED_DEAD``): the flip cannot change architectural
            state, so its dynamic outcome is knowable without a run.
            The surviving plan is a strict subset of the full one —
            see docs/static-analysis.md for why this preserves the
            paper's outcome distributions over *manifested* errors.
        prioritize: stable-sort the plan so predicted-interesting
            classes (invalid opcode, length change, branch reversal)
            run first and predicted-dead sites last; with a fixed run
            budget the front of the list now carries the information.
        static_verdicts: annotate each spec with the symbolic
            error-propagation verdict (predicted trap classes, crash-
            latency bounds in instructions, reachable subsystems).
        prioritize_latency: stable-sort crash-predicting sites by
            their static latency lower bound, shortest first, with
            silent-only predictions last — a truncated run then
            populates the dense low-latency region of Figure 7 first.
            Implies *static_verdicts*.

    Returns:
        list of :class:`InjectionSpec` (workload not yet assigned).
    """
    campaign = CAMPAIGNS[campaign_key]
    rng = random.Random((seed, campaign_key, byte_stride).__repr__())
    specs = []
    byte_clock = 0
    for info in functions:
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        per_function = 0
        for ins in decode_all(code, base=info.start):
            if ins.op == "(bad)":
                continue
            is_branch = _is_cond_branch(ins)
            if campaign.branch_targets != is_branch:
                continue
            if campaign.condition_bit:
                location = _condition_bit_location(ins)
                if location is None:
                    continue
                byte_offset, bit = location
                candidates = [(byte_offset, bit)]
            else:
                candidates = [(i, rng.randrange(8))
                              for i in range(ins.length)]
            for byte_offset, bit in candidates:
                byte_clock += 1
                if byte_clock % byte_stride:
                    continue
                if (max_per_function is not None
                        and per_function >= max_per_function):
                    break
                specs.append(InjectionSpec(
                    campaign=campaign_key,
                    function=info.name,
                    subsystem=info.subsystem,
                    instr_addr=ins.addr,
                    instr_len=ins.length,
                    byte_offset=byte_offset,
                    bit=bit,
                    mnemonic=ins.op,
                    instr_class=instruction_class(ins),
                    is_branch=ins.is_branch,
                ))
                per_function += 1
    if preclassify or prune_dead or prioritize:
        specs = apply_predictions(kernel, specs,
                                  prune_dead=prune_dead,
                                  prioritize=prioritize)
    if static_verdicts or prioritize_latency:
        specs = apply_static_verdicts(
            kernel, specs, prioritize_latency=prioritize_latency)
    return specs


#: Plan order under ``prioritize``: likely-crash and
#: control-flow-changing predictions first, provably-dead sites last.
_PRIORITY_ORDER = {
    "PRED_INVALID_OPCODE": 0,
    "PRED_LENGTH_CHANGE": 1,
    "PRED_BRANCH_REVERSAL": 2,
    "PRED_UNKNOWN": 3,
    "PRED_DEAD": 4,
}


def apply_predictions(kernel, specs, prune_dead=False,
                      prioritize=False):
    """Annotate specs with ``pred_class``; optionally prune/reorder.

    Imported lazily so planning without predictions never pays for the
    static-analysis layer.
    """
    from repro.staticanalysis.predict import PRED_DEAD, PreClassifier

    pre = PreClassifier(kernel)
    for spec in specs:
        spec.pred_class = pre.classify_spec(spec)
    if prune_dead:
        specs = [s for s in specs if s.pred_class != PRED_DEAD]
    if prioritize:
        specs = sorted(specs,
                       key=lambda s: _PRIORITY_ORDER.get(s.pred_class,
                                                         3))
    return specs


#: An unbounded predicted latency sorts after every finite bound.
_LATENCY_UNBOUNDED = float("inf")


def _latency_priority(spec):
    """Sort key for ``prioritize_latency`` (smaller = runs earlier).

    Crash-predicting sites order by their static latency lower bound
    (shortest first); sites whose only predicted outcome is silence
    run last — their dynamic result is the least informative per
    cycle spent.
    """
    traps = spec.pred_traps or []
    crash_traps = [t for t in traps if t != "silent"]
    if not crash_traps:
        return (1, _LATENCY_UNBOUNDED)
    lo = spec.pred_latency_lo
    return (0, lo if lo is not None else _LATENCY_UNBOUNDED)


def apply_static_verdicts(kernel, specs, prioritize_latency=False):
    """Annotate specs with symbolic error-propagation verdicts.

    Sets ``pred_traps`` (sorted list of predicted first-failure trap
    classes), ``pred_latency_lo``/``pred_latency_hi`` (instruction
    bounds; ``hi`` ``None`` when unbounded), ``pred_subsystems``
    (sorted reachable-subsystem list) and ``pred_seed`` (the seed
    corruption lattice class) on every spec.  With
    *prioritize_latency*, stable-sorts the plan by
    :func:`_latency_priority`.

    Imported lazily, like :func:`apply_predictions`, so plain
    planning never pays for the static-analysis layer.
    """
    from repro.staticanalysis.propagation import PropagationAnalyzer

    analyzer = PropagationAnalyzer(kernel)
    for spec in specs:
        verdict = analyzer.analyze_spec(spec)
        spec.pred_traps = sorted(verdict.traps)
        spec.pred_latency_lo = verdict.latency_lo
        spec.pred_latency_hi = verdict.latency_hi
        spec.pred_subsystems = sorted(
            s for s in verdict.subsystems if s is not None)
        spec.pred_seed = verdict.seed
    if prioritize_latency:
        specs = sorted(specs, key=_latency_priority)
    return specs


def main(argv=None):
    """CLI: plan a campaign and report/emit it.

    ``--prune-dead`` / ``--prioritize`` expose the static-analysis
    integration::

        python -m repro.injection.campaigns --campaign A --prune-dead
    """
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="Plan an injection campaign (optionally pruned or "
                    "prioritized by the static pre-classifier).")
    parser.add_argument("--campaign", default="A",
                        choices=sorted(CAMPAIGNS))
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--prune-dead", action="store_true",
                        help="drop sites statically proven dead")
    parser.add_argument("--prioritize", action="store_true",
                        help="run predicted-interesting sites first")
    parser.add_argument("--static-verdicts", action="store_true",
                        help="annotate specs with symbolic error-"
                             "propagation verdicts (trap classes,"
                             " latency bounds, subsystem spread)")
    parser.add_argument("--prioritize-latency", action="store_true",
                        help="run predicted-short-latency crashes"
                             " first (implies --static-verdicts)")
    parser.add_argument("--json", action="store_true",
                        help="emit the plan as JSON on stdout")
    args = parser.parse_args(argv)

    from repro.experiments.context import SCALES, ExperimentContext
    ctx = ExperimentContext(scale=args.scale, seed=args.seed)
    stride, max_specs = SCALES[args.scale][args.campaign]
    functions = select_targets(ctx.kernel, ctx.profile, args.campaign)
    specs = plan_campaign(
        ctx.kernel, args.campaign, functions, seed=args.seed,
        byte_stride=stride, preclassify=True,
        prune_dead=args.prune_dead, prioritize=args.prioritize,
        static_verdicts=args.static_verdicts,
        prioritize_latency=args.prioritize_latency)
    if max_specs is not None:
        specs = specs[:max_specs]

    if args.json:
        json.dump([s.to_dict() for s in specs], sys.stdout, indent=1)
        sys.stdout.write("\n")
        return 0
    from collections import Counter
    counts = Counter(s.pred_class for s in specs)
    print("campaign %s: %d planned injections over %d functions"
          % (args.campaign, len(specs), len(functions)))
    for pred, count in sorted(counts.items()):
        print("  %-22s %5d" % (pred, count))
    if args.prune_dead:
        print("(PRED_DEAD sites pruned from the plan)")
    if args.static_verdicts or args.prioritize_latency:
        crash_pred = sum(
            1 for s in specs
            if any(t != "silent" for t in (s.pred_traps or ())))
        bounded = sum(1 for s in specs
                      if s.pred_latency_hi is not None)
        print("static verdicts: %d/%d sites predict a possible crash,"
              " %d with a finite latency upper bound"
              % (crash_pred, len(specs), bounded))
        if args.prioritize_latency:
            print("(plan ordered by predicted crash-latency lower"
                  " bound)")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
