"""Fault-tolerant campaign execution engine.

The paper's rig survives >35,000 injections because the *harness* is
hardened, not just the target: a hardware watchdog reboots wedged
machines, remote power control recovers dead ones, and the worst
crashes trigger an automated reformat/reinstall (Figure 3, §7.1).
This module is the software analogue for the simulated rig:

* **process-isolated workers** — experiments run in forked worker
  processes, each owning its own golden-snapshot clones.  A worker
  that wedges (per-experiment wall-clock watchdog) or dies (SIGKILL,
  interpreter fault) costs one experiment, which is retried with
  backoff in a fresh worker — the watchdog → reboot rungs of the
  paper's recovery ladder.
* **harness-fault containment** — any exception escaping
  ``run_spec`` (e.g. a decoder bug provoked by a corrupted opcode) is
  classified as a :data:`~repro.injection.outcomes.HARNESS_ERROR`
  outcome carrying a serialized repro bundle instead of aborting the
  campaign.
* **journaling + resume** — every completed experiment is appended to
  a JSONL journal keyed by spec index; an interrupted campaign
  restarts from the journal and re-runs only in-flight work.
* **graceful degradation** — after repeated worker failures the
  engine abandons the parallel rig and finishes serially in-process,
  recording the degradation (the reformat/reinstall rung: rebuild the
  rig in its most conservative configuration and carry on).

Specs are planned deterministically up front and results are
journaled with their spec index and reassembled in order, so serial
and parallel execution produce bit-identical result lists for the
same seed.
"""

import hashlib
import json
import os
import tempfile
import time
import traceback

from repro.injection.outcomes import HARNESS_ERROR, InjectionResult

#: Per-experiment wall-clock watchdog (seconds).  Generous: a single
#: simulated experiment is seconds of host time; minutes means the
#: interpreter itself is wedged.
DEFAULT_TIMEOUT = 300.0

#: How a worker failure is reported in the HARNESS_ERROR repro bundle.
KIND_EXCEPTION = "harness_exception"
KIND_WORKER_DIED = "worker_died"
KIND_WORKER_TIMEOUT = "worker_timeout"


class EngineConfig:
    """Tuning knobs for :class:`CampaignEngine`."""

    __slots__ = ("jobs", "timeout", "retries", "backoff",
                 "max_worker_failures", "journal_path", "resume")

    def __init__(self, jobs=1, timeout=None, retries=2, backoff=0.25,
                 max_worker_failures=3, journal_path=None, resume=False):
        self.jobs = max(1, int(jobs))
        self.timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_worker_failures = max(1, int(max_worker_failures))
        self.journal_path = journal_path
        self.resume = resume


def _spec_coords(spec):
    """The fingerprint coordinates of one spec.

    The ``fault_model`` dict is appended only when set, so plans of
    the default instruction-stream model keep the exact pre-framework
    fingerprint and old journals still resume.
    """
    coords = [spec.function, spec.instr_addr, spec.byte_offset,
              spec.bit]
    fault_model = getattr(spec, "fault_model", None)
    if fault_model is not None:
        coords.append(fault_model)
    return coords


def plan_fingerprint(campaign_key, specs, seed, byte_stride):
    """Stable digest of a planned campaign (guards ``--resume``)."""
    payload = {
        "campaign": campaign_key,
        "seed": seed,
        "byte_stride": byte_stride,
        "specs": [_spec_coords(s) for s in specs],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def harness_error_result(spec, kind, tb, seed):
    """Build the HARNESS_ERROR result for a failed experiment."""
    return InjectionResult(
        outcome=HARNESS_ERROR,
        activated=False,
        campaign=spec.campaign,
        function=spec.function,
        subsystem=spec.subsystem,
        addr=spec.instr_addr,
        byte_offset=spec.byte_offset,
        bit=spec.bit,
        mnemonic=spec.mnemonic,
        workload=spec.workload,
        detail=kind,
        repro={"kind": kind, "spec": spec.to_dict(),
               "traceback": tb, "seed": seed},
    )


def run_spec_contained(harness, spec, grade, seed):
    """``run_spec`` with harness-fault containment.

    A corrupted instruction stream can provoke bugs in the simulator
    itself; the paper's answer to a broken rig is to recover and move
    on, never to lose the campaign.
    """
    try:
        return harness.run_spec(spec, grade=grade)
    except Exception:
        return harness_error_result(spec, KIND_EXCEPTION,
                                    traceback.format_exc(), seed)


class JournalMismatch(RuntimeError):
    """The on-disk journal belongs to a different campaign plan."""


def read_journal_lines(path):
    """Parse a JSONL journal tolerantly.

    Returns ``(records, clean_size)``: every complete record in file
    order, and the byte offset just past the last complete line.  A
    torn trailing line — the write that was in flight when its writer
    was SIGKILLed — parses as garbage (or as JSON missing its
    terminating newline); it and anything after it is excluded rather
    than raised on, and ``clean_size`` points before it so a writer can
    physically truncate the tear instead of gluing new records onto it.
    """
    records = []
    clean = 0
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    for raw in data.splitlines(keepends=True):
        line = raw.strip()
        if line:
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            if not raw.endswith(b"\n"):
                # Complete JSON whose newline never made it to disk:
                # still a tear (an append would corrupt the line), so
                # the record is re-run rather than trusted.
                break
            records.append(record)
        offset += len(raw)
        clean = offset
    return records, clean


def prefer_result(first, second):
    """The canonical result among duplicates journaled for one index.

    Replayed work is deterministic, so duplicates are normally
    byte-identical and the first write wins; the one asymmetry is a
    HARNESS_ERROR placeholder (a retried shard's worker died), which a
    real replayed result displaces.  Deduplication lives here — in the
    journal/merge layer — and nowhere else; the engine *asserts* it
    never completes an index twice instead of quietly tolerating it.
    """
    if first.outcome == HARNESS_ERROR and second.outcome != HARNESS_ERROR:
        return second
    return first


class CampaignJournal:
    """Append-only JSONL record of completed experiments.

    Line 1 is a header binding the journal to a plan fingerprint;
    every further line is ``{"index": i, "result": {...}}``.  Records
    are flushed and fsynced as written, so the journal survives a
    SIGKILL of the whole campaign; a torn final line (the write that
    was in flight) is truncated away on the next ``start`` and simply
    re-run, never raised on and never appended onto.

    Loading deduplicates replayed indices with :func:`prefer_result`
    (exactly-once semantics: retried shards and resumed runs may
    legally replay work; the journal is the single place duplicates
    are resolved).

    The header also records ``schema_version``
    (:data:`~repro.injection.campaigns.SPEC_SCHEMA_VERSION`).  Loading
    tolerates headers without the field (v1, pre-fault-model journals)
    and any version whose records still parse — result fields added
    since simply come back ``None``, so old journals resume cleanly
    under newer code.
    """

    def __init__(self, path):
        self.path = path
        self._fh = None
        self._clean_size = None
        self._seen = set()

    # -- reading ------------------------------------------------------------

    def load(self, fingerprint):
        """Return {index: InjectionResult} for a matching journal.

        Raises :class:`JournalMismatch` if the journal on disk was
        written for a different plan.  Returns ``{}`` when no journal
        exists yet.  A journal whose *header* is torn (the writer died
        inside its very first write) counts as empty and is rewritten.
        """
        if not os.path.exists(self.path):
            return {}
        records, self._clean_size = read_journal_lines(self.path)
        if not records:
            return {}
        self._check_header(records[0], fingerprint)
        completed = {}
        for record in records[1:]:
            if record.get("type") != "result":
                continue
            index = self._local_index(record["index"])
            if index is None:
                continue
            result = InjectionResult.from_dict(record["result"])
            if index in completed:
                completed[index] = prefer_result(completed[index],
                                                 result)
            else:
                completed[index] = result
        self._note_loaded(completed)
        return completed

    def _check_header(self, header, fingerprint):
        if header.get("type") != "header" \
                or header.get("fingerprint") != fingerprint:
            raise JournalMismatch(
                "journal %s was written for a different campaign plan "
                "(fingerprint %r, expected %r)"
                % (self.path, header.get("fingerprint"), fingerprint))

    def _local_index(self, stored_index):
        """Map a journaled index to the engine's index space."""
        return stored_index

    def _note_loaded(self, completed):
        self._seen.update(completed)

    # -- writing ------------------------------------------------------------

    def start(self, fingerprint, campaign_key, seed, n_specs,
              fresh=False):
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        mode = "a"
        if fresh or not os.path.exists(self.path) \
                or os.path.getsize(self.path) == 0:
            mode = "w"
        if mode == "a":
            if self._clean_size is None:
                _, self._clean_size = read_journal_lines(self.path)
            if self._clean_size < os.path.getsize(self.path):
                # Physically drop the torn tail so the next record
                # starts on a fresh line instead of gluing onto the
                # interrupted one (which would poison every later
                # resume past this point).
                with open(self.path, "r+b") as fh:
                    fh.truncate(self._clean_size)
            if self._clean_size == 0:
                mode = "w"
        self._fh = open(self.path, mode)
        if mode == "w":
            self._seen = set()
            self._write(self._header(fingerprint, campaign_key, seed,
                                     n_specs))

    def _header(self, fingerprint, campaign_key, seed, n_specs):
        from repro.injection.campaigns import SPEC_SCHEMA_VERSION
        return {"type": "header", "fingerprint": fingerprint,
                "campaign": campaign_key, "seed": seed,
                "n_specs": n_specs,
                "schema_version": SPEC_SCHEMA_VERSION}

    def _stored_index(self, index):
        """Map an engine index to the journaled index space."""
        return index

    def record(self, index, result):
        stored = self._stored_index(index)
        if stored in self._seen:
            return          # exactly-once: replays never re-journal
        self._seen.add(stored)
        self._write({"type": "result", "index": stored,
                     "result": result.to_dict()})

    def record_carried(self, index, result, provenance):
        """Journal a result carried forward from another campaign's
        journal (see :mod:`repro.staticanalysis.delta`).

        The envelope is a normal result record plus a ``carried``
        provenance block (source journal fingerprint, base/new kernel
        fingerprints); loaders ignore the extra key, so resume and
        shard-merge treat carried results exactly like locally
        executed ones and the exactly-once invariant is shared.
        """
        stored = self._stored_index(index)
        if stored in self._seen:
            return
        self._seen.add(stored)
        self._write({"type": "result", "index": stored,
                     "result": result.to_dict(),
                     "carried": dict(provenance)})

    def record_extrapolated(self, index, result, provenance):
        """Journal a result extrapolated from a class pilot's outcome
        (see :mod:`repro.staticanalysis.equivalence`).

        Same contract as :meth:`record_carried`: a normal result
        record plus an ``extrapolated`` provenance block
        (``{pilot_index, class_fp, n_members}``).  Loaders ignore the
        extra key, so resume and shard-merge treat extrapolated
        results exactly like executed ones and the exactly-once
        invariant is shared.
        """
        stored = self._stored_index(index)
        if stored in self._seen:
            return
        self._seen.add(stored)
        self._write({"type": "result", "index": stored,
                     "result": result.to_dict(),
                     "extrapolated": dict(provenance)})

    def _write(self, record):
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _worker_main(harness, specs, grade, seed, conn):
    """Worker loop: receive a spec index, send back a result dict.

    Runs in a forked child; the harness (kernel, golden snapshots) is
    inherited copy-on-write, so each worker clones golden snapshots
    privately and cannot perturb its siblings.
    """
    try:
        while True:
            index = conn.recv()
            if index is None:
                break
            result = run_spec_contained(harness, specs[index], grade,
                                        seed)
            conn.send((index, result.to_dict()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class _Worker:
    """Bookkeeping for one worker process."""

    __slots__ = ("process", "conn", "current", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.current = None     # in-flight spec index
        self.deadline = None

    def assign(self, index, timeout):
        self.current = index
        self.deadline = time.monotonic() + timeout
        self.conn.send(index)

    def kill(self):
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)


class CampaignEngine:
    """Executes a planned campaign resiliently (see module docstring)."""

    def __init__(self, harness, config=None):
        self.harness = harness
        self.config = config or EngineConfig()

    # -- public entry point --------------------------------------------------

    def execute(self, campaign_key, specs, seed, byte_stride, grade=True,
                progress=None, journal=None):
        """Run *specs*; returns ``(results, engine_meta)``.

        ``results`` is ordered by spec index regardless of completion
        order; ``engine_meta`` describes how the run actually went
        (mode, worker failures, degradation, resume) and is the only
        part of a campaign's output that may differ between serial and
        parallel execution.

        *journal* lets a caller supply a pre-built journal object (the
        fabric's :class:`~repro.injection.fabric.ShardJournal` records
        global plan indices under a shard header); by default one is
        constructed from ``config.journal_path``.
        """
        config = self.config
        fingerprint = plan_fingerprint(campaign_key, specs, seed,
                                       byte_stride)
        completed = {}
        if journal is None and config.journal_path is not None:
            journal = CampaignJournal(config.journal_path)
        if journal is not None:
            if config.resume:
                completed = journal.load(fingerprint)
                completed = {i: r for i, r in completed.items()
                             if 0 <= i < len(specs)}
            journal.start(fingerprint, campaign_key, seed, len(specs),
                          fresh=not config.resume)
        meta = {
            "jobs": config.jobs,
            "mode": "parallel" if config.jobs > 1 else "serial",
            "journal": config.journal_path,
            "resumed_results": len(completed),
            "worker_failures": 0,
            "harness_errors": 0,
            "degraded": False,
        }
        pending = [i for i in range(len(specs)) if i not in completed]
        # Deterministic up-front workload assignment; also builds each
        # workload's golden snapshot once in the parent so forked
        # workers inherit it copy-on-write instead of re-booting it.
        for spec in specs:
            self.harness.assign_workload(spec)
        results = dict(completed)
        try:
            if config.jobs > 1 and pending and self._fork_available():
                self._run_parallel(specs, pending, grade, seed, results,
                                   journal, progress, meta)
            else:
                if config.jobs > 1 and pending:
                    meta["degraded"] = True
                    meta["degraded_reason"] = "fork unavailable"
                self._run_serial(specs, pending, grade, seed, results,
                                 journal, progress, meta)
        finally:
            if journal is not None:
                journal.close()
        ordered = [results[i] for i in range(len(specs))]
        meta["harness_errors"] = sum(
            1 for r in ordered if r.outcome == HARNESS_ERROR)
        return ordered, meta

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, specs, pending, grade, seed, results, journal,
                    progress, meta):
        for index in pending:
            result = run_spec_contained(self.harness, specs[index],
                                        grade, seed)
            self._complete(index, result, specs, results, journal,
                           progress)

    # -- parallel path -------------------------------------------------------

    @staticmethod
    def _fork_available():
        import multiprocessing
        return "fork" in multiprocessing.get_all_start_methods()

    def _spawn_worker(self, ctx, specs, grade, seed):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(self.harness, specs, grade, seed, child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _run_parallel(self, specs, pending, grade, seed, results,
                      journal, progress, meta):
        from multiprocessing.connection import wait as conn_wait
        import multiprocessing
        ctx = multiprocessing.get_context("fork")
        config = self.config
        queue = list(pending)            # indices awaiting a worker
        not_before = {}                  # index -> earliest retry time
        attempts = {}                    # index -> failed attempts
        n_workers = min(config.jobs, max(1, len(pending)))
        workers = [self._spawn_worker(ctx, specs, grade, seed)
                   for _ in range(n_workers)]
        outstanding = set(pending)
        try:
            while outstanding:
                if meta["worker_failures"] >= config.max_worker_failures:
                    # The parallel rig is unhealthy; reformat/reinstall:
                    # tear it down and finish serially in-process.
                    meta["degraded"] = True
                    meta["degraded_reason"] = (
                        "%d worker failures" % meta["worker_failures"])
                    for worker in workers:
                        if worker.current is not None:
                            queue.append(worker.current)
                        worker.kill()
                    workers = []
                    remaining = sorted(set(queue))
                    self._run_serial(specs, remaining, grade, seed,
                                     results, journal, progress, meta)
                    outstanding.clear()
                    break
                self._assign_idle(workers, queue, not_before, config)
                busy = [w for w in workers if w.current is not None]
                if not busy:
                    # Everything runnable is in backoff; wait it out.
                    time.sleep(min(0.05, config.backoff or 0.05))
                    continue
                ready = conn_wait([w.conn for w in busy], timeout=0.1)
                for conn in ready:
                    worker = next(w for w in busy if w.conn is conn)
                    self._drain_worker(worker, specs, results, journal,
                                       progress, outstanding)
                now = time.monotonic()
                for worker in list(workers):
                    if not worker.process.is_alive():
                        # A worker that died *after* sending its result
                        # leaves it sitting in the pipe.  Harvest it
                        # before deciding anything: the experiment is
                        # done and journaled exactly once; re-enqueueing
                        # it would run (and journal) it twice.  An idle
                        # dead worker is retired too — assigning to it
                        # would hit a broken pipe.
                        self._drain_worker(worker, specs, results,
                                           journal, progress,
                                           outstanding)
                        if worker.current is None:
                            self._retire(worker, meta, workers, ctx,
                                         specs, grade, seed)
                        else:
                            self._fail(worker, KIND_WORKER_DIED, specs,
                                       results, journal, progress,
                                       queue, attempts, not_before,
                                       outstanding, meta, workers, ctx,
                                       grade, seed)
                    elif worker.current is not None \
                            and now > worker.deadline:
                        self._fail(worker, KIND_WORKER_TIMEOUT, specs,
                                   results, journal, progress, queue,
                                   attempts, not_before, outstanding,
                                   meta, workers, ctx, grade, seed)
        finally:
            for worker in workers:
                try:
                    if worker.current is None and worker.process.is_alive():
                        worker.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
                worker.kill()

    def _assign_idle(self, workers, queue, not_before, config):
        now = time.monotonic()
        for worker in workers:
            if worker.current is not None or not queue:
                continue
            for position, index in enumerate(queue):
                if not_before.get(index, 0) <= now:
                    queue.pop(position)
                    try:
                        worker.assign(index, config.timeout)
                    except OSError:
                        # Died between the liveness check and the
                        # send; requeue and let the next liveness pass
                        # retire the body.
                        worker.current = None
                        queue.append(index)
                    break

    def _drain_worker(self, worker, specs, results, journal, progress,
                      outstanding):
        try:
            if not worker.conn.poll():
                return          # nothing delivered (yet, or ever)
            index, payload = worker.conn.recv()
        except (EOFError, OSError):
            return              # death; the liveness check handles it
        worker.current = None
        worker.deadline = None
        if index in outstanding:
            result = InjectionResult.from_dict(payload)
            self._complete(index, result, specs, results, journal,
                           progress)
            outstanding.discard(index)

    def _retire(self, worker, meta, workers, ctx, specs, grade, seed):
        """Replace a worker that died *after* delivering its result.

        The death still counts against the failure budget (the rig is
        unhealthy), but the completed experiment is never re-enqueued —
        that is the exactly-once half of the worker-death ladder.
        """
        meta["worker_failures"] += 1
        worker.kill()
        workers.remove(worker)
        if meta["worker_failures"] < self.config.max_worker_failures:
            workers.append(self._spawn_worker(ctx, specs, grade, seed))

    def _fail(self, worker, kind, specs, results, journal, progress,
              queue, attempts, not_before, outstanding, meta, workers,
              ctx, grade, seed):
        """One rung down the recovery ladder for a failed worker."""
        index = worker.current
        meta["worker_failures"] += 1
        worker.kill()
        workers.remove(worker)
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] <= self.config.retries:
            # Retry in a fresh worker after a short backoff.
            not_before[index] = time.monotonic() \
                + self.config.backoff * attempts[index]
            queue.append(index)
        else:
            tb = ("worker failed %d times (last: %s); retries exhausted"
                  % (attempts[index], kind))
            result = harness_error_result(specs[index], kind, tb, seed)
            self._complete(index, result, specs, results, journal,
                           progress)
            outstanding.discard(index)
        if meta["worker_failures"] < self.config.max_worker_failures:
            workers.append(self._spawn_worker(ctx, specs, grade, seed))

    # -- shared plumbing -----------------------------------------------------

    def _complete(self, index, result, specs, results, journal,
                  progress):
        # Exactly-once invariant: deduplication of replayed work lives
        # in the journal/merge layer alone; a second completion here
        # means the dispatch bookkeeping double-ran an experiment.
        if index in results:
            raise RuntimeError(
                "spec index %d completed twice; duplicate indices must "
                "never reach CampaignResults" % index)
        results[index] = result
        if journal is not None:
            journal.record(index, result)
        if progress is not None:
            progress(len(results), len(specs), result)


def atomic_write_json(path, payload):
    """Write *payload* as JSON atomically (temp file + ``os.replace``).

    An interrupted writer can never leave a truncated file behind: the
    replace is atomic on POSIX, so readers see either the old complete
    file or the new complete one.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
