"""Extension campaign R: direct register corruption.

The paper's footnote 1 argues that corrupting the *instruction stream*
also emulates register/data corruption (a flipped register field in an
instruction is equivalent to corrupted register contents).  This
extension makes the equivalence empirically checkable: campaign R flips
one bit of one general-purpose register at the moment a target
instruction is first reached, and the outcome distribution can be
compared against campaign A's.
"""

import random

from repro.injection.campaigns import TARGET_SUBSYSTEMS, InjectionSpec
from repro.isa.decoder import decode_all
from repro.isa.registers import REG_NAMES

#: Registers worth corrupting (esp is excluded by default because a
#: corrupted stack pointer reduces to the same few double-fault cases).
DEFAULT_REGS = (0, 1, 2, 3, 5, 6, 7)   # eax ecx edx ebx ebp esi edi


class RegisterInjectionSpec:
    """One planned register-bit flip at an instruction trigger."""

    __slots__ = ("function", "subsystem", "instr_addr", "reg", "bit",
                 "workload")

    def __init__(self, function, subsystem, instr_addr, reg, bit,
                 workload=None):
        self.function = function
        self.subsystem = subsystem
        self.instr_addr = instr_addr
        self.reg = reg
        self.bit = bit
        self.workload = workload

    @property
    def reg_name(self):
        return REG_NAMES[self.reg]

    def to_injection_spec(self):
        """The pipeline form: an InjectionSpec carrying the ``reg``
        fault model (see :mod:`repro.injection.faultmodels`).

        ``byte_offset`` keeps its historical repurposing as the
        register index so journaled campaign-R results stay
        comparable.
        """
        return InjectionSpec(
            campaign="R",
            function=self.function,
            subsystem=self.subsystem,
            instr_addr=self.instr_addr,
            instr_len=1,
            byte_offset=self.reg,       # repurposed: register index
            bit=self.bit,
            mnemonic="reg:%s" % self.reg_name,
            workload=self.workload,
            fault_model={"kind": "reg", "v": 1, "reg": self.reg,
                         "bit": self.bit},
        )

    def __repr__(self):
        return ("RegisterInjectionSpec(%s@%#x %s bit %d)"
                % (self.function, self.instr_addr, self.reg_name,
                   self.bit))


def plan_register_campaign(kernel, functions, seed=2003, per_function=6,
                           regs=DEFAULT_REGS):
    """Plan campaign R over *functions*.

    For each function, *per_function* trigger instructions are sampled
    uniformly from its body; each gets one random (register, bit) pick.
    """
    rng = random.Random("R-%d" % seed)
    specs = []
    for info in functions:
        if info.subsystem not in TARGET_SUBSYSTEMS:
            continue
        code = kernel.code[info.start - kernel.base:
                           info.end - kernel.base]
        instrs = [i for i in decode_all(code, base=info.start)
                  if i.op != "(bad)"]
        if not instrs:
            continue
        count = min(per_function, len(instrs))
        for ins in rng.sample(instrs, count):
            specs.append(RegisterInjectionSpec(
                function=info.name,
                subsystem=info.subsystem,
                instr_addr=ins.addr,
                reg=rng.choice(regs),
                bit=rng.randrange(32),
            ))
    specs.sort(key=lambda s: (s.instr_addr, s.reg, s.bit))
    return specs


def run_register_spec(harness, spec, grade=True):
    """Execute one register-corruption experiment via *harness*.

    Since the fault-model framework this is a thin shim: the spec is
    converted to the pipeline form (``fault_model={"kind": "reg"}``)
    and runs through :meth:`InjectionHarness.run_spec` like every
    other model — trigger, watchdog, classification and grading all
    shared.
    """
    return harness.run_spec(spec.to_injection_spec(), grade=grade)


def run_register_campaign(harness, functions=None, seed=2003,
                          per_function=6, max_specs=None, grade=True):
    """Plan + run campaign R; returns a list of InjectionResult."""
    from repro.injection.campaigns import select_targets
    if functions is None:
        functions = select_targets(harness.kernel, harness.profile, "A")
    specs = plan_register_campaign(harness.kernel, functions, seed=seed,
                                   per_function=per_function)
    if max_specs is not None:
        specs = specs[:max_specs]
    return [run_register_spec(harness, spec, grade=grade)
            for spec in specs]
