"""Campaign execution: golden runs, the injector loop, classification.

This is the automated process of the paper's Figure 3: for every planned
injection the harness boots a pristine machine, arms the debug-register
trigger, flips the bit on first execution of the target instruction,
runs under a watchdog, and classifies the outcome against the golden
run.  Activation is decided exactly from golden-run coverage (the run is
deterministic; behaviour diverges only once the corrupted instruction
executes).
"""

import json

from repro.injection.campaigns import plan_campaign, select_targets
from repro.injection.engine import (
    CampaignEngine,
    EngineConfig,
    atomic_write_json,
    plan_fingerprint,
)
from repro.injection.outcomes import (
    CRASH_DUMPED,
    CRASH_RECOVERED,
    CRASH_UNKNOWN,
    FAIL_SILENCE_VIOLATION,
    HANG,
    NOT_ACTIVATED,
    NOT_MANIFESTED,
    RECOVERED_FSV,
    RECOVERED_LATER_CRASH,
    RECOVERED_WORKLOAD_CORRECT,
    InjectionResult,
    crash_cause_name,
)
from repro.injection.severity import grade_severity
from repro.kernel.layout import KernelLayout
from repro.machine.machine import Machine, build_standard_disk
from repro.tracing import DEFAULT_CHANNELS, diff_traces


#: Console marker separating boot from benchmark execution; the
#: injector is armed only once the marker has appeared (the paper
#: injects into a running system).
BOOT_MARKER = "INIT: starting workload"


def _console_subsumes(golden_text, observed_text):
    """True when every golden console line appears, in order, in the
    observed console (recovered-oops text is interleaved insertions)."""
    observed = iter(observed_text.splitlines())
    for line in golden_text.splitlines():
        for candidate in observed:
            if candidate == line:
                break
        else:
            return False
    return True


class GoldenRun:
    """Reference (fault-free) execution of one workload."""

    def __init__(self, workload, result, coverage, disk_image,
                 boot_cycles):
        self.snapshot = None              # post-boot MachineSnapshot
        self.workload = workload
        self.result = result
        self.coverage = coverage          # post-boot executed EIPs
        self.disk_image = disk_image      # pristine boot image
        self.boot_cycles = boot_cycles
        self.console = result.console
        self.exit_code = result.exit_code
        self.cycles = result.cycles
        self.final_disk = result.disk_image

    @property
    def workload_cycles(self):
        return self.cycles - self.boot_cycles


class CampaignResults:
    """A list of InjectionResult plus campaign metadata."""

    def __init__(self, campaign, results, meta=None):
        self.campaign = campaign
        self.results = results
        self.meta = meta or {}

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def save(self, path):
        payload = {
            "campaign": self.campaign,
            "meta": self.meta,
            "results": [r.to_dict() for r in self.results],
        }
        # Atomic: a campaign interrupted mid-save can never leave a
        # truncated JSON behind to poison later cached re-renders.
        atomic_write_json(path, payload)

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            payload = json.load(fh)
        results = [InjectionResult.from_dict(r)
                   for r in payload["results"]]
        return cls(payload["campaign"], results, payload.get("meta"))


class InjectionHarness:
    """Shared state for a set of campaigns: kernel, golden runs, grading.

    With ``recovery=True`` every machine (golden and injected) boots
    with the kernel's recovery ladder armed: exception fixups contain
    bad uaccesses, oopses kill the offending task and reschedule, and
    the in-kernel soft-lockup watchdog converts wedges into dumped,
    recovered crashes.  Runs that dump and keep going are classified
    :data:`CRASH_RECOVERED` with a post-recovery sub-classification.
    The default ``recovery=False`` reproduces the fail-stop kernel.

    With ``trace=True`` every post-boot run (golden and injected)
    carries the execution flight recorder (:mod:`repro.tracing`) on
    *trace_channels*, and each activated result is enriched with the
    golden-vs-injected divergence measurements (the ``trace_*`` fields
    of :class:`InjectionResult`).  Tracing is purely observational —
    outcomes, latencies and consoles are bit-identical to an untraced
    harness.  *trace_capacity* bounds the ring (``None`` = unbounded,
    which exact divergence measurement wants).

    With ``disk_retries > 0`` every machine boots with the IDE
    driver's bounded retry/backoff path armed
    (:meth:`~repro.machine.machine.Machine.enable_disk_retry`): a
    failed disk transfer is re-issued up to that many times before
    ``-EIO`` propagates.  The graceful-degradation ablation of the
    fault-model framework compares ``disk_retries=0`` (the paper's
    fail-stop driver), a retrying driver, and the recovery kernel.
    """

    def __init__(self, kernel, binaries, profile, watchdog_factor=3,
                 watchdog_slack=250_000, recovery=False, trace=False,
                 trace_channels=DEFAULT_CHANNELS, trace_capacity=None,
                 disk_retries=0, snapshot_store=None, translate=False):
        self.kernel = kernel
        self.binaries = binaries
        self.profile = profile
        self.watchdog_factor = watchdog_factor
        self.watchdog_slack = watchdog_slack
        self.recovery = recovery
        self.disk_retries = disk_retries
        self.trace = trace
        #: Execute every machine (golden and injected) through the
        #: translated fast path (:mod:`repro.cpu.translate`).  Purely a
        #: throughput knob: results are bit-identical to interpretation
        #: (tests/test_translate_differential.py), so it is *not* part
        #: of the snapshot-store key.
        self.translate = bool(translate)
        self.trace_channels = tuple(trace_channels)
        self.trace_capacity = trace_capacity
        #: Optional :class:`~repro.injection.fabric.SnapshotStore`:
        #: post-boot golden state is thawed from / frozen into it so a
        #: kernel/workload pair boots once per store, not once per
        #: harness process.  Traced harnesses bypass the store (live
        #: trace objects are not serialized).
        self.snapshot_store = snapshot_store
        #: Real (non-store) kernel boots this harness has performed.
        self.boots = 0
        self._golden = {}
        self._workload_rank = {}
        self._golden_critical = None
        self._crash_overhead = None
        self._trace_domains = {}

    # -- golden runs --------------------------------------------------------

    def _store_key(self, workload):
        store = self.snapshot_store
        if store is None or self.trace:
            return None, None
        return store, store.key(self.kernel, workload,
                                recovery=self.recovery,
                                disk_retries=self.disk_retries)

    def golden(self, workload):
        run = self._golden.get(workload)
        if run is None:
            store, key = self._store_key(workload)
            if store is not None:
                run = store.load(key, self.kernel)
                if run is not None:
                    # Execution mode is not part of the store key
                    # (translated results are bit-identical); stamp the
                    # thawed snapshot so clones run in this harness's
                    # mode regardless of who froze it.
                    run.snapshot.translate = self.translate
                    self._golden[workload] = run
                    return run
            disk = build_standard_disk(self.binaries, workload)
            machine = Machine(self.kernel, disk, translate=self.translate)
            if self.recovery:
                # Arm the ladder pre-boot so the post-boot snapshot
                # (and every per-experiment clone) inherits it.
                machine.enable_recovery()
            if self.disk_retries:
                # Same pre-boot patching: the retry budget lives in a
                # kernel global, so clones inherit it through RAM.
                machine.enable_disk_retry(self.disk_retries)
            machine.run_until_console(BOOT_MARKER,
                                      max_cycles=10_000_000)
            self.boots += 1
            boot_cycles = machine.cpu.cycles
            snapshot = machine.snapshot()
            if self.trace:
                # Enabled *after* the snapshot so the golden trace and
                # every per-experiment clone's trace start from the
                # same machine state and align stamp-for-stamp.
                machine.enable_trace(channels=self.trace_channels,
                                     capacity=self.trace_capacity)
            coverage = set()
            result = machine.run(max_cycles=120_000_000,
                                 coverage=coverage)
            if result.status != "shutdown" or result.exit_code != 0:
                raise RuntimeError("golden run of %r failed: %r"
                                   % (workload, result))
            run = GoldenRun(workload, result, coverage, disk,
                            boot_cycles)
            run.snapshot = snapshot
            self._golden[workload] = run
            if store is not None:
                store.save(key, run)
        return run

    def golden_critical_files(self):
        """The files whose corruption means reformat (paper §7.1)."""
        if self._golden_critical is None:
            self._golden_critical = {
                "/bin/init": self.binaries["init"].image,
            }
        return self._golden_critical

    # -- workload assignment ---------------------------------------------------

    def workload_priority(self, function_name):
        """Workloads most likely to activate *function_name*, best first."""
        profile = self.profile.functions.get(function_name)
        ranked = []
        if profile is not None:
            ranked = [w for w, _ in profile.per_workload.most_common()]
        for fallback in ("syscall", "fstime", "context1", "spawn",
                         "looper", "pipe", "dhry", "hanoi"):
            if fallback not in ranked:
                ranked.append(fallback)
        return ranked

    def assign_workload(self, spec):
        """Pick the driving workload and decide expected activation.

        Each experiment runs exactly one benchmark program (the paper's
        Figure 3 loop).  The injection is driven by the workload that
        exercises the target *function* the most; whether the specific
        instruction is reached under that workload then determines
        activation — like the paper, a function being hot does not mean
        every path through it runs.
        """
        workload = self.workload_priority(spec.function)[0]
        spec.workload = workload
        return spec.instr_addr in self.golden(workload).coverage

    # -- latency calibration -------------------------------------------------------

    def crash_overhead(self):
        """Cycles between a fault and the crash handler's rdtsc.

        The paper measured and subtracted the switching time between the
        injector and the crash handler; we calibrate the same constant
        by forcing a known-instant crash (ud2 patched in at trigger
        time) and reading back the dump's timestamp.
        """
        if self._crash_overhead is None:
            store = None
            if self.snapshot_store is not None:
                store = self.snapshot_store
                cached = store.load_constant(self.kernel,
                                             "crash_overhead")
                if cached is not None:
                    self._crash_overhead = cached
                    return self._crash_overhead
            workload = "syscall"
            golden = self.golden(workload)
            target = self.kernel.symbols["do_system_call"]
            machine = Machine(self.kernel, golden.disk_image,
                              translate=self.translate)
            machine.run_until_console(BOOT_MARKER,
                                      max_cycles=10_000_000)
            self.boots += 1
            state = {}

            def callback(m):
                state["tsc"] = m.cpu.cycles
                m.write_byte(target, 0x0F)
                m.write_byte(target + 1, 0x0B)  # ud2

            machine.arm_breakpoint(target, callback)
            result = machine.run(max_cycles=golden.cycles * 2 + 10**6)
            if result.crash is None or "tsc" not in state:
                self._crash_overhead = 0
            else:
                self._crash_overhead = max(
                    0, result.crash.tsc - state["tsc"])
            if store is not None:
                store.save_constant(self.kernel, "crash_overhead",
                                    self._crash_overhead)
        return self._crash_overhead

    # -- single experiment ------------------------------------------------------------

    def run_spec(self, spec, grade=True):
        """Execute one injection experiment; returns InjectionResult.

        A spec carrying a ``fault_model`` dict is armed through its
        :class:`~repro.injection.faultmodels.FaultModel` instead of
        the default instruction-byte flip; everything else — workload
        assignment, watchdog, classification, severity grading — is
        shared, so every model's results are directly comparable.
        """
        model = None
        if getattr(spec, "fault_model", None) is not None:
            from repro.injection.faultmodels import resolve_model
            model = resolve_model(spec)
        covered = self.assign_workload(spec)
        base = dict(
            campaign=spec.campaign,
            function=spec.function,
            subsystem=spec.subsystem,
            addr=spec.instr_addr,
            byte_offset=spec.byte_offset,
            bit=spec.bit,
            mnemonic=spec.mnemonic,
            instr_class=getattr(spec, "instr_class", None),
            is_branch=getattr(spec, "is_branch", None),
            pred_class=getattr(spec, "pred_class", None),
            pred_traps=getattr(spec, "pred_traps", None),
            pred_latency_lo=getattr(spec, "pred_latency_lo", None),
            pred_latency_hi=getattr(spec, "pred_latency_hi", None),
            pred_subsystems=getattr(spec, "pred_subsystems", None),
            pred_seed=getattr(spec, "pred_seed", None),
            workload=spec.workload,
        )
        if model is not None:
            base["fault_model"] = model.kind
            base["fault_target"] = model.target_name(spec)
        if not covered:
            return InjectionResult(outcome=NOT_ACTIVATED, activated=False,
                                   **base)
        golden = self.golden(spec.workload)
        # Clone the booted machine instead of re-running the (identical,
        # fault-free) boot: same protocol, ~2x the campaign throughput.
        machine = golden.snapshot.clone()
        if self.trace:
            machine.enable_trace(channels=self.trace_channels,
                                 capacity=self.trace_capacity)
        state = {}

        if model is not None:
            model.arm(self, machine, spec, state)
        else:
            def callback(m):
                state["tsc"] = m.cpu.cycles
                state["instret"] = m.cpu.instret
                m.flip_bit(spec.target_byte_addr, spec.bit)

            machine.arm_breakpoint(spec.instr_addr, callback)
        budget = machine.cpu.cycles \
            + golden.workload_cycles * self.watchdog_factor \
            + self.watchdog_slack
        result = machine.run(max_cycles=budget)
        outcome = self._classify(spec, base, state, golden, result,
                                 grade)
        if self.trace and outcome.activated:
            self._attach_trace(outcome, golden, result, state)
        return outcome

    def _trace_domain(self, eip):
        """Memoized eip -> subsystem domain for trace diffing."""
        domain = self._trace_domains.get(eip)
        if domain is None:
            layout = self.kernel.layout or KernelLayout()
            if eip < layout.KERNEL_BASE:
                domain = "user"
            else:
                info = self.kernel.find_function(eip)
                domain = (info.subsystem if info else None) or "(kernel)"
            self._trace_domains[eip] = domain
        return domain

    def _attach_trace(self, res, golden, result, state):
        """Fill a result's ``trace_*`` fields from the run's traces."""
        golden_trace = golden.result.trace
        trace = result.trace
        if golden_trace is None or trace is None:
            return
        crash = result.crash
        diff = diff_traces(
            golden_trace, trace,
            activation_cycle=state.get("tsc"),
            activation_instret=state.get("instret"),
            crash_cycle=crash.tsc if crash is not None else None,
            subsystem_of=self._trace_domain)
        res.trace_diverged = diff.diverged
        res.trace_divergence_cycle = diff.divergence_cycle
        res.trace_divergence_eip = diff.divergence_eip
        res.trace_flip_to_divergence_cycles = \
            diff.flip_to_divergence_cycles
        res.trace_flip_to_divergence_instrs = \
            diff.flip_to_divergence_instrs
        res.trace_divergence_to_trap_cycles = \
            diff.divergence_to_trap_cycles
        res.trace_subsystems = list(diff.subsystems or ())
        res.trace_dropped_events = trace.dropped_events
        res.trace_complete = diff.complete

    def _classify(self, spec, base, state, golden, result, grade):
        activated = "tsc" in state
        activation_tsc = state.get("tsc")
        if not activated:
            # Deterministic coverage said it would execute; reaching here
            # means the run diverged before the trigger (should not
            # happen) — record it faithfully rather than guessing.
            return InjectionResult(outcome=NOT_ACTIVATED, activated=False,
                                   run_status=result.status, **base)
        fields = dict(base)
        fields.update(
            activated=True,
            activation_tsc=activation_tsc,
            run_status=result.status,
            run_cycles=result.cycles,
            exit_code=result.exit_code,
            console_tail=result.console[-160:],
        )
        crash = result.crash
        if self.recovery and result.continued_after_dump:
            return self._classify_recovered(fields, golden, result, grade)
        if result.status in ("halted", "watchdog", "triple_fault") \
                and crash is not None:
            cause = crash_cause_name(crash.vector, crash.cr2)
            info = self.kernel.find_function(crash.eip)
            latency = max(0, crash.tsc - activation_tsc
                          - self.crash_overhead())
            # Faults taken *inside* the crash handler write extra dump
            # records before the final one; record them instead of
            # silently dropping them (propagation analysis wants them).
            nested = []
            for record in result.crashes[:-1]:
                nested_info = self.kernel.find_function(record.eip)
                nested.append({
                    "vector": record.vector,
                    "eip": record.eip,
                    "cr2": record.cr2,
                    "subsystem": (nested_info.subsystem
                                  if nested_info else None),
                })
            fields.update(
                outcome=CRASH_DUMPED,
                crash_vector=crash.vector,
                crash_cause=cause,
                crash_cr2=crash.cr2,
                crash_eip=crash.eip,
                crash_function=info.name if info else None,
                crash_subsystem=info.subsystem if info else None,
                latency=latency,
                nested_crashes=nested or None,
            )
            if grade:
                severity, fs_status = grade_severity(
                    self.kernel, result.disk_image,
                    golden_files=self.golden_critical_files())
                fields.update(severity=severity, fs_status=fs_status)
            return InjectionResult(**fields)
        if result.status == "triple_fault":
            fields.update(outcome=CRASH_UNKNOWN, detail=result.detail)
            return InjectionResult(**fields)
        if result.status in ("halted", "watchdog"):
            # Wedged without managing a dump: the paper's
            # hang / unknown-crash bucket.
            outcome = CRASH_UNKNOWN if result.status == "halted" else HANG
            fields.update(outcome=outcome, detail=result.detail)
            return InjectionResult(**fields)
        # Run completed: compare against the golden run.
        same_console = result.console == golden.console
        same_exit = result.exit_code == golden.exit_code
        same_disk = result.disk_image == golden.final_disk
        if same_console and same_exit and same_disk:
            fields.update(outcome=NOT_MANIFESTED)
            return InjectionResult(**fields)
        fields.update(outcome=FAIL_SILENCE_VIOLATION)
        if grade and not same_disk:
            severity, fs_status = grade_severity(
                self.kernel, result.disk_image,
                golden_files=self.golden_critical_files())
            fields.update(fs_status=fs_status)
            # A run that "succeeded" but left an unbootable system is the
            # paper's case 1: no crash, yet reformat required.
            if severity != "normal":
                fields.update(severity=severity)
        return InjectionResult(**fields)

    def _classify_recovered(self, fields, golden, result, grade):
        """Classify a run whose kernel dumped and kept running.

        The primary crash fields come from the first recovered dump;
        the post-recovery behaviour decides the sub-class: a clean
        shutdown whose console still contains the golden run's output
        (in order; oops text is interleaved) with matching exit code
        and disk is *workload-correct*; a clean shutdown that diverged
        is a *fail-silence violation after recovery*; a run that
        recovered once and then halted/hung/triple-faulted anyway is a
        *later crash*.  Every recovered run gets an fsck severity
        grade: a recovered oops can still corrupt the filesystem.
        """
        primary = result.recovered_dumps[0]
        info = self.kernel.find_function(primary.eip)
        latency = max(0, primary.tsc - fields["activation_tsc"]
                      - self.crash_overhead())
        nested = []
        for record in result.crashes:
            if record is primary:
                continue
            nested_info = self.kernel.find_function(record.eip)
            nested.append({
                "vector": record.vector,
                "eip": record.eip,
                "cr2": record.cr2,
                "recovered": record.recovered,
                "subsystem": (nested_info.subsystem
                              if nested_info else None),
            })
        if result.status == "shutdown":
            same_exit = result.exit_code == golden.exit_code
            same_disk = result.disk_image == golden.final_disk
            if same_exit and same_disk and _console_subsumes(
                    golden.console, result.console):
                sub = RECOVERED_WORKLOAD_CORRECT
            else:
                sub = RECOVERED_FSV
        else:
            sub = RECOVERED_LATER_CRASH
        fields.update(
            outcome=CRASH_RECOVERED,
            recovered_class=sub,
            crash_vector=primary.vector,
            crash_cause=crash_cause_name(primary.vector, primary.cr2),
            crash_cr2=primary.cr2,
            crash_eip=primary.eip,
            crash_function=info.name if info else None,
            crash_subsystem=info.subsystem if info else None,
            latency=latency,
            nested_crashes=nested or None,
            detail=result.detail,
        )
        if grade:
            severity, fs_status = grade_severity(
                self.kernel, result.disk_image,
                golden_files=self.golden_critical_files())
            fields.update(severity=severity, fs_status=fs_status)
        return InjectionResult(**fields)

    # -- campaign loop ------------------------------------------------------------------

    def run_campaign(self, campaign_key, functions=None, seed=2003,
                     byte_stride=1, max_per_function=None, grade=True,
                     progress=None, max_specs=None, jobs=1,
                     timeout=None, retries=2, max_worker_failures=3,
                     journal_path=None, resume=False,
                     static_verdicts=False, delta_from=None,
                     delta_base_kernel=None, equivalence=False,
                     prune_dead=False, equiv_pilots=2,
                     equiv_audit=0.15):
        """Plan and execute a whole campaign; returns CampaignResults.

        Execution goes through the fault-tolerant engine
        (:mod:`repro.injection.engine`): *jobs* > 1 runs experiments in
        process-isolated workers with per-experiment watchdogs and
        retry; *journal_path* appends every completed experiment to a
        JSONL journal and *resume* restarts an interrupted campaign
        from it.  Specs are planned deterministically up front, so
        serial and parallel runs of the same seed yield identical
        results; only ``meta["engine"]`` (execution telemetry) may
        differ between modes.

        *static_verdicts* enriches every spec (and hence every result)
        with the symbolic error-propagation verdict.  Enrichment does
        not enter the journal fingerprint, so enriched runs resume
        cleanly over journals written without it and vice versa.

        *delta_from* switches to an incremental delta campaign
        (:mod:`repro.staticanalysis.delta`): a prior campaign journal
        run against *delta_base_kernel* whose records are carried
        forward wherever the static differ proves them bit-identical,
        leaving only the impacted remainder to execute.

        *equivalence* switches to an equivalence-pruned pilot campaign
        (:mod:`repro.staticanalysis.equivalence`): sites are grouped
        by static class fingerprint, only *equiv_pilots* seeded pilots
        per class plus an *equiv_audit* fraction of seeded audit
        members execute, and every remaining member's result is
        extrapolated from its class pilot with journaled provenance.
        *prune_dead* composes: statically dead sites are dropped
        before partitioning.
        """
        if equivalence:
            if delta_from is not None:
                raise ValueError(
                    "equivalence and delta_from are mutually "
                    "exclusive; run the delta first, then use its "
                    "journal as an equivalence baseline")
            if static_verdicts:
                raise ValueError(
                    "equivalence campaigns cannot enrich specs: "
                    "extrapolated records would clone stale pilot "
                    "verdict enrichment")
            from repro.staticanalysis.equivalence import \
                run_equiv_campaign
            return run_equiv_campaign(
                self, campaign_key, seed=seed,
                byte_stride=byte_stride, functions=functions,
                max_per_function=max_per_function,
                max_specs=max_specs, grade=grade, progress=progress,
                jobs=jobs, timeout=timeout, retries=retries,
                max_worker_failures=max_worker_failures,
                journal_path=journal_path, resume=resume,
                pilots_per_class=equiv_pilots,
                audit_fraction=equiv_audit, prune_dead=prune_dead)
        if delta_from is not None:
            if delta_base_kernel is None:
                raise ValueError(
                    "delta_from requires delta_base_kernel (the "
                    "kernel image the source journal ran against)")
            if static_verdicts:
                raise ValueError(
                    "delta campaigns cannot enrich specs: carried "
                    "records would mix with enriched live ones")
            from repro.staticanalysis.delta import run_delta_campaign
            return run_delta_campaign(
                self, delta_base_kernel, delta_from, campaign_key,
                seed=seed, byte_stride=byte_stride,
                functions=functions,
                max_per_function=max_per_function,
                max_specs=max_specs, grade=grade, progress=progress,
                jobs=jobs, timeout=timeout, retries=retries,
                max_worker_failures=max_worker_failures,
                journal_path=journal_path)
        functions, specs = self.plan_specs(
            campaign_key, functions=functions, seed=seed,
            byte_stride=byte_stride, max_per_function=max_per_function,
            max_specs=max_specs, static_verdicts=static_verdicts,
            prune_dead=prune_dead)
        config = EngineConfig(jobs=jobs, timeout=timeout,
                              retries=retries,
                              max_worker_failures=max_worker_failures,
                              journal_path=journal_path, resume=resume)
        engine = CampaignEngine(self, config)
        results, engine_meta = engine.execute(
            campaign_key, specs, seed=seed, byte_stride=byte_stride,
            grade=grade, progress=progress)
        meta = {
            "campaign": campaign_key,
            "functions": sorted({f.name for f in functions}),
            "n_functions": len(functions),
            "seed": seed,
            "byte_stride": byte_stride,
            "injected": len(specs),
            "fingerprint": plan_fingerprint(campaign_key, specs, seed,
                                            byte_stride),
            "engine": engine_meta,
        }
        return CampaignResults(campaign_key, results, meta)

    def plan_specs(self, campaign_key, functions=None, seed=2003,
                   byte_stride=1, max_per_function=None,
                   max_specs=None, static_verdicts=False,
                   prune_dead=False):
        """Deterministic planning half of :meth:`run_campaign`.

        Returns ``(functions, specs)``.  Split out so the campaign
        fabric (:mod:`repro.injection.fabric`) can re-plan the exact
        spec list on any host and carve shards out of it without
        executing anything.
        """
        if functions is None:
            functions = select_targets(self.kernel, self.profile,
                                       campaign_key)
        specs = plan_campaign(self.kernel, campaign_key, functions,
                              seed=seed, byte_stride=byte_stride,
                              max_per_function=max_per_function,
                              static_verdicts=static_verdicts,
                              prune_dead=prune_dead)
        if max_specs is not None:
            specs = specs[:max_specs]
        return functions, specs
