"""Kernel build: compile + link the MinC subsystems into a boot image."""

from repro.cc.compiler import compile_unit
from repro.isa.assembler import assemble
from repro.kernel.layout import PAGE_SIZE, KernelLayout
from repro.kernel.source import arch_src, defs_src, drivers_src, fs_src, \
    ipc_src, kernel_src, lib_src, mm_src, net_src

# Symbols defined by the hand-written entry stubs (arch assembly).
ASM_SYMBOLS = (
    "_start",
    "divide_error", "debug_trap", "nmi_trap", "int3_trap",
    "overflow_trap", "bounds_trap", "invalid_op_trap", "device_na_trap",
    "double_fault_trap", "coproc_trap", "invalid_tss_trap",
    "segment_np_trap", "stack_fault_trap", "gpf_trap", "page_fault_trap",
    "common_trap", "timer_interrupt", "system_call", "__switch_to",
    "ret_from_fork", "enter_user_mode", "__copy_user",
    "__ex_table", "__ex_table_end",
)

#: Exception-table ranges: (covered start, covered end, landing pad).
#: Each names labels defined by the arch assembly stubs; the builder
#: emits the table into the data section so search_exception_table()
#: can walk it at fault time.
EX_TABLE_ENTRIES = (
    ("__copy_user", "__copy_user_end", "__copy_user_fault"),
)

# (unit name, subsystem, module) in link order.
KERNEL_UNITS = (
    ("lib/string.c", "lib", lib_src),
    ("drivers/char+block.c", "drivers", drivers_src),
    ("arch/i386/traps.c", "arch", arch_src),
    ("mm/memory.c", "mm", mm_src),
    ("fs/vfs+ext2.c", "fs", fs_src),
    ("kernel/sched+fork.c", "kernel", kernel_src),
    ("ipc/sem.c", "ipc", ipc_src),
    ("net/loopback.c", "net", net_src),
)


class KernelImage:
    """A built kernel: bytes plus symbol/function metadata."""

    def __init__(self, code, base, symbols, functions, layout,
                 source_lines):
        self.code = code
        self.base = base                # virtual load address
        self.symbols = symbols          # name -> virtual address
        self.functions = functions      # FuncInfo list (addr ranges)
        self.layout = layout
        self.source_lines = source_lines  # subsystem -> MinC LoC
        self._by_addr = sorted(functions, key=lambda f: f.start)

    def symbol(self, name):
        return self.symbols[name]

    def find_function(self, addr):
        """Map a virtual address to its FuncInfo (None if out of text)."""
        lo = 0
        hi = len(self._by_addr)
        while lo < hi:
            mid = (lo + hi) // 2
            info = self._by_addr[mid]
            if addr < info.start:
                hi = mid
            elif addr >= info.end:
                lo = mid + 1
            else:
                return info
        return None

    def subsystem_of(self, addr):
        info = self.find_function(addr)
        return info.subsystem if info is not None else None

    def functions_in(self, subsystem):
        return [f for f in self.functions if f.subsystem == subsystem]


def kernel_source_inventory():
    """MinC line counts per subsystem (the paper's Figure 1 analogue)."""
    counts = {}
    for _, subsystem, module in KERNEL_UNITS:
        lines = sum(1 for line in module.SOURCE.splitlines()
                    if line.strip())
        counts[subsystem] = counts.get(subsystem, 0) + lines
    asm_lines = sum(1 for line in arch_src.ASM_STUBS.splitlines()
                    if line.strip() and not line.strip().startswith(";"))
    counts["arch"] = counts.get("arch", 0) + asm_lines
    return counts


def apply_source_edits(source, unit_name, edits):
    """Apply the ``(unit, old, new)`` edits that target *unit_name*.

    ``unit`` selects a compilation unit by substring of its name
    (``"arch"`` matches ``"arch/i386/traps.c"``); an edit whose ``old``
    text is absent from the selected unit raises, so a stale edit can
    never silently build the unedited kernel.
    """
    for unit, old, new in edits:
        if unit not in unit_name:
            continue
        if old not in source:
            raise ValueError("source edit %r not found in unit %s"
                             % (old, unit_name))
        source = source.replace(old, new)
    return source


def build_kernel(layout=None, source_edits=None):
    """Compile, link, and assemble the kernel.

    Returns a :class:`KernelImage` loaded (virtually) at
    ``layout.KERNEL_TEXT``; the machine layer copies ``image.code`` to
    physical ``layout.KERNEL_PHYS``.

    ``source_edits`` is an optional sequence of ``(unit, old, new)``
    textual replacements applied to the matching compilation units
    before compiling — the rebuild hook used by the delta-campaign
    machinery (:mod:`repro.staticanalysis.delta`) to produce kernel
    variants.  Every edit must name a unit that exists and text that
    occurs in it.
    """
    if layout is None:
        layout = KernelLayout()
    edits = list(source_edits or ())
    if edits:
        known = [name for name, _, _ in KERNEL_UNITS]
        for unit, _, _ in edits:
            if not any(unit in name for name in known):
                raise ValueError("source edit names unknown unit %r "
                                 "(have: %s)" % (unit, ", ".join(known)))
    sources = [("include/generated.h", "lib", layout.minc_header()),
               ("include/defs.h", "lib", defs_src.SOURCE)]
    for unit_name, subsystem, module in KERNEL_UNITS:
        text = module.SOURCE
        if edits:
            text = apply_source_edits(text, unit_name, edits)
        sources.append((unit_name, subsystem, text))
    unit = compile_unit(sources, externs=ASM_SYMBOLS)
    stubs = arch_src.ASM_STUBS % {
        "boot_stack_top": layout.BOOT_STACK_TOP,
        "user_cs": layout.USER_CS,
        "user_ds": layout.USER_DS,
    }
    ex_table = "\n.align 4\n.global __ex_table\n"
    for start, end, landing in EX_TABLE_ENTRIES:
        ex_table += ".long %s, %s, %s\n" % (start, end, landing)
    ex_table += ".global __ex_table_end\n.long 0\n"
    full_asm = (
        stubs
        + "\n"
        + unit.text
        + "\n.align %d\n" % PAGE_SIZE   # keep data off the text pages
        + ".global __data_start\n"
        + unit.data
        + ex_table
        + "\n.align 4\n.global __kernel_end\n.long 0\n"
    )
    program = assemble(full_asm, base=layout.KERNEL_TEXT)
    return KernelImage(
        code=program.code,
        base=layout.KERNEL_TEXT,
        symbols=program.symbols,
        functions=program.functions,
        layout=layout,
        source_lines=kernel_source_inventory(),
    )
