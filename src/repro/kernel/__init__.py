"""The simulated kernel: a mini-OS in MinC with Linux-like structure.

Subsystem layout mirrors the paper's Figure 1 / Table 1 decomposition:
``arch`` (trap entry, page-fault handling, context-switch and user-copy
primitives), ``kernel`` (scheduler, fork/exit/wait, timers, printk,
panic), ``mm`` (page allocator, COW, page cache, ``do_generic_file_read``,
``do_wp_page``, ``zap_page_range``), ``fs`` (VFS path walk, buffer cache,
ext2-like disk filesystem, pipes, exec), plus the small ``drivers``,
``ipc``, ``lib`` and ``net`` modules that appear in the paper's profiling
table but are not injection targets.
"""

from repro.kernel.layout import KernelLayout
from repro.kernel.build import KernelImage, build_kernel, kernel_source_inventory

__all__ = ["KernelLayout", "KernelImage", "build_kernel",
           "kernel_source_inventory"]
