"""Kernel ``net/`` subsystem — loopback-only, profiled but not injected.

The paper explicitly excluded ``net`` from injection but it appears in
the profiling table; a loopback echo keeps it minimally alive.
"""

SOURCE = r"""
int loopback_buf[64];       /* one 256-byte loopback frame */
int loopback_len = 0;

/* Internet checksum over a byte range. */
int ip_compute_csum(buf, len) {
    int sum = 0;
    int i = 0;
    while (i + 1 < len) {
        sum += ldb(buf + i) | (ldb(buf + i + 1) << 8);
        i += 2;
    }
    if (i < len)
        sum += ldb(buf + i);
    while (ugt(sum, 0xFFFF))
        sum = (sum & 0xFFFF) + (sum >> 16);
    return (~sum) & 0xFFFF;
}

int loopback_xmit(buf, len) {
    if (ugt(len, 256))
        len = 256;
    memcpy(loopback_buf, buf, len);
    loopback_len = len;
    return len;
}

int netif_rx(buf, maxlen) {
    int n = loopback_len;
    if (ugt(n, maxlen))
        n = maxlen;
    memcpy(buf, loopback_buf, n);
    loopback_len = 0;
    return n;
}

/* sys_net_ping(): echo a word through the loopback with a checksum. */
int sys_net_ping(value) {
    int frame[4];
    int echo[4];
    frame[0] = value;
    frame[1] = ip_compute_csum(frame, 4);
    loopback_xmit(frame, 8);
    netif_rx(echo, 8);
    if (echo[0] != value)
        return -EIO;
    return echo[1];
}
"""
