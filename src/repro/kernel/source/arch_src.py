"""Kernel ``arch/`` subsystem (i386-equivalent).

Hand-written entry stubs (trap vectors, syscall entry, context switch,
ret_from_fork, user-mode entry) plus the MinC fault-handling core:
``do_page_fault`` (the paper's single most crash-prone function — 70% of
arch-subsystem crashes), ``die``/oops with the exact message strings the
paper categorizes crashes by, the LKCD-style ``crash_dump`` handler, and
the user-copy primitives.

``ASM_STUBS`` is raw assembly included verbatim by the kernel builder;
``SOURCE`` is MinC.
"""

# Hand-written assembly, attributed to arch like Linux's entry.S.
# %(...)s fields are filled by the kernel builder from KernelLayout.
ASM_STUBS = r"""
.func _start arch
_start:
    mov esp, %(boot_stack_top)d
    call start_kernel
    cli
    hlt
.endfunc

; Exception stubs. CPU pushes an error code only for vectors
; 8/10/11/12/13/14; the others push a fake 0 to unify the frame:
;   [pusha regs][vector][errcode][eip][cs][eflags][esp][ss]

.func divide_error arch
divide_error:
    push 0
    push 0
    jmp common_trap
.endfunc

.func debug_trap arch
debug_trap:
    push 0
    push 1
    jmp common_trap
.endfunc

.func nmi_trap arch
nmi_trap:
    push 0
    push 2
    jmp common_trap
.endfunc

.func int3_trap arch
int3_trap:
    push 0
    push 3
    jmp common_trap
.endfunc

.func overflow_trap arch
overflow_trap:
    push 0
    push 4
    jmp common_trap
.endfunc

.func bounds_trap arch
bounds_trap:
    push 0
    push 5
    jmp common_trap
.endfunc

.func invalid_op_trap arch
invalid_op_trap:
    push 0
    push 6
    jmp common_trap
.endfunc

.func device_na_trap arch
device_na_trap:
    push 0
    push 7
    jmp common_trap
.endfunc

.func double_fault_trap arch
double_fault_trap:
    push 8
    jmp common_trap
.endfunc

.func coproc_trap arch
coproc_trap:
    push 0
    push 9
    jmp common_trap
.endfunc

.func invalid_tss_trap arch
invalid_tss_trap:
    push 10
    jmp common_trap
.endfunc

.func segment_np_trap arch
segment_np_trap:
    push 11
    jmp common_trap
.endfunc

.func stack_fault_trap arch
stack_fault_trap:
    push 12
    jmp common_trap
.endfunc

.func gpf_trap arch
gpf_trap:
    push 13
    jmp common_trap
.endfunc

.func page_fault_trap arch
page_fault_trap:
    push 14
    jmp common_trap
.endfunc

; Frame at this point: [vector][errcode][eip][cs][eflags][esp][ss]
.func common_trap arch
common_trap:
    pusha
    push esp
    call do_trap
    add esp, 4
    popa
    add esp, 8
    iret
.endfunc

.func timer_interrupt arch
timer_interrupt:
    pusha
    push esp
    call do_IRQ
    add esp, 4
    popa
    iret
.endfunc

.func system_call arch
system_call:
    pusha
    push esp
    call do_system_call
    mov ecx, eax
    add esp, 4
    mov [esp+28], ecx      ; overwrite saved eax with the return value
    popa
    iret
.endfunc

; __switch_to(prev, next): switch kernel stacks. The callee-saved
; quadruple plus the return address form the switch frame.
.func __switch_to arch
__switch_to:
    mov eax, [esp+4]
    mov ecx, [esp+8]
    push ebp
    push ebx
    push esi
    push edi
    mov [eax+16], esp      ; prev->t_esp   (T_ESP = word 4)
    mov esp, [ecx+16]      ; next->t_esp
    pop edi
    pop esi
    pop ebx
    pop ebp
    ret
.endfunc

.func ret_from_fork arch
ret_from_fork:
    popa
    iret
.endfunc

; enter_user_mode(eip, esp): first descent into ring 3.
.func enter_user_mode arch
enter_user_mode:
    mov eax, [esp+4]
    mov ecx, [esp+8]
    mov edx, %(user_ds)d
    mov ds, edx
    mov es, edx
    push %(user_ds)d
    push ecx
    push 0x202             ; eflags: IF set
    push %(user_cs)d
    push eax
    iret
.endfunc

; __copy_user(dst, src, len): the guarded user-copy primitive.  Every
; instruction between __copy_user and __copy_user_end is covered by an
; exception-table entry (emitted by the kernel builder) whose landing
; pad is __copy_user_fault: a kernel-mode fault that cannot be resolved
; by handle_mm_fault() resumes there and the caller sees -EFAULT
; instead of an oops -- Linux's uaccess fixup mechanism.  The stack
; depth is constant (one saved register) so the landing pad can unwind
; it unconditionally.
.func __copy_user arch
__copy_user:
    push ebx
    mov eax, [esp+8]       ; dst
    mov edx, [esp+12]      ; src
    mov ecx, [esp+16]      ; len
__copy_user_loop:
    cmp ecx, 0
    je __copy_user_done
    movzx ebx, byte [edx]  ; may fault: copy_from_user
    movb [eax], bl         ; may fault: copy_to_user
    add eax, 1
    add edx, 1
    sub ecx, 1
    jmp __copy_user_loop
__copy_user_done:
    pop ebx
    mov eax, 0
    ret
__copy_user_end:
__copy_user_fault:
    pop ebx
    mov eax, -14           ; -EFAULT
    ret
.endfunc
"""

SOURCE = r"""
/* ---- IDT ------------------------------------------------------------ */

int idt_table[512];         /* 256 gates x (handler, flags) */
int die_in_progress = 0;
int last_fault_addr = 0;
int trap_entry_tsc = 0;     /* cycle counter at exception entry */
int panic_eip = 0;          /* caller of panic(), for the crash dump */

/* ---- recovery configuration ----------------------------------------- */

/*
 * The recovery ladder (fixup -> oops-kill-continue -> soft-lockup
 * recovery -> panic/halt) is armed by the host patching
 * recovery_enabled to 1 before boot.  The default 0 preserves the
 * fail-stop kernel exactly: every new code path below is gated on it.
 */
int recovery_enabled = 0;
int panic_on_oops = 0;      /* consulted only when recovery is enabled */
int in_interrupt = 0;       /* hardware-IRQ nesting depth */
int softlockup_last = 0;    /* jiffies at the last sign of progress */

/* ---- exception fixup table ------------------------------------------ */

/*
 * __ex_table holds (start, end, landing) triples emitted by the kernel
 * builder for the guarded uaccess primitives.  A kernel-mode fault
 * whose EIP falls in [start, end) resumes at *landing* instead of
 * oopsing.
 */
int search_exception_table(eip) {
    int p = __ex_table;
    while (ult(p, __ex_table_end)) {
        if (uge(eip, ld(p)) && ult(eip, ld(p + 4)))
            return ld(p + 8);
        p = p + 12;
    }
    return 0;
}

int set_gate(vector, handler, user_ok) {
    idt_table[vector * 2] = handler;
    idt_table[vector * 2 + 1] = user_ok ? 3 : 1;
    return 0;
}

int trap_init() {
    int v;
    for (v = 0; v < 256; v++)
        set_gate(v, gpf_trap, 0);
    set_gate(0, divide_error, 0);
    set_gate(1, debug_trap, 0);
    set_gate(2, nmi_trap, 0);
    set_gate(3, int3_trap, 1);
    set_gate(4, overflow_trap, 1);
    set_gate(5, bounds_trap, 1);
    set_gate(6, invalid_op_trap, 0);
    set_gate(7, device_na_trap, 0);
    set_gate(8, double_fault_trap, 0);
    set_gate(9, coproc_trap, 0);
    set_gate(10, invalid_tss_trap, 0);
    set_gate(11, segment_np_trap, 0);
    set_gate(12, stack_fault_trap, 0);
    set_gate(13, gpf_trap, 0);
    set_gate(14, page_fault_trap, 0);
    set_gate(32, timer_interrupt, 0);
    set_gate(128, system_call, 1);
    set_idt(idt_table);
    return 0;
}

int setup_arch() {
    boot_pgdir_phys = read_cr3();
    return 0;
}

/* ---- crash dump (LKCD stand-in) ----------------------------------------- */

/*
 * Dump record layout (words), parsed by the host harness:
 *   [0] vector  [1] error code  [2] cr2  [3] eip  [4] cs  [5] eflags
 *   [6..13] edi esi ebp esp ebx edx ecx eax  [14] tsc  [15] pid
 *   [16] recovered (0 fatal, 1 oops-kill-continue, 2 soft lockup)
 */
int crash_dump(frame, recovered) {
    int i;
    int task = current;
    dump_word(frame[8]);
    dump_word(frame[9]);
    dump_word(read_cr2());
    dump_word(frame[10]);
    dump_word(frame[11]);
    dump_word(frame[12]);
    for (i = 0; i < 8; i++)
        dump_word(frame[i]);
    /* Timestamp of the *fault*, captured at do_trap entry: keeps the
     * crash-latency measurement free of oops-printk time (the paper
     * subtracted the equivalent switching overhead). */
    dump_word(trap_entry_tsc);
    dump_word(task ? task[T_PID] : -1);
    dump_word(recovered);
    dump_commit();
    return 0;
}

/* Dump without a trap frame (panic paths). */
int crash_dump_simple(code) {
    int i;
    int site = panic_eip ? panic_eip : ret_addr();
    dump_word(code);
    dump_word(0);
    dump_word(read_cr2());
    dump_word(site);
    dump_word(KERNEL_CS_SEL);
    dump_word(0);
    for (i = 0; i < 8; i++)
        dump_word(0);
    dump_word(rdtsc_lo());
    dump_word(-1);
    dump_word(0);
    dump_commit();
    return 0;
}

/* Dump from a do_IRQ frame ([0..7] pusha, [8] eip, [9] cs,
 * [10] eflags): the soft-lockup watchdog's view of the wedged task. */
int softlockup_dump(frame) {
    int i;
    int task = current;
    dump_word(253);             /* pseudo-vector: soft lockup */
    dump_word(0);
    dump_word(read_cr2());
    dump_word(frame[8]);
    dump_word(frame[9]);
    dump_word(frame[10]);
    for (i = 0; i < 8; i++)
        dump_word(frame[i]);
    dump_word(rdtsc_lo());
    dump_word(task ? task[T_PID] : -1);
    dump_word(2);
    dump_commit();
    return 0;
}

/* ---- oops ------------------------------------------------------------------ */

/*
 * Can this oops be survived by killing the offending task?  Mirrors
 * Linux's die(): no recovery from interrupt context, during a panic,
 * with panic_on_oops set, for the idle task, for init (killing init is
 * fail-stop, as in the real kernel), or when a previous recovery of
 * the same task already failed (T_OOPS guard breaks do_exit loops).
 */
int oops_recoverable(frame) {
    int task = current;
    if (!recovery_enabled)
        return 0;
    if (panic_on_oops)
        return 0;
    if (panic_in_progress)
        return 0;
    if (in_interrupt)
        return 0;
    if (frame[11] != KERNEL_CS_SEL)
        return 0;
    if (!task)
        return 0;
    if (task == task_ptr(0))
        return 0;
    if (task[T_PID] < 2)
        return 0;
    if (task[T_OOPS])
        return 0;
    if (task[T_STATE] != TASK_RUNNING)
        return 0;
    return 1;
}

/* Kill-and-continue tail of a recovered oops: never returns. */
int oops_exit() {
    int task = current;
    printk("Oops: recovered, killing pid ");
    printk_dec(task[T_PID]);
    printk("\n");
    task[T_OOPS] = 1;
    die_in_progress = 0;
    softlockup_last = jiffies;
    do_exit(128 + SIGKILL);
    return 0;
}

int die(frame, msg) {
    int recover;
    cli();
    if (die_in_progress) {
        for (;;)
            halt();
    }
    die_in_progress = 1;
    /* Decide recoverability before dumping so the record carries it. */
    recover = oops_recoverable(frame);
    crash_dump(frame, recover);  /* dump first: printk itself might fault */
    printk(msg);
    printk("\n printing eip:\n");
    printk_hex(frame[10]);
    printk("\nOops: 0000\n");
    printk("CPU:    0\nEIP:    0010:[<");
    printk_hex(frame[10]);
    printk(">]\nEFLAGS: ");
    printk_hex(frame[12]);
    printk("\neax: ");
    printk_hex(frame[7]);
    printk("   ebx: ");
    printk_hex(frame[4]);
    printk("   ecx: ");
    printk_hex(frame[6]);
    printk("   edx: ");
    printk_hex(frame[5]);
    printk("\n");
    if (recover)
        oops_exit();        /* kills the task and reschedules */
    for (;;)
        halt();
    return 0;
}

/* ---- page-fault handling ------------------------------------------------------ */

/*
 * do_page_fault(): 70% of the paper's arch-subsystem crashes were
 * injections into this function.  Kernel-mode faults oops with the
 * paper's two canonical messages; user-mode faults are resolved by
 * handle_mm_fault() or kill the offending process.
 */
int do_page_fault(frame) {
    int addr = read_cr2();
    int errcode = frame[9];
    int task = current;
    int from_user = errcode & 4;
    int write = (errcode & 2) ? 1 : 0;
    int fixup;
    last_fault_addr = addr;
    if (debug_level)
        klog("page_fault\n");
    if (from_user) {
        if (handle_mm_fault(task, addr, write) == 0)
            return 0;
        printk("segfault at ");
        printk_hex(addr);
        printk(" eip ");
        printk_hex(frame[10]);
        printk(" err ");
        printk_dec(errcode);
        printk(" pid ");
        printk_dec(task[T_PID]);
        printk("\n");
        do_exit(139);
        return 0;
    }
    /* Kernel-mode fault on a *user* address: the uaccess path (WP=1).
     * Resolve COW/demand pages and restart the faulting instruction. */
    if (ult(addr, KERNEL_BASE) && uge(addr, USER_MIN) && task
            && task[T_PID] > 0) {
        if (handle_mm_fault(task, addr, write) == 0)
            return 0;
        /* Unresolvable user address under a guarded copy: land on the
         * fixup and the caller sees -EFAULT (no kill, no oops). */
        if (recovery_enabled) {
            fixup = search_exception_table(frame[10]);
            if (fixup) {
                frame[10] = fixup;
                return 0;
            }
        }
        printk("bad uaccess at ");
        printk_hex(addr);
        printk(" pid ");
        printk_dec(task[T_PID]);
        printk("\n");
        do_exit(139);
        return 0;
    }
    /* A fault on a *kernel* address inside a guarded copy is still
     * contained: corrupt length/pointer arguments must not oops. */
    if (recovery_enabled) {
        fixup = search_exception_table(frame[10]);
        if (fixup) {
            frame[10] = fixup;
            return 0;
        }
    }
    /* Kernel-mode fault: an oops, categorized exactly as the paper does. */
    if (ult(addr, PAGE_SIZE))
        oops_null_pointer(frame, addr);
    else
        oops_paging_request(frame, addr);
    return 0;
}

int oops_null_pointer(frame, addr) {
    printk("Unable to handle kernel NULL pointer dereference at virtual address ");
    printk_hex(addr);
    die(frame, "");
    return 0;
}

int oops_paging_request(frame, addr) {
    printk("Unable to handle kernel paging request at virtual address ");
    printk_hex(addr);
    die(frame, "");
    return 0;
}

/* ---- generic trap dispatch -------------------------------------------------------- */

int do_trap(frame) {
    int vector = frame[8];
    int from_user = frame[11] == USER_CS_SEL;
    int task = current;
    trap_entry_tsc = rdtsc_lo();
    if (frame[9] & 8)
        BUG();              /* reserved error-code bit is never set */
    if (vector == 14) {
        do_page_fault(frame);
        if (need_resched && from_user)
            schedule();
        return 0;
    }
    if (from_user) {
        /* User-mode exception: fatal signal, like the default sigaction. */
        printk("pid ");
        printk_dec(task[T_PID]);
        printk(" trap ");
        printk_dec(vector);
        printk("\n");
        if (vector == 0)
            do_exit(128 + SIGFPE);
        else if (vector == 6)
            do_exit(128 + SIGILL);
        else if (vector == 3 || vector == 1)
            do_exit(128 + SIGTRAP);
        else
            do_exit(128 + SIGSEGV);
        return 0;
    }
    /* Kernel-mode exception: oops. */
    if (vector == 0)
        die(frame, "divide error");
    else if (vector == 3)
        die(frame, "int3");
    else if (vector == 4)
        die(frame, "overflow");
    else if (vector == 5)
        die(frame, "bounds");
    else if (vector == 6)
        die(frame, "kernel BUG: invalid opcode");
    else if (vector == 8)
        die(frame, "double fault");
    else if (vector == 10)
        die(frame, "invalid TSS");
    else if (vector == 11)
        die(frame, "segment not present");
    else if (vector == 12)
        die(frame, "stack exception");
    else if (vector == 13)
        die(frame, "general protection fault");
    else
        die(frame, "unknown exception");
    return 0;
}

/* ---- user access -------------------------------------------------------------------- */

/* A user range is acceptable when it lies fully below the kernel. */
int access_ok(addr, len) {
    if (ult(addr, USER_MIN))
        return 0;
    if (uge(addr + len, KERNEL_BASE))
        return 0;
    if (ult(addr + len, addr))
        return 0;           /* wrap */
    return 1;
}

/* Pre-fault a user range so kernel-mode access cannot oops. */
int user_prefault(addr, len, write) {
    int task = current;
    int a = addr & ~4095;
    int ptep;
    int pte;
    while (ult(a, addr + len)) {
        ptep = pte_ptr(task[T_PGDIR], a);
        pte = ptep ? ld(ptep) : 0;
        if (!(pte & PTE_P) || (write && !(pte & PTE_W))) {
            if (handle_mm_fault(task, a, write) < 0)
                return -EFAULT;
        }
        a += PAGE_SIZE;
    }
    return 0;
}

/* Both user copies go through the fixup-covered __copy_user leaf: a
 * fault that handle_mm_fault() cannot resolve returns -EFAULT here
 * instead of killing the task (recovery kernels) or oopsing. */
int copy_to_user(dst, src, len) {
    if (!access_ok(dst, len))
        return -EFAULT;
    if (debug_level)
        klog("copy_to_user\n");
    return __copy_user(dst, src, len);
}

int copy_from_user(dst, src, len) {
    if (!access_ok(src, len))
        return -EFAULT;
    return __copy_user(dst, src, len);
}

int put_user(addr, value) {
    if (!access_ok(addr, 4))
        return -EFAULT;
    st(addr, value);
    return 0;
}

int put_user_byte(addr, value) {
    if (!access_ok(addr, 1))
        return -EFAULT;
    stb(addr, value);
    return 0;
}

int strncpy_from_user(dst, src, maxlen) {
    int i = 0;
    int c;
    if (!access_ok(src, 1))
        return -EFAULT;
    while (i < maxlen) {
        if (!access_ok(src + i, 1))
            return -EFAULT;
        c = ldb(src + i);
        stb(dst + i, c);
        if (!c)
            return i;
        i++;
    }
    stb(dst + maxlen - 1, 0);
    return maxlen - 1;
}
"""
