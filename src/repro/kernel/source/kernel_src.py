"""Kernel ``kernel/`` subsystem.

Scheduler (``schedule``/``reschedule_idle`` following the 2.4 shapes the
paper quotes in §8), process lifecycle (``do_fork``/``do_exit``/
``sys_wait``), timers, ``printk``, ``panic``, the system-call dispatch
table, and ``start_kernel``.
"""

SOURCE = r"""
/* ---- globals ----------------------------------------------------------- */

int task_structs[192];      /* NR_TASKS * TASK_WORDS */
int current = 0;            /* pointer to the running task_struct */
int jiffies = 0;
int need_resched = 0;
int next_pid = 2;
int boot_pgdir_phys = 0;    /* patched in by setup_arch() */
int smp_num_cpus = 1;
int panic_in_progress = 0;

/* ---- printk / kernel log ring ------------------------------------------- */

int log_buf[256];           /* 1 KiB in-memory log ring (dmesg-style) */
int log_pos = 0;
int debug_level = 0;        /* KERN_DEBUG messages stay in the ring */

int printk(s) {
    klog(s);
    return con_write(s, strlen(s));
}

/* Log to the in-memory ring only (not the console). */
int klog(s) {
    int c = ldb(s);
    while (c) {
        stb(log_buf + log_pos, c);
        log_pos = umod(log_pos + 1, 1024);
        s++;
        c = ldb(s);
    }
    return 0;
}

/* Cross-CPU reschedule kick: a no-op on this UP configuration. */
int smp_ipi_count = 0;

int smp_send_reschedule(cpu) {
    smp_ipi_count++;
    return 0;
}

int printk_hex(v) {
    int buf[4];
    sprint_hex(buf, v);
    return con_write(buf, 8);
}

int printk_dec(v) {
    int buf[4];
    int n = sprint_dec(buf, v);
    return con_write(buf, n);
}

int panic(msg) {
    cli();
    panic_eip = ret_addr();
    if (panic_in_progress) {
        for (;;)
            halt();
    }
    panic_in_progress = 1;
    printk("Kernel panic: ");
    printk(msg);
    printk("\n");
    crash_dump_simple(255);
    for (;;)
        halt();
    return 0;
}

/* ---- task helpers ---------------------------------------------------------- */

int task_ptr(index) {
    return &task_structs[index * TASK_WORDS];
}

int task_index(task) {
    return udiv(task - task_structs, TASK_WORDS * 4);
}

int find_free_task() {
    int i;
    int t;
    for (i = 1; i < NR_TASKS; i++) {
        t = task_ptr(i);
        if (t[T_STATE] == TASK_FREE)
            return t;
    }
    return 0;
}

int find_task_by_pid(pid) {
    int i;
    int t;
    for (i = 0; i < NR_TASKS; i++) {
        t = task_ptr(i);
        if (t[T_STATE] != TASK_FREE && t[T_PID] == pid)
            return t;
    }
    return 0;
}

/* ---- scheduler --------------------------------------------------------------- */

/* can_schedule(): on a uniprocessor this is always true for a runnable
 * task — the §8 not-manifested example relies on exactly that. */
int can_schedule(p, cpu) {
    if (p[T_STATE] != TASK_RUNNING)
        return 0;
    if (cpu >= smp_num_cpus)
        return 0;
    return 1;
}

/*
 * reschedule_idle(): the paper's §8 redundancy example.  On a UP machine
 * the shortcut branch is always taken; reversing it changes nothing
 * observable because there is only one CPU to run on anyway.
 */
int reschedule_idle(p) {
    int best_cpu = 0;       /* this task's last CPU */
    if (can_schedule(p, best_cpu)) {
        /* Shortcut: the woken task's CPU is this one; just mark a
         * reschedule and let schedule() pick the winner. */
        need_resched = 1;
        return 0;
    }
    /* SMP path: kick another CPU (nothing to kick on UP). */
    if (smp_num_cpus > 1)
        smp_send_reschedule(best_cpu);
    need_resched = 1;
    return 0;
}

/* Recharge time slices when every runnable task has used its quantum. */
int recalc_counters() {
    int i;
    int t;
    for (i = 0; i < NR_TASKS; i++) {
        t = task_ptr(i);
        if (t[T_STATE] != TASK_FREE)
            t[T_COUNTER] = t[T_PRIORITY];
    }
    return 0;
}

/*
 * schedule(): pick the runnable task with the best remaining quantum
 * (2.4 "goodness"), falling back to the idle task.  50% of the paper's
 * kernel-subsystem crashes came from injections into this function.
 */
int schedule() {
    int prev = current;
    int next = 0;
    int best = -1;
    int i;
    int t;
    int c;
    if (prev[T_STATE] == TASK_FREE)
        BUG();
    if (debug_level)
        klog("schedule()\n");
    softlockup_last = jiffies;  /* scheduling is progress */
    need_resched = 0;
    for (i = 1; i < NR_TASKS; i++) {
        t = task_ptr(i);
        if (t[T_STATE] != TASK_RUNNING)
            continue;
        c = t[T_COUNTER];
        if (c > best) {
            best = c;
            next = t;
        }
    }
    if (next && best == 0) {
        recalc_counters();
        next = 0;
        best = -1;
        for (i = 1; i < NR_TASKS; i++) {
            t = task_ptr(i);
            if (t[T_STATE] != TASK_RUNNING)
                continue;
            if (t[T_COUNTER] > best) {
                best = t[T_COUNTER];
                next = t;
            }
        }
    }
    if (!next)
        next = task_ptr(0);     /* idle */
    if (next != task_ptr(0) && next[T_KSTACK] == 0)
        BUG();
    if (next == prev)
        return 0;
    current = next;
    set_esp0(next[T_KSTACK] + PAGE_SIZE);
    write_cr3(next[T_PGDIR]);
    __switch_to(prev, next);
    return 0;
}

/* ---- wait queues ----------------------------------------------------------------- */

int sleep_on(wchan) {
    int task = current;
    if (task[T_STATE] != TASK_RUNNING)
        BUG();
    task[T_STATE] = TASK_BLOCKED;
    task[T_WCHAN] = wchan;
    schedule();
    return 0;
}

int wake_up(wchan) {
    int i;
    int t;
    int n = 0;
    for (i = 1; i < NR_TASKS; i++) {
        t = task_ptr(i);
        if (t[T_STATE] == TASK_BLOCKED && t[T_WCHAN] == wchan) {
            t[T_STATE] = TASK_RUNNING;
            t[T_WCHAN] = 0;
            if (debug_level)
                klog("wake\n");
            reschedule_idle(t);
            n++;
        }
    }
    return n;
}

/* ---- timers -------------------------------------------------------------------------- */

/*
 * do_timer(): the tick. Decrement the current slice; request a
 * reschedule when it runs out.
 */
int do_timer() {
    int task = current;
    if (!task)
        BUG();
    jiffies++;
    if (debug_level)
        klog("tick\n");
    if (task[T_COUNTER] > 0)
        task[T_COUNTER]--;
    if (task[T_COUNTER] == 0)
        need_resched = 1;
    return 0;
}

/*
 * Soft-lockup watchdog: called from the timer tick with the do_IRQ
 * frame ([8] eip, [9] cs).  The touch counter softlockup_last is
 * advanced at every scheduling decision, syscall entry and idle
 * iteration; a task that stays wedged in kernel mode past
 * SOFTLOCKUP_TICKS ticks without any of those is dumped (pseudo-vector
 * 253) and killed from inside -- converting an undumpable hang into a
 * classifiable, recovered crash.
 */
int softlockup_check(frame) {
    int task = current;
    if (!recovery_enabled)
        return 0;
    if (die_in_progress || panic_in_progress)
        return 0;
    if (frame[9] == USER_CS_SEL)
        return 0;           /* user-mode progress is not a lockup */
    if (task == task_ptr(0) || task[T_PID] < 2)
        return 0;           /* idle and init stay fail-stop */
    if (jiffies - softlockup_last < SOFTLOCKUP_TICKS)
        return 0;
    softlockup_dump(frame);
    printk("BUG: soft lockup detected, killing pid ");
    printk_dec(task[T_PID]);
    printk("\n");
    softlockup_last = jiffies;
    task[T_OOPS] = 1;       /* a later fault of this task is fatal */
    in_interrupt = 0;       /* the interrupted context is abandoned */
    do_exit(128 + SIGKILL);
    return 1;
}

/* Interrupt dispatch (only IRQ0 exists on this platform). */
int do_IRQ(frame) {
    in_interrupt++;
    do_timer();
    softlockup_check(frame);
    in_interrupt--;
    /* Kernel is non-preemptive (2.4): only resched on return to user. */
    if (frame[9] == USER_CS_SEL) {
        if (need_resched)
            schedule();
        if (current[T_SIGPENDING])
            do_signal();
    }
    return 0;
}

/* ---- fork/exit/wait ---------------------------------------------------------------------- */

/*
 * do_fork(): duplicate the current task.  The child's kernel stack is
 * hand-crafted so that __switch_to() "returns" into ret_from_fork,
 * which unwinds a copy of the parent's syscall frame with eax = 0.
 */
int do_fork(frame) {
    int parent = current;
    int child = find_free_task();
    int kstack;
    int pgdir;
    int sp;
    int i;
    int f;
    if (parent[T_STATE] != TASK_RUNNING)
        BUG();
    if (debug_level)
        klog("fork\n");
    if (!child)
        return -EAGAIN;
    kstack = get_free_page();
    if (!kstack)
        return -ENOMEM;
    pgdir = pgdir_alloc();
    if (!pgdir) {
        free_page(kstack - KERNEL_BASE);
        return -ENOMEM;
    }
    if (copy_page_range(pgdir, parent[T_PGDIR], USER_TEXT,
                        parent[T_BRK]) < 0
            || copy_page_range(pgdir, parent[T_PGDIR],
                               USER_STACK_TOP - 65536,
                               USER_STACK_TOP + PAGE_SIZE) < 0) {
        zap_page_range(pgdir, USER_TEXT, parent[T_BRK]);
        zap_page_range(pgdir, USER_STACK_TOP - 65536,
                       USER_STACK_TOP + PAGE_SIZE);
        free_page_tables(pgdir);
        free_page(kstack - KERNEL_BASE);
        return -ENOMEM;
    }
    child[T_PID] = next_pid++;
    child[T_PGDIR] = pgdir;
    child[T_KSTACK] = kstack;
    child[T_PARENT] = task_index(parent);
    child[T_EXIT] = 0;
    child[T_COUNTER] = parent[T_PRIORITY];
    child[T_PRIORITY] = parent[T_PRIORITY];
    child[T_WCHAN] = 0;
    child[T_BRK] = parent[T_BRK];
    child[T_HEAP_START] = parent[T_HEAP_START];
    child[T_SIGPENDING] = 0;
    child[T_OOPS] = 0;      /* reused slots must not inherit the guard */
    for (i = 0; i < NR_OFILE; i++) {
        f = parent[T_FILES + i];
        child[T_FILES + i] = f;
        if (f)
            f[F_COUNT]++;
    }
    /*
     * Build the child kernel stack (top down):
     *   [ss, esp, eflags, cs, eip]   copied user return context
     *   [8-word pusha block]         copied, with eax forced to 0
     *   [edi, esi, ebx, ebp, ret]    __switch_to frame -> ret_from_fork
     */
    /* Syscall frame layout: [0..7]=pusha, [8]=eip, [9]=cs,
     * [10]=eflags, [11]=user esp, [12]=ss. */
    sp = kstack + PAGE_SIZE;
    for (i = 0; i < 5; i++)
        st(sp - 20 + i * 4, frame[8 + i]);
    sp -= 20;
    for (i = 0; i < 8; i++)
        st(sp - 32 + i * 4, frame[i]);
    st(sp - 32 + 28, 0);    /* child sees eax = 0 */
    sp -= 32;
    st(sp - 4, ret_from_fork);
    st(sp - 8, 0);          /* ebp */
    st(sp - 12, 0);         /* ebx */
    st(sp - 16, 0);         /* esi */
    st(sp - 20, 0);         /* edi */
    sp -= 20;
    child[T_ESP] = sp;
    child[T_STATE] = TASK_RUNNING;
    reschedule_idle(child);
    return child[T_PID];
}

int sys_fork(arg1, arg2, arg3, arg4, frame) {
    return do_fork(frame);
}

/* Release a zombie's last resources and return its pid. */
int release_task(t, status_ptr) {
    int pid = t[T_PID];
    if (status_ptr)
        put_user(status_ptr, t[T_EXIT]);
    free_page(t[T_KSTACK] - KERNEL_BASE);
    free_page_tables(t[T_PGDIR]);
    t[T_STATE] = TASK_FREE;
    return pid;
}

int do_exit(code) {
    int task = current;
    int parent;
    int i;
    if (task == task_ptr(0))
        BUG();              /* the idle task never exits */
    for (i = 0; i < NR_OFILE; i++) {
        if (task[T_FILES + i]) {
            fput(task[T_FILES + i]);
            task[T_FILES + i] = 0;
        }
    }
    exit_mmap(task);
    task[T_EXIT] = code;
    task[T_STATE] = TASK_ZOMBIE;
    parent = task_ptr(task[T_PARENT]);
    wake_up(parent);
    schedule();
    /* unreachable */
    panic("schedule returned to a dead task");
    return 0;
}

int sys_exit(code) {
    return do_exit(code & 255);
}

int sys_wait(status_ptr) {
    int task = current;
    int i;
    int t;
    int children;
    for (;;) {
        children = 0;
        for (i = 1; i < NR_TASKS; i++) {
            t = task_ptr(i);
            if (t[T_STATE] == TASK_FREE)
                continue;
            if (task_ptr(t[T_PARENT]) != task)
                continue;
            children++;
            if (t[T_STATE] == TASK_ZOMBIE)
                return release_task(t, status_ptr);
        }
        if (!children)
            return -ECHILD;
        sleep_on(task);
        if (task[T_SIGPENDING])
            return -EINTR;      /* interruptible sleep */
    }
}

/*
 * Signals-lite: every signal's default action is fatal.  kill() marks
 * the target's pending mask; the signal is *delivered* on the target's
 * next return toward user mode (do_signal), so the dying task releases
 * its own resources via the normal do_exit() path.
 */
int send_sig(sig, t) {
    if (sig < 1 || sig > 31)
        return -EINVAL;
    t[T_SIGPENDING] = t[T_SIGPENDING] | (1 << sig);
    if (t[T_STATE] == TASK_BLOCKED) {
        t[T_STATE] = TASK_RUNNING;
        t[T_WCHAN] = 0;
        reschedule_idle(t);
    }
    return 0;
}

/* Deliver the lowest pending signal (fatal default action). */
int do_signal() {
    int task = current;
    int pending = task[T_SIGPENDING];
    int sig = 1;
    if (!pending)
        return 0;
    while (sig < 32 && !(pending & (1 << sig)))
        sig++;
    task[T_SIGPENDING] = 0;
    do_exit(128 + sig);
    return 0;
}

int sys_kill(pid, sig) {
    int t = find_task_by_pid(pid);
    if (!t)
        return -ESRCH;
    if (t[T_STATE] == TASK_ZOMBIE)
        return -ESRCH;
    return send_sig(sig, t);
}

int sys_getpid() {
    int task = current;
    return task[T_PID];
}

int sys_sched_yield() {
    int task = current;
    task[T_COUNTER] = 0;
    need_resched = 1;
    schedule();
    return 0;
}

int sys_reboot(code) {
    sys_sync();
    sb[SB_STATE] = 1;       /* clean unmount */
    write_super();
    st(SHUTDOWN_DEV, code);
    return 0;               /* not reached */
}

int sys_ni_syscall() {
    return -ENOSYS;
}

/* sysinfo(): memory and scheduler counters for userland. */
int sys_sysinfo(buf) {
    int running = 0;
    int i;
    int t;
    if (!access_ok(buf, 16))
        return -EFAULT;
    for (i = 0; i < NR_TASKS; i++) {
        t = task_ptr(i);
        if (t[T_STATE] == TASK_RUNNING)
            running++;
    }
    put_user(buf, nr_free_pages);
    put_user(buf + 4, FREE_PHYS_END - FREE_PHYS_START >> 12);
    put_user(buf + 8, jiffies);
    put_user(buf + 12, running);
    return 0;
}

/* ---- system-call dispatch -------------------------------------------------------------------- */

const NR_SYSCALLS = 24;

int sys_call_table[] = {
    sys_ni_syscall,         /* 0 */
    sys_exit,               /* 1 */
    sys_fork,               /* 2 */
    sys_read,               /* 3 */
    sys_write,              /* 4 */
    sys_open,               /* 5 */
    sys_close,              /* 6 */
    sys_wait,               /* 7 */
    sys_creat,              /* 8 */
    sys_unlink,             /* 9 */
    sys_exec,               /* 10 */
    sys_stat,               /* 11 */
    sys_lseek,              /* 12 */
    sys_getpid,             /* 13 */
    sys_dup,                /* 14 */
    sys_pipe,               /* 15 */
    sys_brk,                /* 16 */
    sys_sched_yield,        /* 17 */
    sys_kill,               /* 18 */
    sys_sync,               /* 19 */
    sys_reboot,             /* 20 */
    sys_ipc,                /* 21 */
    sys_net_ping,           /* 22 */
    sys_sysinfo             /* 23 */
};

/*
 * do_system_call(): dispatch int 0x80.  Argument registers follow the
 * Linux convention: eax = number, ebx/ecx/edx/esi = arguments.
 */
int do_system_call(frame) {
    int nr = frame[7];
    int fn;
    int ret;
    if (!current)
        BUG();
    /* Recovery kernels run syscalls with interrupts enabled (a trap
     * gate, like real Linux), so the timer-driven soft-lockup watchdog
     * can observe a wedged syscall.  Fail-stop kernels keep the
     * interrupt-gate behaviour unchanged. */
    if (recovery_enabled) {
        softlockup_last = jiffies;
        sti();
    }
    if (debug_level)
        klog("syscall\n");
    if (!ult(nr, NR_SYSCALLS))
        return -ENOSYS;
    fn = sys_call_table[nr];
    ret = fn(frame[4], frame[6], frame[5], frame[1], frame);
    if (need_resched)
        schedule();
    if (current[T_SIGPENDING])
        do_signal();
    return ret;
}

/* ---- boot ---------------------------------------------------------------------------------------- */

int init_task_setup() {
    int t = task_ptr(0);
    t[T_STATE] = TASK_RUNNING;
    t[T_PID] = 0;
    t[T_PGDIR] = boot_pgdir_phys;
    t[T_KSTACK] = BOOT_STACK_BASE;
    t[T_COUNTER] = 0;
    t[T_PRIORITY] = 0;      /* idle: never preferred */
    current = t;
    set_esp0(t[T_KSTACK] + PAGE_SIZE);
    return 0;
}

/* Create task 1 as a kernel thread running kernel_init(). */
int spawn_kernel_init() {
    int t = task_ptr(1);
    int kstack = get_free_page();
    int pgdir = pgdir_alloc();
    int sp;
    if (!kstack || !pgdir)
        panic("cannot allocate init task");
    t[T_STATE] = TASK_RUNNING;
    t[T_PID] = 1;
    t[T_PGDIR] = pgdir;
    t[T_KSTACK] = kstack;
    t[T_PARENT] = 0;
    t[T_COUNTER] = 8;
    t[T_PRIORITY] = 8;
    t[T_BRK] = 0;
    t[T_HEAP_START] = 0;
    sp = kstack + PAGE_SIZE;
    st(sp - 4, kernel_init);    /* __switch_to returns here */
    st(sp - 8, 0);
    st(sp - 12, 0);
    st(sp - 16, 0);
    st(sp - 20, 0);
    sp -= 20;
    t[T_ESP] = sp;
    return 0;
}

/* First kernel thread: mount late state and exec the user init. */
int kernel_init() {
    int err;
    sti();
    err = do_execve("/bin/init");
    if (err < 0) {
        printk("Kernel panic: No init found.  Try passing init= ...\n");
        crash_dump_simple(254);
        cli();
        for (;;)
            halt();
    }
    enter_user_mode(exec_entry, exec_user_esp);
    return 0;
}

int start_kernel() {
    setup_arch();
    trap_init();
    printk("Linux version 2.4.19-repro (sim) booting\n");
    mem_init();
    pgcache_init();
    buffer_init();
    inode_init();
    files_init();
    init_task_setup();
    mount_root();
    spawn_kernel_init();
    sti();
    cpu_idle();
    return 0;
}

/* The idle loop (task 0).  IF is live CPU state, not part of the
 * switch frame: re-enable interrupts every iteration, because the
 * scheduler may hand control back with them disabled (resumed from a
 * syscall-gate context). */
int cpu_idle() {
    for (;;) {
        softlockup_last = jiffies;  /* an idle CPU is not locked up */
        if (need_resched)
            schedule();
        sti();
        halt();
    }
    return 0;
}
"""
