"""Kernel ``ipc/`` subsystem — a single System-V-style semaphore op.

The paper's Table 1 profiles exactly one ipc function; this is ours.
"""

SOURCE = r"""
int ipc_sem_value = 1;

/* sys_ipc(op): op 0 = P (down, may block), op 1 = V (up). */
int sys_ipc(op) {
    if (op == 0) {
        while (ipc_sem_value <= 0) {
            sleep_on(&ipc_sem_value);
            if (current[T_SIGPENDING])
                return -EINTR;
        }
        ipc_sem_value--;
        return 0;
    }
    if (op == 1) {
        ipc_sem_value++;
        wake_up(&ipc_sem_value);
        return 0;
    }
    return -EINVAL;
}
"""
