"""Kernel ``lib/`` subsystem: string and memory primitives."""

SOURCE = r"""
int strlen(s) {
    int n = 0;
    while (ldb(s + n))
        n++;
    return n;
}

int strcmp(a, b) {
    int ca;
    int cb;
    for (;;) {
        ca = ldb(a);
        cb = ldb(b);
        if (ca != cb)
            return ca - cb;
        if (!ca)
            return 0;
        a++;
        b++;
    }
}

int strncmp(a, b, n) {
    int ca;
    int cb;
    while (n > 0) {
        ca = ldb(a);
        cb = ldb(b);
        if (ca != cb)
            return ca - cb;
        if (!ca)
            return 0;
        a++;
        b++;
        n--;
    }
    return 0;
}

int strcpy(dst, src) {
    int d = dst;
    int c;
    do {
        c = ldb(src);
        stb(d, c);
        src++;
        d++;
    } while (c);
    return dst;
}

int strncpy(dst, src, n) {
    int i = 0;
    int c = 1;
    while (i < n) {
        if (c)
            c = ldb(src + i);
        stb(dst + i, c);
        i++;
    }
    return dst;
}

int memcpy(dst, src, n) {
    if (n >= 16 && !((dst | src | n) & 3)) {
        rep_movsd(dst, src, n >> 2);
        return dst;
    }
    rep_movsb(dst, src, n);
    return dst;
}

int memset(dst, c, n) {
    int word;
    if (!(dst & 3) && n >= 16) {
        word = c & 255;
        word = word | (word << 8);
        word = word | (word << 16);
        rep_stosd(dst, word, n >> 2);
        dst = dst + (n & ~3);
        n = n & 3;
    }
    while (n > 0) {
        stb(dst, c);
        dst++;
        n--;
    }
    return dst;
}

int memcmp(a, b, n) {
    int ca;
    int cb;
    while (n > 0) {
        ca = ldb(a);
        cb = ldb(b);
        if (ca != cb)
            return ca - cb;
        a++;
        b++;
        n--;
    }
    return 0;
}

/* Render an unsigned value in hex into buf; returns length (8). */
int sprint_hex(buf, v) {
    int i;
    int digit;
    for (i = 0; i < 8; i++) {
        digit = (v >> ((7 - i) * 4)) & 15;
        if (digit < 10)
            stb(buf + i, '0' + digit);
        else
            stb(buf + i, 'a' + digit - 10);
    }
    stb(buf + 8, 0);
    return 8;
}

/* Render a signed decimal into buf; returns length. */
int sprint_dec(buf, v) {
    int tmp[12];
    int n = 0;
    int len = 0;
    int neg = 0;
    if (v < 0) {
        neg = 1;
        v = -v;
    }
    if (v == 0) {
        tmp[n] = '0';
        n = 1;
    }
    while (v) {
        tmp[n] = '0' + umod(v, 10);
        v = udiv(v, 10);
        n++;
    }
    if (neg) {
        stb(buf, '-');
        len = 1;
    }
    while (n > 0) {
        n--;
        stb(buf + len, tmp[n]);
        len++;
    }
    stb(buf + len, 0);
    return len;
}

int simple_atoi(s) {
    int v = 0;
    int c = ldb(s);
    while (c >= '0' && c <= '9') {
        v = v * 10 + (c - '0');
        s++;
        c = ldb(s);
    }
    return v;
}
"""
