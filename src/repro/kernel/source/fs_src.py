"""Kernel ``fs/`` subsystem.

Buffer cache (``get_hash_table``/``getblk``/``bread`` follow the 2.4
naming), the ext2-like on-disk filesystem, the VFS layer
(``link_path_walk``/``open_namei``/``sys_read``/``sys_write``), pipes
(``pipe_read`` carries the paper's §8 fail-silence example: the ESPIPE
check at its head), and ``do_execve``.
"""

SOURCE = r"""
/* ---- buffer cache ---------------------------------------------------- */

int buffers[96];            /* NR_BUF * B_WORDS */
int buffer_mem = 0;         /* base of buffer data pages */
int sb[12];                 /* in-core superblock (word copy of block 0) */
int sb_dirty = 0;
int root_inode = 0;

int buffer_init() {
    int i;
    int pages = (NR_BUF * BLOCK_SIZE) / PAGE_SIZE;
    int b;
    buffer_mem = get_free_page();
    for (i = 1; i < pages; i++)
        get_free_page();    /* contiguous with first (fresh boot) */
    for (i = 0; i < NR_BUF; i++) {
        b = &buffers[i * B_WORDS];
        b[B_BLOCK] = -1;
        b[B_DATA] = buffer_mem + i * BLOCK_SIZE;
        b[B_COUNT] = 0;
        b[B_DIRTY] = 0;
        b[B_VALID] = 0;
    }
    return 0;
}

/* Linux's get_hash_table(): find a cached buffer for a block. */
int get_hash_table(block) {
    int i;
    int b;
    if (debug_level)
        klog("get_hash_table\n");
    for (i = 0; i < NR_BUF; i++) {
        b = &buffers[i * B_WORDS];
        if (b[B_BLOCK] == block) {
            b[B_COUNT]++;
            b[B_TIME] = jiffies;
            return b;
        }
    }
    return 0;
}

/* Get a buffer bound to the block, evicting the LRU clean buffer. */
int getblk(block) {
    int b = get_hash_table(block);
    int i;
    int victim = 0;
    int best = -1;
    if (b)
        return b;
    for (i = 0; i < NR_BUF; i++) {
        b = &buffers[i * B_WORDS];
        if (b[B_COUNT])
            continue;
        if (best == -1 || b[B_TIME] < best) {
            best = b[B_TIME];
            victim = b;
        }
    }
    if (!victim)
        panic("getblk: no free buffers");
    if (victim[B_COUNT])
        BUG();              /* evicting a busy buffer */
    if (victim[B_DIRTY])
        bwrite(victim);
    victim[B_BLOCK] = block;
    victim[B_VALID] = 0;
    victim[B_DIRTY] = 0;
    victim[B_COUNT] = 1;
    victim[B_TIME] = jiffies;
    return victim;
}

/* Read a block through the cache. Returns buffer or 0 on I/O error. */
int bread(block) {
    int b = getblk(block);
    if (b[B_BLOCK] != block)
        BUG();
    if (debug_level)
        klog("bread\n");
    if (b[B_VALID])
        return b;
    if (disk_read_block(block, b[B_DATA]) < 0) {
        b[B_COUNT]--;
        b[B_BLOCK] = -1;
        return 0;
    }
    b[B_VALID] = 1;
    return b;
}

int brelse(b) {
    if (!b)
        return 0;
    if (b[B_COUNT] == 0)
        BUG();
    b[B_COUNT]--;
    return 0;
}

int mark_buffer_dirty(b) {
    b[B_DIRTY] = 1;
    return 0;
}

int bwrite(b) {
    if (disk_write_block(b[B_BLOCK], b[B_DATA]) < 0)
        return -EIO;
    b[B_DIRTY] = 0;
    return 0;
}

int sync_buffers() {
    int i;
    int b;
    int n = 0;
    for (i = 0; i < NR_BUF; i++) {
        b = &buffers[i * B_WORDS];
        if (b[B_BLOCK] != -1 && b[B_DIRTY]) {
            bwrite(b);
            n++;
        }
    }
    return n;
}

/* ---- superblock ------------------------------------------------------- */

int read_super() {
    int b = bread(SB_BLOCK);
    if (!b)
        return -EIO;
    memcpy(sb, b[B_DATA], 48);
    brelse(b);
    if ((sb[SB_MAGIC] & 0xFFFF) != EXT2_MAGIC)
        return -EINVAL;
    return 0;
}

int write_super() {
    int b = getblk(SB_BLOCK);
    memcpy(b[B_DATA], sb, 48);
    mark_buffer_dirty(b);
    bwrite(b);
    brelse(b);
    sb_dirty = 0;
    return 0;
}

int mount_root() {
    if (read_super() < 0)
        panic("VFS: unable to mount root fs");
    if (sb[SB_STATE] != 1)
        printk("EXT2-fs warning: mounting unchecked fs\n");
    sb[SB_STATE] = 0;       /* mark dirty while mounted */
    sb[SB_MOUNTS]++;
    write_super();
    root_inode = iget(sb[SB_ROOT_INO]);
    if (!root_inode)
        panic("VFS: cannot read root inode");
    return 0;
}

/* ---- in-core inode management ------------------------------------------- */

int inode_table[288];       /* NR_INODE * I_WORDS */

int inode_init() {
    int i;
    for (i = 0; i < NR_INODE; i++)
        inode_table[i * I_WORDS + I_INO] = 0;
    return 0;
}

/* Read inode `ino` into the cache (or bump its refcount). */
int iget(ino) {
    int i;
    int node;
    int free_slot = 0;
    int b;
    int disk;
    int j;
    if (debug_level)
        klog("iget\n");
    for (i = 0; i < NR_INODE; i++) {
        node = &inode_table[i * I_WORDS];
        if (node[I_INO] == ino) {
            node[I_COUNT]++;
            return node;
        }
        if (!node[I_INO] && !free_slot)
            free_slot = node;
    }
    if (!free_slot)
        return 0;
    node = free_slot;
    if (ino <= 0)
        BUG();
    b = bread(sb[SB_ITABLE] + udiv(ino, BLOCK_SIZE / DINODE_BYTES));
    if (!b)
        return 0;
    disk = b[B_DATA] + umod(ino, BLOCK_SIZE / DINODE_BYTES) * DINODE_BYTES;
    node[I_INO] = ino;
    node[I_COUNT] = 1;
    node[I_TYPE] = ld(disk + DI_TYPE * 4);
    node[I_SIZE] = ld(disk + DI_SIZE * 4);
    node[I_DIRTY] = 0;
    for (j = 0; j < EXT2_NBLOCKS; j++)
        node[I_BLK + j] = ld(disk + (DI_BLK + j) * 4);
    brelse(b);
    return node;
}

/* Write a dirty inode back to the inode table on disk. */
int ext2_write_inode(node) {
    int ino = node[I_INO];
    int b;
    if (!ino)
        BUG();
    b = bread(sb[SB_ITABLE] + udiv(ino, BLOCK_SIZE / DINODE_BYTES));
    int disk;
    int j;
    if (!b)
        return -EIO;
    disk = b[B_DATA] + umod(ino, BLOCK_SIZE / DINODE_BYTES) * DINODE_BYTES;
    st(disk + DI_TYPE * 4, node[I_TYPE]);
    st(disk + DI_SIZE * 4, node[I_SIZE]);
    st(disk + DI_LINKS * 4, node[I_TYPE] ? 1 : 0);
    for (j = 0; j < EXT2_NBLOCKS; j++)
        st(disk + (DI_BLK + j) * 4, node[I_BLK + j]);
    mark_buffer_dirty(b);
    brelse(b);
    node[I_DIRTY] = 0;
    return 0;
}

int iput(node) {
    if (!node)
        return 0;
    if (node[I_COUNT] == 0)
        BUG();
    node[I_COUNT]--;
    if (node[I_COUNT] == 0) {
        if (node[I_DIRTY])
            ext2_write_inode(node);
        node[I_INO] = 0;
    }
    return 0;
}

int sync_inodes() {
    int i;
    int node;
    for (i = 0; i < NR_INODE; i++) {
        node = &inode_table[i * I_WORDS];
        if (node[I_INO] && node[I_DIRTY])
            ext2_write_inode(node);
    }
    return 0;
}

/* ---- block allocation ---------------------------------------------------- */

int ext2_alloc_block() {
    int b = bread(sb[SB_BITMAP]);
    int blk;
    int byte;
    int bit;
    if (!b)
        return -EIO;
    for (blk = sb[SB_DATA_START]; blk < sb[SB_NBLOCKS]; blk++) {
        byte = ldb(b[B_DATA] + (blk >> 3));
        bit = 1 << (blk & 7);
        if (!(byte & bit)) {
            stb(b[B_DATA] + (blk >> 3), byte | bit);
            mark_buffer_dirty(b);
            brelse(b);
            sb_dirty = 1;
            return blk;
        }
    }
    brelse(b);
    return -ENOSPC;
}

int ext2_free_block(blk) {
    int b = bread(sb[SB_BITMAP]);
    int byte;
    if (!b)
        return -EIO;
    byte = ldb(b[B_DATA] + (blk >> 3));
    stb(b[B_DATA] + (blk >> 3), byte & ~(1 << (blk & 7)));
    mark_buffer_dirty(b);
    brelse(b);
    return 0;
}

/*
 * Map a file-relative block index to a disk block.  With create=1 a
 * missing block is allocated and recorded in the inode.
 */
int ext2_get_block(node, index, create) {
    int blk;
    int ind;
    int b;
    if (uge(index, EXT2_MAX_BLOCKS))
        return -EFBIG;
    if (ult(index, EXT2_NDIR)) {
        blk = node[I_BLK + index];
        if (blk) {
            if (ult(blk, sb[SB_DATA_START]))
                BUG();      /* data pointer into the metadata area */
            return blk;
        }
        if (!create)
            return 0;
        blk = ext2_alloc_block();
        if (blk < 0)
            return blk;
        node[I_BLK + index] = blk;
        node[I_DIRTY] = 1;
        return blk;
    }
    /* Single-indirect: slot 11 points at a block of 256 pointers. */
    ind = node[I_BLK + EXT2_IND_SLOT];
    if (!ind) {
        if (!create)
            return 0;
        ind = ext2_alloc_block();
        if (ind < 0)
            return ind;
        b = getblk(ind);
        memset(b[B_DATA], 0, BLOCK_SIZE);
        b[B_VALID] = 1;
        mark_buffer_dirty(b);
        brelse(b);
        node[I_BLK + EXT2_IND_SLOT] = ind;
        node[I_DIRTY] = 1;
    }
    b = bread(ind);
    if (!b)
        return -EIO;
    blk = ld(b[B_DATA] + (index - EXT2_NDIR) * 4);
    if (blk) {
        brelse(b);
        if (ult(blk, sb[SB_DATA_START]))
            BUG();
        return blk;
    }
    if (!create) {
        brelse(b);
        return 0;
    }
    blk = ext2_alloc_block();
    if (blk < 0) {
        brelse(b);
        return blk;
    }
    st(b[B_DATA] + (index - EXT2_NDIR) * 4, blk);
    mark_buffer_dirty(b);
    brelse(b);
    return blk;
}

/* Free every data block (direct + indirect chain) of an inode. */
int ext2_free_all_blocks(node) {
    int j;
    int blk;
    int ind;
    int b;
    for (j = 0; j < EXT2_NDIR; j++) {
        blk = node[I_BLK + j];
        if (blk)
            ext2_free_block(blk);
        node[I_BLK + j] = 0;
    }
    ind = node[I_BLK + EXT2_IND_SLOT];
    if (ind) {
        b = bread(ind);
        if (b) {
            for (j = 0; j < EXT2_ADDR_PER_BLOCK; j++) {
                blk = ld(b[B_DATA] + j * 4);
                if (blk)
                    ext2_free_block(blk);
            }
            brelse(b);
        }
        ext2_free_block(ind);
        node[I_BLK + EXT2_IND_SLOT] = 0;
    }
    return 0;
}

/* ---- inode allocation ------------------------------------------------------ */

int ext2_new_inode(type) {
    int ino;
    int b;
    int disk;
    for (ino = 2; ino < sb[SB_NINODES]; ino++) {
        b = bread(sb[SB_ITABLE] + udiv(ino, BLOCK_SIZE / DINODE_BYTES));
        if (!b)
            return -EIO;
        disk = b[B_DATA]
            + umod(ino, BLOCK_SIZE / DINODE_BYTES) * DINODE_BYTES;
        if (ld(disk + DI_TYPE * 4) == 0) {
            st(disk + DI_TYPE * 4, type);
            st(disk + DI_SIZE * 4, 0);
            st(disk + DI_LINKS * 4, 1);
            mark_buffer_dirty(b);
            brelse(b);
            return ino;
        }
        brelse(b);
    }
    return -ENOSPC;
}

int ext2_free_inode(node) {
    ext2_free_all_blocks(node);
    node[I_TYPE] = 0;
    node[I_SIZE] = 0;
    node[I_DIRTY] = 1;
    ext2_write_inode(node);
    invalidate_inode_pages(node);
    return 0;
}

/* ---- directories -------------------------------------------------------------- */

/* Look up `name` in directory inode; returns ino or -ENOENT. */
int ext2_lookup(dir, name) {
    int nblocks = udiv(dir[I_SIZE] + BLOCK_SIZE - 1, BLOCK_SIZE);
    if (ugt(nblocks, EXT2_NDIR))
        nblocks = EXT2_NDIR;
    int i;
    int off;
    int b;
    int entry;
    int ino;
    for (i = 0; i < nblocks; i++) {
        b = bread(dir[I_BLK + i]);
        if (!b)
            return -EIO;
        for (off = 0; off < BLOCK_SIZE; off += DIRENT_BYTES) {
            entry = b[B_DATA] + off;
            ino = ld(entry);
            if (ino && strncmp(entry + 4, name, DNAME_MAX) == 0) {
                brelse(b);
                return ino;
            }
        }
        brelse(b);
    }
    return -ENOENT;
}

/* Add a directory entry. */
int ext2_add_entry(dir, name, ino) {
    int nblocks = udiv(dir[I_SIZE] + BLOCK_SIZE - 1, BLOCK_SIZE);
    int i;
    int off;
    int b;
    int entry;
    int blk;
    for (i = 0; i < nblocks; i++) {
        b = bread(dir[I_BLK + i]);
        if (!b)
            return -EIO;
        for (off = 0; off < BLOCK_SIZE; off += DIRENT_BYTES) {
            entry = b[B_DATA] + off;
            if (ld(entry) == 0) {
                st(entry, ino);
                strncpy(entry + 4, name, DNAME_MAX);
                stb(entry + 4 + DNAME_MAX, 0);
                mark_buffer_dirty(b);
                brelse(b);
                return 0;
            }
        }
        brelse(b);
    }
    /* Need a fresh directory block. */
    blk = ext2_get_block(dir, nblocks, 1);
    if (blk < 0)
        return blk;
    b = getblk(blk);
    memset(b[B_DATA], 0, BLOCK_SIZE);
    b[B_VALID] = 1;
    st(b[B_DATA], ino);
    strncpy(b[B_DATA] + 4, name, DNAME_MAX);
    mark_buffer_dirty(b);
    brelse(b);
    dir[I_SIZE] = dir[I_SIZE] + BLOCK_SIZE;
    dir[I_DIRTY] = 1;
    return 0;
}

int ext2_del_entry(dir, name) {
    int nblocks = udiv(dir[I_SIZE] + BLOCK_SIZE - 1, BLOCK_SIZE);
    int i;
    int off;
    int b;
    int entry;
    for (i = 0; i < nblocks; i++) {
        b = bread(dir[I_BLK + i]);
        if (!b)
            return -EIO;
        for (off = 0; off < BLOCK_SIZE; off += DIRENT_BYTES) {
            entry = b[B_DATA] + off;
            if (ld(entry) && strncmp(entry + 4, name, DNAME_MAX) == 0) {
                st(entry, 0);
                mark_buffer_dirty(b);
                brelse(b);
                return 0;
            }
        }
        brelse(b);
    }
    return -ENOENT;
}

/* ---- path walk ------------------------------------------------------------------ */

/*
 * link_path_walk(): resolve a path to an inode number.  Appears twice in
 * the paper's most-severe-crash table (cases 3 and 4).
 */
int link_path_walk(path) {
    int component[8];       /* 32-byte name buffer */
    int ino = sb[SB_ROOT_INO];
    int dir;
    int i;
    int c;
    if (!path)
        BUG();
    if (debug_level)
        klog("path_walk\n");
    if (ldb(path) != '/')
        return -ENOENT;
    path++;
    while (ldb(path)) {
        i = 0;
        c = ldb(path);
        while (c && c != '/') {
            if (i >= DNAME_MAX)
                return -ENAMETOOLONG;
            stb(component + i, c);
            i++;
            path++;
            c = ldb(path);
        }
        stb(component + i, 0);
        if (c == '/')
            path++;
        if (i == 0)
            continue;
        dir = iget(ino);
        if (!dir)
            return -ENOENT;
        if (dir[I_TYPE] != IT_DIR) {
            iput(dir);
            return -ENOTDIR;
        }
        ino = ext2_lookup(dir, component);
        iput(dir);
        if (ino < 0)
            return ino;
    }
    return ino;
}

/* Split path into (parent directory inode number, final component). */
int dir_of_path(path, namebuf) {
    int last = path;
    int p = path;
    int n = 0;
    int parent;
    int c = ldb(p);
    while (c) {
        if (c == '/')
            last = p + 1;
        p++;
        c = ldb(p);
    }
    while (ldb(last + n) && n < DNAME_MAX) {
        stb(namebuf + n, ldb(last + n));
        n++;
    }
    stb(namebuf + n, 0);
    if (last == path + 1)
        return sb[SB_ROOT_INO];
    /* Walk everything before the final component. */
    stb(last - 1, 0);       /* NB: temporarily truncates caller buffer */
    parent = link_path_walk(path);
    stb(last - 1, '/');
    return parent;
}

/* open_namei(): path lookup for open(); case 1 in the paper's Table 5. */
int open_namei(path) {
    int ino = link_path_walk(path);
    if (ino < 0)
        return ino;
    return ino;
}

/* ---- file table ------------------------------------------------------------------- */

int file_table[96];         /* NR_FILE * F_WORDS */

int files_init() {
    int i;
    for (i = 0; i < NR_FILE; i++)
        file_table[i * F_WORDS + F_COUNT] = 0;
    return 0;
}

int get_empty_filp() {
    int i;
    int f;
    for (i = 0; i < NR_FILE; i++) {
        f = &file_table[i * F_WORDS];
        if (f[F_COUNT] == 0) {
            f[F_COUNT] = 1;
            f[F_TYPE] = 0;
            f[F_INO] = 0;
            f[F_POS] = 0;
            f[F_FLAGS] = 0;
            return f;
        }
    }
    return 0;
}

/* Find a free fd slot in the current task; install file. */
int fd_install(f) {
    int task = current;
    int fd;
    for (fd = 0; fd < NR_OFILE; fd++) {
        if (task[T_FILES + fd] == 0) {
            task[T_FILES + fd] = f;
            return fd;
        }
    }
    return -EMFILE;
}

int fget(fd) {
    int task = current;
    int f;
    if (!ult(fd, NR_OFILE))
        return 0;
    f = task[T_FILES + fd];
    if (f && f[F_COUNT] == 0)
        BUG();              /* fd table points at a closed file */
    return f;
}

/* Drop one reference to an open file. */
int fput(f) {
    int pipe;
    if (!f)
        return 0;
    if (f[F_COUNT] == 0)
        BUG();
    f[F_COUNT]--;
    if (f[F_COUNT])
        return 0;
    if (f[F_TYPE] == FT_REG)
        iput(f[F_INO]);
    else if (f[F_TYPE] == FT_PIPE_R || f[F_TYPE] == FT_PIPE_W) {
        pipe = f[F_INO];
        if (f[F_TYPE] == FT_PIPE_R)
            pipe[P_READERS]--;
        else
            pipe[P_WRITERS]--;
        wake_up(pipe);
        if (pipe[P_READERS] == 0 && pipe[P_WRITERS] == 0) {
            free_page(pipe[P_BUF] - KERNEL_BASE);
            pipe[P_BUF] = 0;
        }
    }
    return 0;
}

/* ---- syscalls: open/close/read/write/lseek --------------------------------------------- */

int sys_open(path_user) {
    int path[32];
    int err = strncpy_from_user(path, path_user, 120);
    int ino;
    int node;
    int f;
    int fd;
    if (err < 0)
        return err;
    if (strcmp(path, "/dev/console") == 0) {
        f = get_empty_filp();
        if (!f)
            return -ENFILE;
        f[F_TYPE] = FT_CONSOLE;
        fd = fd_install(f);
        if (fd < 0)
            fput(f);
        return fd;
    }
    ino = open_namei(path);
    if (ino < 0)
        return ino;
    node = iget(ino);
    if (!node)
        return -ENFILE;
    if (node[I_TYPE] == IT_DIR) {
        iput(node);
        return -EISDIR;
    }
    f = get_empty_filp();
    if (!f) {
        iput(node);
        return -ENFILE;
    }
    f[F_TYPE] = FT_REG;
    f[F_INO] = node;
    f[F_POS] = 0;
    fd = fd_install(f);
    if (fd < 0)
        fput(f);
    return fd;
}

int sys_creat(path_user) {
    int path[32];
    int name[8];
    int err = strncpy_from_user(path, path_user, 120);
    int parent_ino;
    int dir;
    int ino;
    int node;
    int f;
    int fd;
    if (err < 0)
        return err;
    parent_ino = dir_of_path(path, name);
    if (parent_ino < 0)
        return parent_ino;
    dir = iget(parent_ino);
    if (!dir)
        return -ENOENT;
    if (dir[I_TYPE] != IT_DIR) {
        iput(dir);
        return -ENOTDIR;
    }
    ino = ext2_lookup(dir, name);
    if (ino == -ENOENT) {
        ino = ext2_new_inode(IT_FILE);
        if (ino < 0) {
            iput(dir);
            return ino;
        }
        err = ext2_add_entry(dir, name, ino);
        if (err < 0) {
            iput(dir);
            return err;
        }
    }
    iput(dir);
    if (ino < 0)
        return ino;
    node = iget(ino);
    if (!node)
        return -ENFILE;
    /* Truncate. */
    ext2_truncate(node);
    f = get_empty_filp();
    if (!f) {
        iput(node);
        return -ENFILE;
    }
    f[F_TYPE] = FT_REG;
    f[F_INO] = node;
    fd = fd_install(f);
    if (fd < 0)
        fput(f);
    return fd;
}

int ext2_truncate(node) {
    ext2_free_all_blocks(node);
    node[I_SIZE] = 0;
    node[I_DIRTY] = 1;
    invalidate_inode_pages(node);
    return 0;
}

int sys_unlink(path_user) {
    int path[32];
    int name[8];
    int err = strncpy_from_user(path, path_user, 120);
    int parent_ino;
    int dir;
    int ino;
    int node;
    if (err < 0)
        return err;
    parent_ino = dir_of_path(path, name);
    if (parent_ino < 0)
        return parent_ino;
    dir = iget(parent_ino);
    if (!dir)
        return -ENOENT;
    ino = ext2_lookup(dir, name);
    if (ino < 0) {
        iput(dir);
        return ino;
    }
    err = ext2_del_entry(dir, name);
    iput(dir);
    if (err < 0)
        return err;
    node = iget(ino);
    if (node) {
        ext2_free_inode(node);
        node[I_INO] = 0;    /* slot free; on-disk inode cleared */
    }
    return 0;
}

/* stat(): type, size, block count, inode number. */
int sys_stat(path_user, buf_user) {
    int path[32];
    int err = strncpy_from_user(path, path_user, 120);
    int ino;
    int node;
    int nblocks;
    int j;
    if (err < 0)
        return err;
    if (!access_ok(buf_user, 16))
        return -EFAULT;
    ino = open_namei(path);
    if (ino < 0)
        return ino;
    node = iget(ino);
    if (!node)
        return -ENFILE;
    nblocks = 0;
    for (j = 0; j < EXT2_NBLOCKS; j++)
        if (node[I_BLK + j])
            nblocks++;
    put_user(buf_user, node[I_TYPE]);
    put_user(buf_user + 4, node[I_SIZE]);
    put_user(buf_user + 8, nblocks);
    put_user(buf_user + 12, ino);
    iput(node);
    return 0;
}

int sys_close(fd) {
    int task = current;
    int f = fget(fd);
    if (!f)
        return -EBADF;
    task[T_FILES + fd] = 0;
    fput(f);
    return 0;
}

int sys_dup(fd) {
    int f = fget(fd);
    int newfd;
    if (!f)
        return -EBADF;
    newfd = fd_install(f);
    if (newfd >= 0)
        f[F_COUNT]++;
    return newfd;
}

int sys_lseek(fd, offset, whence) {
    int f = fget(fd);
    if (!f)
        return -EBADF;
    if (f[F_TYPE] != FT_REG)
        return -ESPIPE;
    if (whence == 0)
        f[F_POS] = offset;
    else if (whence == 1)
        f[F_POS] = f[F_POS] + offset;
    else if (whence == 2) {
        int node = f[F_INO];
        f[F_POS] = node[I_SIZE] + offset;
    } else
        return -EINVAL;
    return f[F_POS];
}

int generic_file_read(f, buf, count) {
    if (count == 0)
        return 0;
    if (!access_ok(buf, count))
        return -EFAULT;
    return do_generic_file_read(f, buf, count);
}

/*
 * generic_file_write() + generic_commit_write(): the write path whose
 * inode-size commit is the paper's severe-crash case 8.
 */
int generic_file_write(f, buf, count) {
    int node = f[F_INO];
    int pos = f[F_POS];
    int written = 0;
    int blk;
    int b;
    int off;
    int nr;
    int err;
    if (!access_ok(buf, count))
        return -EFAULT;
    while (ult(written, count)) {
        off = umod(pos, BLOCK_SIZE);
        nr = BLOCK_SIZE - off;
        if (ugt(nr, count - written))
            nr = count - written;
        blk = ext2_get_block(node, udiv(pos, BLOCK_SIZE), 1);
        if (blk < 0)
            return written ? written : blk;
        if (off == 0 && nr == BLOCK_SIZE) {
            b = getblk(blk);
            b[B_VALID] = 1;
        } else {
            b = bread(blk);
            if (!b)
                return written ? written : -EIO;
        }
        err = copy_from_user(b[B_DATA] + off, buf + written, nr);
        if (err < 0) {
            brelse(b);
            return err;
        }
        mark_buffer_dirty(b);
        brelse(b);
        pos += nr;
        written += nr;
        generic_commit_write(f, node, pos);
    }
    invalidate_inode_pages(node);
    return written;
}

/* Commit a write: advance f_pos and the inode size. */
int generic_commit_write(f, node, pos) {
    if (!node[I_INO])
        BUG();
    f[F_POS] = pos;
    if (ugt(pos, node[I_SIZE])) {
        node[I_SIZE] = pos;
        node[I_DIRTY] = 1;
    }
    return 0;
}

int sys_read(fd, buf, count) {
    int f = fget(fd);
    if (debug_level)
        klog("read\n");
    if (!f)
        return -EBADF;
    if (f[F_TYPE] == FT_REG)
        return generic_file_read(f, buf, count);
    if (f[F_TYPE] == FT_PIPE_R)
        return pipe_read(f, &f[F_POS], buf, count);
    if (f[F_TYPE] == FT_CONSOLE)
        return 0;           /* no input device */
    return -EBADF;
}

int sys_write(fd, buf, count) {
    int f = fget(fd);
    int i;
    if (debug_level)
        klog("write\n");
    if (!f)
        return -EBADF;
    if (f[F_TYPE] == FT_CONSOLE) {
        if (!access_ok(buf, count))
            return -EFAULT;
        for (i = 0; i < count; i++)
            con_putc(ldb(buf + i));
        return count;
    }
    if (f[F_TYPE] == FT_REG)
        return generic_file_write(f, buf, count);
    if (f[F_TYPE] == FT_PIPE_W)
        return pipe_write(f, buf, count);
    return -EBADF;
}

int sys_sync() {
    sync_inodes();
    sync_buffers();
    if (sb_dirty)
        write_super();
    return 0;
}

/* ---- pipes -------------------------------------------------------------------------- */

int pipe_table[28];         /* NR_PIPE * PIPE_WORDS */

int pipe_new() {
    int i;
    int p;
    for (i = 0; i < NR_PIPE; i++) {
        p = &pipe_table[i * PIPE_WORDS];
        if (p[P_READERS] == 0 && p[P_WRITERS] == 0) {
            p[P_BUF] = get_free_page();
            if (!p[P_BUF])
                return 0;
            p[P_HEAD] = 0;
            p[P_TAIL] = 0;
            p[P_LEN] = 0;
            p[P_READERS] = 1;
            p[P_WRITERS] = 1;
            return p;
        }
    }
    return 0;
}

int sys_pipe(fds_user) {
    int p;
    int fr;
    int fw;
    int rfd;
    int wfd;
    if (!access_ok(fds_user, 8))
        return -EFAULT;
    p = pipe_new();
    if (!p)
        return -ENFILE;
    fr = get_empty_filp();
    fw = get_empty_filp();
    if (!fr || !fw) {
        if (fr)
            fr[F_COUNT] = 0;
        if (fw)
            fw[F_COUNT] = 0;
        p[P_READERS] = 0;
        p[P_WRITERS] = 0;
        free_page(p[P_BUF] - KERNEL_BASE);
        return -ENFILE;
    }
    fr[F_TYPE] = FT_PIPE_R;
    fr[F_INO] = p;
    fw[F_TYPE] = FT_PIPE_W;
    fw[F_INO] = p;
    rfd = fd_install(fr);
    wfd = fd_install(fw);
    if (rfd < 0 || wfd < 0)
        return -EMFILE;
    put_user(fds_user, rfd);
    put_user(fds_user + 4, wfd);
    return 0;
}

/*
 * pipe_read(): §8 of the paper quotes this function's fail-silence
 * example — the "Seeks are not allowed on pipes" check at its head.
 */
int pipe_read(f, ppos, buf, count) {
    int p = f[F_INO];
    int read = 0;
    int ret = -ESPIPE;
    int chunk;
    int tail_room;
    /* Seeks are not allowed on pipes (paper example: reversing this
     * branch makes the kernel return -ESPIPE to a correct caller --
     * a fail-silence violation). */
    if (ppos != &f[F_POS])
        return ret;
    if (debug_level)
        klog("pipe_read\n");
    if (!access_ok(buf, count))
        return -EFAULT;
    while (ult(read, count)) {
        while (p[P_LEN] == 0) {
            if (p[P_WRITERS] == 0 || read)
                return read;
            sleep_on(p);
            if (current[T_SIGPENDING])
                return read ? read : -EINTR;
        }
        chunk = p[P_LEN];
        if (ugt(chunk, PIPE_BUF_BYTES))
            BUG();
        if (ugt(chunk, count - read))
            chunk = count - read;
        tail_room = PIPE_BUF_BYTES - p[P_TAIL];
        if (ugt(chunk, tail_room))
            chunk = tail_room;
        memcpy(buf + read, p[P_BUF] + p[P_TAIL], chunk);
        p[P_TAIL] = umod(p[P_TAIL] + chunk, PIPE_BUF_BYTES);
        p[P_LEN] -= chunk;
        read += chunk;
        wake_up(p);
    }
    return read;
}

int pipe_write(f, buf, count) {
    int p = f[F_INO];
    int written = 0;
    int chunk;
    int head_room;
    if (!access_ok(buf, count))
        return -EFAULT;
    while (ult(written, count)) {
        while (p[P_LEN] == PIPE_BUF_BYTES) {
            if (p[P_READERS] == 0)
                return written ? written : -EPIPE;
            wake_up(p);
            sleep_on(p);
            if (current[T_SIGPENDING])
                return written ? written : -EINTR;
        }
        if (p[P_READERS] == 0)
            return written ? written : -EPIPE;
        if (ugt(p[P_LEN], PIPE_BUF_BYTES))
            BUG();
        chunk = PIPE_BUF_BYTES - p[P_LEN];
        if (ugt(chunk, count - written))
            chunk = count - written;
        head_room = PIPE_BUF_BYTES - p[P_HEAD];
        if (ugt(chunk, head_room))
            chunk = head_room;
        memcpy(p[P_BUF] + p[P_HEAD], buf + written, chunk);
        p[P_HEAD] = umod(p[P_HEAD] + chunk, PIPE_BUF_BYTES);
        p[P_LEN] += chunk;
        written += chunk;
    }
    wake_up(p);
    return written;
}

/* ---- exec ---------------------------------------------------------------------------------- */

int exec_entry = 0;
int exec_user_esp = 0;

/*
 * do_execve(): load a flat "bx" binary into a fresh user address space.
 * On success, exec_entry/exec_user_esp describe the new user context.
 */
int do_execve(path) {
    int task = current;
    int ino;
    if (!task)
        BUG();
    ino = open_namei(path);
    int node;
    int header[4];
    int f[6];               /* transient file object on the stack */
    int filesz;
    int bss;
    int vaddr;
    int page;
    int got;
    int err;
    int i;
    if (ino < 0)
        return ino;
    node = iget(ino);
    if (!node)
        return -ENFILE;
    if (node[I_TYPE] != IT_FILE) {
        iput(node);
        return -EISDIR;
    }
    f[F_COUNT] = 1;
    f[F_TYPE] = FT_REG;
    f[F_INO] = node;
    f[F_POS] = 0;
    got = kernel_file_read(f, header, 16);
    if (got != 16 || header[BXH_MAGIC] != BX_MAGIC) {
        iput(node);
        return -ENOEXEC;
    }
    filesz = header[BXH_FILESZ];
    bss = header[BXH_BSS];
    if (ugt(filesz, EXT2_NBLOCKS * BLOCK_SIZE)) {
        iput(node);
        return -ENOEXEC;
    }
    /* Point of no return: tear down the old user image. */
    exit_mmap(task);
    /* Load text+data. */
    vaddr = USER_TEXT;
    f[F_POS] = 0;
    i = 0;
    while (ult(i, filesz + bss)) {
        page = get_free_page();
        if (!page) {
            iput(node);
            do_exit(139);
        }
        if (ult(i, filesz)) {
            got = kernel_file_read(f, page, PAGE_SIZE);
            if (got < 0) {
                iput(node);
                do_exit(139);
            }
        }
        err = map_user_page(task[T_PGDIR], vaddr + i,
                            page - KERNEL_BASE, 1);
        if (err < 0) {
            iput(node);
            do_exit(139);
        }
        i += PAGE_SIZE;
    }
    /* Stack pages. */
    i = 0;
    while (i < USER_STACK_PAGES) {
        page = get_free_page();
        if (!page) {
            iput(node);
            do_exit(139);
        }
        map_user_page(task[T_PGDIR],
                      USER_STACK_TOP - (i + 1) * PAGE_SIZE,
                      page - KERNEL_BASE, 1);
        i++;
    }
    flush_tlb();
    task[T_HEAP_START] = (USER_TEXT + filesz + bss + 4095) & ~4095;
    task[T_BRK] = task[T_HEAP_START];
    exec_entry = header[BXH_ENTRY];
    exec_user_esp = USER_STACK_TOP - 16;
    iput(node);
    return 0;
}

/* Read into a KERNEL buffer through the page cache (exec loader). */
int kernel_file_read(f, buf, count) {
    int node = f[F_INO];
    int pos = f[F_POS];
    int done = 0;
    int e;
    int index;
    int off;
    int nr;
    int err;
    while (ult(done, count) && ult(pos, node[I_SIZE])) {
        index = udiv(pos, PAGE_SIZE);
        off = umod(pos, PAGE_SIZE);
        nr = PAGE_SIZE - off;
        if (ugt(nr, count - done))
            nr = count - done;
        if (ugt(nr, node[I_SIZE] - pos))
            nr = node[I_SIZE] - pos;
        e = find_page(node, index);
        if (!e) {
            e = add_to_page_cache(node, index);
            if (!e)
                return -ENOMEM;
            err = readpage(node, e);
            if (err < 0)
                return err;
        }
        memcpy(buf + done, e[PC_PAGE] + off, nr);
        done += nr;
        pos += nr;
    }
    f[F_POS] = pos;
    return done;
}

int sys_exec(path_user, arg2, arg3, arg4, frame) {
    int path[32];
    int err = strncpy_from_user(path, path_user, 120);
    if (err < 0)
        return err;
    err = do_execve(path);
    if (err < 0)
        return err;
    /* Rewrite the syscall frame: resume in the fresh image. */
    frame[8] = exec_entry;
    frame[11] = exec_user_esp;
    return 0;
}
"""
