"""Kernel ``mm/`` subsystem.

Page allocator over ``mem_map`` refcounts, two-level page-table
manipulation (the PTEs live in simulated RAM and drive the real MMU),
copy-on-write fault handling (``do_wp_page``), user-range teardown
(``zap_page_range``), demand paging (``handle_mm_fault`` /
``do_anonymous_page``), and the page cache with
``do_generic_file_read`` — the function whose corruption produced the
paper's catastrophic case 9 (Figure 5).
"""

SOURCE = r"""
int mem_map[2048];          /* per-pfn refcount (8 MiB / 4 KiB) */
int nr_free_pages = 0;
int next_free_hint = 0;
int pgcache[80];            /* NR_PGCACHE * PC_WORDS */
int pgcache_clock = 0;

const MAP_NR_LIMIT = 2048;

/* ---- physical page allocator ------------------------------------------ */

int mem_init() {
    int pfn;
    int first = FREE_PHYS_START >> 12;
    int last = FREE_PHYS_END >> 12;
    for (pfn = 0; pfn < MAP_NR_LIMIT; pfn++)
        mem_map[pfn] = 1;               /* reserved */
    for (pfn = first; pfn < last; pfn++) {
        mem_map[pfn] = 0;
        nr_free_pages++;
    }
    next_free_hint = first;
    return nr_free_pages;
}

/* Returns the physical address of a free page, or 0. */
int alloc_page() {
    int pfn = next_free_hint;
    if (debug_level)
        klog("alloc_page\n");
    int limit = FREE_PHYS_END >> 12;
    int first = FREE_PHYS_START >> 12;
    int scanned = 0;
    int span = limit - first;
    while (scanned < span) {
        if (pfn >= limit)
            pfn = first;
        if (mem_map[pfn] == 0) {
            mem_map[pfn] = 1;
            nr_free_pages--;
            next_free_hint = pfn + 1;
            return pfn << 12;
        }
        pfn++;
        scanned++;
    }
    return 0;
}

/* Allocate a zeroed page and return its kernel-virtual address (0 on OOM). */
int get_free_page() {
    int phys = alloc_page();
    if (!phys)
        return 0;
    memset(KERNEL_BASE + phys, 0, PAGE_SIZE);
    return KERNEL_BASE + phys;
}

int get_page(phys) {
    int pfn = ugt(phys, 0) ? (phys >> 12) : 0;
    if (!ult(pfn, MAP_NR_LIMIT))
        BUG();
    mem_map[pfn]++;
    return phys;
}

int free_page(phys) {
    int pfn = phys >> 12;
    if (!ult(pfn, MAP_NR_LIMIT))
        BUG();
    if (mem_map[pfn] == 0)
        BUG();                          /* double free */
    mem_map[pfn]--;
    if (mem_map[pfn] == 0)
        nr_free_pages++;
    return 0;
}

int page_count(phys) {
    return mem_map[phys >> 12];
}

/* ---- page-table plumbing ------------------------------------------------ */

/* Pointer to the PDE for vaddr within pgdir (a physical address). */
int pde_ptr(pgdir, vaddr) {
    return KERNEL_BASE + pgdir + (vaddr >> 22) * 4;
}

/* Pointer to the PTE for vaddr, or 0 if no page table is present. */
int pte_ptr(pgdir, vaddr) {
    int pde = ld(pde_ptr(pgdir, vaddr));
    if (!(pde & PTE_P))
        return 0;
    return KERNEL_BASE + (pde & ~4095) + (((vaddr >> 12) & 1023) * 4);
}

/* Ensure a page table exists and return the PTE pointer (0 on OOM). */
int pte_alloc(pgdir, vaddr) {
    int pdep = pde_ptr(pgdir, vaddr);
    int pde = ld(pdep);
    int table;
    if (uge(vaddr, KERNEL_BASE))
        BUG();              /* only user mappings are built here */
    if (!(pde & PTE_P)) {
        table = get_free_page();
        if (!table)
            return 0;
        st(pdep, (table - KERNEL_BASE) | PTE_P | PTE_W | PTE_U);
    }
    return pte_ptr(pgdir, vaddr);
}

/* Map one page into a user address space. */
int map_user_page(pgdir, vaddr, phys, writable) {
    int ptep = pte_alloc(pgdir, vaddr);
    int flags = PTE_P | PTE_U;
    if (!ptep)
        return -ENOMEM;
    if (writable)
        flags = flags | PTE_W;
    if (ld(ptep) & PTE_P)
        BUG();                          /* mapping over a live page */
    st(ptep, phys | flags);
    return 0;
}

/* Allocate a page directory that shares the kernel mappings. */
int pgdir_alloc() {
    int virt = get_free_page();
    int i;
    if (!virt)
        return 0;
    /* Kernel PDEs (indices 768+) are shared with the boot directory. */
    for (i = 768; i < 1024; i++)
        st(virt + i * 4, ld(KERNEL_BASE + boot_pgdir_phys + i * 4));
    return virt - KERNEL_BASE;
}

/*
 * Remove user pages in [start, end) — Linux's zap_page_range().  One of
 * the paper's three crash-heavy functions (30% of mm crashes).
 */
int zap_page_range(pgdir, start, end) {
    int addr = start & ~4095;
    int freed = 0;
    int pde;
    int ptep;
    int pte;
    while (ult(addr, end)) {
        pde = ld(pde_ptr(pgdir, addr));
        if (!(pde & PTE_P)) {
            /* Whole page table absent: skip to the next 4 MiB slot. */
            addr = (addr & ~0x3FFFFF) + 0x400000;
            if (addr == 0)
                break;      /* wrapped */
            continue;
        }
        ptep = KERNEL_BASE + (pde & ~4095) + (((addr >> 12) & 1023) * 4);
        pte = ld(ptep);
        if (pte & PTE_P) {
            free_page(pte & ~4095);
            st(ptep, 0);
            freed++;
        }
        addr += PAGE_SIZE;
    }
    flush_tlb();
    return freed;
}

/* Free the page tables themselves plus the directory. */
int free_page_tables(pgdir) {
    int i;
    int pde;
    for (i = 0; i < 768; i++) {
        pde = ld(KERNEL_BASE + pgdir + i * 4);
        if (pde & PTE_P)
            free_page(pde & ~4095);
    }
    free_page(pgdir);
    return 0;
}

/*
 * Copy-on-write duplication of the user half of an address space.
 * Writable pages become read-only and shared; do_wp_page() breaks the
 * sharing on the first write fault.
 */
int copy_page_range(dst_pgdir, src_pgdir, start, end) {
    int addr = start & ~4095;
    int src_pde;
    int ptep;
    int dst_ptep;
    int pte;
    while (ult(addr, end)) {
        src_pde = ld(pde_ptr(src_pgdir, addr));
        if (!(src_pde & PTE_P)) {
            addr = (addr & ~0x3FFFFF) + 0x400000;
            if (addr == 0)
                break;
            continue;
        }
        ptep = KERNEL_BASE + (src_pde & ~4095)
            + (((addr >> 12) & 1023) * 4);
        pte = ld(ptep);
        if (pte & PTE_P) {
            if (pte & PTE_W) {
                /* Demote to read-only in the parent as well (COW). */
                pte = pte & ~PTE_W;
                st(ptep, pte);
            }
            dst_ptep = pte_alloc(dst_pgdir, addr);
            if (!dst_ptep)
                return -ENOMEM;
            st(dst_ptep, pte);
            get_page(pte & ~4095);
        }
        addr += PAGE_SIZE;
    }
    flush_tlb();
    return 0;
}

/* Tear down the task's user mappings (text+heap and stack windows). */
int exit_mmap(task) {
    int pgdir = task[T_PGDIR];
    zap_page_range(pgdir, USER_TEXT, task[T_BRK]);
    zap_page_range(pgdir, USER_STACK_TOP - 65536,
                   USER_STACK_TOP + PAGE_SIZE);
    return 0;
}

/*
 * Write fault on a present read-only page: break COW sharing.
 * The paper's severe crashes 2 and 7 were injections into this path.
 */
int do_wp_page(pgdir, addr) {
    int ptep = pte_ptr(pgdir, addr);
    int pte;
    int old_phys;
    int new_virt;
    if (!ptep)
        return -EFAULT;
    pte = ld(ptep);
    if (!(pte & PTE_P))
        return -EFAULT;
    old_phys = pte & ~4095;
    if (page_count(old_phys) == 0)
        BUG();              /* shared page with a zero refcount */
    if (page_count(old_phys) == 1) {
        /* Sole owner: simply restore write permission. */
        st(ptep, pte | PTE_W);
        invlpg(addr);
        return 0;
    }
    new_virt = get_free_page();
    if (!new_virt)
        return -ENOMEM;
    memcpy(new_virt, KERNEL_BASE + old_phys, PAGE_SIZE);
    st(ptep, (new_virt - KERNEL_BASE) | PTE_P | PTE_W | PTE_U);
    free_page(old_phys);
    invlpg(addr);
    return 0;
}

/* Demand-zero page for heap/stack growth. */
int do_anonymous_page(pgdir, addr) {
    int page = get_free_page();
    if (!page)
        return -ENOMEM;
    return map_user_page(pgdir, addr & ~4095, page - KERNEL_BASE, 1);
}

/*
 * Top-level user-fault resolution: returns 0 when the fault was handled
 * (page mapped / COW broken) and negative when the access is bad.
 */
int handle_mm_fault(task, addr, write) {
    int pgdir = task[T_PGDIR];
    int ptep;
    int pte = 0;
    if (uge(addr, KERNEL_BASE))
        return -EFAULT;     /* user touched kernel space */
    if (debug_level)
        klog("mm_fault\n");
    ptep = pte_ptr(pgdir, addr);
    if (ptep)
        pte = ld(ptep);
    if (pte & PTE_P) {
        if (write && !(pte & PTE_W))
            return do_wp_page(pgdir, addr);
        return 0;                       /* spurious (TLB) */
    }
    /* Stack growth: within 64 KiB below the stack top. */
    if (ult(USER_STACK_TOP - 65536, addr) && ult(addr, USER_STACK_TOP + PAGE_SIZE))
        return do_anonymous_page(pgdir, addr);
    /* Heap: between heap start and current brk. */
    if (uge(addr, task[T_HEAP_START]) && ult(addr, task[T_BRK]))
        return do_anonymous_page(pgdir, addr);
    return -EFAULT;
}

/* Grow (or shrink) the heap; returns the new break. */
int sys_brk(new_brk) {
    int task = current;
    if (new_brk == 0)
        return task[T_BRK];
    if (ult(new_brk, task[T_HEAP_START]))
        return -EINVAL;
    if (uge(new_brk, USER_STACK_TOP - 0x100000))
        return -ENOMEM;
    if (ult(new_brk, task[T_BRK]))
        zap_page_range(task[T_PGDIR], (new_brk + 4095) & ~4095,
                       (task[T_BRK] + 4095) & ~4095);
    task[T_BRK] = new_brk;
    return new_brk;
}

/* ---- page cache -------------------------------------------------------- */

int pgcache_init() {
    int i;
    for (i = 0; i < NR_PGCACHE; i++)
        pgcache[i * PC_WORDS + PC_INODE] = 0;
    return 0;
}

/* find_get_page(): look up (inode number, index) in the page cache. */
int find_page(inode, index) {
    int i;
    int e;
    int ino = inode[I_INO];
    if (!ino)
        BUG();              /* lookup against a dead inode */
    for (i = 0; i < NR_PGCACHE; i++) {
        e = &pgcache[i * PC_WORDS];
        if (e[PC_INODE] == ino && e[PC_INDEX] == index && e[PC_VALID]) {
            e[PC_TIME] = jiffies;
            return e;
        }
    }
    return 0;
}

/* Evict the oldest entry and return a slot bound to (inode, index). */
int add_to_page_cache(inode, index) {
    int i;
    int e;
    int victim = 0;
    int best = -1;
    for (i = 0; i < NR_PGCACHE; i++) {
        e = &pgcache[i * PC_WORDS];
        if (!e[PC_INODE]) {
            victim = e;
            break;
        }
        if (best == -1 || e[PC_TIME] < best) {
            best = e[PC_TIME];
            victim = e;
        }
    }
    if (!victim[PC_INODE]) {
        victim[PC_PAGE] = get_free_page();
        if (!victim[PC_PAGE])
            return 0;
    }
    victim[PC_INODE] = inode[I_INO];
    victim[PC_INDEX] = index;
    victim[PC_VALID] = 0;
    victim[PC_TIME] = jiffies;
    return victim;
}

/* Drop cached pages of an inode (on truncate/unlink). */
int invalidate_inode_pages(inode) {
    int i;
    int e;
    int ino = inode[I_INO];
    for (i = 0; i < NR_PGCACHE; i++) {
        e = &pgcache[i * PC_WORDS];
        if (e[PC_INODE] == ino)
            e[PC_INODE] = 0, e[PC_VALID] = 0;
    }
    return 0;
}

/* Fill one page-cache page from disk through the block layer. */
int readpage(inode, e) {
    int index = e[PC_INDEX];
    int page = e[PC_PAGE];
    int fpos = index * PAGE_SIZE;
    int copied = 0;
    int blk;
    int b;
    if (!page)
        BUG();
    memset(page, 0, PAGE_SIZE);
    while (copied < PAGE_SIZE && ult(fpos + copied, inode[I_SIZE])) {
        blk = ext2_get_block(inode, udiv(fpos + copied, BLOCK_SIZE), 0);
        if (blk > 0) {
            b = bread(blk);
            if (!b)
                return -EIO;
            memcpy(page + copied, b[B_DATA], BLOCK_SIZE);
            brelse(b);
        }
        copied += BLOCK_SIZE;
    }
    e[PC_VALID] = 1;
    return 0;
}

/*
 * do_generic_file_read(): the paper's Figure 5 case study — transfers
 * file data from the page cache (filling it from disk on miss) into a
 * user buffer.  The structure deliberately follows the 2.4 original:
 * end_index bounds the for-loop; a corrupted end_index ends the read
 * early and silently truncates what the caller sees.
 */
int do_generic_file_read(file, buf, count) {
    int inode = file[F_INO];
    int pos = file[F_POS];
    int index = udiv(pos, PAGE_SIZE);
    int offset = umod(pos, PAGE_SIZE);
    int end_index = udiv(inode[I_SIZE], PAGE_SIZE);
    int read = 0;
    int e;
    int nr;
    int err;
    if (!inode)
        BUG();
    if (uge(offset, PAGE_SIZE))
        BUG();
    if (debug_level)
        klog("generic_file_read\n");
    while (ugt(count, 0)) {
        if (ugt(index, end_index))
            break;
        if (index == end_index) {
            nr = umod(inode[I_SIZE], PAGE_SIZE);
            if (uge(offset, nr))
                break;
        } else {
            nr = PAGE_SIZE;
        }
        nr = nr - offset;
        if (ugt(nr, count))
            nr = count;
        e = find_page(inode, index);
        if (!e) {
            e = add_to_page_cache(inode, index);
            if (!e)
                return -ENOMEM;
            err = readpage(inode, e);
            if (err < 0)
                return err;
        }
        if (!e[PC_VALID])
            BUG();
        err = copy_to_user(buf + read, e[PC_PAGE] + offset, nr);
        if (err < 0)
            return err;
        read += nr;
        count -= nr;
        offset += nr;
        if (offset == PAGE_SIZE) {
            offset = 0;
            index++;
        }
    }
    file[F_POS] = pos + read;
    return read;
}
"""
