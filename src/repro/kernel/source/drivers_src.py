"""Kernel ``drivers/`` subsystem: console, disk, and crash-dump drivers."""

SOURCE = r"""
/* ---- console ------------------------------------------------------- */

int con_putc(c) {
    stb(CONSOLE_DEV, c);
    return 1;
}

int con_write(buf, len) {
    int i;
    for (i = 0; i < len; i++)
        con_putc(ldb(buf + i));
    return len;
}

/* ---- disk (simple DMA block controller) ----------------------------- */

const DISK_REG_SECTOR = 0;
const DISK_REG_COUNT = 4;
const DISK_REG_DMA = 8;
const DISK_REG_CMD = 12;
const DISK_REG_STATUS = 16;
const DISK_CMD_READ = 1;
const DISK_CMD_WRITE = 2;

int disk_stat_reads = 0;
int disk_stat_writes = 0;

/*
 * Opt-in graceful degradation: disk_retries > 0 lets disk_io retry a
 * failed transfer up to that many times with linear backoff before
 * giving up with -EIO.  The default 0 is the fail-stop driver the
 * paper measured: the first device error propagates immediately.
 * Patched pre-boot by the harness (Machine.enable_disk_retry), like
 * recovery_enabled.
 */
int disk_retries = 0;
int disk_stat_retries = 0;

/* Transfer one 1 KiB block between the disk and a kernel buffer. */
int disk_io(cmd, block, buf) {
    int attempt;
    int delay;
    for (attempt = 0; attempt <= disk_retries; attempt++) {
        st(DISK_DEV + DISK_REG_SECTOR, block * 2);
        st(DISK_DEV + DISK_REG_COUNT, 2);
        st(DISK_DEV + DISK_REG_DMA, buf - KERNEL_BASE);
        st(DISK_DEV + DISK_REG_CMD, cmd);
        if (ld(DISK_DEV + DISK_REG_STATUS) == 0) {
            if (cmd == DISK_CMD_READ)
                disk_stat_reads++;
            else
                disk_stat_writes++;
            return 0;
        }
        if (ult(attempt, disk_retries)) {
            disk_stat_retries++;
            /* Linear backoff: give a transient fault time to clear. */
            delay = (attempt + 1) * 16;
            while (delay)
                delay--;
        }
    }
    return -EIO;
}

int disk_read_block(block, buf) {
    return disk_io(DISK_CMD_READ, block, buf);
}

int disk_write_block(block, buf) {
    return disk_io(DISK_CMD_WRITE, block, buf);
}

/* ---- crash-dump device (the LKCD stand-in) ---------------------------- */

int dump_word(v) {
    st(DUMP_DEV, v);
    return 0;
}

int dump_commit() {
    st(DUMP_DEV + 4, 1);
    return 0;
}
"""
