"""MinC source modules for each kernel subsystem."""
